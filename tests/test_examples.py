"""Smoke tests: every example script imports cleanly and exposes main().

(The examples' full runs are exercised manually / in CI-nightly style via
``python examples/<name>.py``; here we only guard against import rot.)
"""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None))


def test_there_are_at_least_four_examples():
    assert len(EXAMPLES) >= 4
