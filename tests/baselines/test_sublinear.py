"""Sublinear-regime baselines: correctness plus the Ω(log)-type growth
that motivates the heterogeneous model."""

import random

import pytest

from repro.baselines import (
    sublinear_boruvka_mst,
    sublinear_connectivity,
    sublinear_matching,
)
from repro.graph import generators
from repro.graph.traversal import component_labels
from repro.graph.validation import is_maximal_matching, verify_mst


@pytest.fixture
def rng():
    return random.Random(131)


def test_sublinear_mst_exact(rng):
    g = generators.random_connected_graph(40, 200, rng).with_unique_weights(rng)
    result = sublinear_boruvka_mst(g, rng=random.Random(1))
    assert verify_mst(g, result.edges)


def test_sublinear_mst_on_disconnected(rng):
    g = generators.planted_components_graph(30, 3, 30, rng).with_unique_weights(rng)
    result = sublinear_boruvka_mst(g, rng=random.Random(2))
    assert verify_mst(g, result.edges)


def test_sublinear_mst_requires_weights(rng):
    g = generators.random_connected_graph(10, 15, rng)
    with pytest.raises(ValueError):
        sublinear_boruvka_mst(g)


def test_sublinear_mst_iterations_grow_with_n(rng):
    """Borůvka needs more iterations on longer paths — the log n growth."""
    iterations = []
    for n in (16, 128):
        g = generators.cycle_graph(n).with_unique_weights(rng)
        result = sublinear_boruvka_mst(g, rng=random.Random(n))
        iterations.append(result.iterations)
    assert iterations[1] > iterations[0]


def test_sublinear_connectivity_labels(rng):
    g = generators.planted_components_graph(40, 4, 30, rng)
    result = sublinear_connectivity(g, rng=random.Random(3))
    assert result.labels == component_labels(g)


def test_sublinear_connectivity_uses_no_large_machine(rng):
    g = generators.random_connected_graph(20, 40, rng)
    result = sublinear_connectivity(g, rng=random.Random(4))
    assert not result.cluster.has_large


def test_sublinear_matching_is_maximal(rng):
    g = generators.random_connected_graph(40, 180, rng)
    result = sublinear_matching(g, rng=random.Random(5))
    assert is_maximal_matching(g, result.matching)


def test_sublinear_matching_on_star(rng):
    from repro.graph import Graph

    g = Graph(15, [(0, v) for v in range(1, 15)])
    result = sublinear_matching(g, rng=random.Random(6))
    assert is_maximal_matching(g, result.matching)
    assert len(result.matching) == 1


def test_round_separation_vs_heterogeneous(rng):
    """The motivating separation on the 1-vs-2 cycle problem: sublinear
    Borůvka needs rounds growing with n, the heterogeneous solution is one
    round."""
    from repro.core.cycle import solve_one_vs_two_cycles

    g = generators.cycle_graph(128, rng)
    sublinear = sublinear_connectivity(g, rng=random.Random(7))
    heterogeneous = solve_one_vs_two_cycles(g, rng=random.Random(8))
    assert heterogeneous.rounds == 1
    assert sublinear.rounds > 5 * heterogeneous.rounds
