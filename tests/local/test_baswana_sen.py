"""Classic Baswana–Sen (Algorithm 1)."""

import random

import pytest

from repro.graph import generators
from repro.graph.validation import spanner_stretch, verify_spanner
from repro.local.baswana_sen import baswana_sen


@pytest.fixture
def rng():
    return random.Random(23)


@pytest.mark.parametrize("k", [1, 2, 3])
def test_stretch_bound_holds(rng, k):
    g = generators.random_connected_graph(40, 250, rng)
    run = baswana_sen(g, k, rng)
    assert verify_spanner(g, run.spanner, stretch=2 * k - 1)


def test_k_equals_one_keeps_every_edge(rng):
    """A 1-spanner must preserve all distances exactly: with k=1, C_1 is
    empty, every vertex is removed at step 1, and one edge per neighboring
    cluster = every edge (clusters are singletons)."""
    g = generators.random_connected_graph(20, 60, rng)
    run = baswana_sen(g, 1, rng)
    assert run.spanner == g.edge_set()


def test_expected_size_scaling(rng):
    """k=2 on a dense graph: size O(k n^{1.5}) — far below m."""
    n = 80
    g = generators.gnm_random_graph(n, 2000, rng)
    sizes = [len(baswana_sen(g, 2, random.Random(s)).spanner) for s in range(5)]
    average = sum(sizes) / len(sizes)
    assert average <= 6 * 2 * n**1.5  # generous constant


def test_edge_breakdown_partitions_spanner(rng):
    g = generators.random_connected_graph(30, 200, rng)
    run = baswana_sen(g, 3, rng)
    assert run.spanner == run.reclustered_edges | run.removal_edges


def test_centers_start_as_identity(rng):
    g = generators.random_connected_graph(10, 20, rng)
    run = baswana_sen(g, 2, rng)
    assert run.centers[0] == list(range(10))


def test_all_vertices_eventually_unclustered(rng):
    g = generators.random_connected_graph(25, 80, rng)
    run = baswana_sen(g, 3, rng)
    assert all(center is None for center in run.centers[-1])


def test_invalid_k_rejected(rng):
    g = generators.random_connected_graph(10, 20, rng)
    with pytest.raises(ValueError):
        baswana_sen(g, 0, rng)


def test_spanner_edges_are_graph_edges(rng):
    g = generators.random_connected_graph(30, 120, rng)
    run = baswana_sen(g, 2, rng)
    assert run.spanner <= g.edge_set()


def test_disconnected_graph_spanner_preserves_infinities(rng):
    g = generators.planted_components_graph(30, 3, 40, rng)
    run = baswana_sen(g, 2, rng)
    assert spanner_stretch(g, run.spanner) <= 3
