"""Sequential MST machinery, including the F-light ground truth."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph, generators
from repro.graph.validation import is_spanning_forest
from repro.local.mst import (
    f_light_edges,
    forest_components,
    heaviest_weight_on_path,
    is_f_light,
    kruskal,
    kruskal_edges,
    minimum_spanning_forest,
    spanning_forest,
)


@pytest.fixture
def rng():
    return random.Random(17)


def test_kruskal_on_triangle():
    g = Graph(3, [(0, 1, 1), (1, 2, 2), (0, 2, 3)])
    assert sorted(kruskal(g)) == [(0, 1, 1), (1, 2, 2)]


def test_kruskal_requires_weights():
    with pytest.raises(ValueError):
        kruskal(Graph(3, [(0, 1)]))


def test_kruskal_total_weight_is_minimal_by_exhaustion(rng):
    """Compare against brute force over all spanning trees of a tiny graph."""
    import itertools

    g = generators.random_connected_graph(6, 9, rng).with_unique_weights(rng)
    best = math.inf
    for subset in itertools.combinations(g.edges, g.n - 1):
        if is_spanning_forest(g, subset):
            best = min(best, sum(e[2] for e in subset))
    assert sum(e[2] for e in kruskal(g)) == best


def test_kruskal_on_disconnected_graph(rng):
    g = generators.planted_components_graph(20, 3, 15, rng).with_unique_weights(rng)
    forest = kruskal(g)
    assert is_spanning_forest(g, forest)
    assert len(forest) == g.n - 3


def test_kruskal_edges_handles_multigraph():
    # Parallel edges with different weights: only the lightest used.
    forest = kruskal_edges(2, [(0, 1, 5), (0, 1, 2)])
    assert forest == [(0, 1, 2)]


def test_minimum_spanning_forest_returns_graph(rng):
    g = generators.random_connected_graph(10, 20, rng).with_unique_weights(rng)
    msf = minimum_spanning_forest(g)
    assert msf.m == 9
    assert msf.weighted


def test_spanning_forest_ignores_weights(rng):
    g = generators.random_connected_graph(15, 40, rng)
    forest = spanning_forest(g.n, g.edges)
    assert is_spanning_forest(g, forest)


def test_forest_components():
    uf = forest_components(5, [(0, 1), (2, 3)])
    assert uf.num_components == 3


def test_heaviest_on_path_simple_path():
    forest = [(0, 1, 5), (1, 2, 9), (2, 3, 2)]
    assert heaviest_weight_on_path(4, forest, 0, 3) == 9
    assert heaviest_weight_on_path(4, forest, 2, 3) == 2


def test_heaviest_on_path_different_trees_is_inf():
    forest = [(0, 1, 5), (2, 3, 2)]
    assert math.isinf(heaviest_weight_on_path(4, forest, 0, 2))


def test_heaviest_on_path_same_vertex():
    assert heaviest_weight_on_path(3, [(0, 1, 5)], 1, 1) == -math.inf


def test_f_light_definition_matches_kkt(rng):
    """Edges of the MSF itself are always F-light; the heaviest edge of any
    cycle is F-heavy with respect to the full MST."""
    g = generators.random_connected_graph(15, 45, rng).with_unique_weights(rng)
    forest = kruskal(g)
    for edge in forest:
        assert is_f_light(g.n, forest, edge)
    non_tree = [e for e in g.edges if e not in forest]
    for edge in non_tree:
        # w.r.t. the true MST, every non-tree edge is F-heavy.
        assert not is_f_light(g.n, forest, edge)


def test_f_light_count_respects_kkt_bound(rng):
    """KKT (Lemma 3.2): sampling at rate p leaves ~n/p F-light edges."""
    n, m, p = 60, 600, 0.25
    g = generators.random_connected_graph(n, m, rng).with_unique_weights(rng)
    totals = []
    for seed in range(5):
        local = random.Random(seed)
        sample = [e for e in g.edges if local.random() < p]
        forest = kruskal_edges(n, sample)
        totals.append(len(f_light_edges(n, forest, g.edges)))
    average = sum(totals) / len(totals)
    assert average <= 3 * n / p  # generous constant over the expectation


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_kruskal_is_idempotent_on_its_output(seed):
    rng = random.Random(seed)
    g = generators.random_connected_graph(12, 24, rng).with_unique_weights(rng)
    forest = kruskal(g)
    again = kruskal_edges(g.n, forest)
    assert sorted(again) == sorted(forest)
