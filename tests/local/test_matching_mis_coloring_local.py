"""Sequential matching / MIS / coloring helpers."""

import random

import pytest

from repro.graph import Graph, generators
from repro.graph.validation import (
    is_matching,
    is_maximal_independent_set,
    is_maximal_matching,
    is_proper_coloring,
)
from repro.local.coloring import greedy_coloring, list_coloring
from repro.local.matching import (
    extend_matching,
    greedy_maximal_matching,
    random_greedy_matching,
)
from repro.local.mis import greedy_mis, greedy_mis_edges


@pytest.fixture
def rng():
    return random.Random(31)


def test_greedy_matching_is_maximal(rng):
    g = generators.random_connected_graph(30, 100, rng)
    matching = greedy_maximal_matching(g.edges)
    assert is_maximal_matching(g, matching)


def test_greedy_matching_respects_preexisting():
    edges = [(0, 1), (2, 3)]
    matched = {0}
    result = greedy_maximal_matching(edges, matched=matched)
    assert result == [(2, 3)]
    assert matched == {0, 2, 3}


def test_random_greedy_matching(rng):
    g = generators.random_connected_graph(30, 100, rng)
    matching = random_greedy_matching(g.edges, rng)
    assert is_maximal_matching(g, matching)


def test_extend_matching_unions_greedily():
    base = [(0, 1)]
    extended = extend_matching(base, [(1, 2), (3, 4)])
    assert (0, 1) in extended and (3, 4) in extended
    assert (1, 2) not in extended


def test_greedy_mis_on_path():
    mis = greedy_mis(5, [(0, 1), (1, 2), (2, 3), (3, 4)], order=[0, 1, 2, 3, 4])
    assert mis == {0, 2, 4}


def test_greedy_mis_is_maximal(rng):
    g = generators.random_connected_graph(40, 200, rng)
    order = list(range(g.n))
    rng.shuffle(order)
    mis = greedy_mis(g.n, g.edges, order)
    assert is_maximal_independent_set(g, mis)


def test_greedy_mis_edges_respects_blocked():
    chosen = greedy_mis_edges(
        [0, 1, 2], [(0, 1), (1, 2)], order=[0, 1, 2], already_blocked={0}
    )
    assert 0 not in chosen
    assert chosen == {1}


def test_greedy_coloring_uses_at_most_delta_plus_one(rng):
    g = generators.random_connected_graph(40, 300, rng)
    colors = greedy_coloring(g.n, g.edges)
    assert is_proper_coloring(g, colors, g.max_degree + 1)


def test_greedy_coloring_path_uses_two_colors():
    colors = greedy_coloring(4, [(0, 1), (1, 2), (2, 3)])
    assert max(colors) <= 1


def test_list_coloring_success():
    palettes = {0: (0, 1), 1: (1, 0), 2: (0, 1)}
    assignment = list_coloring([0, 1, 2], [(0, 1), (1, 2)], palettes)
    assert assignment is not None
    assert assignment[0] != assignment[1] and assignment[1] != assignment[2]


def test_list_coloring_stuck_returns_none():
    # A triangle where everyone has the same single color cannot be colored.
    palettes = {0: (0,), 1: (0,), 2: (0,)}
    assignment = list_coloring([0, 1, 2], [(0, 1), (1, 2), (0, 2)], palettes)
    assert assignment is None


def test_list_coloring_random_palettes_work_whp(rng):
    g = generators.random_connected_graph(40, 200, rng)
    universe = g.max_degree + 1
    size = min(universe, 8)
    palettes = {v: tuple(rng.sample(range(universe), size)) for v in range(g.n)}
    assignment = list_coloring(range(g.n), g.edges, palettes)
    if assignment is not None:  # succeeds in practice; skip rare failure
        colors = [assignment[v] for v in range(g.n)]
        assert is_proper_coloring(g, colors, universe)
