"""Stoer–Wagner and contraction helpers."""

import random

import pytest

from repro.graph import Graph, generators
from repro.graph.validation import cut_value
from repro.local.mincut import (
    karger_contract,
    min_cut_value,
    min_degree_cut,
    stoer_wagner,
)


@pytest.fixture
def rng():
    return random.Random(41)


def test_stoer_wagner_on_barbell():
    # Two triangles joined by one edge: min cut = 1.
    edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]
    value, side = stoer_wagner(range(6), edges)
    assert value == 1
    assert side in ({0, 1, 2}, {3, 4, 5})


def test_stoer_wagner_weighted():
    edges = [(0, 1, 10), (1, 2, 3), (2, 0, 10)]
    value, _ = stoer_wagner(range(3), edges)
    assert value == 13  # isolate vertex 1: 3 + 10


def test_stoer_wagner_merges_parallel_edges():
    value, _ = stoer_wagner(range(2), [(0, 1), (0, 1), (0, 1)])
    assert value == 3


def test_stoer_wagner_side_matches_value(rng):
    g = generators.planted_cut_graph(20, 2, 3.0, rng)
    value, side = stoer_wagner(range(g.n), g.edges)
    assert cut_value(g, side) == value


def test_stoer_wagner_needs_two_vertices():
    with pytest.raises(ValueError):
        stoer_wagner([0], [])


def test_min_cut_value_disconnected_is_zero():
    g = Graph(4, [(0, 1), (2, 3)])
    assert min_cut_value(g.n, g.edges) == 0


def test_min_cut_of_cycle_is_two(rng):
    g = generators.cycle_graph(10)
    assert min_cut_value(g.n, g.edges) == 2


def test_min_cut_of_complete_graph():
    g = generators.complete_graph(6)
    assert min_cut_value(g.n, g.edges) == 5


def test_min_cut_matches_brute_force(rng):
    import itertools

    g = generators.gnm_random_graph(8, 16, rng)
    from repro.graph.traversal import is_connected

    if not is_connected(g):
        return
    best = min(
        cut_value(g, set(side))
        for size in range(1, 5)
        for side in itertools.combinations(range(8), size)
    )
    assert min_cut_value(g.n, g.edges) == best


def test_karger_contract_reaches_target(rng):
    g = generators.random_connected_graph(20, 60, rng)
    uf, survivors = karger_contract(range(g.n), list(g.edges), rng, target=2)
    assert uf.num_components == 2
    for u, v in survivors:
        assert uf.find(u) != uf.find(v)


def test_karger_repeated_finds_min_cut(rng):
    g = generators.planted_cut_graph(16, 1, 3.0, rng)
    best = min(
        len(karger_contract(range(g.n), list(g.edges), random.Random(s), 2)[1])
        for s in range(30)
    )
    assert best == min_cut_value(g.n, g.edges)


def test_min_degree_cut():
    g = Graph(4, [(0, 1), (0, 2), (0, 3), (1, 2)])
    value, vertex = min_degree_cut(g.n, g.edges)
    assert value == 1 and vertex == 3
