"""GraphService: incremental state, validation, and differential replay.

The replay tests are the correctness contract of the whole serve stack:
after *any* prefix of signed update batches, the service's canonical
component labels must equal a from-scratch
:func:`repro.core.connectivity.sketch_components` run (same seed) on the
surviving edge multiset — under both sketch backends.  Likewise the
MST-weight estimate must exactly replay
:func:`repro.core.mst_approx.approximate_mst_weight`.
"""

from __future__ import annotations

import random

import pytest

from repro.core.connectivity import sketch_components
from repro.core.mst_approx import approximate_mst_weight
from repro.graph.graph import Graph
from repro.mpc import Cluster, ModelConfig
from repro.primitives.edgestore import EdgeStore
from repro.serve import GraphService, ServeConfig, ServiceError
from repro.sketches import available_backends

BACKENDS = available_backends()


def scratch_labels(n: int, seed: int, edges, copies: int = 3,
                   backend: str | None = None) -> list[int]:
    """From-scratch Theorem C.1 run on *edges* — the replay reference."""
    cluster = Cluster(
        ModelConfig.heterogeneous(n=n, m=max(4, len(edges))),
        rng=random.Random(987),
    )
    store = EdgeStore.create(cluster, list(edges), name="replay")
    return sketch_components(
        cluster, store, n, random.Random(seed), copies=copies, backend=backend
    )


def random_batches(n, rng, batches=4, per_batch=12):
    """A stream of insert/delete batches; deletes target live edges."""
    live: list[tuple[int, int]] = []
    stream = []
    for _ in range(batches):
        inserts = []
        for _ in range(per_batch):
            u, v = rng.randrange(n), rng.randrange(n)
            inserts.append((u, v))
            if u != v:
                live.append((min(u, v), max(u, v)))
        deletes = []
        for _ in range(min(len(live), per_batch // 2)):
            deletes.append(live.pop(rng.randrange(len(live))))
        stream.append((inserts, deletes))
    return stream


@pytest.mark.parametrize("backend", BACKENDS)
def test_differential_replay_after_every_prefix(backend):
    n, seed = 20, 11
    service = GraphService(
        ServeConfig(n=n, seed=seed, shards=3, backend=backend)
    )
    for inserts, deletes in random_batches(n, random.Random(4)):
        service.update(insert=inserts, delete=deletes)
        surviving = [(u, v) for u, v, _ in service.surviving_edges()]
        reference = scratch_labels(n, seed, surviving, backend=backend)
        assert service.components().labels == reference


@pytest.mark.parametrize("backend", BACKENDS)
def test_replay_holds_with_multi_edges_and_loops(backend):
    n, seed = 12, 3
    service = GraphService(ServeConfig(n=n, seed=seed, backend=backend))
    # Parallel edges and self-loops stream through like anything else.
    service.update(insert=[(0, 1), (0, 1), (1, 0), (5, 5), (2, 7)])
    service.update(delete=[(0, 1)])
    surviving = [(u, v) for u, v, _ in service.surviving_edges()]
    assert surviving == [(0, 1), (0, 1), (2, 7), (5, 5)]
    assert service.components().labels == scratch_labels(
        n, seed, surviving, backend=backend
    )
    # Deleting the remaining multiplicity disconnects 0 and 1.
    service.update(delete=[(0, 1), (1, 0)])
    assert not service.connected(0, 1)
    assert service.components().labels == scratch_labels(
        n, seed, [(2, 7), (5, 5)], backend=backend
    )


def test_backends_answer_identically():
    if len(BACKENDS) < 2:
        pytest.skip("only one sketch backend available")
    n, seed = 18, 9
    services = [
        GraphService(ServeConfig(n=n, seed=seed, backend=b)) for b in BACKENDS
    ]
    for inserts, deletes in random_batches(n, random.Random(8), batches=3):
        views = []
        for service in services:
            service.update(insert=inserts, delete=deletes)
            views.append(service.components())
        assert all(v.labels == views[0].labels for v in views[1:])


@pytest.mark.parametrize("backend", BACKENDS)
def test_mst_weight_replays_from_scratch_run(backend):
    n, seed, max_weight = 14, 6, 9
    rng = random.Random(1)
    edges, seen = [], set()
    while len(edges) < 20:
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v or (min(u, v), max(u, v)) in seen:
            continue
        seen.add((min(u, v), max(u, v)))
        edges.append((min(u, v), max(u, v), rng.randrange(1, max_weight + 1)))
    edges[0] = (edges[0][0], edges[0][1], max_weight)

    service = GraphService(
        ServeConfig(n=n, seed=seed, max_weight=max_weight, backend=backend)
    )
    churn = [edges[3][0], edges[3][1], 2]
    service.update(insert=[list(e) for e in edges] + [churn])
    service.update(delete=[churn])
    got = service.mst_weight()

    reference = approximate_mst_weight(
        Graph(n=n, edges=tuple(edges), weighted=True),
        epsilon=0.5,
        rng=random.Random(seed),
        copies=3,
        backend=backend,
    )
    assert got["estimate"] == reference.estimate
    assert got["thresholds"] == reference.thresholds
    assert got["component_counts"] == [
        reference.component_counts[t] for t in reference.thresholds
    ]


def test_refresh_is_lazy_and_cached():
    service = GraphService(ServeConfig(n=8, seed=0))
    service.update(insert=[(0, 1), (1, 2)])
    assert service.refreshes == 0
    service.connected(0, 2)
    service.connected(1, 2)
    service.components()
    assert service.refreshes == 1  # one rebuild served all three queries
    service.update(insert=[(3, 4)])
    service.connected(3, 4)
    assert service.refreshes == 2


def test_update_batch_is_atomic_on_bad_delete():
    service = GraphService(ServeConfig(n=8, seed=0))
    service.update(insert=[(0, 1)])
    before = service.components().labels
    with pytest.raises(ServiceError, match="surviving"):
        service.update(insert=[(2, 3)], delete=[(4, 5)])
    # The rejected batch moved nothing — not even its inserts.
    assert service.surviving_edges() == [(0, 1, 1)]
    assert service.components().labels == before


def test_delete_must_match_weight():
    service = GraphService(ServeConfig(n=8, seed=0, max_weight=10))
    service.update(insert=[(0, 1, 5)])
    with pytest.raises(ServiceError, match="surviving"):
        service.update(delete=[(0, 1, 4)])


def test_validation_errors():
    service = GraphService(ServeConfig(n=8, seed=0))
    with pytest.raises(ServiceError, match="universe"):
        service.update(insert=[(0, 8)])
    with pytest.raises(ServiceError, match="weight"):
        service.update(insert=[(0, 1, 0)])
    with pytest.raises(ServiceError, match="u, v"):
        service.update(insert=[(0, 1, 2, 3)])
    with pytest.raises(ServiceError, match="universe"):
        service.connected(0, 99)
    with pytest.raises(ServiceError, match="max_weight"):
        service.mst_weight()
    with pytest.raises(ServiceError, match="exceeds"):
        GraphService(ServeConfig(n=8, seed=0, max_weight=5)).update(
            insert=[(0, 1, 6)]
        )


def test_config_validation():
    for bad in (
        dict(n=0),
        dict(n=4, copies=0),
        dict(n=4, shards=0),
        dict(n=4, max_weight=0),
        dict(n=4, epsilon=0.0),
    ):
        with pytest.raises(ServiceError):
            ServeConfig(**bad)


def test_insert_delete_churn_returns_to_empty_state():
    n, seed = 10, 2
    service = GraphService(ServeConfig(n=n, seed=seed, shards=2))
    edges = [(0, 1), (1, 2), (2, 3), (4, 5)]
    service.update(insert=edges)
    service.update(delete=edges)
    view = service.components()
    assert view.num_components == n
    assert view.labels == list(range(n))
    # All shard counters returned to exact zero by linearity.
    for shard in service._shards:
        for vertex in shard.vertices:
            assert shard.is_zero_vertex(vertex)


def test_stats_shape():
    service = GraphService(ServeConfig(n=8, seed=0, shards=2))
    service.update(insert=[(0, 1)])
    service.connected(0, 1)
    stats = service.stats()
    assert stats["edges"] == 1
    assert stats["updates_applied"] == 1
    assert stats["queries_answered"] == 1
    assert stats["refreshes"] == 1
    assert stats["shards"] == 2
    assert stats["forest_fresh"] is True
    assert stats["mst_enabled"] is False
    assert stats["sketch_words"] > 0
