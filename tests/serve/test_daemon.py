"""Daemon + client round-trips: stdio loop, subprocess spawn, and TCP."""

from __future__ import annotations

import io
import json
import os
import socket
import sys
import threading

import pytest

from repro.serve import ServeClient, ServeRemoteError, ServeSession
from repro.serve.daemon import serve_stdio, serve_tcp

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def run_stdio(lines: list[str], session: ServeSession | None = None) -> list[str]:
    stdin = io.StringIO("".join(line + "\n" for line in lines))
    stdout = io.StringIO()
    serve_stdio(session or ServeSession(), stdin, stdout)
    return stdout.getvalue().splitlines()


def test_stdio_loop_skips_blank_lines_and_stops_on_shutdown():
    out = run_stdio([
        json.dumps({"op": "ping"}),
        "",
        "   ",
        json.dumps({"op": "init", "n": 6}),
        json.dumps({"op": "update", "insert": [[0, 1]]}),
        json.dumps({"op": "shutdown"}),
        json.dumps({"op": "ping"}),  # after shutdown: never answered
    ])
    assert len(out) == 4
    assert json.loads(out[-1])["result"] == {"stopped": True}


def test_stdio_stream_is_byte_deterministic():
    lines = [
        json.dumps({"op": "init", "n": 8, "seed": 5}),
        json.dumps({"op": "update", "insert": [[0, 1], [1, 2], [4, 5]]}),
        json.dumps({"op": "connected", "u": 0, "v": 2}),
        json.dumps({"op": "update", "delete": [[1, 2]]}),
        json.dumps({"op": "components", "labels": True}),
        json.dumps({"op": "shutdown"}),
    ]
    assert run_stdio(lines) == run_stdio(lines)


def test_spawned_daemon_round_trip():
    env = {"PYTHONPATH": REPO_SRC}
    with ServeClient.spawn(["--n", "10", "--seed", "2"], env=env) as client:
        assert client.ping()["initialized"] is True
        client.update(insert=[[0, 1], [1, 2], [5, 6]])
        assert client.connected(0, 2)
        assert not client.connected(0, 5)
        client.update(delete=[[1, 2]])
        assert not client.connected(0, 2)
        assert client.components()["num_components"] == 8
        stats = client.stats()
        assert stats["updates_applied"] == 4
        with pytest.raises(ServeRemoteError, match="universe"):
            client.connected(0, 99)
        assert client.shutdown() == {"stopped": True}


def test_spawned_daemon_init_op_and_mst():
    env = {"PYTHONPATH": REPO_SRC}
    with ServeClient.spawn(env=env) as client:
        assert client.ping()["initialized"] is False
        client.init(8, seed=1, max_weight=4)
        client.update(insert=[[0, 1, 2], [1, 2, 4]])
        result = client.mst_weight()
        assert result["thresholds"][0] == 1
        assert result["estimate"] >= 0
        client.shutdown()


def test_tcp_round_trip():
    session = ServeSession()
    ready_r, ready_w = socket.socketpair()
    announce = ready_w.makefile("w")

    thread = threading.Thread(
        target=serve_tcp, args=(session, "127.0.0.1", 0),
        kwargs={"ready": announce}, daemon=True,
    )
    thread.start()
    with ready_r.makefile("r") as lines:
        port = int(lines.readline().split()[1])
    ready_r.close()
    ready_w.close()

    with ServeClient.connect("127.0.0.1", port) as client:
        client.init(6, seed=0)
        client.update(insert=[[0, 1], [2, 3]])
        assert client.connected(0, 1)
        assert not client.connected(1, 2)

    # A second connection reaches the same live service state.
    with ServeClient.connect("127.0.0.1", port) as client:
        assert client.stats()["edges"] == 2
        client.shutdown()
    thread.join(timeout=10)
    assert not thread.is_alive()


def test_cli_serve_stdio(monkeypatch, capsys):
    from repro.cli import main

    stdin = io.StringIO(
        json.dumps({"op": "update", "insert": [[0, 1]]}) + "\n"
        + json.dumps({"op": "connected", "u": 0, "v": 1}) + "\n"
        + json.dumps({"op": "shutdown"}) + "\n"
    )
    monkeypatch.setattr(sys, "stdin", stdin)
    assert main(["serve", "--n", "4", "--seed", "0"]) == 0
    out = capsys.readouterr().out.splitlines()
    assert json.loads(out[1])["result"] == {"connected": True}
    assert json.loads(out[2])["result"] == {"stopped": True}
