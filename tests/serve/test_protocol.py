"""ServeSession protocol: dispatch, errors, and deterministic encoding."""

from __future__ import annotations

import json

from repro.serve import GraphService, ServeConfig, ServeSession, encode


def make_session(n=10, seed=0, **kw) -> ServeSession:
    return ServeSession(GraphService(ServeConfig(n=n, seed=seed, **kw)))


def test_encode_is_canonical():
    line = encode({"b": 1, "a": [2, 3]})
    assert line == '{"a":[2,3],"b":1}'
    assert "\n" not in line


def test_ping_and_echoed_id():
    session = ServeSession()
    response = session.handle({"op": "ping", "id": 42})
    assert response == {
        "ok": True, "op": "ping", "id": 42,
        "result": {"pong": True, "initialized": False},
    }


def test_init_then_query_flow():
    session = ServeSession()
    response = session.handle({"op": "init", "n": 6, "seed": 1})
    assert response["ok"] and response["result"]["config"]["n"] == 6
    session.handle({"op": "update", "insert": [[0, 1], [1, 2]]})
    response = session.handle({"op": "connected", "u": 0, "v": 2})
    assert response["result"] == {"connected": True}


def test_double_init_rejected():
    session = make_session()
    response = session.handle({"op": "init", "n": 5})
    assert not response["ok"] and "already initialized" in response["error"]


def test_query_before_init_rejected():
    session = ServeSession()
    response = session.handle({"op": "components"})
    assert not response["ok"] and "init" in response["error"]


def test_init_rejects_unknown_and_missing_fields():
    session = ServeSession()
    assert not session.handle({"op": "init"})["ok"]
    # Unknown fields are simply ignored (forward compatibility).
    assert session.handle({"op": "init", "n": 4, "frobnicate": 1})["ok"]


def test_components_labels_flag():
    session = make_session(n=5)
    session.handle({"op": "update", "insert": [[0, 1]]})
    bare = session.handle({"op": "components"})["result"]
    assert "labels" not in bare and bare["num_components"] == 4
    full = session.handle({"op": "components", "labels": True})["result"]
    assert full["labels"] == [0, 0, 2, 3, 4]


def test_update_error_reported_not_raised():
    session = make_session(n=4)
    response = session.handle({"op": "update", "delete": [[0, 1]]})
    assert not response["ok"] and "surviving" in response["error"]


def test_unknown_op_and_bad_json_line():
    session = make_session()
    assert not session.handle({"op": "frobnicate"})["ok"]
    line = session.handle_line("this is not json")
    parsed = json.loads(line)
    assert not parsed["ok"] and "bad request" in parsed["error"]


def test_connected_missing_field():
    session = make_session()
    response = session.handle({"op": "connected", "u": 0})
    assert not response["ok"] and "'v'" in response["error"]


def test_shutdown_closes_session():
    session = make_session()
    response = session.handle({"op": "shutdown"})
    assert response["result"] == {"stopped": True}
    assert session.closed


def test_response_stream_is_deterministic():
    requests = [
        {"op": "init", "n": 8, "seed": 3},
        {"op": "update", "insert": [[0, 1], [2, 3], [1, 2]]},
        {"op": "connected", "u": 0, "v": 3},
        {"op": "update", "delete": [[1, 2]]},
        {"op": "components", "labels": True},
        {"op": "stats"},
    ]

    def run() -> list[str]:
        session = ServeSession()
        return [session.handle_line(json.dumps(r)) for r in requests]

    assert run() == run()  # byte-identical across fresh sessions
