"""Degeneracy and arboricity bounds (related-work inequality m/n <= α <= Δ)."""

import random

import pytest

from repro.graph import Graph, generators
from repro.graph.arboricity import arboricity_bounds, degeneracy, degeneracy_ordering


@pytest.fixture
def rng():
    return random.Random(141)


def test_tree_degeneracy_is_one(rng):
    g = generators.random_tree(40, rng)
    assert degeneracy(g) == 1


def test_cycle_degeneracy_is_two():
    g = generators.cycle_graph(12)
    assert degeneracy(g) == 2


def test_complete_graph_degeneracy():
    g = generators.complete_graph(8)
    assert degeneracy(g) == 7


def test_edgeless_graph():
    g = Graph(5, [])
    assert degeneracy(g) == 0


def test_ordering_is_a_permutation(rng):
    g = generators.random_connected_graph(30, 90, rng)
    _, order = degeneracy_ordering(g)
    assert sorted(order) == list(range(g.n))


def test_ordering_certifies_degeneracy(rng):
    """Every vertex has at most `degeneracy` neighbors later in the
    elimination order — the defining property."""
    g = generators.random_connected_graph(30, 120, rng)
    d, order = degeneracy_ordering(g)
    position = {v: i for i, v in enumerate(order)}
    adjacency = g.adjacency()
    for v in range(g.n):
        later = sum(1 for u, _ in adjacency[v] if position[u] > position[v])
        assert later <= d


def test_bounds_bracket_density_and_delta(rng):
    """The paper's chain: m/n <= alpha <= Delta, with alpha in our
    [lower, upper] bracket."""
    g = generators.preferential_attachment_graph(100, 3, rng)
    lower, upper = arboricity_bounds(g)
    assert lower <= upper
    assert upper <= g.max_degree
    assert lower >= g.m / g.n - 1e-9 or lower > 0


def test_bounds_on_complete_graph():
    g = generators.complete_graph(10)
    lower, upper = arboricity_bounds(g)
    # alpha(K10) = 5; bracket must contain it.
    assert lower <= 5 <= upper


def test_sparse_graph_small_degeneracy(rng):
    g = generators.random_connected_graph(100, 130, rng)
    assert degeneracy(g) <= 6
