"""Validators accept correct certificates and reject broken ones."""

import math
import random

import pytest

from repro.graph import Graph, generators
from repro.graph.validation import (
    cut_value,
    is_independent_set,
    is_matching,
    is_maximal_independent_set,
    is_maximal_matching,
    is_proper_coloring,
    is_spanning_forest,
    is_spanning_tree,
    spanner_stretch,
    verify_components,
    verify_mst,
    verify_spanner,
)
from repro.local.mst import kruskal


@pytest.fixture
def rng():
    return random.Random(4)


def test_spanning_tree_accepts_tree(rng):
    g = generators.random_connected_graph(12, 25, rng)
    tree = kruskal(g.with_unique_weights(rng))
    assert is_spanning_tree(g, tree)


def test_spanning_tree_rejects_cycle_and_short(rng):
    g = Graph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
    assert not is_spanning_tree(g, [(0, 1), (1, 2), (2, 3), (0, 3)])
    assert not is_spanning_tree(g, [(0, 1), (1, 2)])


def test_spanning_forest_respects_components():
    g = Graph(5, [(0, 1), (1, 2), (3, 4)])
    assert is_spanning_forest(g, [(0, 1), (1, 2), (3, 4)])
    assert not is_spanning_forest(g, [(0, 1), (3, 4)])  # misses vertex 2's tree


def test_spanning_forest_rejects_non_edges():
    g = Graph(4, [(0, 1), (2, 3)])
    assert not is_spanning_forest(g, [(0, 2), (1, 3)])


def test_verify_mst_accepts_and_rejects(rng):
    g = generators.random_connected_graph(15, 40, rng).with_unique_weights(rng)
    mst = kruskal(g)
    assert verify_mst(g, mst)
    # Swap one MST edge for a non-MST edge: same size, wrong weight.
    non_tree = next(e for e in g.edges if (e[0], e[1]) not in {(a, b) for a, b, _ in mst})
    broken = mst[:-1] + [non_tree]
    assert not verify_mst(g, broken)


def test_spanner_stretch_of_full_graph_is_one(rng):
    g = generators.random_connected_graph(12, 30, rng)
    assert spanner_stretch(g, g.edges) == 1.0


def test_spanner_stretch_of_tree():
    g = Graph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
    # Dropping (0,3) forces the 3-hop detour.
    assert spanner_stretch(g, [(0, 1), (1, 2), (2, 3)]) == 3.0


def test_spanner_stretch_disconnected_is_inf():
    g = Graph(3, [(0, 1), (1, 2)])
    assert math.isinf(spanner_stretch(g, [(0, 1)]))


def test_verify_spanner_checks_subgraph(rng):
    g = generators.random_connected_graph(12, 30, rng)
    assert verify_spanner(g, g.edges, stretch=1)
    # Using a non-edge disqualifies the certificate even with huge stretch.
    fake = next(
        (u, v)
        for u in range(g.n)
        for v in range(u + 1, g.n)
        if (u, v) not in g.edge_set()
    )
    assert not verify_spanner(g, list(g.edges) + [fake], stretch=100)


def test_matching_validators():
    g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
    assert is_matching(g, [(0, 1), (2, 3)])
    assert not is_matching(g, [(0, 1), (1, 2)])  # shares vertex 1
    assert not is_matching(g, [(0, 2)])  # not an edge
    assert is_maximal_matching(g, [(0, 1), (2, 3)])
    assert not is_maximal_matching(g, [(1, 2)])  # (3,4) still addable


def test_independent_set_validators():
    g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
    assert is_independent_set(g, [0, 2, 4])
    assert not is_independent_set(g, [0, 1])
    assert is_maximal_independent_set(g, [0, 2, 4])
    assert not is_maximal_independent_set(g, [1])  # 3 or 4 still addable
    assert not is_independent_set(g, [7])  # out of range


def test_coloring_validator():
    g = Graph(3, [(0, 1), (1, 2)])
    assert is_proper_coloring(g, [0, 1, 0])
    assert not is_proper_coloring(g, [0, 0, 1])
    assert not is_proper_coloring(g, [0, 1])  # wrong length
    assert not is_proper_coloring(g, [0, 5, 0], max_colors=3)


def test_cut_value_weighted_and_unweighted():
    g = Graph(4, [(0, 1), (1, 2), (2, 3)])
    assert cut_value(g, {0, 1}) == 1
    gw = Graph(4, [(0, 1, 5), (1, 2, 7), (2, 3, 1)])
    assert cut_value(gw, {0, 1}) == 7


def test_verify_components(rng):
    g = generators.planted_components_graph(20, 3, 10, rng)
    from repro.graph.traversal import component_labels

    assert verify_components(g, component_labels(g))
    wrong = list(component_labels(g))
    wrong[-1] = (wrong[-1] + 1) % g.n
    assert not verify_components(g, wrong)
