"""Union-find, including a hypothesis model check."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import UnionFind


def test_singletons_initially():
    uf = UnionFind(range(5))
    assert uf.num_components == 5
    assert all(uf.find(v) == v for v in range(5))


def test_union_merges_and_reports():
    uf = UnionFind(range(4))
    assert uf.union(0, 1)
    assert not uf.union(1, 0)
    assert uf.connected(0, 1)
    assert not uf.connected(0, 2)
    assert uf.num_components == 3


def test_lazy_element_creation():
    uf = UnionFind()
    uf.union("a", "b")
    assert uf.connected("a", "b")
    assert uf.num_components == 1
    assert len(uf) == 2


def test_component_sizes():
    uf = UnionFind(range(6))
    uf.union(0, 1)
    uf.union(1, 2)
    assert uf.component_size(2) == 3
    assert uf.component_size(5) == 1


def test_groups_partition_everything():
    uf = UnionFind(range(6))
    uf.union(0, 1)
    uf.union(4, 5)
    groups = uf.groups()
    members = sorted(x for group in groups.values() for x in group)
    assert members == list(range(6))
    assert sorted(len(g) for g in groups.values()) == [1, 1, 2, 2]


def test_transitive_chain():
    uf = UnionFind(range(100))
    for v in range(99):
        uf.union(v, v + 1)
    assert uf.num_components == 1
    assert uf.connected(0, 99)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=40),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_matches_naive_partition_model(n, seed):
    """Union-find agrees with a naive set-merging model on random unions."""
    rng = random.Random(seed)
    uf = UnionFind(range(n))
    model = [{v} for v in range(n)]

    def model_find(x):
        for group in model:
            if x in group:
                return group
        raise AssertionError

    for _ in range(n):
        a, b = rng.randrange(n), rng.randrange(n)
        if a == b:
            continue
        ga, gb = model_find(a), model_find(b)
        uf.union(a, b)
        if ga is not gb:
            ga |= gb
            model.remove(gb)

    assert uf.num_components == len(model)
    for group in model:
        root = {uf.find(x) for x in group}
        assert len(root) == 1
