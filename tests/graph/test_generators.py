"""Workload generators produce what they promise."""

import random

import pytest

from repro.graph import generators
from repro.graph.traversal import connected_components, is_connected


@pytest.fixture
def rng():
    return random.Random(99)


def test_gnm_exact_edge_count(rng):
    g = generators.gnm_random_graph(30, 100, rng)
    assert g.n == 30 and g.m == 100
    assert len(g.edge_set()) == 100  # simple


def test_gnm_dense_case(rng):
    g = generators.gnm_random_graph(10, 40, rng)  # > half of max
    assert g.m == 40


def test_gnm_too_many_edges_rejected(rng):
    with pytest.raises(ValueError):
        generators.gnm_random_graph(4, 7, rng)


def test_random_tree_is_spanning_tree(rng):
    g = generators.random_tree(40, rng)
    assert g.m == 39
    assert is_connected(g)


def test_random_connected_graph(rng):
    g = generators.random_connected_graph(25, 60, rng)
    assert g.m == 60
    assert is_connected(g)


def test_random_connected_needs_enough_edges(rng):
    with pytest.raises(ValueError):
        generators.random_connected_graph(10, 8, rng)


def test_cycle_graph_degrees(rng):
    g = generators.cycle_graph(12, rng)
    assert g.m == 12
    assert all(d == 2 for d in g.degrees())
    assert connected_components(g).num_components == 1


def test_two_cycles_structure(rng):
    g = generators.two_cycles(13, rng)
    assert all(d == 2 for d in g.degrees())
    assert connected_components(g).num_components == 2


def test_two_cycles_needs_six_vertices(rng):
    with pytest.raises(ValueError):
        generators.two_cycles(5, rng)


def test_one_or_two_cycles_is_honest(rng):
    for _ in range(6):
        g, cycles = generators.one_or_two_cycles(20, rng)
        assert connected_components(g).num_components == cycles


def test_complete_graph():
    g = generators.complete_graph(6)
    assert g.m == 15
    assert all(d == 5 for d in g.degrees())


def test_grid_graph_shape():
    g = generators.grid_graph(3, 4)
    assert g.n == 12
    assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical
    assert is_connected(g)


def test_preferential_attachment_is_skewed(rng):
    g = generators.preferential_attachment_graph(150, 3, rng)
    degrees = sorted(g.degrees())
    assert is_connected(g)
    assert degrees[-1] > 3 * degrees[len(degrees) // 2]  # heavy tail


def test_preferential_attachment_validation(rng):
    with pytest.raises(ValueError):
        generators.preferential_attachment_graph(3, 3, rng)


def test_planted_components_exact_count(rng):
    g = generators.planted_components_graph(50, 5, 30, rng)
    assert connected_components(g).num_components == 5


def test_planted_cut_value(rng):
    from repro.local.mincut import min_cut_value

    g = generators.planted_cut_graph(30, 2, 4.0, rng)
    assert is_connected(g)
    # The planted cut gives an upper bound; the true min cut is at most 2.
    assert min_cut_value(g.n, g.edges) <= 2


def test_random_bipartite_sides(rng):
    g = generators.random_bipartite_graph(8, 12, 40, rng)
    assert g.n == 20 and g.m == 40
    for u, v in g.edges:
        assert (u < 8) != (v < 8)


def test_weighted_helper_assigns_unique_weights(rng):
    g = generators.weighted(generators.cycle_graph(10), rng)
    assert sorted(e[2] for e in g.edges) == list(range(1, 11))


def test_generators_are_reproducible():
    a = generators.gnm_random_graph(20, 50, random.Random(7))
    b = generators.gnm_random_graph(20, 50, random.Random(7))
    assert a.edges == b.edges


# ----------------------------------------------------------------------
# The five workload-matrix families (see repro.experiments registry)
# ----------------------------------------------------------------------

def test_torus_graph_is_4_regular(rng):
    g = generators.torus_graph(5, 7)
    assert g.n == 35 and g.m == 2 * 35  # every vertex has degree 4
    assert set(g.degrees()) == {4}
    assert is_connected(g)


def test_torus_graph_rejects_thin_dimensions():
    with pytest.raises(ValueError):
        generators.torus_graph(2, 5)
    with pytest.raises(ValueError):
        generators.torus_graph(5, 2)


def test_power_law_graph_has_skewed_degrees(rng):
    g = generators.power_law_graph(300, rng, exponent=2.5, avg_degree=4.0)
    degrees = sorted(g.degrees())
    # Mean degree lands near the requested value...
    assert 2.0 <= g.average_degree <= 6.0
    # ...with a heavy tail: the max dwarfs the median.
    assert degrees[-1] >= 3 * max(1, degrees[len(degrees) // 2])


def test_power_law_graph_validation(rng):
    with pytest.raises(ValueError):
        generators.power_law_graph(20, rng, exponent=2.0)
    with pytest.raises(ValueError):
        generators.power_law_graph(1, rng)


def test_planted_community_graph_connected_and_modular(rng):
    communities = 5
    g = generators.planted_community_graph(100, communities, 0.4, 8, rng)
    assert is_connected(g)
    # Intra-community edges dominate: membership is id * c // n.
    intra = sum(
        1 for u, v in g.edges
        if u * communities // g.n == v * communities // g.n
    )
    assert intra > 2 * (g.m - intra)


def test_planted_community_graph_validation(rng):
    with pytest.raises(ValueError):
        generators.planted_community_graph(10, 6, 0.5, 0, rng)


def test_multi_component_graph_exact_components(rng):
    g = generators.multi_component_graph(90, 4, 4.0, rng)
    assert g.n == 90
    assert connected_components(g).num_components == 4
    # Denser than the tree-based planted_components family.
    assert g.m > g.n


def test_multi_component_graph_validation(rng):
    with pytest.raises(ValueError):
        generators.multi_component_graph(10, 4, 3.0, rng)


def test_near_clique_graph_dense_and_connected(rng):
    n, missing = 20, 12
    g = generators.near_clique_graph(n, missing, rng)
    assert g.m == n * (n - 1) // 2 - missing
    assert is_connected(g)  # guaranteed: missing < n - 1
    assert min(g.degrees()) >= n - 1 - missing


def test_near_clique_graph_validation(rng):
    with pytest.raises(ValueError):
        generators.near_clique_graph(5, 11, rng)
    assert generators.near_clique_graph(5, 0, rng).m == 10
