"""Graph type invariants."""

import random

import pytest

from repro.graph import Graph, canonical_edge


def test_canonical_edge_sorts_endpoints():
    assert canonical_edge(5, 2) == (2, 5)
    assert canonical_edge(2, 5, 7) == (2, 5, 7)


def test_canonical_edge_rejects_self_loop():
    with pytest.raises(ValueError):
        canonical_edge(3, 3)


def test_edges_are_canonicalized():
    g = Graph(4, [(3, 1), (2, 0)])
    assert g.edges == [(1, 3), (0, 2)]


def test_duplicate_edges_rejected():
    with pytest.raises(ValueError):
        Graph(4, [(0, 1), (1, 0)])


def test_out_of_range_edges_rejected():
    with pytest.raises(ValueError):
        Graph(3, [(0, 3)])


def test_weighted_flag_inferred():
    assert Graph(3, [(0, 1, 5)]).weighted
    assert not Graph(3, [(0, 1)]).weighted


def test_mixed_arity_rejected():
    with pytest.raises(ValueError):
        Graph(4, [(0, 1), (1, 2, 9)])


def test_adjacency_symmetric_and_weighted():
    g = Graph(3, [(0, 1, 5), (1, 2, 7)])
    adj = g.adjacency()
    assert (1, 5) in adj[0]
    assert (0, 5) in adj[1]
    assert (2, 7) in adj[1]


def test_degrees_and_extremes():
    g = Graph(4, [(0, 1), (0, 2), (0, 3)])
    assert g.degrees() == [3, 1, 1, 1]
    assert g.max_degree == 3
    assert g.average_degree == pytest.approx(1.5)


def test_has_edge_and_edge_set():
    g = Graph(4, [(0, 2)])
    assert g.has_edge(2, 0)
    assert not g.has_edge(1, 3)
    assert g.edge_set() == {(0, 2)}


def test_weight_map_requires_weights():
    g = Graph(3, [(0, 1)])
    with pytest.raises(ValueError):
        g.weight_map()
    weighted = Graph(3, [(0, 1, 9)])
    assert weighted.weight_map() == {(0, 1): 9}


def test_total_weight():
    assert Graph(3, [(0, 1, 4), (1, 2, 6)]).total_weight() == 10
    assert Graph(3, [(0, 1), (1, 2)]).total_weight() == 2


def test_unweighted_strips_weights():
    g = Graph(3, [(0, 1, 4)]).unweighted()
    assert not g.weighted
    assert g.edges == [(0, 1)]


def test_with_unique_weights_is_permutation():
    rng = random.Random(0)
    g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).with_unique_weights(rng)
    weights = sorted(e[2] for e in g.edges)
    assert weights == [1, 2, 3, 4]


def test_induced_subgraph_keeps_ids():
    g = Graph(5, [(0, 1), (1, 2), (3, 4)])
    sub = g.induced_subgraph([0, 1, 2])
    assert sub.n == 5
    assert sub.edge_set() == {(0, 1), (1, 2)}


def test_edge_subgraph():
    g = Graph(4, [(0, 1), (1, 2), (2, 3)])
    sub = g.edge_subgraph([(1, 2)])
    assert sub.edge_set() == {(1, 2)}


def test_empty_weighted_graph_needs_flag():
    g = Graph(3, [], weighted=True)
    assert g.weighted
    assert g.m == 0
