"""BFS, Dijkstra, components, diameter."""

import math
import random

from repro.graph import Graph, generators
from repro.graph.traversal import (
    all_pairs_distances,
    bfs_distances,
    component_labels,
    connected_components,
    dijkstra,
    graph_diameter,
    is_connected,
    single_source_distances,
)


def path_graph(n: int, weights=None) -> Graph:
    if weights is None:
        return Graph(n, [(i, i + 1) for i in range(n - 1)])
    return Graph(n, [(i, i + 1, w) for i, w in zip(range(n - 1), weights)])


def test_bfs_on_path():
    g = path_graph(5)
    assert bfs_distances(g, 0) == [0, 1, 2, 3, 4]
    assert bfs_distances(g, 2) == [2, 1, 0, 1, 2]


def test_bfs_unreachable_is_inf():
    g = Graph(4, [(0, 1)])
    dist = bfs_distances(g, 0)
    assert dist[1] == 1
    assert math.isinf(dist[2]) and math.isinf(dist[3])


def test_dijkstra_prefers_lighter_detour():
    g = Graph(3, [(0, 1, 10), (0, 2, 1), (1, 2, 2)])
    assert dijkstra(g, 0) == [0, 3, 1]


def test_dijkstra_matches_bfs_when_weights_are_one():
    rng = random.Random(1)
    base = generators.random_connected_graph(25, 60, rng)
    weighted = Graph(base.n, [(u, v, 1) for u, v in base.edges])
    for s in (0, 7, 19):
        assert dijkstra(weighted, s) == bfs_distances(base, s)


def test_single_source_dispatches_on_weightedness():
    g = path_graph(4)
    gw = path_graph(4, weights=[5, 5, 5])
    assert single_source_distances(g, 0)[3] == 3
    assert single_source_distances(gw, 0)[3] == 15


def test_all_pairs_is_symmetric():
    rng = random.Random(2)
    g = generators.random_connected_graph(15, 30, rng)
    dist = all_pairs_distances(g)
    for u in range(g.n):
        for v in range(g.n):
            assert dist[u][v] == dist[v][u]


def test_connected_components_counts():
    g = Graph(6, [(0, 1), (2, 3)])
    assert connected_components(g).num_components == 4  # {0,1},{2,3},{4},{5}
    assert not is_connected(g)
    assert is_connected(path_graph(4))


def test_component_labels_are_canonical_minimums():
    g = Graph(6, [(4, 5), (1, 2)])
    assert component_labels(g) == [0, 1, 1, 3, 4, 4]


def test_diameter_of_path_and_cycle():
    assert graph_diameter(path_graph(6)) == 5
    rng = random.Random(3)
    cycle = generators.cycle_graph(8)
    assert graph_diameter(cycle) == 4


def test_diameter_disconnected_is_inf():
    assert math.isinf(graph_diameter(Graph(3, [(0, 1)])))
