"""Cluster construction, exchange semantics, capacity accounting."""

import random

import pytest

from repro.mpc import (
    Cluster,
    CommunicationLimitExceeded,
    MemoryLimitExceeded,
    ModelConfig,
    ProtocolError,
)


def make_cluster(strict: bool = False, **kw) -> Cluster:
    config = ModelConfig.heterogeneous(n=64, m=256, strict=strict, **kw)
    return Cluster(config, rng=random.Random(0))


def test_machine_counts_match_config():
    cluster = make_cluster()
    assert len(cluster.smalls) == cluster.config.num_small
    assert len(cluster.larges) == 1
    assert cluster.large.is_large


def test_sublinear_cluster_has_no_large():
    config = ModelConfig.sublinear(n=64, m=256)
    cluster = Cluster(config)
    assert not cluster.has_large
    with pytest.raises(ProtocolError):
        _ = cluster.large


def test_exchange_delivers_messages_and_counts_a_round():
    cluster = make_cluster()
    inboxes = cluster.exchange([(0, 1, "hello"), (0, 2, (1, 2))], note="t")
    assert inboxes[1] == ["hello"]
    assert inboxes[2] == [(1, 2)]
    assert cluster.ledger.rounds == 1


def test_exchange_to_unknown_machine_raises():
    cluster = make_cluster()
    with pytest.raises(ProtocolError):
        cluster.exchange([(0, 10**6, "x")])


def test_exchange_records_volumes():
    cluster = make_cluster()
    cluster.exchange([(0, 1, (1, 2, 3)), (2, 1, (4, 5, 6))])
    record = cluster.ledger.records[-1]
    assert record.total_words == 6
    assert record.max_received == 6
    assert record.max_sent == 3


def test_strict_mode_raises_on_capacity_violation():
    cluster = make_cluster(strict=True)
    capacity = cluster.smalls[1].capacity
    payload = [0] * (capacity + 1)
    with pytest.raises(CommunicationLimitExceeded):
        cluster.exchange([(0, 1, payload)])


def test_recording_mode_records_violation_instead():
    cluster = make_cluster(strict=False)
    capacity = cluster.smalls[1].capacity
    cluster.exchange([(0, 1, [0] * (capacity + 1))])
    assert len(cluster.ledger.violations) >= 1


def test_gather_concentrates_items():
    cluster = make_cluster()
    large = cluster.large.machine_id
    got = cluster.gather(large, {0: [1, 2], 1: [3]}, note="g")
    assert sorted(got) == [1, 2, 3]
    assert cluster.ledger.rounds == 1


def test_scatter_distributes_items():
    cluster = make_cluster()
    large = cluster.large.machine_id
    inboxes = cluster.scatter(large, {0: ["a"], 1: ["b", "c"]})
    assert inboxes[0] == ["a"]
    assert sorted(inboxes[1]) == ["b", "c"]


def test_distribute_edges_places_everything_and_charges_no_rounds():
    cluster = make_cluster()
    edges = [(i, i + 1) for i in range(50)]
    cluster.distribute_edges(edges, name="e")
    assert sorted(cluster.all_items("e")) == sorted(edges)
    assert cluster.ledger.rounds == 0


def test_distribute_edges_is_balanced():
    cluster = make_cluster()
    edges = [(i, i + 1) for i in range(60)]
    cluster.distribute_edges(edges, name="e")
    counts = [len(m.get("e", [])) for m in cluster.smalls]
    assert max(counts) - min(counts) <= 1


def test_distribute_edges_without_small_machines_raises():
    cluster = make_cluster()
    cluster.smalls = []
    with pytest.raises(ProtocolError):
        cluster.distribute_edges([(1, 2)], name="e")


def test_map_small_applies_local_transform():
    cluster = make_cluster()
    cluster.distribute_edges([(1, 2), (3, 4), (5, 6)], name="e")
    rounds_before = cluster.ledger.rounds
    cluster.map_small("e", lambda machine, items: [(v, u) for u, v in items])
    assert cluster.ledger.rounds == rounds_before  # local work is free
    assert sorted(cluster.all_items("e")) == [(2, 1), (4, 3), (6, 5)]


def test_memory_high_water_is_recorded_after_rounds():
    cluster = make_cluster()
    cluster.distribute_edges([(1, 2)] * 10, name="e")
    cluster.exchange([(0, 1, "ping")])
    assert max(cluster.ledger.memory_high_water.values()) > 0


# ----------------------------------------------------------------------
# Gather / scatter / all_items edge cases
# ----------------------------------------------------------------------
def test_gather_with_all_empty_sources_charges_no_round():
    cluster = make_cluster()
    large = cluster.large.machine_id
    got = cluster.gather(large, {0: [], 1: []}, note="g")
    assert got == []
    assert cluster.ledger.rounds == 0


def test_gather_skips_empty_sources_in_accounting():
    cluster = make_cluster()
    large = cluster.large.machine_id
    got = cluster.gather(large, {0: [], 1: [7], 2: []}, note="g")
    assert got == [7]
    record = cluster.ledger.records[-1]
    assert record.total_words == 1
    assert record.max_sent == 1


def test_scatter_with_empty_destinations_charges_no_round():
    cluster = make_cluster()
    large = cluster.large.machine_id
    assert cluster.scatter(large, {}) == {}
    assert cluster.scatter(large, {0: [], 1: []}) == {}
    assert cluster.ledger.rounds == 0


def test_gather_works_without_a_large_machine():
    config = ModelConfig.sublinear(n=64, m=256)
    cluster = Cluster(config, rng=random.Random(0))
    dst = cluster.small_ids[0]
    got = cluster.gather(dst, {cluster.small_ids[1]: ["x"],
                               cluster.small_ids[2]: ["y"]})
    assert sorted(got) == ["x", "y"]
    assert cluster.ledger.rounds == 1


def test_scatter_works_without_a_large_machine():
    config = ModelConfig.sublinear(n=64, m=256)
    cluster = Cluster(config, rng=random.Random(0))
    src = cluster.small_ids[0]
    inboxes = cluster.scatter(src, {cluster.small_ids[1]: ["a"]})
    assert inboxes[cluster.small_ids[1]] == ["a"]


def test_all_items_of_unknown_dataset_is_empty():
    cluster = make_cluster()
    assert cluster.all_items("never-placed") == []


def test_all_items_preserves_machine_order():
    cluster = make_cluster()
    cluster.smalls[0].put("d", [1, 2])
    cluster.smalls[2].put("d", [3])
    assert cluster.all_items("d") == [1, 2, 3]


def test_map_small_on_empty_datasets_is_a_noop():
    cluster = make_cluster()
    cluster.map_small("missing", lambda machine, items: list(items))
    assert cluster.all_items("missing") == []
    assert cluster.ledger.rounds == 0


# ----------------------------------------------------------------------
# Memory honesty
# ----------------------------------------------------------------------
def test_strict_mode_raises_when_small_machine_exceeds_small_capacity():
    """The model's second budget: a small machine hoarding more than
    ``small_capacity`` words must trip strict mode."""
    config = ModelConfig.heterogeneous(n=64, m=256, strict=True)
    cluster = Cluster(config, rng=random.Random(0))
    small = cluster.smalls[0]
    with pytest.raises(MemoryLimitExceeded):
        small.put("hoard", [0] * (config.small_capacity + 1))


def test_strict_mode_raises_at_round_if_memory_exceeded():
    """Even state smuggled past ``put`` (in-place growth without touch) is
    caught by the per-round memory check of ``execute``."""
    cluster = make_cluster(strict=True)
    small = cluster.smalls[0]
    blob = [0] * (small.capacity + 1)
    small._store["hoard"] = blob  # bypass put() on purpose
    small._sizes["hoard"] = len(blob)
    with pytest.raises(MemoryLimitExceeded):
        cluster.exchange([(1, 2, "ping")])
    assert cluster.ledger.rounds == 0  # raised before the round was recorded


def test_nonstrict_mode_records_memory_violation_per_round():
    cluster = make_cluster(strict=False)
    small = cluster.smalls[0]
    small.put("hoard", [0] * (small.capacity + 5))
    cluster.exchange([(1, 2, "ping")], note="r1")
    cluster.exchange([(1, 2, "ping")], note="r2")
    memory_violations = [
        v for v in cluster.ledger.violations if "memory capacity" in v
    ]
    # Recorded once per round while the hoard persists, mirroring the
    # communication violations.
    assert len(memory_violations) == 2
    assert f"machine {small.machine_id} holds" in memory_violations[0]
    assert memory_violations[0] in cluster.ledger.records[0].violations
    assert cluster.ledger.summary()["violations"] == 2
    # Freeing the scratch state clears the signal.
    small.pop("hoard")
    cluster.exchange([(1, 2, "ping")], note="r3")
    assert len(cluster.ledger.records[2].violations) == 0


def test_oversized_input_placement_is_recorded():
    config = ModelConfig.heterogeneous(n=64, m=256)
    cluster = Cluster(config, rng=random.Random(1))
    per_machine = config.small_capacity + 8
    edges = [(0, 1)] * ((per_machine // 2) * config.num_small)
    cluster.distribute_edges(edges, name="e")
    assert any("memory capacity" in v for v in cluster.ledger.violations)


# ----------------------------------------------------------------------
# Placement stability
# ----------------------------------------------------------------------
def test_distribute_edges_placement_is_stable_against_rng_use():
    """Regression: the shuffle used to draw from the shared ``self.rng``,
    so any unrelated earlier RNG use shifted input placement."""
    edges = [(i, i + 1) for i in range(40)]

    def placement(burn_draws: int) -> list[list]:
        cluster = Cluster(ModelConfig.heterogeneous(n=64, m=256),
                          rng=random.Random(42))
        for _ in range(burn_draws):
            cluster.rng.random()  # unrelated earlier RNG use
        cluster.distribute_edges(edges, name="e")
        return [m.get("e", []) for m in cluster.smalls]

    assert placement(0) == placement(1) == placement(17)


def test_distribute_edges_placement_depends_on_cluster_seed():
    edges = [(i, i + 1) for i in range(40)]

    def placement(seed: int) -> list[list]:
        cluster = Cluster(ModelConfig.heterogeneous(n=64, m=256),
                          rng=random.Random(seed))
        cluster.distribute_edges(edges, name="e")
        return [m.get("e", []) for m in cluster.smalls]

    assert placement(1) != placement(2)  # still randomized across seeds
    assert placement(3) == placement(3)  # and reproducible per seed
