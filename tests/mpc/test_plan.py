"""RoundPlan builder and the batched execute path."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpc import (
    Cluster,
    CommunicationLimitExceeded,
    ModelConfig,
    ProtocolError,
    RoundPlan,
)


def make_cluster(strict: bool = False, **kw) -> Cluster:
    config = ModelConfig.heterogeneous(n=64, m=256, strict=strict, **kw)
    return Cluster(config, rng=random.Random(0))


# ----------------------------------------------------------------------
# Builder semantics
# ----------------------------------------------------------------------
def test_send_groups_by_route():
    plan = RoundPlan()
    plan.send(0, 1, "a").send(0, 1, "b").send(0, 2, "c")
    assert plan.routes() == 2
    assert plan.item_count() == 3
    assert len(plan) == 3
    assert list(plan.batches()) == [(0, 1, ["a", "b"]), (0, 2, ["c"])]


def test_send_batch_merges_with_send():
    plan = RoundPlan()
    plan.send(3, 4, 10)
    plan.send_batch(3, 4, [20, 30])
    assert list(plan.batches()) == [(3, 4, [10, 20, 30])]


def test_empty_sends_create_no_routes():
    plan = RoundPlan()
    plan.send(0, 1)
    plan.send_batch(0, 1, [])
    assert plan.is_empty
    assert plan.routes() == 0


def test_send_batch_copies_its_input():
    items = [1, 2]
    plan = RoundPlan()
    plan.send_batch(0, 1, items)
    items.append(3)
    assert list(plan.batches()) == [(0, 1, [1, 2])]


def test_extend_absorbs_legacy_messages():
    plan = RoundPlan().extend([(0, 1, "x"), (2, 1, "y"), (0, 1, "z")])
    assert list(plan.batches()) == [(0, 1, ["x", "z"]), (2, 1, ["y"])]


def test_messages_flattens_back():
    plan = RoundPlan()
    plan.send_batch(0, 1, ["a", "b"])
    plan.send(2, 3, "c")
    assert list(plan.messages()) == [(0, 1, "a"), (0, 1, "b"), (2, 3, "c")]


# ----------------------------------------------------------------------
# Execute semantics
# ----------------------------------------------------------------------
def test_execute_delivers_batches_and_counts_one_round():
    cluster = make_cluster()
    plan = RoundPlan(note="t")
    plan.send_batch(0, 1, [(1, 2), (3, 4)])
    plan.send(0, 2, "hello")
    inboxes = cluster.execute(plan)
    assert inboxes[1] == [(1, 2), (3, 4)]
    assert inboxes[2] == ["hello"]
    assert cluster.ledger.rounds == 1


def test_execute_charges_bulk_word_sizes():
    cluster = make_cluster()
    plan = RoundPlan(note="w")
    plan.send_batch(0, 1, [(1, 2, 3), (4, 5, 6)])  # 6 words
    plan.send(2, 1, (7, 8))  # 2 words
    cluster.execute(plan)
    record = cluster.ledger.records[-1]
    assert record.total_words == 8
    assert record.max_sent == 6
    assert record.max_received == 8
    assert record.items == 3


def test_execute_matches_exchange_accounting():
    """The compatibility contract: both paths charge identical rounds,
    words, volumes and violations for the same traffic."""
    rng = random.Random(9)
    traffic = [
        (rng.randrange(4), 4 + rng.randrange(4), (rng.randrange(100), rng.randrange(100)))
        for _ in range(500)
    ]
    via_exchange = make_cluster()
    via_exchange.exchange(list(traffic), note="n")
    via_plan = make_cluster()
    plan = RoundPlan(note="n")
    for src, dst, payload in traffic:
        plan.send(src, dst, payload)
    inboxes = via_plan.execute(plan)

    a, b = via_exchange.ledger.records[-1], via_plan.ledger.records[-1]
    assert (a.total_words, a.max_sent, a.max_received) == (
        b.total_words,
        b.max_sent,
        b.max_received,
    )
    assert set(a.violations) == set(b.violations)
    # Source-major traffic also sees identical inbox ordering.
    assert inboxes == via_exchange.exchange(list(traffic), note="n")


def test_execute_unknown_machine_raises():
    cluster = make_cluster()
    plan = RoundPlan().send(0, 10**6, "x")
    with pytest.raises(ProtocolError):
        cluster.execute(plan)


def test_execute_strict_raises_before_recording():
    cluster = make_cluster(strict=True)
    capacity = cluster.smalls[1].capacity
    plan = RoundPlan(note="burst")
    plan.send_batch(0, 1, [0] * (capacity + 1))
    with pytest.raises(CommunicationLimitExceeded):
        cluster.execute(plan)
    assert cluster.ledger.rounds == 0


def test_empty_plan_is_a_noop():
    """Regression: a plan that moves no data must not burn a ledger round.

    (An empty ``exchange([])`` / all-empty-batches plan used to charge a
    0-word round.)
    """
    cluster = make_cluster()
    assert cluster.execute(RoundPlan(note="sync")) == {}
    assert cluster.exchange([]) == {}
    plan = RoundPlan(note="hollow")
    plan.send(0, 1)
    plan.send_batch(2, 3, [])
    assert cluster.execute(plan) == {}
    assert cluster.ledger.rounds == 0
    assert cluster.ledger.records == []
    # Explicitly charged synchronization rounds remain available.
    cluster.ledger.charge(1, note="sync")
    assert cluster.ledger.rounds == 1


def test_interleaved_sources_preserve_send_order():
    """Non-source-major traffic: inboxes arrive in exact send-call order,
    matching the historical per-message engine."""
    cluster = make_cluster()
    messages = [(0, 5, "a"), (1, 5, "b"), (0, 5, "c"), (2, 6, "d"), (0, 6, "e")]
    inboxes = cluster.exchange(list(messages), note="i")
    assert inboxes[5] == ["a", "b", "c"]
    assert inboxes[6] == ["d", "e"]


@given(
    messages=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),   # src
            st.integers(min_value=0, max_value=5),   # dst
            st.integers(min_value=-100, max_value=100),
        ),
        max_size=60,
    )
)
@settings(max_examples=60, deadline=None)
def test_execute_and_exchange_match_per_message_inbox_order(messages):
    """Property: for arbitrary (non-source-major) message lists, the
    batched ``execute`` path and the ``exchange`` wrapper both deliver the
    exact inbox ordering of the historical per-message engine (payloads
    appended in message-list order)."""
    expected: dict[int, list] = {}
    for _, dst, payload in messages:
        expected.setdefault(dst, []).append(payload)

    via_exchange = make_cluster()
    assert via_exchange.exchange(list(messages), note="p") == expected

    via_plan = make_cluster()
    plan = RoundPlan(note="p")
    for src, dst, payload in messages:
        plan.send(src, dst, payload)
    assert via_plan.execute(plan) == expected

    records = via_exchange.ledger.records
    assert [r.total_words for r in records] == [
        r.total_words for r in via_plan.ledger.records
    ]


# ----------------------------------------------------------------------
# Columnar storage: run growth, slicing boundaries, the sizing cache
# ----------------------------------------------------------------------
def test_contiguous_sends_extend_the_open_run():
    plan = RoundPlan()
    plan.send(0, 1, "a")
    plan.send_batch(0, 1, ["b", "c"])
    plan.send(0, 1, "d", "e")
    assert plan.run_count() == 1
    assert list(plan.runs()) == [(0, 1, ["a", "b", "c", "d", "e"])]


def test_interleaved_routes_split_runs_but_aggregate_per_route():
    plan = RoundPlan()
    plan.send(0, 1, "a")
    plan.send(2, 5, "b")
    plan.send(0, 1, "c")
    # The flat store is no longer contiguous for route (0, 1): two runs.
    assert plan.run_count() == 3
    assert plan.routes() == 2
    assert list(plan.batches()) == [(0, 1, ["a", "c"]), (2, 5, ["b"])]
    # Delivery still sees exact send order.
    assert dict(plan.deliveries()) == {1: ["a", "c"], 5: ["b"]}


def test_run_slices_respect_boundaries():
    """Slicing must not bleed across neighbouring runs in the flat store."""
    plan = RoundPlan()
    for index in range(10):
        plan.send_batch(index % 3, 7, [index] * (index + 1))
    runs = list(plan.runs())
    flattened = [item for _, _, items in runs for item in items]
    assert flattened == [i for i in range(10) for _ in range(i + 1)]
    assert [len(items) for _, _, items in runs] == [
        1, 2, 3, 4, 5, 6, 7, 8, 9, 10
    ]
    assert plan.item_count() == 55


def test_run_words_cache_is_invalidated_by_later_sends():
    plan = RoundPlan()
    plan.send_batch(0, 1, [(1, 2, 3)])
    first = plan.run_words()
    assert first == [3]
    assert plan.run_words() is first  # cached
    plan.send(0, 1, (4, 5))
    assert plan.run_words() == [5]   # recomputed after growth
    plan.send(2, 3, "abcdefgh")
    assert plan.run_words() == [5, 2]


def test_run_meta_parallel_arrays_are_consistent():
    plan = RoundPlan()
    plan.send_batch(0, 4, [1, 2, 3])
    plan.send_batch(1, 4, [(5, 6)])
    srcs, dsts, lens, words = plan.run_meta()
    assert srcs == [0, 1]
    assert dsts == [4, 4]
    assert lens == [3, 1]
    assert words == [3, 2]


def test_send_indexed_object_path_groups_stably():
    plan = RoundPlan()
    plan.send_indexed(0, [5, 3, 5, 3, 5], ["a", "b", "c", "d", "e"])
    assert list(plan.runs()) == [(0, 3, ["b", "d"]), (0, 5, ["a", "c", "e"])]
    assert plan.item_count() == 5
    assert dict(plan.deliveries()) == {3: ["b", "d"], 5: ["a", "c", "e"]}


def test_send_indexed_empty_and_mismatched():
    plan = RoundPlan()
    plan.send_indexed(0, [], [])
    assert plan.is_empty
    with pytest.raises(ValueError):
        plan.send_indexed(0, [1, 2], ["only-one"])


def test_send_indexed_executes_like_send_batch():
    via_indexed = make_cluster()
    plan = via_indexed.plan(note="x")
    plan.send_indexed(0, [1, 2, 1], [(1, 2), (3, 4), (5, 6)])
    via_indexed.execute(plan)

    via_batch = make_cluster()
    plan = RoundPlan(note="x")
    plan.send_batch(0, 1, [(1, 2), (5, 6)])
    plan.send_batch(0, 2, [(3, 4)])
    via_batch.execute(plan)

    a = via_indexed.ledger.records[-1]
    b = via_batch.ledger.records[-1]
    assert (a.total_words, a.max_sent, a.max_received, a.items) == (
        b.total_words, b.max_sent, b.max_received, b.items
    )


def test_cluster_plan_wires_the_engine_backend():
    cluster = make_cluster()
    plan = cluster.plan(note="wired")
    assert plan.backend is cluster.engine_backend
    assert plan.note == "wired"


def test_execute_records_note_stats():
    cluster = make_cluster()
    plan = RoundPlan(note="hot")
    plan.send_batch(0, 1, [1, 2, 3])
    cluster.execute(plan)
    cluster.execute(RoundPlan(note="hot").send(2, 3, (1, 2)))
    stats = cluster.ledger.note_stats["hot"]
    assert stats.rounds == 2
    assert stats.total_words == 5
    assert stats.items == 4
    assert stats.elapsed >= 0.0
    assert cluster.ledger.wall_time >= stats.elapsed
    assert cluster.ledger.hottest_notes()[0][0] == "hot"


def test_note_stats_respect_ledger_sections():
    cluster = make_cluster()
    with cluster.ledger.section("phase-a"):
        cluster.execute(RoundPlan(note="x").send(0, 1, 1))
    assert "phase-a / x" in cluster.ledger.note_stats
