"""The adaptive throttling layer: estimator, policy, controller, splitting."""

import random

import pytest

from repro.mpc import (
    CapacityExceeded,
    Cluster,
    CommunicationLimitExceeded,
    MemoryLimitExceeded,
    ModelConfig,
    PeakHoldLoadEstimator,
    ThrottleController,
    ThrottlePolicy,
    Violation,
)
from repro.mpc.plan import RoundPlan
from repro.mpc.words import word_size

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised on minimal installs
    np = None


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------
def test_policy_defaults_are_off():
    policy = ThrottlePolicy()
    assert policy.mode == "off"
    assert not policy.enabled
    assert not policy.enforcing


@pytest.mark.parametrize("mode,enabled,enforcing", [
    ("off", False, False),
    ("advise", True, False),
    ("enforce", True, True),
])
def test_policy_mode_flags(mode, enabled, enforcing):
    policy = ThrottlePolicy(mode=mode)
    assert policy.enabled is enabled
    assert policy.enforcing is enforcing


@pytest.mark.parametrize("kw", [
    {"mode": "on"},
    {"headroom": 0.0},
    {"headroom": 1.5},
    {"window": 0},
    {"min_fanout": 1},
    {"min_scale": 0.0},
    {"min_scale": 2.0},
])
def test_policy_validation(kw):
    with pytest.raises(ValueError):
        ThrottlePolicy(**kw)


def test_config_with_throttle_shorthand():
    config = ModelConfig.heterogeneous(n=64, m=256)
    assert config.throttle.mode == "off"
    enforced = config.with_throttle("enforce", headroom=0.8)
    assert enforced.throttle.mode == "enforce"
    assert enforced.throttle.headroom == 0.8
    assert config.throttle.mode == "off"  # original untouched

    policy = ThrottlePolicy(mode="advise")
    assert config.with_throttle(policy).throttle is policy
    with pytest.raises(TypeError):
        config.with_throttle(policy, headroom=0.8)


# ----------------------------------------------------------------------
# Estimator
# ----------------------------------------------------------------------
def test_estimator_peak_hold_and_window_eviction():
    est = PeakHoldLoadEstimator(window=3)
    assert est.predicted_traffic == 0.0
    for frac in (0.2, 0.9, 0.3):
        est.observe(frac)
    assert est.predicted_traffic == 0.9
    est.observe(0.1)  # evicts 0.2 — peak 0.9 still held
    assert est.predicted_traffic == 0.9
    est.observe(0.1)
    est.observe(0.1)  # 0.9 evicted
    assert est.predicted_traffic == pytest.approx(0.1)


def test_estimator_tracks_memory_separately():
    est = PeakHoldLoadEstimator(window=4)
    est.observe(0.1, memory_frac=0.8)
    est.observe(0.5, memory_frac=0.2)
    assert est.predicted_traffic == 0.5
    assert est.predicted_memory == 0.8


def test_estimator_from_ledger_replays_records():
    config = ModelConfig.heterogeneous(n=64, m=256)
    cluster = Cluster(config, rng=random.Random(0))
    cluster.exchange([(0, 1, (1, 2, 3))], note="a")
    cluster.exchange([(0, 1, (1,) * 10)], note="b")
    capacity = cluster.smalls[0].capacity
    est = PeakHoldLoadEstimator.from_ledger(cluster.ledger, capacity)
    assert est.observations == 2
    assert est.predicted_traffic == pytest.approx(10 / capacity)


# ----------------------------------------------------------------------
# Controller hooks
# ----------------------------------------------------------------------
def _controller(mode="enforce", **kw) -> ThrottleController:
    return ThrottleController(ThrottlePolicy(mode=mode, **kw), {0: 100, 1: 100})


def test_scale_is_unity_inside_headroom():
    controller = _controller()
    controller.observe(0.5, 0.0)
    assert controller.scale() == 1.0
    assert controller.fanout(8) == 8
    assert controller.sample_rate(0.5) == 0.5
    assert not controller.events


def test_scale_shrinks_proportionally_past_headroom():
    controller = _controller()
    controller.observe(1.8, 0.0)
    assert controller.scale() == pytest.approx(0.5)
    assert controller.fanout(8) == 4
    assert controller.sample_rate(0.8) == pytest.approx(0.4)
    assert {e.kind for e in controller.events} == {"fanout", "sample_rate"}
    assert all(e.applied for e in controller.events)


def test_scale_floors_at_min_scale_and_min_fanout():
    controller = _controller(min_scale=0.25, min_fanout=2)
    controller.observe(100.0, 0.0)
    assert controller.scale() == 0.25
    assert controller.fanout(4) == 2


def test_advise_mode_records_but_returns_base():
    controller = _controller(mode="advise")
    controller.observe(1.8, 0.0)
    assert controller.fanout(8) == 8
    assert controller.sample_rate(0.8) == 0.8
    assert len(controller.events) == 2
    assert not any(e.applied for e in controller.events)


def test_memory_pressure_does_not_scale_traffic():
    # Splitting cannot shrink resident state: the scale responds to the
    # traffic forecast only, memory is surfaced via overload/note_bank.
    controller = _controller()
    controller.observe(0.2, 5.0)
    assert controller.scale() == 1.0
    assert controller.overload_rounds == 1


def test_note_bank_records_advisory_event():
    controller = _controller()
    controller.note_bank(95, 100, note="bank")
    controller.note_bank(10, 100, note="small")
    kinds = [e.kind for e in controller.events]
    assert kinds == ["bank"]
    assert not controller.events[0].applied


def test_observe_tracks_run_peaks():
    controller = _controller()
    controller.observe(0.4, 0.1)
    controller.observe(1.3, 0.2)
    controller.observe(0.2, 0.05)
    assert controller.peak_traffic_frac == pytest.approx(1.3)
    assert controller.peak_memory_frac == pytest.approx(0.2)
    summary = controller.summary()
    assert summary["peak_traffic_frac"] == pytest.approx(1.3)
    assert summary["overload_rounds"] == 1


# ----------------------------------------------------------------------
# Plan splitting
# ----------------------------------------------------------------------
def _plan_words(plan: RoundPlan) -> int:
    _, _, _, run_words = plan.run_meta()
    return sum(run_words)


def _inbox_orders(plans) -> dict:
    """Concatenated per-destination delivery order across chunks."""
    inboxes: dict = {}
    for plan in plans:
        for dst, items in plan.deliveries():
            inboxes.setdefault(dst, []).extend(items)
    return inboxes


def _chunk_volumes(plan: RoundPlan):
    sent: dict = {}
    received: dict = {}
    run_srcs, run_dsts, _, run_words = plan.run_meta()
    for src, dst, words in zip(run_srcs, run_dsts, run_words):
        sent[src] = sent.get(src, 0) + words
        received[dst] = received.get(dst, 0) + words
    return sent, received


def test_split_plan_returns_plan_unchanged_when_within_budget():
    controller = _controller()
    plan = RoundPlan(note="t")
    plan.send(0, 1, (1, 2, 3))
    assert controller.split_plan(plan) == [plan]
    assert controller.splits == 0


def test_split_plan_is_identity_when_not_enforcing():
    controller = _controller(mode="advise")
    plan = RoundPlan(note="t")
    plan.send(0, 1, tuple(range(500)))
    assert controller.split_plan(plan) == [plan]


def test_split_plan_chunks_oversized_sender():
    controller = _controller()
    plan = RoundPlan(note="t")
    for _ in range(4):
        plan.send(0, 1, (1,) * 60)  # 240 words vs budget 90
    chunks = controller.split_plan(plan)
    assert len(chunks) > 1
    for chunk in chunks:
        sent, received = _chunk_volumes(chunk)
        assert all(words <= 90 for words in sent.values())
        assert all(words <= 90 for words in received.values())
    assert sum(_plan_words(c) for c in chunks) == _plan_words(plan)
    assert controller.splits == 1
    assert controller.extra_rounds == len(chunks) - 1


def test_split_plan_parallel_senders_pack_into_same_chunks():
    # Saturating one sender must not fragment the others: N senders each
    # needing 2 chunks must yield 2 chunks total, not N.
    controller = ThrottleController(
        ThrottlePolicy(mode="enforce"), {i: 100 for i in range(20)}
    )
    plan = RoundPlan(note="t")
    for sender in range(10):
        for burst in range(3):
            plan.send(sender, 10 + sender, (1,) * 50)  # 150 vs budget 90
    chunks = controller.split_plan(plan)
    assert len(chunks) == 3  # ceil(150 / (50 * floor(90/50)))... one per burst
    assert sum(_plan_words(c) for c in chunks) == _plan_words(plan)


def test_split_plan_preserves_per_destination_order_and_words():
    rng = random.Random(7)
    controller = ThrottleController(
        ThrottlePolicy(mode="enforce"), {i: 40 for i in range(8)}
    )
    for trial in range(20):
        plan = RoundPlan(note=f"t{trial}")
        for _ in range(rng.randrange(1, 30)):
            src = rng.randrange(8)
            dst = rng.randrange(8)
            payload = tuple(rng.randrange(1000) for _ in range(rng.randrange(1, 12)))
            plan.send(src, dst, payload)
        chunks = controller.split_plan(plan)
        assert _inbox_orders(chunks) == _inbox_orders([plan])
        assert sum(_plan_words(c) for c in chunks) == _plan_words(plan)


def test_split_plan_slices_single_oversized_object_run():
    controller = _controller()
    plan = RoundPlan(note="t")
    plan.send_batch(0, 1, [(i, i) for i in range(100)])  # 200 words, budget 90
    chunks = controller.split_plan(plan)
    assert len(chunks) >= 3
    for chunk in chunks:
        sent, _ = _chunk_volumes(chunk)
        assert sent[0] <= 90
    assert _inbox_orders(chunks)[1] == [(i, i) for i in range(100)]


def test_split_plan_emits_indivisible_item_alone():
    controller = _controller()
    plan = RoundPlan(note="t")
    big = (1,) * 120  # larger than the 90-word budget, indivisible
    plan.send(0, 1, (5,))
    plan.send(0, 1, big)
    chunks = controller.split_plan(plan)
    assert sum(_plan_words(c) for c in chunks) == word_size(big) + 1
    assert _inbox_orders(chunks)[1] == [(5,), big]
    # The oversized item sits in a chunk where machine 0 sends nothing else.
    oversized = [c for c in chunks if any(i == big for _, it in c.deliveries() for i in it)]
    assert len(oversized) == 1
    sent, _ = _chunk_volumes(oversized[0])
    assert sent[0] == word_size(big)


@pytest.mark.skipif(np is None, reason="requires numpy")
def test_split_plan_slices_numpy_block_runs_by_rows():
    controller = _controller()
    plan = RoundPlan(note="t")
    block = np.arange(120, dtype=np.int64).reshape(60, 2)  # 120 words
    plan.send_batch(0, 1, block)
    chunks = controller.split_plan(plan)
    assert len(chunks) == 2
    merged = np.concatenate(
        [
            np.asarray(item).reshape(-1, 2)
            for chunk in chunks
            for _, items in chunk.deliveries()
            for item in items
        ]
    )
    assert (merged == block).all()


# ----------------------------------------------------------------------
# Cluster integration
# ----------------------------------------------------------------------
def test_cluster_attaches_controller_only_when_enabled():
    config = ModelConfig.heterogeneous(n=64, m=256)
    assert Cluster(config, rng=random.Random(0)).throttle is None
    advise = config.with_throttle("advise")
    assert Cluster(advise, rng=random.Random(0)).throttle is not None


def test_enforce_splits_over_budget_exchange_and_avoids_violation():
    config = ModelConfig.heterogeneous(n=64, m=256)
    cluster_off = Cluster(config, rng=random.Random(0))
    capacity = cluster_off.smalls[0].capacity
    messages = [(0, 1, (i,)) for i in range(capacity + 10)]
    cluster_off.exchange(list(messages), note="burst")
    assert cluster_off.ledger.violations

    cluster_enf = Cluster(config.with_throttle("enforce"), rng=random.Random(0))
    inboxes = cluster_enf.exchange(list(messages), note="burst")
    assert not cluster_enf.ledger.violations
    assert cluster_enf.ledger.rounds > 1
    assert inboxes[1] == [(i,) for i in range(capacity + 10)]
    assert cluster_enf.throttle.splits == 1


def test_throttled_hooks_return_base_without_controller():
    cluster = Cluster(ModelConfig.heterogeneous(n=64, m=256), rng=random.Random(0))
    assert cluster.throttled_fanout(8) == 8
    assert cluster.throttled_sample_rate(0.5) == 0.5


def test_advise_mode_is_behaviour_identical_to_off():
    config = ModelConfig.heterogeneous(n=64, m=256)
    ledgers = []
    for mode in ("off", "advise"):
        cluster = Cluster(config.with_throttle(ThrottlePolicy(mode=mode))
                          if mode != "off" else config, rng=random.Random(0))
        capacity = cluster.smalls[0].capacity
        cluster.exchange([(0, 1, (1,) * (capacity + 5))], note="burst")
        cluster.exchange([(0, 2, (9, 9))], note="tail")
        ledgers.append(cluster.ledger.summary())
    assert ledgers[0] == ledgers[1]


# ----------------------------------------------------------------------
# Typed violations and the exception hierarchy
# ----------------------------------------------------------------------
def test_violation_is_str_with_structured_fields():
    violation = Violation(3, "sent", 120, 100, 7, note="burst")
    assert isinstance(violation, str)
    assert "round 7" in violation
    assert violation.machine_id == 3
    assert violation.kind == "sent"
    assert violation.amount == 120
    assert violation.capacity == 100
    assert violation.round == 7
    assert violation.as_dict()["kind"] == "sent"


def test_ledger_violations_are_typed_with_round_numbers():
    cluster = Cluster(ModelConfig.heterogeneous(n=64, m=256), rng=random.Random(0))
    capacity = cluster.smalls[0].capacity
    cluster.exchange([(0, 1, (1, 2))], note="warmup")
    cluster.exchange([(0, 1, (1,) * (capacity + 1))], note="burst")
    violations = list(cluster.ledger.violations)
    assert violations
    for violation in violations:
        assert isinstance(violation, Violation)
        assert violation.round == 2
        assert violation.kind in ("sent", "received")


def test_strict_failures_are_catchable_via_capacity_exceeded_base():
    config = ModelConfig.heterogeneous(n=64, m=256, strict=True)

    cluster = Cluster(config, rng=random.Random(0))
    capacity = cluster.smalls[0].capacity
    with pytest.raises(CapacityExceeded) as comm_info:
        cluster.exchange([(0, 1, (1,) * (capacity + 1))], note="burst")
    assert isinstance(comm_info.value, CommunicationLimitExceeded)
    assert comm_info.value.violations
    assert comm_info.value.violations[0].kind in ("sent", "received")

    cluster = Cluster(config, rng=random.Random(0))
    target = cluster.smalls[0]
    with pytest.raises(CapacityExceeded) as mem_info:
        target.put("blob", [0] * (target.capacity + 1))
    assert isinstance(mem_info.value, MemoryLimitExceeded)
    assert mem_info.value.violations
    assert mem_info.value.violations[0].kind == "memory"


def test_strict_memory_message_carries_round_index():
    config = ModelConfig.heterogeneous(n=64, m=256, strict=True)
    cluster = Cluster(config, rng=random.Random(0))
    cluster.exchange([(0, 1, (1, 2))], note="warmup")
    target = cluster.smalls[0]
    with pytest.raises(MemoryLimitExceeded) as info:
        target.put("blob", [0] * (target.capacity + 1))
    # The violation is stamped with the round it would have been recorded
    # in (rounds + 1), not silently round-less as before.
    assert "round 2" in str(info.value)
    assert info.value.violations[0].round == 2
