"""Model configurations."""

import math

import pytest

from repro.mpc import ModelConfig


def test_heterogeneous_defaults():
    config = ModelConfig.heterogeneous(n=100, m=1000)
    assert config.num_large == 1
    assert config.num_small == math.ceil(1000 / 100**0.5)
    assert config.small_capacity < config.large_capacity


def test_small_capacity_scales_with_gamma():
    low = ModelConfig.heterogeneous(n=10_000, m=100_000, gamma=0.3)
    high = ModelConfig.heterogeneous(n=10_000, m=100_000, gamma=0.7)
    assert low.small_capacity < high.small_capacity


def test_large_capacity_is_near_linear():
    config = ModelConfig.heterogeneous(n=1000, m=5000)
    # n * polylog: at least n, at most n * log^3 n for default settings.
    assert config.large_capacity >= 1000
    assert config.large_capacity <= 1000 * math.log2(1000) ** 3


def test_sublinear_regime_has_no_large_machine():
    config = ModelConfig.sublinear(n=100, m=500)
    assert config.num_large == 0


def test_superlinear_memory_exponent():
    config = ModelConfig.heterogeneous_superlinear(n=100, m=500, f=0.5)
    assert config.large_memory_exponent == 1.5
    assert config.f == 0.5


def test_f_defaults_to_one_over_log_n_for_near_linear():
    config = ModelConfig.heterogeneous(n=1024, m=5000)
    assert config.f == pytest.approx(1.0 / 10.0)


def test_near_linear_regime_machines_have_linear_memory():
    config = ModelConfig.near_linear(n=1000, m=10_000)
    # Every machine can hold ~n words (up to polylog).
    assert config.small_capacity >= 1000


def test_gamma_validation():
    with pytest.raises(ValueError):
        ModelConfig(n=10, m=10, gamma=0.0)
    with pytest.raises(ValueError):
        ModelConfig(n=10, m=10, gamma=1.5)


def test_negative_f_rejected():
    with pytest.raises(ValueError):
        ModelConfig.heterogeneous_superlinear(n=10, m=10, f=-0.1)


def test_tiny_graph_rejected():
    with pytest.raises(ValueError):
        ModelConfig(n=1, m=0)


def test_tree_fanout_is_n_to_gamma():
    config = ModelConfig.heterogeneous(n=10_000, m=100_000, gamma=0.5)
    assert config.tree_fanout == 100


def test_with_strict_returns_modified_copy():
    config = ModelConfig.heterogeneous(n=100, m=500)
    strict = config.with_strict()
    assert strict.strict and not config.strict
    assert strict.n == config.n


def test_num_small_scales_with_edges():
    sparse = ModelConfig.heterogeneous(n=400, m=800)
    dense = ModelConfig.heterogeneous(n=400, m=8000)
    assert dense.num_small > sparse.num_small
