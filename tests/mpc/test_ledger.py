"""Round ledger: counting, sections, parallel repetitions."""

from repro.mpc import RoundLedger


def make_round(ledger: RoundLedger, note: str = "r") -> None:
    ledger.record_round(note=note, total_words=10, max_sent=5, max_received=5)


def test_rounds_increment():
    ledger = RoundLedger()
    for _ in range(3):
        make_round(ledger)
    assert ledger.rounds == 3
    assert len(ledger.records) == 3


def test_total_words_accumulate():
    ledger = RoundLedger()
    make_round(ledger)
    make_round(ledger)
    assert ledger.total_words == 20


def test_sections_label_rounds():
    ledger = RoundLedger()
    with ledger.section("phase-a"):
        make_round(ledger, "x")
        with ledger.section("inner"):
            make_round(ledger, "y")
    make_round(ledger, "z")
    assert "phase-a" in ledger.records[0].note
    assert "inner" in ledger.records[1].note
    assert "phase-a" not in ledger.records[2].note


def test_rounds_in_section():
    ledger = RoundLedger()
    with ledger.section("alpha"):
        make_round(ledger)
        make_round(ledger)
    make_round(ledger)
    assert ledger.rounds_in_section("alpha") == 2


def test_parallel_charges_max_not_sum():
    ledger = RoundLedger()
    with ledger.parallel("boost") as par:
        for branch_rounds in (2, 5, 3):
            with par.branch():
                for _ in range(branch_rounds):
                    make_round(ledger)
    assert ledger.rounds == 5


def test_parallel_with_early_break():
    ledger = RoundLedger()
    with ledger.parallel("retry") as par:
        for _ in range(10):
            with par.branch():
                make_round(ledger)
                make_round(ledger)
            break  # first attempt succeeded
    assert ledger.rounds == 2


def test_parallel_records_branch_rounds():
    ledger = RoundLedger()
    with ledger.parallel("p") as par:
        with par.branch():
            make_round(ledger)
        with par.branch():
            make_round(ledger)
            make_round(ledger)
    assert par.branch_rounds == [1, 2]


def test_nested_rounds_after_parallel_continue_from_max():
    ledger = RoundLedger()
    make_round(ledger)
    with ledger.parallel("p") as par:
        with par.branch():
            make_round(ledger)
            make_round(ledger)
    make_round(ledger)
    assert ledger.rounds == 4


def test_empty_parallel_charges_nothing():
    ledger = RoundLedger()
    with ledger.parallel("p"):
        pass
    assert ledger.rounds == 0


def test_charge_adds_synthetic_rounds():
    ledger = RoundLedger()
    ledger.charge(4, note="simulated-subroutine")
    assert ledger.rounds == 4
    assert all(record.total_words == 0 for record in ledger.records)


def test_charge_negative_is_noop():
    ledger = RoundLedger()
    ledger.charge(-3)
    assert ledger.rounds == 0


def test_memory_high_water():
    ledger = RoundLedger()
    ledger.record_memory(1, 100)
    ledger.record_memory(1, 50)
    ledger.record_memory(2, 80)
    assert ledger.memory_high_water == {1: 100, 2: 80}


def test_violations_collected():
    ledger = RoundLedger()
    ledger.record_round("bad", 10, 5, 5, violations=("machine 0 over",))
    assert ledger.violations == ["machine 0 over"]


def test_summary_fields():
    ledger = RoundLedger()
    make_round(ledger)
    ledger.record_memory(0, 7)
    summary = ledger.summary()
    assert summary["rounds"] == 1
    assert summary["max_memory"] == 7
    assert summary["violations"] == 0
