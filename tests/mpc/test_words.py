"""Word-size accounting."""

import pytest

from repro.mpc.words import word_size


def test_scalars_cost_one_word():
    assert word_size(0) == 1
    assert word_size(10**18) == 1
    assert word_size(-5) == 1
    assert word_size(3.14) == 1
    assert word_size(True) == 1
    assert word_size(None) == 1


def test_edge_tuple_costs_three_words():
    assert word_size((1, 2, 97)) == 3


def test_unweighted_edge_costs_two_words():
    assert word_size((4, 7)) == 2


def test_containers_sum_their_elements():
    assert word_size([(1, 2), (3, 4)]) == 4
    assert word_size({1: 2, 3: 4}) == 4
    assert word_size({1, 2, 3}) == 3
    assert word_size(()) == 0


def test_nested_containers():
    assert word_size([(1, (2, 3)), [4]]) == 4


def test_custom_word_size_protocol():
    class Sized:
        def word_size(self) -> int:
            return 42

    assert word_size(Sized()) == 42
    assert word_size([Sized(), Sized()]) == 84


def test_strings_are_charged_per_eight_chars():
    assert word_size("") == 1
    assert word_size("a" * 8) == 2
    assert word_size("a" * 17) == 3


def test_unknown_types_raise():
    with pytest.raises(TypeError):
        word_size(object())


def test_flow_label_word_size_matches_protocol():
    from repro.labeling import FlowLabel

    label = FlowLabel(entries=((1, 5.0), (2, 3.0)))
    assert word_size(label) == 1 + 2 * 2
