"""Word-size accounting."""

import random
from collections import namedtuple

import pytest

from repro.mpc.words import word_size, word_size_many


def test_scalars_cost_one_word():
    assert word_size(0) == 1
    assert word_size(10**18) == 1
    assert word_size(-5) == 1
    assert word_size(3.14) == 1
    assert word_size(True) == 1
    assert word_size(None) == 1


def test_edge_tuple_costs_three_words():
    assert word_size((1, 2, 97)) == 3


def test_unweighted_edge_costs_two_words():
    assert word_size((4, 7)) == 2


def test_containers_sum_their_elements():
    assert word_size([(1, 2), (3, 4)]) == 4
    assert word_size({1: 2, 3: 4}) == 4
    assert word_size({1, 2, 3}) == 3
    assert word_size(()) == 0


def test_nested_containers():
    assert word_size([(1, (2, 3)), [4]]) == 4


def test_custom_word_size_protocol():
    class Sized:
        def word_size(self) -> int:
            return 42

    assert word_size(Sized()) == 42
    assert word_size([Sized(), Sized()]) == 84


def test_strings_are_charged_per_eight_chars():
    assert word_size("") == 1
    assert word_size("a" * 8) == 2
    assert word_size("a" * 17) == 3


def test_bytes_are_charged_per_eight_bytes():
    """Regression: bytes/bytearray payloads used to raise TypeError."""
    assert word_size(b"") == 1
    assert word_size(b"a" * 8) == 2
    assert word_size(b"a" * 17) == 3  # non-multiple-of-8 length
    assert word_size(bytearray()) == 1
    assert word_size(bytearray(b"a" * 11)) == 2
    assert word_size([b"ab", bytearray(b"c")]) == 2


def test_unknown_types_raise():
    with pytest.raises(TypeError):
        word_size(object())


def test_flow_label_word_size_matches_protocol():
    from repro.labeling import FlowLabel

    label = FlowLabel(entries=((1, 5.0), (2, 3.0)))
    assert word_size(label) == 1 + 2 * 2


def test_word_size_nested_dicts():
    assert word_size({1: {2: 3}, "key": [4, 5]}) == 1 + 1 + 1 + 1 + 2
    assert word_size({}) == 0


def test_word_size_empty_containers():
    assert word_size([]) == 0
    assert word_size(set()) == 0
    assert word_size(frozenset()) == 0
    assert word_size({"a": []}) == 1


# ----------------------------------------------------------------------
# The bulk sizer
# ----------------------------------------------------------------------
class Sized:
    def word_size(self) -> int:
        return 7


def test_word_size_many_empty():
    assert word_size_many([]) == 0
    assert word_size_many(()) == 0
    assert word_size_many(iter([])) == 0


def test_word_size_many_scalar_fast_path():
    assert word_size_many([1, 2.5, True, None]) == 4
    assert word_size_many(range(100)) == 100


def test_word_size_many_edge_list_fast_path():
    edges = [(1, 2, 97), (3, 4, 12)]
    assert word_size_many(edges) == 6
    assert word_size_many([(1, 2), (3, 4, 5)]) == 5  # ragged is fine


def test_word_size_many_mixed_batches():
    assert word_size_many([1, (2, 3)]) == 3
    assert word_size_many([(1, (2, 3)), (4,)]) == 4  # nested tuples
    assert word_size_many(["abcdefgh", 1]) == 3


def test_word_size_many_dicts_and_objects():
    assert word_size_many([{1: 2}, {3: (4, 5)}]) == 2 + 3
    assert word_size_many([Sized(), Sized()]) == 14
    assert word_size_many([(1, Sized())]) == 8


def test_word_size_many_strings_per_eight_chars():
    assert word_size_many(["", "a" * 8, "a" * 17]) == 1 + 2 + 3


def test_word_size_many_bytes_fast_path():
    assert word_size_many([b"", bytearray()]) == 2
    assert word_size_many([b"a" * 8, bytearray(b"b" * 17)]) == 2 + 3
    assert word_size_many([b"abc"]) == word_size(b"abc")
    # Mixed with non-bytes items: falls back to the per-item sizer.
    assert word_size_many([b"a" * 9, 1]) == 2 + 1
    assert word_size_many([(b"ab", 1)]) == 2


def test_word_size_many_namedtuple_with_custom_sizer_skips_fast_path():
    class SizedPair(namedtuple("SizedPair", "a b")):
        def word_size(self) -> int:
            return 99

    batch = [SizedPair(1, 2), SizedPair(3, 4)]
    assert word_size(batch[0]) == 99
    assert word_size_many(batch) == 198


def test_word_size_many_plain_namedtuple_agrees():
    Pair = namedtuple("Pair", "a b")
    batch = [Pair(1, 2), Pair(3, 4)]
    assert word_size_many(batch) == sum(word_size(item) for item in batch)


def test_word_size_many_scalar_subclasses_agree():
    class MyInt(int):
        pass

    batch = [MyInt(1), 2, MyInt(3)]
    assert word_size_many(batch) == 3


def test_word_size_many_unknown_types_raise():
    with pytest.raises(TypeError):
        word_size_many([object()])
    with pytest.raises(TypeError):
        word_size_many([(1, object())])


def test_word_size_many_interned_scalars():
    """CPython interns small ints and caches True/None singletons; the
    scalar fast path must count occurrences, not identities."""
    batch = [1] * 50 + [True] * 10 + [None] * 10 + [-5] * 5
    assert word_size_many(batch) == 75
    # bool is a subclass of int; both exact types ride the fast path.
    assert word_size_many([True, 1, False, 0]) == 4


def test_word_size_many_interned_strings_and_empty_bytes():
    one_char = ["a"] * 20          # interned 1-char strings
    assert word_size_many(one_char) == 20
    assert word_size_many([b""] * 8) == 8


def test_bytearray_mutation_after_charge_is_visible_to_touch():
    """A machine caches the charged size at `put`; in-place growth of a
    bytearray is invisible until `touch` recomputes it — the documented
    mutation contract."""
    import random as _random

    from repro.mpc import Cluster, ModelConfig

    cluster = Cluster(ModelConfig.heterogeneous(n=64, m=256),
                      rng=_random.Random(0))
    machine = cluster.smalls[0]
    blob = bytearray(b"x" * 8)
    machine.put("blob", blob)
    assert machine.usage == 2
    blob.extend(b"y" * 32)         # now 40 bytes = 6 words
    assert machine.usage == 2      # stale by design until touch
    machine.touch("blob")
    assert machine.usage == 6


def test_word_size_many_mixed_bytes_and_bytearray_after_mutation():
    blob = bytearray(b"z" * 4)
    batch = [bytes(blob), blob]
    before = word_size_many(batch)
    assert before == 2
    blob.extend(b"w" * 12)         # 16 bytes = 3 words; re-sizing sees it
    assert word_size_many(batch) == before + 2


NUMPY_AVAILABLE = True
try:
    import numpy as np
except ImportError:  # pragma: no cover
    NUMPY_AVAILABLE = False


@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="numpy not installed")
def test_numeric_numpy_blocks_charge_one_word_per_element():
    block = np.arange(12, dtype=np.int64).reshape(4, 3)
    assert word_size(block) == 12
    assert word_size_many(block) == 12
    assert word_size(np.zeros(5, dtype=np.float64)) == 5
    assert word_size(np.int64(7)) == 1
    # Exactly what the equivalent tuples cost.
    assert word_size_many(block) == word_size_many(
        [tuple(row) for row in block.tolist()]
    )


@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="numpy not installed")
def test_non_numeric_numpy_dtypes_raise():
    with pytest.raises(TypeError):
        word_size(np.array(["a", "b"]))
    with pytest.raises(TypeError):
        word_size_many(np.array([object()], dtype=object))


def _random_payload(rng: random.Random, depth: int = 0):
    roll = rng.random()
    if depth >= 3 or roll < 0.45:
        return rng.choice([rng.randrange(1000), rng.random(), True, None])
    if roll < 0.7:
        return tuple(_random_payload(rng, depth + 1) for _ in range(rng.randrange(4)))
    if roll < 0.8:
        return [_random_payload(rng, depth + 1) for _ in range(rng.randrange(3))]
    if roll < 0.9:
        return "x" * rng.randrange(20)
    return {rng.randrange(10): _random_payload(rng, depth + 1) for _ in range(rng.randrange(3))}


def test_word_size_many_agrees_with_per_item_sizer_on_random_payloads():
    rng = random.Random(1234)
    for _ in range(50):
        batch = [_random_payload(rng) for _ in range(rng.randrange(30))]
        assert word_size_many(batch) == sum(word_size(item) for item in batch)
