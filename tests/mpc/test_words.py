"""Word-size accounting."""

import random
from collections import namedtuple

import pytest

from repro.mpc.words import word_size, word_size_many


def test_scalars_cost_one_word():
    assert word_size(0) == 1
    assert word_size(10**18) == 1
    assert word_size(-5) == 1
    assert word_size(3.14) == 1
    assert word_size(True) == 1
    assert word_size(None) == 1


def test_edge_tuple_costs_three_words():
    assert word_size((1, 2, 97)) == 3


def test_unweighted_edge_costs_two_words():
    assert word_size((4, 7)) == 2


def test_containers_sum_their_elements():
    assert word_size([(1, 2), (3, 4)]) == 4
    assert word_size({1: 2, 3: 4}) == 4
    assert word_size({1, 2, 3}) == 3
    assert word_size(()) == 0


def test_nested_containers():
    assert word_size([(1, (2, 3)), [4]]) == 4


def test_custom_word_size_protocol():
    class Sized:
        def word_size(self) -> int:
            return 42

    assert word_size(Sized()) == 42
    assert word_size([Sized(), Sized()]) == 84


def test_strings_are_charged_per_eight_chars():
    assert word_size("") == 1
    assert word_size("a" * 8) == 2
    assert word_size("a" * 17) == 3


def test_bytes_are_charged_per_eight_bytes():
    """Regression: bytes/bytearray payloads used to raise TypeError."""
    assert word_size(b"") == 1
    assert word_size(b"a" * 8) == 2
    assert word_size(b"a" * 17) == 3  # non-multiple-of-8 length
    assert word_size(bytearray()) == 1
    assert word_size(bytearray(b"a" * 11)) == 2
    assert word_size([b"ab", bytearray(b"c")]) == 2


def test_unknown_types_raise():
    with pytest.raises(TypeError):
        word_size(object())


def test_flow_label_word_size_matches_protocol():
    from repro.labeling import FlowLabel

    label = FlowLabel(entries=((1, 5.0), (2, 3.0)))
    assert word_size(label) == 1 + 2 * 2


def test_word_size_nested_dicts():
    assert word_size({1: {2: 3}, "key": [4, 5]}) == 1 + 1 + 1 + 1 + 2
    assert word_size({}) == 0


def test_word_size_empty_containers():
    assert word_size([]) == 0
    assert word_size(set()) == 0
    assert word_size(frozenset()) == 0
    assert word_size({"a": []}) == 1


# ----------------------------------------------------------------------
# The bulk sizer
# ----------------------------------------------------------------------
class Sized:
    def word_size(self) -> int:
        return 7


def test_word_size_many_empty():
    assert word_size_many([]) == 0
    assert word_size_many(()) == 0
    assert word_size_many(iter([])) == 0


def test_word_size_many_scalar_fast_path():
    assert word_size_many([1, 2.5, True, None]) == 4
    assert word_size_many(range(100)) == 100


def test_word_size_many_edge_list_fast_path():
    edges = [(1, 2, 97), (3, 4, 12)]
    assert word_size_many(edges) == 6
    assert word_size_many([(1, 2), (3, 4, 5)]) == 5  # ragged is fine


def test_word_size_many_mixed_batches():
    assert word_size_many([1, (2, 3)]) == 3
    assert word_size_many([(1, (2, 3)), (4,)]) == 4  # nested tuples
    assert word_size_many(["abcdefgh", 1]) == 3


def test_word_size_many_dicts_and_objects():
    assert word_size_many([{1: 2}, {3: (4, 5)}]) == 2 + 3
    assert word_size_many([Sized(), Sized()]) == 14
    assert word_size_many([(1, Sized())]) == 8


def test_word_size_many_strings_per_eight_chars():
    assert word_size_many(["", "a" * 8, "a" * 17]) == 1 + 2 + 3


def test_word_size_many_bytes_fast_path():
    assert word_size_many([b"", bytearray()]) == 2
    assert word_size_many([b"a" * 8, bytearray(b"b" * 17)]) == 2 + 3
    assert word_size_many([b"abc"]) == word_size(b"abc")
    # Mixed with non-bytes items: falls back to the per-item sizer.
    assert word_size_many([b"a" * 9, 1]) == 2 + 1
    assert word_size_many([(b"ab", 1)]) == 2


def test_word_size_many_namedtuple_with_custom_sizer_skips_fast_path():
    class SizedPair(namedtuple("SizedPair", "a b")):
        def word_size(self) -> int:
            return 99

    batch = [SizedPair(1, 2), SizedPair(3, 4)]
    assert word_size(batch[0]) == 99
    assert word_size_many(batch) == 198


def test_word_size_many_plain_namedtuple_agrees():
    Pair = namedtuple("Pair", "a b")
    batch = [Pair(1, 2), Pair(3, 4)]
    assert word_size_many(batch) == sum(word_size(item) for item in batch)


def test_word_size_many_scalar_subclasses_agree():
    class MyInt(int):
        pass

    batch = [MyInt(1), 2, MyInt(3)]
    assert word_size_many(batch) == 3


def test_word_size_many_unknown_types_raise():
    with pytest.raises(TypeError):
        word_size_many([object()])
    with pytest.raises(TypeError):
        word_size_many([(1, object())])


def _random_payload(rng: random.Random, depth: int = 0):
    roll = rng.random()
    if depth >= 3 or roll < 0.45:
        return rng.choice([rng.randrange(1000), rng.random(), True, None])
    if roll < 0.7:
        return tuple(_random_payload(rng, depth + 1) for _ in range(rng.randrange(4)))
    if roll < 0.8:
        return [_random_payload(rng, depth + 1) for _ in range(rng.randrange(3))]
    if roll < 0.9:
        return "x" * rng.randrange(20)
    return {rng.randrange(10): _random_payload(rng, depth + 1) for _ in range(rng.randrange(3))}


def test_word_size_many_agrees_with_per_item_sizer_on_random_payloads():
    rng = random.Random(1234)
    for _ in range(50):
        batch = [_random_payload(rng) for _ in range(rng.randrange(30))]
        assert word_size_many(batch) == sum(word_size(item) for item in batch)
