"""The engine backend seam: resolution, grouping kernels, equivalence."""

import random

import pytest

from repro.mpc.backend import (
    HAS_NUMPY,
    NumpyEngineBackend,
    PureEngineBackend,
    available_engine_backends,
    get_engine_backend,
)


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------
def test_default_is_pure(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE_BACKEND", raising=False)
    assert get_engine_backend().name == "pure"
    assert get_engine_backend("pure").name == "pure"


def test_env_var_overrides_default(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE_BACKEND", "pure")
    assert get_engine_backend().name == "pure"
    if HAS_NUMPY:
        monkeypatch.setenv("REPRO_ENGINE_BACKEND", "numpy")
        assert get_engine_backend().name == "numpy"


def test_instances_pass_through():
    backend = PureEngineBackend()
    assert get_engine_backend(backend) is backend


def test_auto_resolves_to_an_available_backend():
    assert get_engine_backend("auto").name in available_engine_backends()


def test_unknown_name_raises():
    with pytest.raises(ValueError):
        get_engine_backend("gpu")


def test_available_backends_always_include_pure():
    names = available_engine_backends()
    assert "pure" in names
    assert ("numpy" in names) == HAS_NUMPY


# ----------------------------------------------------------------------
# Grouping kernels
# ----------------------------------------------------------------------
def test_pure_grouping_is_stable_and_dst_sorted():
    backend = PureEngineBackend()
    runs = backend.group_indexed([3, 1, 3, 1, 2], ["a", "b", "c", "d", "e"])
    assert runs == [(1, ["b", "d"]), (2, ["e"]), (3, ["a", "c"])]


def test_pure_grouping_handles_empty_scatter():
    assert PureEngineBackend().group_indexed([], []) == []


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
def test_numpy_grouping_matches_pure_on_lists():
    """Object payloads take the pure kernel under either backend."""
    rng = random.Random(3)
    dsts = [rng.randrange(6) for _ in range(200)]
    items = [("x", i) for i in range(200)]
    assert NumpyEngineBackend().group_indexed(dsts, items) == (
        PureEngineBackend().group_indexed(dsts, items)
    )


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
def test_numpy_grouping_of_arrays_matches_pure_partition():
    import numpy as np

    rng = random.Random(5)
    dsts = [rng.randrange(4) for _ in range(300)]
    rows = [(i, i * i) for i in range(300)]
    numpy_runs = NumpyEngineBackend().group_indexed(
        np.asarray(dsts, dtype=np.int64), np.asarray(rows, dtype=np.int64)
    )
    pure_runs = PureEngineBackend().group_indexed(dsts, rows)
    assert [dst for dst, _ in numpy_runs] == [dst for dst, _ in pure_runs]
    for (_, block), (_, items) in zip(numpy_runs, pure_runs):
        assert [tuple(row) for row in block.tolist()] == items


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
def test_numpy_grouping_rejects_mismatched_columns():
    import numpy as np

    with pytest.raises(ValueError):
        NumpyEngineBackend().group_indexed(
            np.asarray([0, 1], dtype=np.int64), np.zeros((3, 2), dtype=np.int64)
        )


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
def test_numpy_blocks_are_views_of_the_scatter():
    """Grouping must not copy payload rows item by item: blocks slice the
    argsorted scatter."""
    import numpy as np

    rows = np.arange(40, dtype=np.int64).reshape(10, 4)
    runs = NumpyEngineBackend().group_indexed(
        np.asarray([1] * 10, dtype=np.int64), rows
    )
    assert len(runs) == 1
    dst, block = runs[0]
    assert dst == 1
    assert block.shape == (10, 4)
    assert block.base is not None  # a view, not a per-item rebuild
