"""The executor seam: registry, resolution, guards, and serial/process
equivalence (results and ledgers are identical by construction)."""

import os
import random
import subprocess
import sys

import pytest

from repro.mpc import Cluster, ModelConfig
from repro.mpc import executor as executor_mod
from repro.mpc.executor import (
    ProcessExecutor,
    SerialExecutor,
    available_executors,
    forced_executor,
    get_executor,
    in_worker,
    local_step,
    mark_worker_process,
    resolve_step,
)

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")


# ----------------------------------------------------------------------
# Registry and resolution
# ----------------------------------------------------------------------
def test_local_step_registers_and_resolves():
    step = resolve_step("cluster/map-small")
    assert step.name == "cluster/map-small"
    assert step.ships is False
    assert step.module == "repro.mpc.cluster"


def test_resolve_step_imports_defining_module():
    # The worker-side path: resolve by (name, module) even if the caller
    # never imported the primitives.
    step = resolve_step("sort/partition-columnar", module="repro.primitives.sort")
    assert step.ships is True


def test_resolve_unknown_step_raises():
    with pytest.raises(KeyError):
        resolve_step("no/such-step")


def test_reregistering_from_same_module_replaces(monkeypatch):
    monkeypatch.delitem(executor_mod._REGISTRY, "test/replace", raising=False)

    @local_step("test/replace", ships=False)
    def first(payload):
        return "first"

    @local_step("test/replace", ships=False)
    def second(payload):
        return "second"

    assert resolve_step("test/replace").fn(None) == "second"
    monkeypatch.delitem(executor_mod._REGISTRY, "test/replace")


def test_cross_module_name_clash_raises(monkeypatch):
    monkeypatch.delitem(executor_mod._REGISTRY, "test/clash", raising=False)

    @local_step("test/clash", ships=False)
    def mine(payload):
        return payload

    def impostor(payload):
        return payload

    impostor.__module__ = "somewhere.else"
    with pytest.raises(ValueError, match="already registered"):
        local_step("test/clash", ships=False)(impostor)
    monkeypatch.delitem(executor_mod._REGISTRY, "test/clash")


# ----------------------------------------------------------------------
# Resolution order (config > forced > env > default) and the guard
# ----------------------------------------------------------------------
def test_default_is_serial(monkeypatch):
    monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
    assert isinstance(get_executor(), SerialExecutor)


def test_instance_passes_through():
    instance = ProcessExecutor(workers=3)
    assert get_executor(instance) is instance


def test_env_selects_process_and_sizes_pool(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR", "process")
    monkeypatch.setenv("REPRO_EXECUTOR_WORKERS", "5")
    resolved = get_executor()
    assert isinstance(resolved, ProcessExecutor)
    assert resolved.workers == 5


def test_explicit_workers_beat_env(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR_WORKERS", "5")
    assert get_executor("process", workers=2).workers == 2


def test_zero_workers_means_cpu_count():
    assert ProcessExecutor(workers=0).workers == (os.cpu_count() or 1)


def test_forced_executor_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR", "serial")
    with forced_executor("process", workers=2):
        resolved = get_executor()
        assert isinstance(resolved, ProcessExecutor)
        assert resolved.workers == 2
    assert isinstance(get_executor(), SerialExecutor)


def test_forced_executor_rejects_unknown_name():
    with pytest.raises(ValueError):
        with forced_executor("threads"):
            pass  # pragma: no cover


def test_unknown_executor_name_raises():
    with pytest.raises(ValueError, match="unknown executor"):
        get_executor("threads")


def test_available_executors():
    assert available_executors() == ("serial", "process")


def test_worker_guard_forces_serial(monkeypatch):
    # Re-registers the current value so monkeypatch restores it.
    monkeypatch.setattr(executor_mod, "_IN_WORKER", executor_mod._IN_WORKER)
    assert not in_worker()
    mark_worker_process()
    assert in_worker()
    # The guard beats explicit names, instances, and forced overrides.
    assert isinstance(get_executor("process"), SerialExecutor)
    assert isinstance(get_executor(ProcessExecutor(2)), SerialExecutor)
    with forced_executor("process", workers=2):
        assert isinstance(get_executor(), SerialExecutor)


def test_worker_guard_runs_shippable_steps_inline(monkeypatch):
    np = pytest.importorskip("numpy")
    monkeypatch.setattr(executor_mod, "_IN_WORKER", True)
    executor = ProcessExecutor(workers=4)
    pairs = [
        (np.array([2, 1, 2]), np.array([10, 20, 30])),
        (np.array([3]), np.array([40])),
    ]
    results = executor.map_steps(
        "aggregate/reduce-pairs", [(k, v, "sum") for k, v in pairs]
    )
    assert [(k.tolist(), v.tolist()) for k, v in results] == [
        ([2, 1], [40, 20]),
        ([3], [40]),
    ]


# ----------------------------------------------------------------------
# Executors run steps identically
# ----------------------------------------------------------------------
def test_serial_executor_preserves_payload_order():
    results = SerialExecutor().map_steps(
        "dedup/keep-first-object",
        [
            ([("a", 1), ("a", 2), ("b", 3)], lambda item: item[0]),
            ([("c", 4)], lambda item: item[0]),
        ],
    )
    assert results == [[("a", 1), ("b", 3)], [("c", 4)]]


def test_process_executor_runs_nonshippable_steps_inline():
    # The payload carries a lambda — it would not survive pickling, so
    # this passing at workers=4 proves ships=False stays inline.
    executor = ProcessExecutor(workers=4)
    results = executor.map_steps(
        "dedup/keep-first-object",
        [
            ([("a", 1), ("a", 2)], lambda item: item[0]),
            ([("b", 3), ("b", 4)], lambda item: item[0]),
        ],
    )
    assert results == [[("a", 1)], [("b", 3)]]


def test_process_matches_serial_on_shipping_kernel():
    np = pytest.importorskip("numpy")
    payloads = [
        (
            [np.array([[2], [1], [2], [3]], dtype=np.int64)],
            (np.dtype(np.int64),),
            (0,),
        ),
        (
            [np.array([[9], [7]], dtype=np.int64)],
            (np.dtype(np.int64),),
            (0,),
        ),
    ]

    def as_rows(blocks):
        return [block.rows() for block in blocks]

    serial = as_rows(SerialExecutor().map_steps("sort/rank-columnar", payloads))
    process = as_rows(ProcessExecutor(workers=2).map_steps(
        "sort/rank-columnar", payloads
    ))
    assert serial == process == [[(1,), (2,), (2,), (3,)], [(7,), (9,)]]


def test_single_payload_runs_inline():
    # len(payloads) <= 1 short-circuits the pool; same result either way.
    result = ProcessExecutor(workers=4).map_steps(
        "edgestore/scan", [([1, 2, 3], None)]
    )
    assert result == [[1, 2, 3]]


def test_pool_shutdown_is_idempotent():
    executor_mod.shutdown_pools()
    executor_mod.shutdown_pools()
    assert executor_mod._POOLS == {}


def test_fresh_pool_after_shutdown():
    """A long-lived daemon must be able to reconfigure: after an explicit
    shutdown_pools(), the next process dispatch builds a fresh pool
    instead of reusing (or tripping over) the reaped one."""
    np = pytest.importorskip("numpy")
    executor = ProcessExecutor(workers=2)
    payloads = [
        (np.array([2, 1]), np.array([10, 20])),
        (np.array([3]), np.array([40])),
    ]

    def run():
        return [
            (k.tolist(), v.tolist())
            for k, v in executor.map_steps(
                "aggregate/reduce-pairs", [(k, v, "sum") for k, v in payloads]
            )
        ]

    first = run()
    first_pool = executor_mod._POOLS.get(2)
    assert first_pool is not None
    executor_mod.shutdown_pools()
    assert executor_mod._POOLS == {}
    second = run()
    second_pool = executor_mod._POOLS.get(2)
    assert second_pool is not None and second_pool is not first_pool
    assert first == second == [([2, 1], [10, 20]), ([3], [40])]
    executor_mod.shutdown_pools()


def test_shutdown_pools_resets_unavailable_latch(monkeypatch):
    monkeypatch.setattr(executor_mod, "_POOL_UNAVAILABLE", True)
    assert executor_mod._shared_pool(2) is None
    executor_mod.shutdown_pools()
    assert executor_mod._POOL_UNAVAILABLE is False


# ----------------------------------------------------------------------
# Config plumbing
# ----------------------------------------------------------------------
def test_with_executor_returns_new_config():
    base = ModelConfig.heterogeneous(n=64, m=256)
    derived = base.with_executor("process", workers=2)
    assert base.executor is None
    assert derived.executor == "process"
    assert derived.executor_workers == 2


def test_config_rejects_unknown_executor():
    with pytest.raises(ValueError):
        ModelConfig.heterogeneous(n=64, m=256).with_executor("threads")


def test_config_rejects_negative_workers():
    with pytest.raises(ValueError):
        ModelConfig.heterogeneous(n=64, m=256).with_executor("process", workers=-1)


def test_cluster_uses_configured_executor():
    config = ModelConfig.heterogeneous(n=64, m=256).with_executor(
        "process", workers=2
    )
    cluster = Cluster(config, rng=random.Random(0))
    assert isinstance(cluster.executor, ProcessExecutor)
    assert cluster.executor.workers == 2


def test_cluster_defaults_to_serial(monkeypatch):
    monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
    cluster = Cluster(ModelConfig.heterogeneous(n=64, m=256))
    assert isinstance(cluster.executor, SerialExecutor)


# ----------------------------------------------------------------------
# End-to-end equivalence: same results, same ledger
# ----------------------------------------------------------------------
def _sorted_store(executor_name: str):
    from repro.primitives import EdgeStore

    config = ModelConfig.heterogeneous(n=64, m=256).with_executor(
        executor_name, workers=2
    )
    cluster = Cluster(config, rng=random.Random(7))
    rng = random.Random(11)
    edges = [(rng.randrange(64), rng.randrange(64), i) for i in range(256)]
    store = EdgeStore.create(cluster, edges, name="edges")
    store.sort(key=(0, 1, 2))
    placement = [list(m.get("edges", [])) for m in cluster.smalls]
    ledger = [
        (r.note, r.total_words, r.max_sent, r.max_received)
        for r in cluster.ledger.records
    ]
    return placement, ledger, cluster.ledger.rounds


def test_sort_is_identical_across_executors():
    serial = _sorted_store("serial")
    process = _sorted_store("process")
    assert serial == process


# ----------------------------------------------------------------------
# map_small memory checkpoint
# ----------------------------------------------------------------------
def test_map_small_checkpoints_memory_after_mutation():
    cluster = Cluster(ModelConfig.heterogeneous(n=64, m=256),
                      rng=random.Random(0))
    cluster.distribute_edges([(1, 2)], name="e")
    small_capacity = cluster.config.small_capacity
    cluster.map_small(
        "e", lambda machine, items: items * (small_capacity + 1)
    )
    # The growth is visible without any round having been charged.
    assert cluster.ledger.rounds == 0
    assert any("memory" in str(v) for v in cluster.ledger.violations)
    assert max(cluster.ledger.memory_high_water.values()) > small_capacity


# ----------------------------------------------------------------------
# Nested parallelism: bench --jobs beats --executor (regression: no
# deadlock, no pool-inside-pool)
# ----------------------------------------------------------------------
def test_parallel_runner_under_process_executor_env(tmp_path):
    env = dict(os.environ)
    env.update({
        "REPRO_EXECUTOR": "process",
        "REPRO_EXECUTOR_WORKERS": "2",
        "PYTHONPATH": os.path.join(REPO_ROOT, "src"),
    })
    result = subprocess.run(
        [
            sys.executable, "-m", "repro", "bench", "table1_connectivity",
            "--quick", "--json", "--jobs", "2", "--out", str(tmp_path),
        ],
        env=env, capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert (tmp_path / "table1_connectivity.json").exists()
