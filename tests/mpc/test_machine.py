"""Machine dataset management and usage tracking."""

import pytest

from repro.mpc import LARGE, SMALL, Machine, MemoryLimitExceeded


def test_put_get_roundtrip():
    machine = Machine(0, SMALL, capacity=100)
    machine.put("edges", [(1, 2), (3, 4)])
    assert machine.get("edges") == [(1, 2), (3, 4)]
    assert machine.get("missing") is None
    assert machine.get("missing", 7) == 7


def test_usage_tracks_word_size():
    machine = Machine(0, SMALL, capacity=100)
    machine.put("a", [(1, 2, 3)])
    machine.put("b", [5])
    assert machine.usage == 4


def test_pop_releases_usage():
    machine = Machine(0, SMALL, capacity=100)
    machine.put("a", [1, 2, 3])
    assert machine.pop("a") == [1, 2, 3]
    assert machine.usage == 0
    assert machine.pop("a", "gone") == "gone"


def test_put_overwrites_and_usage_updates():
    machine = Machine(0, SMALL, capacity=100)
    machine.put("a", [1] * 10)
    machine.put("a", [1])
    assert machine.usage == 1


def test_touch_refreshes_cached_size():
    machine = Machine(0, SMALL, capacity=100)
    data = [1, 2]
    machine.put("a", data)
    data.append(3)
    assert machine.usage == 2  # stale until touched
    machine.touch("a")
    assert machine.usage == 3


def test_contains_and_datasets():
    machine = Machine(0, SMALL, capacity=100)
    machine.put("x", [])
    assert "x" in machine
    assert "y" not in machine
    assert list(machine.datasets()) == ["x"]


def test_over_capacity_flag():
    machine = Machine(0, SMALL, capacity=3)
    machine.put("a", [1, 2, 3])
    assert not machine.over_capacity
    machine.put("b", [4])
    assert machine.over_capacity


def test_strict_put_raises_memory_limit():
    machine = Machine(0, SMALL, capacity=3, strict=True)
    machine.put("a", [1, 2, 3])  # exactly at capacity is fine
    with pytest.raises(MemoryLimitExceeded):
        machine.put("b", [4])
    assert "b" not in machine  # the hoard was rejected, not stored
    # Replacing a dataset within budget still works.
    machine.put("a", [1])
    machine.put("b", [2, 3])


def test_strict_touch_raises_on_inplace_growth():
    machine = Machine(0, SMALL, capacity=3, strict=True)
    data = [1, 2, 3]
    machine.put("a", data)
    data.append(4)
    with pytest.raises(MemoryLimitExceeded):
        machine.touch("a")


def test_nonstrict_machine_stores_past_capacity():
    machine = Machine(0, SMALL, capacity=2)
    machine.put("a", [1, 2, 3])  # recording mode: allowed, flagged
    assert machine.usage == 3
    assert machine.over_capacity


def test_kind_flags():
    small = Machine(0, SMALL, capacity=10)
    large = Machine(1, LARGE, capacity=1000)
    assert not small.is_large
    assert large.is_large
