"""The ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import load_artifact


def run(capsys, argv):
    code = main(argv)
    assert code == 0
    return capsys.readouterr().out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_mst_command(capsys):
    out = run(capsys, ["mst", "--n", "40", "--m", "200", "--seed", "1"])
    assert "verified=True" in out
    assert "rounds" in out


def test_mst_with_superlinear_f(capsys):
    out = run(capsys, ["mst", "--n", "40", "--m", "400", "--f", "1.0"])
    assert "boruvka steps 0" in out


def test_spanner_command(capsys):
    out = run(capsys, ["spanner", "--n", "40", "--m", "300", "--k", "2"])
    assert "stretch" in out and "<= 11" in out


def test_spanner_weighted(capsys):
    out = run(capsys, ["spanner", "--n", "30", "--m", "120", "--k", "2", "--weighted"])
    assert "<= 22" in out


def test_apsp_command(capsys):
    out = run(capsys, ["apsp", "--n", "30", "--m", "100"])
    assert "APSP oracle" in out


def test_matching_command(capsys):
    out = run(capsys, ["matching", "--n", "40", "--m", "200"])
    assert "maximal=True" in out


def test_matching_filtering(capsys):
    out = run(capsys, ["matching", "--n", "40", "--m", "400", "--f", "0.5"])
    assert "filtering levels" in out
    assert "maximal=True" in out


def test_connectivity_command(capsys):
    out = run(capsys, ["connectivity", "--n", "40", "--m", "60", "--components", "4"])
    assert "components 4 (planted 4)" in out


def test_mis_command(capsys):
    out = run(capsys, ["mis", "--n", "40", "--m", "200"])
    assert "maximal=True" in out


def test_coloring_command(capsys):
    out = run(capsys, ["coloring", "--n", "40", "--m", "200"])
    assert "proper=True" in out


def test_mincut_command(capsys):
    out = run(capsys, ["mincut", "--n", "30", "--cut", "2"])
    assert "exact cut" in out
    assert "weighted estimate" in out


def test_cycle_command(capsys):
    out = run(capsys, ["cycle", "--n", "40", "--seed", "3"])
    assert "cycles" in out and "rounds 1" in out


def test_compare_command(capsys):
    out = run(capsys, ["compare", "--n", "40", "--m", "200"])
    assert "sublinear" in out and "heterogeneous" in out
    assert "MST" in out


def test_gamma_flag(capsys):
    out = run(capsys, ["mst", "--n", "36", "--m", "150", "--gamma", "0.3"])
    assert "verified=True" in out


def test_bench_list(capsys):
    out = run(capsys, ["bench", "--list"])
    assert "table1_mst" in out and "workload_near_clique" in out


def test_bench_requires_scenarios(capsys):
    assert main(["bench"]) == 2
    assert "bench:" in capsys.readouterr().err


def test_bench_unknown_scenario(capsys):
    assert main(["bench", "no_such_scenario"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_bench_quick_smoke_writes_schema_valid_artifacts(capsys, tmp_path):
    out = run(capsys, [
        "bench", "workload_grid", "ablation_kkt_sampling",
        "--quick", "--json", "--out", str(tmp_path),
    ])
    assert "wrote 2 scenario artifact(s)" in out
    artifact = load_artifact(tmp_path / "workload_grid.json")
    assert artifact["quick"] is True
    assert {row["regime"] for row in artifact["rows"]} == {
        "heterogeneous", "sublinear", "near_linear", "superlinear",
    }
    text = (tmp_path / "ablation_kkt_sampling.txt").read_text()
    assert text.startswith("# schema: repro.bench/2")


def test_bench_jobs_matches_serial_bytes(capsys, tmp_path):
    """--jobs N is wired to the ParallelRunner and reproduces the serial
    artifacts byte for byte."""
    args = ["bench", "ablation_kkt_sampling", "cycle_problem",
            "--quick", "--json"]
    run(capsys, args + ["--out", str(tmp_path / "serial")])
    out = run(capsys, args + ["--jobs", "2", "--out", str(tmp_path / "par")])
    assert "wrote 2 scenario artifact(s)" in out
    for path in sorted((tmp_path / "serial").iterdir()):
        assert path.read_bytes() == (tmp_path / "par" / path.name).read_bytes()


def test_bench_all_writes_suite_rollup(capsys, tmp_path, monkeypatch):
    """`bench all --json` maintains suite.json; subsets leave it alone."""
    from repro import experiments

    # Shrink "all" to two scenarios so the smoke test stays fast.
    names = ["ablation_kkt_sampling", "cycle_problem"]
    monkeypatch.setattr(
        experiments, "all_scenarios",
        lambda: [experiments.get_scenario(n) for n in names],
    )
    out = run(capsys, ["bench", "all", "--quick", "--json",
                       "--out", str(tmp_path)])
    assert "suite roll-up" in out
    suite = experiments.load_suite(tmp_path / "suite.json")
    assert [row["scenario"] for row in suite["scenarios"]] == sorted(names)
    assert suite["quick"] is True


def test_report_generates_and_checks(capsys, tmp_path):
    run(capsys, ["bench", "workload_near_clique", "--quick", "--json",
                 "--out", str(tmp_path)])
    doc = tmp_path / "GUIDE.md"
    out = run(capsys, ["report", "--results", str(tmp_path), "--out", str(doc)])
    assert "wrote" in out
    assert "workload_near_clique" in doc.read_text()
    out = run(capsys, ["report", "--check", "--results", str(tmp_path),
                       "--out", str(doc)])
    assert "up to date" in out


def test_report_check_fails_on_stale_doc(capsys, tmp_path):
    run(capsys, ["bench", "workload_near_clique", "--quick", "--json",
                 "--out", str(tmp_path)])
    doc = tmp_path / "GUIDE.md"
    run(capsys, ["report", "--results", str(tmp_path), "--out", str(doc)])
    doc.write_text(doc.read_text() + "drift\n")
    assert main(["report", "--check", "--results", str(tmp_path),
                 "--out", str(doc)]) == 1
    assert "stale" in capsys.readouterr().err


def test_report_check_fails_on_schema_violation(capsys, tmp_path):
    (tmp_path / "bad.json").write_text(json.dumps({"schema": "repro.bench/1"}))
    assert main(["report", "--check", "--results", str(tmp_path),
                 "--out", str(tmp_path / "GUIDE.md")]) == 1
    assert "validation failed" in capsys.readouterr().err


def test_costmodel_generates_and_checks(capsys, tmp_path):
    run(capsys, ["bench", "table1_mst", "--quick", "--json",
                 "--out", str(tmp_path)])
    doc = tmp_path / "COST_MODEL.md"
    out = run(capsys, ["costmodel", "--results", str(tmp_path),
                       "--out", str(doc)])
    assert "wrote" in out
    assert "table1_mst" in doc.read_text()
    out = run(capsys, ["costmodel", "--check", "--results", str(tmp_path),
                       "--out", str(doc)])
    assert "up to date" in out


def test_costmodel_check_fails_on_stale_doc(capsys, tmp_path):
    run(capsys, ["bench", "table1_mst", "--quick", "--json",
                 "--out", str(tmp_path)])
    doc = tmp_path / "COST_MODEL.md"
    run(capsys, ["costmodel", "--results", str(tmp_path), "--out", str(doc)])
    doc.write_text(doc.read_text() + "drift\n")
    assert main(["costmodel", "--check", "--results", str(tmp_path),
                 "--out", str(doc)]) == 1
    assert "stale" in capsys.readouterr().err
