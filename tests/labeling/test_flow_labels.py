"""The KKKP flow-labeling scheme vs. the brute-force oracle."""

import itertools
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import generators
from repro.labeling import (
    build_flow_labels,
    decode_heaviest,
    label_entries_bound,
)
from repro.local.mst import heaviest_weight_on_path, kruskal


@pytest.fixture
def rng():
    return random.Random(55)


def forest_of(n, m, seed, components=1):
    rng = random.Random(seed)
    if components == 1:
        g = generators.random_connected_graph(n, m, rng).with_unique_weights(rng)
    else:
        g = generators.planted_components_graph(n, components, m, rng)
        g = g.with_unique_weights(rng)
    return g, kruskal(g)


def test_path_forest_decodes_exactly():
    forest = [(0, 1, 5), (1, 2, 9), (2, 3, 2)]
    labels = build_flow_labels(range(4), forest)
    assert decode_heaviest(labels[0], labels[3]) == 9
    assert decode_heaviest(labels[2], labels[3]) == 2
    assert decode_heaviest(labels[0], labels[1]) == 5


def test_same_vertex_decodes_to_minus_inf():
    labels = build_flow_labels(range(2), [(0, 1, 3)])
    assert decode_heaviest(labels[0], labels[0]) == -math.inf


def test_different_trees_decode_to_inf():
    labels = build_flow_labels(range(4), [(0, 1, 3), (2, 3, 4)])
    assert math.isinf(decode_heaviest(labels[0], labels[2]))
    assert decode_heaviest(labels[0], labels[2]) > 0


def test_isolated_vertices_get_labels():
    labels = build_flow_labels(range(3), [])
    assert len(labels) == 3
    assert math.isinf(decode_heaviest(labels[0], labels[1]))


def test_label_length_bound(rng):
    g, forest = forest_of(200, 500, seed=1)
    labels = build_flow_labels(range(g.n), forest)
    bound = label_entries_bound(g.n)
    assert all(len(label.entries) <= bound for label in labels.values())


def test_word_size_is_logarithmic(rng):
    g, forest = forest_of(128, 300, seed=2)
    labels = build_flow_labels(range(g.n), forest)
    worst = max(label.word_size() for label in labels.values())
    assert worst <= 2 * label_entries_bound(g.n) + 1


def test_all_pairs_match_brute_force_single_tree():
    g, forest = forest_of(40, 100, seed=3)
    labels = build_flow_labels(range(g.n), forest)
    for u, v in itertools.combinations(range(g.n), 2):
        assert decode_heaviest(labels[u], labels[v]) == heaviest_weight_on_path(
            g.n, forest, u, v
        )


def test_all_pairs_match_brute_force_multi_tree():
    g, forest = forest_of(36, 20, seed=4, components=4)
    labels = build_flow_labels(range(g.n), forest)
    for u, v in itertools.combinations(range(g.n), 2):
        assert decode_heaviest(labels[u], labels[v]) == heaviest_weight_on_path(
            g.n, forest, u, v
        )


def test_f_light_filter_via_labels_matches_oracle(rng):
    """The exact use in Section 3: w(e) <= decode(...) iff e is F-light."""
    from repro.local.mst import is_f_light, kruskal_edges

    g = generators.random_connected_graph(50, 300, rng).with_unique_weights(rng)
    sample = [e for e in g.edges if rng.random() < 0.3]
    forest = kruskal_edges(g.n, sample)
    labels = build_flow_labels(range(g.n), forest)
    for edge in g.edges:
        by_labels = edge[2] <= decode_heaviest(labels[edge[0]], labels[edge[1]])
        assert by_labels == is_f_light(g.n, forest, edge)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_decode_property_random_forests(seed):
    """Random spanning forests of random graphs: decoder == oracle on all
    graph edges (the queries the MST algorithm actually makes)."""
    rng = random.Random(seed)
    n = rng.randrange(8, 40)
    m = rng.randrange(n - 1, min(3 * n, n * (n - 1) // 2))
    g = generators.random_connected_graph(n, m, rng).with_unique_weights(rng)
    forest = kruskal(g)
    labels = build_flow_labels(range(n), forest)
    for u, v, w in g.edges:
        assert decode_heaviest(labels[u], labels[v]) == heaviest_weight_on_path(
            n, forest, u, v
        )
