"""Section 3 — the heterogeneous MST algorithm."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mst import (
    boruvka_step_budget,
    heterogeneous_mst,
    planned_boruvka_steps,
)
from repro.graph import generators
from repro.graph.validation import verify_mst
from repro.mpc import ModelConfig


@pytest.fixture
def rng():
    return random.Random(70)


def test_exact_mst_on_sparse_graph(rng):
    g = generators.random_connected_graph(40, 60, rng).with_unique_weights(rng)
    result = heterogeneous_mst(g, rng=random.Random(1))
    assert verify_mst(g, result.edges)
    assert len(result.edges) == g.n - 1


def test_exact_mst_on_dense_graph(rng):
    g = generators.random_connected_graph(60, 900, rng).with_unique_weights(rng)
    result = heterogeneous_mst(g, rng=random.Random(2))
    assert verify_mst(g, result.edges)


def test_mst_on_tree_is_the_tree(rng):
    g = generators.random_tree(30, rng).with_unique_weights(rng)
    result = heterogeneous_mst(g, rng=random.Random(3))
    assert sorted(result.edges) == sorted(g.edges)


def test_minimum_spanning_forest_on_disconnected_graph(rng):
    g = generators.planted_components_graph(40, 4, 50, rng).with_unique_weights(rng)
    result = heterogeneous_mst(g, rng=random.Random(4))
    assert verify_mst(g, result.edges)
    assert len(result.edges) == g.n - 4


def test_total_weight_property(rng):
    from repro.local.mst import kruskal

    g = generators.random_connected_graph(35, 200, rng).with_unique_weights(rng)
    result = heterogeneous_mst(g, rng=random.Random(5))
    assert result.total_weight == sum(e[2] for e in kruskal(g))


def test_unweighted_graph_rejected(rng):
    g = generators.random_connected_graph(10, 15, rng)
    with pytest.raises(ValueError):
        heterogeneous_mst(g)


def test_planned_steps_grow_doubly_logarithmically():
    n = 1024
    # m/n = 2 -> 0 steps; growing density adds steps very slowly.
    assert planned_boruvka_steps(n, 2 * n, f=1 / 10) == 0
    s8 = planned_boruvka_steps(n, 8 * n, f=1 / 10)
    s64 = planned_boruvka_steps(n, 64 * n, f=1 / 10)
    s512 = planned_boruvka_steps(n, 512 * n, f=1 / 10)
    assert s8 <= s64 <= s512
    assert s512 <= math.ceil(math.log2(math.log2(512))) + 1


def test_planned_steps_shrink_with_f():
    n, m = 1024, 1024 * 64
    steps = [planned_boruvka_steps(n, m, f) for f in (1 / 10, 0.3, 0.6, 1.0)]
    assert steps == sorted(steps, reverse=True)
    assert steps[-1] == 0  # superlinear memory: no Borůvka needed


def test_step_budget_is_doubly_exponential_for_near_linear():
    n = 1024
    f = 1 / math.log2(n)
    assert boruvka_step_budget(n, f, 0) == 2**1
    assert boruvka_step_budget(n, f, 1) == 2**2
    assert boruvka_step_budget(n, f, 2) == 2**4
    assert boruvka_step_budget(n, f, 3) == 2**8


def test_rounds_grow_with_density_like_loglog(rng):
    """The measured round counts across a density sweep must grow, but only
    by the (constant) per-step cost times a log log factor."""
    n = 72
    rounds = []
    for ratio in (2, 16, 64):
        m = min(n * (n - 1) // 2, n * ratio)
        g = generators.random_connected_graph(n, m, rng).with_unique_weights(rng)
        result = heterogeneous_mst(g, rng=random.Random(ratio))
        assert verify_mst(g, result.edges)
        rounds.append(result.rounds)
    assert rounds[0] < rounds[1] <= rounds[2] + 10
    # Doubling the exponent of density adds at most ~one Borůvka step.
    assert rounds[2] - rounds[1] <= rounds[1] - rounds[0] + 25


def test_superlinear_machine_reduces_steps(rng):
    n, m = 80, 2400
    g = generators.random_connected_graph(n, m, rng).with_unique_weights(rng)
    steps = []
    for f in (0.25, 1.0):
        config = ModelConfig.heterogeneous_superlinear(n=n, m=m, f=f)
        result = heterogeneous_mst(g, config=config, rng=random.Random(6))
        assert verify_mst(g, result.edges)
        steps.append(result.boruvka_steps)
    assert steps[0] >= steps[1]


def test_sampling_attempt_counter(rng):
    g = generators.random_connected_graph(30, 90, rng).with_unique_weights(rng)
    result = heterogeneous_mst(g, rng=random.Random(7))
    assert result.sampling_attempts >= 1


def test_result_reports_ledger_rounds(rng):
    g = generators.random_connected_graph(30, 90, rng).with_unique_weights(rng)
    result = heterogeneous_mst(g, rng=random.Random(8))
    assert result.rounds == result.cluster.ledger.rounds > 0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_mst_property_random_graphs(seed):
    rng = random.Random(seed)
    n = rng.randrange(12, 36)
    m = rng.randrange(n - 1, min(4 * n, n * (n - 1) // 2))
    g = generators.random_connected_graph(n, m, rng).with_unique_weights(rng)
    result = heterogeneous_mst(g, rng=random.Random(seed + 1))
    assert verify_mst(g, result.edges)
