"""Section 5 — maximal matching (Theorem 5.1) and filtering (Theorem 5.5)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching import (
    filtering_matching,
    heterogeneous_matching,
    low_degree_phase_rounds,
)
from repro.graph import generators
from repro.graph.validation import is_matching, is_maximal_matching
from repro.mpc import ModelConfig


@pytest.fixture
def rng():
    return random.Random(91)


def test_maximal_on_sparse_graph(rng):
    g = generators.random_connected_graph(40, 80, rng)
    result = heterogeneous_matching(g, rng=random.Random(1))
    assert is_maximal_matching(g, result.matching)


def test_maximal_on_dense_graph(rng):
    g = generators.random_connected_graph(60, 900, rng)
    result = heterogeneous_matching(g, rng=random.Random(2))
    assert is_maximal_matching(g, result.matching)


def test_maximal_on_skewed_degrees(rng):
    """Preferential attachment: exercises the low/high degree split."""
    g = generators.preferential_attachment_graph(90, 3, rng)
    result = heterogeneous_matching(g, rng=random.Random(3))
    assert is_maximal_matching(g, result.matching)


def test_maximal_on_star(rng):
    """A star has one high-degree hub; matching size must be exactly 1."""
    from repro.graph import Graph

    g = Graph(20, [(0, v) for v in range(1, 20)])
    result = heterogeneous_matching(g, rng=random.Random(4))
    assert is_maximal_matching(g, result.matching)
    assert result.size == 1


def test_maximal_on_disconnected(rng):
    g = generators.planted_components_graph(40, 4, 40, rng)
    result = heterogeneous_matching(g, rng=random.Random(5))
    assert is_maximal_matching(g, result.matching)


def test_matching_is_valid_not_just_maximal(rng):
    g = generators.random_connected_graph(50, 400, rng)
    result = heterogeneous_matching(g, rng=random.Random(6))
    assert is_matching(g, result.matching)


def test_phase1_iteration_count_reported(rng):
    g = generators.random_connected_graph(40, 200, rng)
    result = heterogeneous_matching(g, rng=random.Random(7))
    assert result.phase1_iterations >= 1


def test_theory_charge_function():
    assert low_degree_phase_rounds(2) >= 1.0
    assert low_degree_phase_rounds(2**16) > low_degree_phase_rounds(2**4)


def test_bipartite_graph(rng):
    g = generators.random_bipartite_graph(20, 20, 100, rng)
    result = heterogeneous_matching(g, rng=random.Random(8))
    assert is_maximal_matching(g, result.matching)


# ----------------------------------------------------------------------
# Theorem 5.5 — filtering
# ----------------------------------------------------------------------
def test_filtering_matching_is_maximal(rng):
    g = generators.random_connected_graph(50, 600, rng)
    result = filtering_matching(g, rng=random.Random(9))
    assert is_maximal_matching(g, result.matching)


def test_filtering_levels_shrink_with_f(rng):
    g = generators.random_connected_graph(50, 900, rng)
    levels = []
    for f in (0.3, 1.0):
        config = ModelConfig.heterogeneous_superlinear(n=g.n, m=g.m, f=f)
        result = filtering_matching(g, config=config, rng=random.Random(10))
        assert is_maximal_matching(g, result.matching)
        levels.append(result.levels)
    assert levels[0] >= levels[1]


def test_filtering_rounds_track_levels(rng):
    g = generators.random_connected_graph(40, 500, rng)
    config = ModelConfig.heterogeneous_superlinear(n=g.n, m=g.m, f=0.4)
    result = filtering_matching(g, config=config, rng=random.Random(11))
    assert result.rounds >= result.levels  # at least one round per level


def test_filtering_on_tiny_graph_single_level(rng):
    g = generators.random_connected_graph(20, 25, rng)
    config = ModelConfig.heterogeneous_superlinear(n=g.n, m=g.m, f=1.0)
    result = filtering_matching(g, config=config, rng=random.Random(12))
    assert result.levels == 1
    assert is_maximal_matching(g, result.matching)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_matching_property_random_graphs(seed):
    rng = random.Random(seed)
    n = rng.randrange(12, 40)
    m = rng.randrange(n - 1, min(5 * n, n * (n - 1) // 2))
    g = generators.random_connected_graph(n, m, rng)
    result = heterogeneous_matching(g, rng=random.Random(seed + 1))
    assert is_maximal_matching(g, result.matching)
