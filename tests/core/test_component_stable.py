"""The component-stability wrapper (footnote 1)."""

import random

import pytest

from repro.core import (
    heterogeneous_matching,
    heterogeneous_mis,
    heterogeneous_mst,
    run_component_stable,
)
from repro.graph import generators
from repro.graph.validation import (
    is_maximal_independent_set,
    is_maximal_matching,
    verify_mst,
)


@pytest.fixture
def rng():
    return random.Random(151)


def test_matching_per_component_is_globally_maximal(rng):
    g = generators.planted_components_graph(50, 4, 50, rng)
    result = run_component_stable(g, heterogeneous_matching, rng=random.Random(1))
    assert result.num_components == 4
    matching = result.combined_edges(lambda r: r.matching)
    assert is_maximal_matching(g, matching)


def test_mis_per_component_is_globally_maximal(rng):
    g = generators.planted_components_graph(40, 3, 40, rng)
    result = run_component_stable(g, heterogeneous_mis, rng=random.Random(2))
    mis = result.combined_vertices(lambda r: r.vertices)
    assert is_maximal_independent_set(g, mis)


def test_mst_per_component_is_the_msf(rng):
    g = generators.planted_components_graph(40, 3, 40, rng).with_unique_weights(rng)
    result = run_component_stable(g, heterogeneous_mst, rng=random.Random(3))
    forest = result.combined_edges(lambda r: r.edges)
    assert verify_mst(g, forest)


def test_rounds_charge_connectivity_plus_max(rng):
    g = generators.planted_components_graph(40, 4, 40, rng)
    result = run_component_stable(g, heterogeneous_matching, rng=random.Random(4))
    slowest = max(r.rounds for r in result.component_results.values())
    assert result.rounds == result.connectivity_rounds + slowest


def test_single_component_graph(rng):
    g = generators.random_connected_graph(30, 90, rng)
    result = run_component_stable(g, heterogeneous_matching, rng=random.Random(5))
    assert result.num_components == 1


def test_component_stability_property(rng):
    """The defining property: the output on a component does not depend on
    the other components.  Run the wrapper on G1 ∪ G2 and on G1 alone with
    the same per-component seeds derived from the same wrapper seed; the
    component sizes of shared components must coincide in distribution —
    we check the stronger determinism: same component, same seed => same
    output size."""
    g = generators.planted_components_graph(30, 2, 30, rng)
    a = run_component_stable(g, heterogeneous_matching, rng=random.Random(6))
    b = run_component_stable(g, heterogeneous_matching, rng=random.Random(6))
    sizes_a = sorted(r.size for r in a.component_results.values())
    sizes_b = sorted(r.size for r in b.component_results.values())
    assert sizes_a == sizes_b


def test_labels_exposed(rng):
    g = generators.planted_components_graph(25, 2, 20, rng)
    result = run_component_stable(g, heterogeneous_matching, rng=random.Random(7))
    from repro.graph.traversal import component_labels

    assert result.labels == component_labels(g)
