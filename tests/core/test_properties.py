"""Cross-cutting hypothesis property tests over random workloads.

Each property runs a full distributed algorithm on a random graph and
checks the output certificate with the independent sequential validators.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    heterogeneous_coloring,
    heterogeneous_connectivity,
    heterogeneous_mis,
    heterogeneous_spanner,
    solve_one_vs_two_cycles,
)
from repro.graph import generators
from repro.graph.traversal import component_labels
from repro.graph.validation import (
    is_maximal_independent_set,
    is_proper_coloring,
    spanner_stretch,
)

SEED = st.integers(min_value=0, max_value=10**6)


def random_graph(seed: int, connected: bool = True):
    rng = random.Random(seed)
    n = rng.randrange(10, 32)
    m = rng.randrange(n - 1, min(4 * n, n * (n - 1) // 2))
    if connected:
        return generators.random_connected_graph(n, m, rng)
    components = rng.randrange(1, 4)
    return generators.planted_components_graph(n, components, m, rng)


@settings(max_examples=8, deadline=None)
@given(seed=SEED)
def test_connectivity_always_matches_ground_truth(seed):
    graph = random_graph(seed, connected=False)
    result = heterogeneous_connectivity(graph, rng=random.Random(seed + 1))
    assert result.labels == component_labels(graph)


@settings(max_examples=8, deadline=None)
@given(seed=SEED, k=st.integers(min_value=1, max_value=4))
def test_spanner_stretch_always_within_bound(seed, k):
    graph = random_graph(seed)
    result = heterogeneous_spanner(graph, k=k, rng=random.Random(seed + 1))
    assert spanner_stretch(graph, result.edges) <= result.stretch_bound


@settings(max_examples=8, deadline=None)
@given(seed=SEED)
def test_mis_always_maximal_independent(seed):
    graph = random_graph(seed)
    result = heterogeneous_mis(graph, rng=random.Random(seed + 1))
    assert is_maximal_independent_set(graph, result.vertices)


@settings(max_examples=8, deadline=None)
@given(seed=SEED)
def test_coloring_always_proper_delta_plus_one(seed):
    graph = random_graph(seed)
    result = heterogeneous_coloring(graph, rng=random.Random(seed + 1))
    assert is_proper_coloring(graph, result.colors, graph.max_degree + 1)


@settings(max_examples=10, deadline=None)
@given(seed=SEED)
def test_cycle_decision_always_correct(seed):
    rng = random.Random(seed)
    n = rng.randrange(8, 60)
    graph, truth = generators.one_or_two_cycles(max(n, 8), rng)
    result = solve_one_vs_two_cycles(graph, rng=random.Random(seed + 1))
    assert result.num_cycles == truth
    assert result.rounds == 1
