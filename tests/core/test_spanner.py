"""Section 4 — spanners: modified Baswana–Sen, clustering graphs, and the
combined Theorem 4.1 construction."""

import random

import pytest

from repro.core.spanner import (
    build_clustering_graphs,
    cluster_phase,
    heterogeneous_spanner,
    level_sampling_probability,
    modified_baswana_sen_local,
    modified_baswana_sen_mpc,
)
from repro.graph import generators
from repro.graph.validation import spanner_stretch, verify_spanner
from repro.mpc import Cluster, ModelConfig
from repro.primitives.edgestore import EdgeStore


@pytest.fixture
def rng():
    return random.Random(81)


# ----------------------------------------------------------------------
# cluster_phase (lines 1-15 of Algorithm 2)
# ----------------------------------------------------------------------
def test_cluster_phase_every_vertex_has_removal_level(rng):
    g = generators.random_connected_graph(20, 60, rng)
    adjacency = {}
    for u, v in g.edges:
        adjacency.setdefault(u, []).append((v, (u, v)))
        adjacency.setdefault(v, []).append((u, (u, v)))
    phase = cluster_phase(range(g.n), 3, 20 ** (-1 / 3), [adjacency] * 2, rng)
    assert set(phase.removal_level) == set(range(g.n))
    assert all(1 <= t <= 3 for t in phase.removal_level.values())


def test_cluster_phase_level_zero_is_identity(rng):
    phase = cluster_phase(range(5), 2, 0.5, [{}], rng)
    assert phase.centers[0] == {v: v for v in range(5)}


def test_cluster_phase_last_level_is_empty(rng):
    phase = cluster_phase(range(5), 2, 0.9, [{}], rng)
    assert phase.centers[-1] == {}


def test_cluster_phase_k1_removes_everyone_immediately(rng):
    phase = cluster_phase(range(6), 1, 0.5, [], rng)
    assert all(t == 1 for t in phase.removal_level.values())


# ----------------------------------------------------------------------
# modified Baswana–Sen (Lemma 4.3)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("p", [1.0, 0.4])
def test_local_modified_bs_stretch(rng, p):
    g = generators.random_connected_graph(40, 260, rng)
    k = 3
    result = modified_baswana_sen_local(
        g.n, [(e[0], e[1]) for e in g.edges], k, p, rng
    )
    assert verify_spanner(g, result["spanner"], stretch=2 * k - 1)


def test_local_modified_bs_p1_size_comparable_to_classic(rng):
    """At p = 1 the modified algorithm *is* Baswana–Sen (same expected
    size O(k n^{1+1/k}))."""
    n = 60
    g = generators.gnm_random_graph(n, 1200, rng)
    sizes = [
        len(
            modified_baswana_sen_local(
                n, [(e[0], e[1]) for e in g.edges], 2, 1.0, random.Random(s)
            )["spanner"]
        )
        for s in range(4)
    ]
    assert sum(sizes) / len(sizes) <= 8 * 2 * n**1.5


def test_local_modified_bs_overapproximation_grows_as_p_shrinks(rng):
    """Lemma 4.3: expected size O(k n^{1+1/k} / p) — halving p should not
    shrink the spanner, and small p should inflate it."""
    n = 60
    g = generators.gnm_random_graph(n, 1200, rng)

    def average_size(p):
        return sum(
            len(
                modified_baswana_sen_local(
                    n, [(e[0], e[1]) for e in g.edges], 2, p, random.Random(s)
                )["spanner"]
            )
            for s in range(5)
        ) / 5

    full = average_size(1.0)
    sparse = average_size(0.15)
    assert sparse > full


def test_local_modified_bs_breakdown_partitions(rng):
    g = generators.random_connected_graph(30, 150, rng)
    result = modified_baswana_sen_local(
        g.n, [(e[0], e[1]) for e in g.edges], 2, 0.5, rng
    )
    assert result["spanner"] == result["recluster_edges"] | result["removal_edges"]


def test_mpc_modified_bs_matches_interface(rng):
    g = generators.random_connected_graph(40, 220, rng)
    config = ModelConfig.heterogeneous(n=g.n, m=g.m)
    cluster = Cluster(config, rng=random.Random(1))
    records = [(u, v, (u, v)) for u, v in g.edge_set()]
    store = EdgeStore.create(cluster, records)
    result = modified_baswana_sen_mpc(
        cluster, store, list(range(g.n)), k=2, p=0.5, rng=rng
    )
    spanner = {payload for payload in result["spanner"]}
    assert verify_spanner(g, spanner, stretch=3)
    assert cluster.ledger.rounds > 0


# ----------------------------------------------------------------------
# clustering graphs (Algorithm 5 / Lemma A.1)
# ----------------------------------------------------------------------
def build_clustering(g, seed):
    config = ModelConfig.heterogeneous(n=g.n, m=g.m)
    cluster = Cluster(config, rng=random.Random(seed))
    store = EdgeStore.create(cluster, [(e[0], e[1]) for e in g.edges])
    return cluster, build_clustering_graphs(cluster, store, g.n, random.Random(seed))


def test_clustering_sigma_covers_all_vertices(rng):
    g = generators.random_connected_graph(40, 200, rng)
    _, clustering = build_clustering(g, 2)
    assert set(clustering.sigma) == set(range(g.n))


def test_clustering_star_edges_are_graph_edges(rng):
    g = generators.random_connected_graph(40, 200, rng)
    _, clustering = build_clustering(g, 3)
    assert clustering.star_edges <= g.edge_set()


def test_clustering_stars_have_radius_one(rng):
    """sigma(u) is u itself or an adjacent vertex."""
    g = generators.random_connected_graph(40, 200, rng)
    _, clustering = build_clustering(g, 4)
    adjacency = {v: set() for v in range(g.n)}
    for u, v in g.edges:
        adjacency[u].add(v)
        adjacency[v].add(u)
    for u, center in clustering.sigma.items():
        assert center == u or center in adjacency[u]


def test_clustering_every_edge_covered(rng):
    """Lemma A.1 property 2: every edge is inside a star or induces a
    clustering-graph edge at its degree scale."""
    g = generators.random_connected_graph(40, 200, rng)
    _, clustering = build_clustering(g, 5)
    covered = set(clustering.star_edges)
    represented = set()
    for c1, c2, (scale, original) in clustering.store.items():
        represented.add(tuple(sorted(original)))
    for u, v in g.edge_set():
        same_star = clustering.sigma[u] == clustering.sigma[v]
        has_ai_edge = any(
            (min(clustering.sigma[u], clustering.sigma[v]),
             max(clustering.sigma[u], clustering.sigma[v]))
            == (c1, c2)
            for c1, c2, _ in clustering.store.items()
        )
        assert same_star or has_ai_edge


def test_clustering_edges_deduplicated(rng):
    g = generators.random_connected_graph(40, 240, rng)
    _, clustering = build_clustering(g, 6)
    seen = set()
    for c1, c2, (scale, original) in clustering.store.items():
        key = (scale, c1, c2)
        assert key not in seen
        seen.add(key)


def test_clustering_level_counts_reported(rng):
    g = generators.random_connected_graph(40, 240, rng)
    _, clustering = build_clustering(g, 7)
    assert sum(clustering.level_edge_counts.values()) == len(
        list(clustering.store.items())
    )


# ----------------------------------------------------------------------
# full spanner (Theorem 4.1)
# ----------------------------------------------------------------------
def test_sampling_probability_schedule():
    assert level_sampling_probability(3, 0) == 1.0
    assert level_sampling_probability(2, 3) == 1.0  # small scales: keep all
    assert level_sampling_probability(2, 10) < 1.0  # dense scales: sample


@pytest.mark.parametrize("k", [2, 3])
def test_spanner_stretch_bound(rng, k):
    g = generators.random_connected_graph(45, 350, rng)
    result = heterogeneous_spanner(g, k=k, rng=random.Random(k))
    assert verify_spanner(g, result.edges, stretch=result.stretch_bound)
    assert result.stretch_bound == 6 * k - 1


def test_spanner_compresses_dense_graphs(rng):
    g = generators.gnm_random_graph(60, 1400, rng)
    result = heterogeneous_spanner(g, k=2, rng=random.Random(9))
    assert result.size < g.m / 3
    assert spanner_stretch(g, result.edges) <= result.stretch_bound


def test_spanner_size_scales_with_k(rng):
    """Larger k: sparser spanner (on average)."""
    g = generators.gnm_random_graph(70, 2000, rng)

    def average_size(k):
        return sum(
            heterogeneous_spanner(g, k=k, rng=random.Random(s)).size
            for s in range(3)
        ) / 3

    assert average_size(4) <= average_size(1) + g.n


def test_spanner_k1_preserves_distances(rng):
    g = generators.random_connected_graph(25, 80, rng)
    result = heterogeneous_spanner(g, k=1, rng=random.Random(10))
    assert spanner_stretch(g, result.edges) <= 5.0  # 6k-1 with k=1


def test_weighted_spanner_stretch(rng):
    g = generators.random_connected_graph(30, 140, rng).with_unique_weights(rng)
    result = heterogeneous_spanner(g, k=2, rng=random.Random(11))
    assert result.stretch_bound == 12 * 2 - 2
    assert spanner_stretch(g, result.edges) <= result.stretch_bound


def test_weighted_spanner_edges_carry_weights(rng):
    g = generators.random_connected_graph(20, 60, rng).with_unique_weights(rng)
    result = heterogeneous_spanner(g, k=2, rng=random.Random(12))
    weight_map = g.weight_map()
    for u, v, w in result.edges:
        assert weight_map[(u, v)] == w


def test_invalid_k_rejected(rng):
    g = generators.random_connected_graph(10, 20, rng)
    with pytest.raises(ValueError):
        heterogeneous_spanner(g, k=0)


def test_spanner_rounds_constant_in_size(rng):
    """O(1) rounds: the round count must not grow with the graph size."""
    rounds = []
    for n, m in ((30, 150), (60, 600)):
        g = generators.random_connected_graph(n, m, rng)
        result = heterogeneous_spanner(g, k=2, rng=random.Random(n))
        rounds.append(result.rounds)
    assert rounds[1] <= rounds[0] * 2 + 40  # bounded, not scaling with m
