"""The Borůvka saturation rule (DESIGN.md substitution 4).

The paper's Algorithm 3 pseudocode contracts along a plain Kruskal pass
over each vertex's quota of lightest submitted edges.  This file contains
the counterexample showing that rule alone is unsound, and checks that our
implementation (with the Lotker et al. saturation rule) handles it.
"""

import random

import pytest

from repro.core.mst import heterogeneous_mst
from repro.graph import Graph
from repro.graph.validation import verify_mst
from repro.local.mst import kruskal_edges
from repro.mpc import ModelConfig


def counterexample_graph() -> Graph:
    """With quota k=2, naive collect-and-Kruskal selects the non-MST edge
    (u, v):

    * u(0) has only two edges: {u,x}=5 and {u,v}=10 — both submitted;
    * x(1) has pendant edges of weight 1, 2 — its submissions hide
      {u,x}=5 and {x,v}=6;
    * v(2) has pendant edges of weight 3, 4 — its submissions hide
      {u,v}=10 and {x,v}=6.

    The collected set {1,2,3,4,5,10} is acyclic, so plain Kruskal adds
    {u,v}=10; but the true MST routes u–v through {x,v}=6 and excludes 10.
    """
    edges = [
        (0, 1, 5),   # u-x
        (0, 2, 10),  # u-v
        (1, 2, 6),   # x-v
        (1, 3, 1),   # x-p1
        (1, 4, 2),   # x-p2
        (2, 5, 3),   # v-q1
        (2, 6, 4),   # v-q2
    ]
    return Graph(7, edges)


def naive_contract(quota: int, graph: Graph) -> set[tuple[int, int, int]]:
    """The unsound rule from the pseudocode, for demonstration."""
    adjacency: dict[int, list[tuple]] = {}
    for u, v, w in graph.edges:
        adjacency.setdefault(u, []).append((w, v))
        adjacency.setdefault(v, []).append((w, u))
    submitted = set()
    for v, incident in adjacency.items():
        for w, other in sorted(incident)[:quota]:
            submitted.add((min(v, other), max(v, other), w))
    return set(kruskal_edges(graph.n, sorted(submitted)))


def test_naive_rule_selects_a_non_mst_edge():
    """Documents the gap: the pseudocode's rule picks (0,2,10)."""
    graph = counterexample_graph()
    chosen = naive_contract(2, graph)
    assert (0, 2, 10) in chosen  # the wrong edge
    true_mst = set(kruskal_edges(graph.n, graph.edges))
    assert (0, 2, 10) not in true_mst


def test_saturation_rule_yields_exact_mst_on_counterexample():
    graph = counterexample_graph()
    result = heterogeneous_mst(graph, rng=random.Random(1))
    assert verify_mst(graph, result.edges)
    assert all((u, v) != (0, 2) for u, v, _ in result.edges)


def test_boruvka_step_skips_unsafe_edge_directly():
    """Drive one contraction step with quota 2 on the counterexample: the
    saturation rule must not record the non-MST edge (0, 2, 10)."""
    from repro.core.mst import _boruvka_step
    from repro.graph.union_find import UnionFind
    from repro.mpc import Cluster
    from repro.primitives.edgestore import EdgeStore

    graph = counterexample_graph()
    config = ModelConfig.heterogeneous(n=graph.n, m=graph.m)
    cluster = Cluster(config, rng=random.Random(2))
    records = [(u, v, w, u, v) for u, v, w in graph.edges]
    store = EdgeStore.create(cluster, records)
    mst_edges: list = []
    _boruvka_step(cluster, store, quota=2, contraction=UnionFind(range(graph.n)),
                  mst_edges=mst_edges)
    chosen = {(u, v) for u, v, _ in mst_edges}
    true_mst = {(u, v) for u, v, _ in kruskal_edges(graph.n, graph.edges)}
    assert chosen <= true_mst  # only cut-property-certified edges recorded
    assert (0, 2) not in chosen


@pytest.mark.parametrize("seed", range(6))
def test_saturation_rule_on_pendant_heavy_graphs(seed):
    """Random graphs biased toward the counterexample pattern (pendant-
    decorated hubs with heavy bridges) at density that forces at least one
    real Borůvka step."""
    rng = random.Random(seed)
    edges = []
    weight = 1
    hubs = list(range(8))
    next_vertex = 8
    for hub in hubs:
        for _ in range(2):
            edges.append((hub, next_vertex, weight))
            weight += 1
            next_vertex += 1
    seen = {(min(u, v), max(u, v)) for u, v, _ in edges}
    hub_pairs = [(a, b) for a in hubs for b in hubs if a < b]
    rng.shuffle(hub_pairs)
    for a, b in hub_pairs:
        edges.append((a, b, weight + rng.randrange(40)))
        weight += 50
        seen.add((a, b))
    # extra random edges to push density past the Borůvka trigger
    while len(edges) < 3 * next_vertex:
        a, b = rng.randrange(next_vertex), rng.randrange(next_vertex)
        if a == b:
            continue
        key = (min(a, b), max(a, b))
        if key in seen:
            continue
        seen.add(key)
        edges.append((key[0], key[1], weight + rng.randrange(40)))
        weight += 50
    graph = Graph(next_vertex, edges)
    result = heterogeneous_mst(graph, rng=random.Random(seed + 10))
    assert result.boruvka_steps >= 1
    assert verify_mst(graph, result.edges)
