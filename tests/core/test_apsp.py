"""Corollary 4.2 — approximate APSP via an O(log n)-spanner."""

import math
import random

import pytest

from repro.core.spanner import build_apsp_oracle
from repro.graph import generators
from repro.graph.traversal import bfs_distances, dijkstra


@pytest.fixture
def rng():
    return random.Random(121)


def test_oracle_never_underestimates(rng):
    g = generators.random_connected_graph(35, 140, rng)
    oracle = build_apsp_oracle(g, rng=random.Random(1))
    for source in (0, 11, 22):
        truth = bfs_distances(g, source)
        approx = oracle.distances_from(source)
        for v in range(g.n):
            assert approx[v] >= truth[v]


def test_oracle_stretch_bound(rng):
    g = generators.random_connected_graph(35, 140, rng)
    oracle = build_apsp_oracle(g, rng=random.Random(2))
    worst = 1.0
    for source in range(0, g.n, 5):
        truth = bfs_distances(g, source)
        approx = oracle.distances_from(source)
        for v in range(g.n):
            if truth[v] > 0:
                worst = max(worst, approx[v] / truth[v])
    assert worst <= oracle.stretch_bound


def test_oracle_distance_is_symmetric(rng):
    g = generators.random_connected_graph(25, 70, rng)
    oracle = build_apsp_oracle(g, rng=random.Random(3))
    assert oracle.distance(3, 17) == oracle.distance(17, 3)


def test_oracle_on_weighted_graph(rng):
    g = generators.random_connected_graph(25, 80, rng).with_unique_weights(rng)
    oracle = build_apsp_oracle(g, rng=random.Random(4))
    for source in (0, 12):
        truth = dijkstra(g, source)
        approx = oracle.distances_from(source)
        for v in range(g.n):
            assert truth[v] <= approx[v] <= oracle.stretch_bound * max(truth[v], 1)


def test_oracle_preserves_disconnection(rng):
    g = generators.planted_components_graph(30, 3, 25, rng)
    oracle = build_apsp_oracle(g, rng=random.Random(5))
    truth = bfs_distances(g, 0)
    approx = oracle.distances_from(0)
    for v in range(g.n):
        assert math.isinf(approx[v]) == math.isinf(truth[v])


def test_oracle_spanner_is_near_linear_size(rng):
    g = generators.gnm_random_graph(60, 1200, rng)
    oracle = build_apsp_oracle(g, rng=random.Random(6))
    # k = ceil(log2 n): size O~(n), far below m.
    assert oracle.spanner.size <= 12 * g.n


def test_custom_k(rng):
    g = generators.random_connected_graph(20, 60, rng)
    oracle = build_apsp_oracle(g, rng=random.Random(7), k=2)
    assert oracle.stretch_bound == 11
