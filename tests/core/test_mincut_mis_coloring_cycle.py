"""Appendix C.2–C.5 and the 1-vs-2 cycle problem."""

import random

import pytest

from repro.core.coloring import heterogeneous_coloring, palette_size
from repro.core.cycle import solve_one_vs_two_cycles
from repro.core.mincut import approximate_weighted_mincut, exact_unweighted_mincut
from repro.core.mis import heterogeneous_mis, prefix_thresholds
from repro.graph import Graph, generators
from repro.graph.validation import (
    is_maximal_independent_set,
    is_proper_coloring,
)
from repro.local.mincut import min_cut_value


@pytest.fixture
def rng():
    return random.Random(111)


# ----------------------------------------------------------------------
# exact unweighted min-cut (Theorem C.3)
# ----------------------------------------------------------------------
def test_mincut_on_planted_cut(rng):
    g = generators.planted_cut_graph(36, 3, 4.0, rng)
    truth = min_cut_value(g.n, g.edges)
    result = exact_unweighted_mincut(g, rng=random.Random(1), attempts=14)
    assert result.value == truth


def test_mincut_on_cycle(rng):
    g = generators.cycle_graph(20, rng)
    result = exact_unweighted_mincut(g, rng=random.Random(2), attempts=10)
    assert result.value == 2


def test_mincut_singleton_case(rng):
    """A pendant vertex: the min cut is the singleton degree-1 cut, found
    by the degree scan rather than contraction."""
    base = generators.complete_graph(8)
    edges = list(base.edges) + [(0, 8)]
    g = Graph(9, edges)
    result = exact_unweighted_mincut(g, rng=random.Random(3), attempts=10)
    assert result.value == 1


def test_mincut_never_underestimates(rng):
    """Contracted cuts are real cuts, so the reported value is always >=
    the true min cut (and equals it w.h.p.)."""
    g = generators.planted_cut_graph(30, 2, 3.0, rng)
    truth = min_cut_value(g.n, g.edges)
    for seed in range(3):
        result = exact_unweighted_mincut(g, rng=random.Random(seed), attempts=6)
        assert result.value >= truth


# ----------------------------------------------------------------------
# (1±ε) weighted min-cut (Theorem C.4)
# ----------------------------------------------------------------------
def test_weighted_mincut_small_lambda_exact_path(rng):
    g = generators.planted_cut_graph(30, 2, 3.0, rng).with_unique_weights(rng)
    truth = min_cut_value(g.n, g.edges)
    result = approximate_weighted_mincut(g, epsilon=0.4, rng=random.Random(4))
    assert (1 - 0.45) * truth <= result.value <= (1 + 0.45) * truth


def test_weighted_mincut_requires_weights(rng):
    g = generators.cycle_graph(10)
    with pytest.raises(ValueError):
        approximate_weighted_mincut(g)


def test_weighted_mincut_rounds_constant(rng):
    g = generators.planted_cut_graph(24, 2, 3.0, rng).with_unique_weights(rng)
    result = approximate_weighted_mincut(g, epsilon=0.5, rng=random.Random(5))
    assert result.rounds <= 10


# ----------------------------------------------------------------------
# MIS (Theorem C.6)
# ----------------------------------------------------------------------
def test_mis_is_maximal_independent(rng):
    g = generators.random_connected_graph(60, 500, rng)
    result = heterogeneous_mis(g, rng=random.Random(6))
    assert is_maximal_independent_set(g, result.vertices)


def test_mis_on_complete_graph():
    g = generators.complete_graph(12)
    result = heterogeneous_mis(g, rng=random.Random(7))
    assert result.size == 1
    assert is_maximal_independent_set(g, result.vertices)


def test_mis_on_edgeless_graph():
    g = Graph(8, [])
    result = heterogeneous_mis(g, rng=random.Random(8))
    assert result.vertices == set(range(8))


def test_mis_on_skewed_graph(rng):
    g = generators.preferential_attachment_graph(80, 3, rng)
    result = heterogeneous_mis(g, rng=random.Random(9))
    assert is_maximal_independent_set(g, result.vertices)


def test_mis_iterations_are_loglog(rng):
    thresholds_small = prefix_thresholds(1000, 16)
    thresholds_large = prefix_thresholds(1000, 2**16)
    assert len(thresholds_large) <= 3 * len(thresholds_small)
    assert len(thresholds_large) <= 14  # log log growth


def test_mis_reproducible(rng):
    g = generators.random_connected_graph(30, 120, rng)
    a = heterogeneous_mis(g, rng=random.Random(10))
    b = heterogeneous_mis(g, rng=random.Random(10))
    assert a.vertices == b.vertices


# ----------------------------------------------------------------------
# (Δ+1) coloring (Theorem C.7)
# ----------------------------------------------------------------------
def test_coloring_is_proper_with_delta_plus_one(rng):
    g = generators.random_connected_graph(50, 400, rng)
    result = heterogeneous_coloring(g, rng=random.Random(11))
    assert result.num_colors_allowed == g.max_degree + 1
    assert is_proper_coloring(g, result.colors, result.num_colors_allowed)


def test_coloring_on_complete_graph_needs_all_colors():
    g = generators.complete_graph(9)
    result = heterogeneous_coloring(g, rng=random.Random(12))
    assert is_proper_coloring(g, result.colors, 9)
    assert len(set(result.colors)) == 9


def test_coloring_on_path_uses_few_colors():
    g = Graph(10, [(i, i + 1) for i in range(9)])
    result = heterogeneous_coloring(g, rng=random.Random(13))
    assert is_proper_coloring(g, result.colors, 3)


def test_coloring_on_bipartite(rng):
    g = generators.random_bipartite_graph(15, 15, 60, rng)
    result = heterogeneous_coloring(g, rng=random.Random(14))
    assert is_proper_coloring(g, result.colors, result.num_colors_allowed)


def test_palette_size_is_logarithmic():
    assert palette_size(1 << 20, 1 << 20) <= 4 * 21
    assert palette_size(100, 3) == 4  # capped by Δ+1


def test_coloring_rounds_constant(rng):
    g = generators.random_connected_graph(40, 200, rng)
    result = heterogeneous_coloring(g, rng=random.Random(15))
    assert result.rounds <= 30


# ----------------------------------------------------------------------
# 1-vs-2 cycles
# ----------------------------------------------------------------------
def test_detects_single_cycle(rng):
    g = generators.cycle_graph(40, rng)
    assert solve_one_vs_two_cycles(g, rng=random.Random(16)).num_cycles == 1


def test_detects_two_cycles(rng):
    g = generators.two_cycles(40, rng)
    assert solve_one_vs_two_cycles(g, rng=random.Random(17)).num_cycles == 2


def test_cycle_problem_is_one_round(rng):
    g = generators.cycle_graph(60, rng)
    result = solve_one_vs_two_cycles(g, rng=random.Random(18))
    assert result.rounds == 1


def test_cycle_problem_random_instances(rng):
    for seed in range(6):
        g, truth = generators.one_or_two_cycles(30, random.Random(seed))
        result = solve_one_vs_two_cycles(g, rng=random.Random(seed))
        assert result.num_cycles == truth
