"""Appendix C.1 — sketch connectivity and (1+ε)-approximate MST."""

import random

import pytest

from repro.core.connectivity import heterogeneous_connectivity
from repro.core.mst_approx import approximate_mst_weight, geometric_thresholds
from repro.graph import Graph, generators
from repro.graph.traversal import component_labels
from repro.local.mst import kruskal


@pytest.fixture
def rng():
    return random.Random(101)


def test_connectivity_on_connected_graph(rng):
    g = generators.random_connected_graph(40, 120, rng)
    result = heterogeneous_connectivity(g, rng=random.Random(1))
    assert result.num_components == 1
    assert result.labels == component_labels(g)


def test_connectivity_on_planted_components(rng):
    g = generators.planted_components_graph(50, 5, 40, rng)
    result = heterogeneous_connectivity(g, rng=random.Random(2))
    assert result.num_components == 5
    assert result.labels == component_labels(g)


def test_connectivity_on_edgeless_graph():
    g = Graph(10, [])
    result = heterogeneous_connectivity(g, rng=random.Random(3))
    assert result.num_components == 10
    assert result.labels == list(range(10))


def test_connectivity_rounds_are_constant(rng):
    """O(1) rounds regardless of size: the defining claim of Theorem C.1."""
    rounds = []
    for n, m in ((30, 60), (60, 400)):
        g = generators.random_connected_graph(n, m, rng)
        result = heterogeneous_connectivity(g, rng=random.Random(n))
        rounds.append(result.rounds)
    assert all(r <= 8 for r in rounds)


def test_connectivity_reproducible(rng):
    g = generators.planted_components_graph(30, 3, 25, rng)
    a = heterogeneous_connectivity(g, rng=random.Random(7))
    b = heterogeneous_connectivity(g, rng=random.Random(7))
    assert a.labels == b.labels


def test_connectivity_on_two_cycles(rng):
    g = generators.two_cycles(24, rng)
    result = heterogeneous_connectivity(g, rng=random.Random(4))
    assert result.num_components == 2


# ----------------------------------------------------------------------
# (1+ε)-approx MST
# ----------------------------------------------------------------------
def test_geometric_thresholds_cover_range():
    thresholds = geometric_thresholds(100, epsilon=0.5)
    assert thresholds[0] == 1
    assert thresholds[-1] == 100
    for a, b in zip(thresholds, thresholds[1:]):
        assert b <= int(a * 1.5) + 1


def test_geometric_thresholds_small_range():
    assert geometric_thresholds(1, 0.5) == [1]


def test_approx_mst_within_band(rng):
    g = generators.random_connected_graph(40, 150, rng).with_unique_weights(rng)
    truth = sum(e[2] for e in kruskal(g))
    result = approximate_mst_weight(g, epsilon=0.5, rng=random.Random(5), copies=2)
    assert truth <= result.estimate <= (1.0 + 0.5 + 0.35) * truth


def test_approx_mst_tighter_epsilon_is_tighter(rng):
    g = generators.random_connected_graph(35, 120, rng).with_unique_weights(rng)
    truth = sum(e[2] for e in kruskal(g))
    loose = approximate_mst_weight(g, epsilon=1.0, rng=random.Random(6), copies=2)
    tight = approximate_mst_weight(g, epsilon=0.25, rng=random.Random(6), copies=2)
    assert abs(tight.estimate - truth) <= abs(loose.estimate - truth) + 0.1 * truth


def test_approx_mst_on_uniform_weights():
    """All weights 1 (via a path with weights 1..n-1 reversed is unique, so
    instead use a star with weights 1..n-1): estimate >= truth always."""
    g = Graph(10, [(0, v, v) for v in range(1, 10)])
    truth = sum(e[2] for e in g.edges)  # a tree: MST = all edges
    result = approximate_mst_weight(g, epsilon=0.5, rng=random.Random(7), copies=2)
    assert result.estimate >= truth


def test_approx_mst_requires_weights(rng):
    g = generators.random_connected_graph(10, 15, rng)
    with pytest.raises(ValueError):
        approximate_mst_weight(g)


def test_approx_mst_requires_positive_epsilon(rng):
    g = generators.random_connected_graph(10, 15, rng).with_unique_weights(rng)
    with pytest.raises(ValueError):
        approximate_mst_weight(g, epsilon=0.0)


def test_approx_mst_rounds_constant(rng):
    g = generators.random_connected_graph(30, 90, rng).with_unique_weights(rng)
    result = approximate_mst_weight(g, epsilon=0.5, rng=random.Random(8), copies=2)
    assert result.rounds <= 8  # parallel threshold instances share rounds
