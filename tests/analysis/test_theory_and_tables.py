"""Theory predictions and the table harness."""

import random

import pytest

from repro.analysis import TABLE1, Sweep, density_sweep, predicted_rounds, render_table


def test_table1_has_all_nine_problems():
    assert len(TABLE1) == 9
    problems = {row.problem for row in TABLE1}
    assert any("MST" in p for p in problems)
    assert any("matching" in p.lower() for p in problems)


def test_table1_marks_new_results():
    new = [row.problem for row in TABLE1 if row.new_in_paper]
    assert len(new) == 3  # MST, spanner, maximal matching


def test_mst_prediction_grows_doubly_logarithmically():
    slow = predicted_rounds("mst", "heterogeneous", n=1000, m=4_000)
    fast = predicted_rounds("mst", "heterogeneous", n=1000, m=256_000)
    assert slow <= fast <= slow + 4


def test_mst_prediction_sublinear_grows_with_n():
    assert predicted_rounds("mst", "sublinear", n=10**6, m=10**7) > predicted_rounds(
        "mst", "sublinear", n=100, m=1000
    )


def test_matching_prediction_sqrt_shape():
    d16 = predicted_rounds("matching", "heterogeneous", n=100, m=100 * 16)
    d256 = predicted_rounds("matching", "heterogeneous", n=100, m=100 * 256)
    assert d16 < d256 < 4 * d16


def test_superlinear_f_parameter():
    assert predicted_rounds("matching", "heterogeneous", n=100, m=1000, f=0.5) == 2.0
    assert predicted_rounds("mst", "heterogeneous", n=2**20, m=2**30, f=1.0) >= 1.0


def test_constant_round_problems_predict_one():
    for problem in ("connectivity", "spanner", "coloring", "mincut"):
        assert predicted_rounds(problem, "heterogeneous", n=100, m=1000) == 1.0


def test_unknown_combination_raises():
    with pytest.raises(ValueError):
        predicted_rounds("sorting", "sublinear", n=10, m=10)


def test_render_table_alignment():
    rows = [{"a": 1, "b": "xy"}, {"a": 223, "b": "z"}]
    text = render_table(rows, ["a", "b"])
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert lines[0].startswith("a")
    assert all(len(line) == len(lines[0]) or True for line in lines)


def test_render_table_formats_floats():
    text = render_table([{"x": 3.14159}], ["x"])
    assert "3.14" in text and "3.14159" not in text


def test_sweep_accumulates_rows():
    sweep = Sweep(seed=1)
    sweep.add_row(a=1)
    sweep.add_row(a=2)
    assert len(sweep.rows) == 2
    assert "a" in sweep.render(["a"])


def test_sweep_rngs_are_deterministic():
    a, b = Sweep(seed=5), Sweep(seed=5)
    assert a.rng(3).random() == b.rng(3).random()


def test_density_sweep_runs_runner_per_point():
    calls = []

    def runner(graph, rng):
        calls.append(graph.m)
        return {"rounds": 1}

    sweep = density_sweep(30, [2, 4], runner, problem="mst", weighted=True)
    assert len(sweep.rows) == 2
    assert calls == [60, 120]
    assert all("theory_het" in row and "theory_sub" in row for row in sweep.rows)
