"""Theory predictions and the table harness."""

import math
import random

import pytest

from repro.analysis import (
    TABLE1,
    Sweep,
    density_sweep,
    loglog,
    loglog_raw,
    predicted_rounds,
    render_table,
)


def test_table1_has_all_nine_problems():
    assert len(TABLE1) == 9
    problems = {row.problem for row in TABLE1}
    assert any("MST" in p for p in problems)
    assert any("matching" in p.lower() for p in problems)


def test_table1_marks_new_results():
    new = [row.problem for row in TABLE1 if row.new_in_paper]
    assert len(new) == 3  # MST, spanner, maximal matching


def test_mst_prediction_grows_doubly_logarithmically():
    slow = predicted_rounds("mst", "heterogeneous", n=1000, m=4_000)
    fast = predicted_rounds("mst", "heterogeneous", n=1000, m=256_000)
    assert slow <= fast <= slow + 4


def test_mst_prediction_sublinear_grows_with_n():
    assert predicted_rounds("mst", "sublinear", n=10**6, m=10**7) > predicted_rounds(
        "mst", "sublinear", n=100, m=1000
    )


def test_matching_prediction_sqrt_shape():
    d16 = predicted_rounds("matching", "heterogeneous", n=100, m=100 * 16)
    d256 = predicted_rounds("matching", "heterogeneous", n=100, m=100 * 256)
    assert d16 < d256 < 4 * d16


def test_superlinear_f_parameter():
    assert predicted_rounds("matching", "heterogeneous", n=100, m=1000, f=0.5) == 2.0
    assert predicted_rounds("mst", "heterogeneous", n=2**20, m=2**30, f=1.0) >= 1.0


def test_constant_round_problems_predict_one():
    for problem in ("connectivity", "spanner", "coloring", "mincut"):
        assert predicted_rounds(problem, "heterogeneous", n=100, m=1000) == 1.0


def test_unknown_combination_raises():
    with pytest.raises(ValueError):
        predicted_rounds("sorting", "sublinear", n=10, m=10)


def test_loglog_raw_is_unfloored_for_small_n():
    # The display version floors at 1.0, flattening every n <= 16 onto
    # the same value; the fitting version must keep the true shape.
    assert loglog_raw(1) == 0.0
    assert loglog_raw(2) == 0.0
    assert 0.0 < loglog_raw(3) < 1.0
    assert loglog_raw(4) == 1.0
    for n in (1, 2, 3, 4):
        assert loglog(n) == max(1.0, loglog_raw(n))
    assert loglog(1) == loglog(2) == loglog(3) == 1.0


def test_loglog_raw_is_monotone_and_matches_display_above_floor():
    values = [loglog_raw(n) for n in (2, 3, 4, 16, 256, 65536)]
    assert values == sorted(values)
    for n in (16, 256, 65536):
        assert loglog(n) == pytest.approx(loglog_raw(n))
    assert loglog_raw(65536) == pytest.approx(4.0)


def test_predicted_rounds_heterogeneous_bound_for_every_table1_row():
    """Regime-bound lookups for every implemented Table-1 problem key."""
    params = dict(n=256, m=256 * 64)
    # O(1) rows: connectivity, approx MST, spanner, both min-cuts, coloring.
    for problem in (
        "connectivity", "mst_approx", "spanner", "mincut", "coloring",
        "cycle",
    ):
        assert predicted_rounds(problem, "heterogeneous", **params) == 1.0
    # Growing heterogeneous bounds.
    assert predicted_rounds("mst", "heterogeneous", **params) == \
        pytest.approx(loglog(64))
    assert predicted_rounds("mis", "heterogeneous", **params) == \
        pytest.approx(loglog(128))  # default delta = 2m/n
    assert predicted_rounds("matching", "heterogeneous", **params) == \
        pytest.approx(math.sqrt(math.log2(64) * math.log2(math.log2(64))))


def test_predicted_rounds_sublinear_bounds():
    params = dict(n=256, m=256 * 64)
    assert predicted_rounds("mst", "sublinear", **params) == 8.0
    assert predicted_rounds("connectivity", "sublinear", **params) == 8.0
    assert predicted_rounds("cycle", "sublinear", **params) == 8.0
    matching = predicted_rounds("matching", "sublinear", **params)
    assert matching == pytest.approx(
        math.sqrt(math.log2(128)) * math.log2(math.log2(128))
    )
    # Sublinear bounds not implemented for the O(1)-transfer rows.
    for problem in ("mis", "spanner", "coloring", "mincut", "mst_approx"):
        with pytest.raises(ValueError):
            predicted_rounds(problem, "sublinear", n=256, m=1024)


def test_predicted_rounds_uses_explicit_max_degree():
    low = predicted_rounds(
        "mis", "heterogeneous", n=100, m=5000, max_degree=4
    )
    high = predicted_rounds(
        "mis", "heterogeneous", n=100, m=5000, max_degree=2**16
    )
    assert low < high == pytest.approx(4.0)


def test_render_table_alignment():
    rows = [{"a": 1, "b": "xy"}, {"a": 223, "b": "z"}]
    text = render_table(rows, ["a", "b"])
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert lines[0].startswith("a")
    assert all(len(line) == len(lines[0]) or True for line in lines)


def test_render_table_formats_floats():
    text = render_table([{"x": 3.14159}], ["x"])
    assert "3.14" in text and "3.14159" not in text


def test_sweep_accumulates_rows():
    sweep = Sweep(seed=1)
    sweep.add_row(a=1)
    sweep.add_row(a=2)
    assert len(sweep.rows) == 2
    assert "a" in sweep.render(["a"])


def test_sweep_rngs_are_deterministic():
    a, b = Sweep(seed=5), Sweep(seed=5)
    assert a.rng(3).random() == b.rng(3).random()


def test_density_sweep_runs_runner_per_point():
    calls = []

    def runner(graph, rng):
        calls.append(graph.m)
        return {"rounds": 1}

    sweep = density_sweep(30, [2, 4], runner, problem="mst", weighted=True)
    assert len(sweep.rows) == 2
    assert calls == [60, 120]
    assert all("theory_het" in row and "theory_sub" in row for row in sweep.rows)
