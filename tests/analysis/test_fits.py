"""The asymptotic fitter: synthetic-curve recovery, selection
invariances (hypothesis), and verdict logic."""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.fits import (
    CONSTANT,
    GROWTH_ORDER,
    TIE_MARGIN,
    TRANSFORMS,
    UNDERDETERMINED,
    FitReport,
    LeastSquares,
    growth_rank,
    least_squares,
    select_model,
    verdict,
)

#: A wide axis range separates the candidate forms cleanly.
XS = [2, 8, 64, 1024, 65536]

_FN = {key: fn for key, _, fn in TRANSFORMS}


def _series(key: str, a: float = 10.0, b: float = 3.0) -> list[float]:
    return [a * _FN[key](x) + b for x in XS]


# --- synthetic-curve recovery -------------------------------------------

@pytest.mark.parametrize("key", [k for k, _, _ in TRANSFORMS])
def test_recovers_each_clean_form(key):
    report = select_model(XS, _series(key))
    assert report.model == key
    assert report.r2 == pytest.approx(1.0)
    assert report.slope == pytest.approx(10.0)


@pytest.mark.parametrize("key", [k for k, _, _ in TRANSFORMS])
def test_recovers_each_form_under_noise(key):
    # Deterministic ±3% multiplicative noise must not flip the model.
    ys = [
        y * (1.03 if i % 2 else 0.97)
        for i, y in enumerate(_series(key, a=25.0, b=2.0))
    ]
    report = select_model(XS, ys)
    assert report.model == key
    assert report.r2 > 0.98


def test_flat_series_is_constant():
    report = select_model(XS, [7, 7, 7, 7, 7])
    assert report.model == CONSTANT
    assert report.fold == 1.0


def test_nearly_flat_series_is_constant():
    # 2% relative spread is implementation noise, not growth.
    report = select_model(XS, [100, 101, 100, 99, 100])
    assert report.model == CONSTANT


def test_decreasing_series_is_constant():
    report = select_model(XS, [118, 100, 100, 97, 95])
    assert report.model == CONSTANT
    assert report.best_growing is not None  # still auditable


def test_bounded_fold_collapses_to_constant():
    # Grows a little (fold < 1.6) over a 2..65536 axis range: O(1)-class.
    ys = [36.0 + 2.0 * _FN["loglog"](x) for x in XS]  # 36 -> 44
    report = select_model(XS, ys)
    assert report.model == CONSTANT
    assert report.fold is not None and report.fold < 1.6


def test_noisy_growth_below_r2_floor_is_underdetermined():
    # Trends upward but no candidate explains it (best R² < 0.6) — the
    # shape of the committed cycle_problem sublinear series.
    report = select_model([32, 64, 128, 256], [34, 34, 56, 45])
    assert report.model == UNDERDETERMINED
    assert report.best_r2 is not None and report.best_r2 < 0.6


def test_fewer_than_three_points_is_underdetermined():
    assert select_model([2, 8], [1, 5]).model == UNDERDETERMINED
    assert select_model([2, 2, 2], [1, 5, 9]).model == UNDERDETERMINED


def test_non_numeric_points_are_skipped():
    xs = ["classic", 2, 8, 64, 1024]
    ys = [999] + _series("log")[1:]
    report = select_model(xs, ys)
    assert report.points == 4
    assert report.model == "log"


def test_least_squares_degenerate_transform_is_none():
    assert least_squares([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) is None


def test_least_squares_perfect_line():
    fit = least_squares([0.0, 1.0, 2.0], [3.0, 5.0, 7.0])
    assert fit.slope == pytest.approx(2.0)
    assert fit.intercept == pytest.approx(3.0)
    assert fit.r2 == pytest.approx(1.0)


# --- selection invariances (hypothesis) ---------------------------------

def _top_two_gap(report: FitReport) -> float:
    r2s = sorted((f.r2 for f in report.candidates.values()), reverse=True)
    if len(r2s) < 2:
        return math.inf
    return r2s[0] - r2s[1]


@settings(max_examples=200, deadline=None)
@given(
    ys=st.lists(st.integers(1, 10**6), min_size=5, max_size=5),
    alpha_exp=st.integers(-3, 6),
)
def test_positive_scaling_never_flips_selection(ys, alpha_exp):
    """R²-based selection is invariant under y -> α·y; the flat and fold
    rules are ratio-based, so the whole classification is scale-invariant."""
    alpha = 2.0 ** alpha_exp  # exact in binary floating point
    base = select_model(XS, ys)
    assume(_top_two_gap(base) > 1e-9)  # exclude exact R² ties
    scaled = select_model(XS, [alpha * y for y in ys])
    assert scaled.model == base.model


@settings(max_examples=200, deadline=None)
@given(
    ys=st.lists(st.integers(1, 10**6), min_size=5, max_size=5),
    beta=st.integers(0, 10**6),
)
def test_upward_shift_never_flips_between_growing_forms(ys, beta):
    """Candidate R² values are shift-invariant, so a shift can never swap
    one growing form for another.  It may collapse the classification to
    constant (the fold rule is deliberately anchored at y = 0: rounds are
    ratio-scale quantities), but never the reverse."""
    base = select_model(XS, ys)
    assume(_top_two_gap(base) > 1e-9)
    shifted = select_model(XS, [y + beta for y in ys])
    if shifted.model != base.model:
        assert shifted.model == CONSTANT
    if base.model not in (CONSTANT, UNDERDETERMINED):
        assert shifted.model in (base.model, CONSTANT)


@settings(max_examples=100, deadline=None)
@given(
    ys=st.lists(st.integers(1, 10**6), min_size=5, max_size=5),
    alpha_exp=st.integers(-3, 6),
)
def test_scaling_preserves_r2(ys, alpha_exp):
    alpha = 2.0 ** alpha_exp
    base = select_model(XS, ys)
    scaled = select_model(XS, [alpha * y for y in ys])
    for key, fit in base.candidates.items():
        assert scaled.candidates[key].r2 == pytest.approx(
            fit.r2, abs=1e-9
        )


# --- verdicts -----------------------------------------------------------

def test_growth_order_is_slowest_first():
    assert growth_rank(CONSTANT) == 0
    assert growth_rank("loglog") < growth_rank("sqrt_log_loglog")
    assert growth_rank("sqrt_log_loglog") < growth_rank("log")
    assert growth_rank("log") < growth_rank("sqrt") < growth_rank("linear")


def test_verdict_within_bound_is_consistent():
    report = select_model(XS, _series("loglog"))
    assert verdict(report, "log") == "consistent"
    assert verdict(report, "loglog") == "consistent"


def test_verdict_constant_is_within_every_bound():
    report = select_model(XS, [7, 7, 7, 7, 7])
    for expected in GROWTH_ORDER:
        assert verdict(report, expected) == "consistent"


def test_verdict_clean_linear_refutes_loglog():
    report = select_model(XS, [float(x) for x in XS])
    assert report.model == "linear"
    assert verdict(report, "loglog") == "inconsistent"


def test_verdict_tie_margin_accepts_adequate_predicted_form():
    report = FitReport(
        model="log", points=4, slope=1.0, intercept=0.0, r2=0.99,
        fold=3.0, best_growing="log", best_r2=0.99,
        candidates={
            "log": LeastSquares(1.0, 0.0, 0.99),
            "loglog": LeastSquares(2.0, 0.0, 0.99 - TIE_MARGIN / 2),
        },
    )
    assert verdict(report, "loglog") == "consistent"


def test_verdict_underdetermined_passes_through():
    report = select_model([2, 8], [1, 5])
    assert verdict(report, "log") == UNDERDETERMINED


def test_verdict_unknown_class_raises():
    report = select_model(XS, _series("log"))
    with pytest.raises(ValueError):
        verdict(report, "exponential")
