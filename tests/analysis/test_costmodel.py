"""The cost-model document: golden verdict pins on the committed
artifacts, determinism, and `costmodel --check` staleness semantics."""

import pathlib

import pytest

from repro.analysis import costmodel
from repro.analysis.fits import CONSTANT, UNDERDETERMINED
from repro.experiments import Runner, get_scenario, load_results_dir

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
RESULTS = REPO_ROOT / "benchmarks" / "results"


@pytest.fixture(scope="module")
def artifacts():
    return load_results_dir(RESULTS)


@pytest.fixture(scope="module")
def fit_rows(artifacts):
    rows, _ = costmodel.build_fit_rows(artifacts)
    return rows


def _row(fit_rows, scenario, column):
    match = [
        r for r in fit_rows if r.scenario == scenario and r.column == column
    ]
    assert match, f"no fit row for {scenario}/{column}"
    return match[0]


# --- golden verdict pins (the acceptance criteria) ----------------------

def test_pooled_heterogeneous_mst_fits_loglog(artifacts):
    """The headline claim: heterogeneous MST rounds over the pooled
    classic+large+huge m/n sweep grow like O(log log(m/n))."""
    pooled = [
        p for p in costmodel.build_pooled_rows(artifacts)
        if p.problem == "mst"
    ]
    assert len(pooled) == 1
    row = pooled[0]
    assert set(row.scenarios) == {
        "table1_mst", "table1_mst_large", "table1_mst_huge"
    }
    assert row.report.model in ("loglog", CONSTANT)
    assert row.report.model == "loglog"  # what the committed data shows
    assert row.report.r2 is not None and row.report.r2 > 0.8
    assert row.verdict == "consistent"


def test_per_scenario_mst_heterogeneous_fits_loglog(fit_rows):
    for scenario in ("table1_mst", "table1_mst_large"):
        row = _row(fit_rows, scenario, "het_rounds")
        assert row.report.model == "loglog"
        assert row.verdict == "consistent"


def test_heterogeneous_constant_round_problems_fit_constant(fit_rows):
    """Connectivity, spanner and matching heterogeneous rounds are
    O(1)-class on the committed sweeps."""
    for scenario, column in (
        ("table1_connectivity", "het_rounds"),
        ("table1_connectivity_large", "het_rounds"),
        ("table1_spanner", "rounds"),
        ("table1_matching", "het_rounds"),
        ("table1_matching_large", "het_rounds"),
    ):
        row = _row(fit_rows, scenario, column)
        assert row.report.model == CONSTANT, (scenario, row.report.model)
        assert row.verdict == "consistent"


def test_pooled_connectivity_and_matching_fit_constant(artifacts):
    pooled = {p.problem: p for p in costmodel.build_pooled_rows(artifacts)}
    assert pooled["connectivity"].report.model == CONSTANT
    assert pooled["matching"].report.model == CONSTANT
    assert pooled["connectivity"].verdict == "consistent"
    assert pooled["matching"].verdict == "consistent"


def test_no_committed_scenario_is_inconsistent(artifacts, fit_rows):
    verdicts = [r.verdict for r in fit_rows]
    verdicts += [p.verdict for p in costmodel.build_pooled_rows(artifacts)]
    assert "inconsistent" not in verdicts
    assert verdicts.count("consistent") >= 20


def test_matching_axis_recovered_from_registry(fit_rows):
    """The matching family's artifacts do not carry the m/n axis as a row
    column; the fit recovers it from the registry sweep definition."""
    row = _row(fit_rows, "table1_matching", "het_rounds")
    assert row.report.points == 3


def test_throttle_inflation_within_bound(artifacts):
    rows = costmodel._throttle_rows(artifacts)
    assert len(rows) == 3
    for row in rows:
        assert row["within"] == "yes"
        assert float(row["max inflation"]) <= costmodel.INFLATION_BOUND


def test_separation_ratios_cover_het_vs_sub_scenarios(artifacts):
    rows = costmodel._separation_rows(artifacts)
    by_name = {r["scenario"]: r for r in rows}
    assert len(rows) == 10  # connectivity/mst/matching tiers + cycle
    assert float(by_name["table1_connectivity"]["ratio"]) >= 4.0
    assert float(by_name["cycle_problem"]["ratio"]) >= 40.0


def test_workload_scenarios_are_not_fitted(artifacts):
    _, not_fitted = costmodel.build_fit_rows(artifacts)
    reasons = dict(not_fitted)
    assert "categorical" in reasons["workload_grid"]
    assert "table1_mst_huge" in reasons  # 2 sweep points


def test_underdetermined_series_is_flagged_not_judged(fit_rows):
    row = _row(fit_rows, "cycle_problem", "sub_rounds")
    assert row.report.model == UNDERDETERMINED
    assert row.verdict == UNDERDETERMINED


# --- rendering and staleness --------------------------------------------

def test_render_is_deterministic(artifacts):
    assert costmodel.render_cost_model(artifacts) == \
        costmodel.render_cost_model(artifacts)


def test_committed_cost_model_is_current():
    """The committed docs/COST_MODEL.md matches the committed artifacts
    (the invariant CI enforces via `repro costmodel --check`)."""
    assert costmodel.check_cost_model(
        results_dir=RESULTS, doc_path=REPO_ROOT / "docs" / "COST_MODEL.md"
    ) == []


def _make_results(tmp_path):
    runner = Runner(results_dir=tmp_path)
    for name in ("table1_mst", "table1_connectivity"):
        runner.persist(runner.run(get_scenario(name), quick=True))
    return tmp_path


def test_write_then_check_passes(tmp_path):
    results = _make_results(tmp_path)
    doc = tmp_path / "COST_MODEL.md"
    costmodel.write_cost_model(results_dir=results, doc_path=doc)
    assert costmodel.check_cost_model(results_dir=results, doc_path=doc) == []


def test_check_flags_stale_doc(tmp_path):
    results = _make_results(tmp_path)
    doc = tmp_path / "COST_MODEL.md"
    costmodel.write_cost_model(results_dir=results, doc_path=doc)
    doc.write_text(doc.read_text() + "drift\n")
    problems = costmodel.check_cost_model(results_dir=results, doc_path=doc)
    assert problems and "stale" in problems[0]


def test_check_flags_missing_doc(tmp_path):
    results = _make_results(tmp_path)
    problems = costmodel.check_cost_model(
        results_dir=results, doc_path=tmp_path / "nope.md"
    )
    assert problems and "missing" in problems[0]


def test_check_flags_empty_results_dir(tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    problems = costmodel.check_cost_model(
        results_dir=empty, doc_path=tmp_path / "doc.md"
    )
    assert problems and "no JSON artifacts" in problems[0]


def test_check_flags_corrupt_artifact(tmp_path):
    results = _make_results(tmp_path)
    (results / "bad.json").write_text('{"schema": "wrong"}')
    problems = costmodel.check_cost_model(
        results_dir=results, doc_path=tmp_path / "COST_MODEL.md"
    )
    assert problems and "validation failed" in problems[0]


def test_quick_artifacts_render_without_verdict_regressions(tmp_path):
    """Quick sweeps are tiny (2 points) — they must degrade to
    underdetermined/not-fitted, never crash or go inconsistent."""
    results = _make_results(tmp_path)
    artifacts = load_results_dir(results)
    text = costmodel.render_cost_model(artifacts)
    assert "inconsistent," in text  # the summary line
    rows, _ = costmodel.build_fit_rows(artifacts)
    assert all(r.verdict != "inconsistent" for r in rows)
