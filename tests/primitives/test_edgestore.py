"""EdgeStore — the ergonomic distributed-dataset layer."""

import random

import pytest

from repro.graph import generators
from repro.mpc import Cluster, ModelConfig
from repro.primitives.edgestore import EdgeStore


@pytest.fixture
def cluster():
    return Cluster(ModelConfig.heterogeneous(n=40, m=200), rng=random.Random(9))


@pytest.fixture
def graph():
    rng = random.Random(10)
    return generators.random_connected_graph(40, 200, rng).with_unique_weights(rng)


def test_create_places_all_items(cluster, graph):
    store = EdgeStore.create(cluster, graph.edges)
    assert sorted(store.items()) == sorted(graph.edges)
    assert len(store) == graph.m
    assert cluster.ledger.rounds == 0  # initial placement is free


def test_fresh_names_avoid_collisions(cluster, graph):
    a = EdgeStore.create(cluster, graph.edges)
    b = EdgeStore.create(cluster, graph.edges)
    assert a.name != b.name


def test_map_filter_flatmap_are_local(cluster, graph):
    store = EdgeStore.create(cluster, graph.edges)
    store.map_local(lambda e: (e[0], e[1]))
    store.filter_local(lambda e: e[0] < 5)
    store.flat_map_local(lambda e: [e, e])
    assert cluster.ledger.rounds == 0
    assert all(e[0] < 5 for e in store.items())
    assert len(store) % 2 == 0


def test_sample_rate(cluster, graph):
    store = EdgeStore.create(cluster, graph.edges)
    rng = random.Random(11)
    sampled = store.sample(0.5, rng)
    assert 0 < len(sampled) < graph.m
    assert set(sampled.items()) <= set(store.items())
    assert len(store) == graph.m  # original untouched


def test_sample_extremes(cluster, graph):
    store = EdgeStore.create(cluster, graph.edges)
    rng = random.Random(12)
    assert len(store.sample(0.0, rng)) == 0
    assert len(store.sample(1.0, rng)) == graph.m


def test_copy_and_drop(cluster, graph):
    store = EdgeStore.create(cluster, graph.edges)
    clone = store.copy()
    clone.drop()
    assert len(clone) == 0
    assert len(store) == graph.m


def test_count_charges_rounds(cluster, graph):
    store = EdgeStore.create(cluster, graph.edges)
    before = cluster.ledger.rounds
    assert store.count() == graph.m
    assert cluster.ledger.rounds > before
    assert store.count(lambda e: e[2] <= 10) == 10  # weights are 1..m


def test_gather_to_large_with_predicate(cluster, graph):
    store = EdgeStore.create(cluster, graph.edges)
    light = store.gather_to_large(predicate=lambda e: e[2] <= 5)
    assert sorted(e[2] for e in light) == [1, 2, 3, 4, 5]


def test_sort_returns_layout(cluster, graph):
    store = EdgeStore.create(cluster, graph.edges)
    layout = store.sort(key=lambda e: e[2])
    assert layout.total == graph.m
    weights = [e[2] for e in store.items()]
    assert weights == sorted(weights)


def test_aggregate_degrees(cluster, graph):
    store = EdgeStore.create(cluster, graph.edges)
    degree_u = store.aggregate(lambda e: (e[0], 1), lambda a, b: a + b)
    truth = {}
    for u, v, w in graph.edges:
        truth[u] = truth.get(u, 0) + 1
    assert degree_u == truth


def test_aggregate_skips_none_pairs(cluster, graph):
    store = EdgeStore.create(cluster, graph.edges)
    result = store.aggregate(
        lambda e: (e[0], 1) if e[0] == 0 else None, lambda a, b: a + b
    )
    assert set(result) <= {0}


def test_annotate_roundtrip(cluster, graph):
    store = EdgeStore.create(cluster, graph.edges)
    annotated = store.annotate({v: -v for v in range(graph.n)})
    for edge, vu, vv in annotated.items():
        assert vu == -edge[0] and vv == -edge[1]
