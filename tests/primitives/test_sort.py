"""Claim 1 — distributed sample sort."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpc import Cluster, ModelConfig
from repro.primitives.sort import SortLayout, sample_sort


def make_cluster(n=64, m=512) -> Cluster:
    return Cluster(ModelConfig.heterogeneous(n=n, m=m), rng=random.Random(7))


def distribute(cluster, items, name="data"):
    cluster.distribute_edges(items, name=name)


def globally_sorted(cluster, name, key):
    previous = None
    for machine in cluster.smalls:
        for item in machine.get(name, []):
            if previous is not None and key(item) < previous:
                return False
            previous = key(item)
    return True


def test_sorts_integers():
    cluster = make_cluster()
    distribute(cluster, list(range(200))[::-1])
    layout = sample_sort(cluster, "data", key=lambda x: x)
    assert globally_sorted(cluster, "data", key=lambda x: x)
    assert layout.total == 200


def test_constant_round_count():
    """Sorting charges O(1) rounds regardless of the data size."""
    counts = []
    for size in (50, 500):
        cluster = make_cluster()
        distribute(cluster, list(range(size))[::-1])
        sample_sort(cluster, "data", key=lambda x: x)
        counts.append(cluster.ledger.rounds)
    assert counts[1] <= counts[0] + 2  # no growth with input size


def test_sorts_tuples_by_key():
    cluster = make_cluster()
    rng = random.Random(1)
    items = [(rng.randrange(100), i) for i in range(150)]
    distribute(cluster, items)
    sample_sort(cluster, "data", key=lambda t: (t[0], t[1]))
    assert globally_sorted(cluster, "data", key=lambda t: (t[0], t[1]))


def test_empty_dataset():
    cluster = make_cluster()
    distribute(cluster, [])
    layout = sample_sort(cluster, "data", key=lambda x: x)
    assert layout.total == 0
    assert cluster.ledger.rounds == 0


def test_preserves_multiset():
    cluster = make_cluster()
    rng = random.Random(5)
    items = [rng.randrange(30) for _ in range(300)]  # duplicates
    distribute(cluster, items)
    sample_sort(cluster, "data", key=lambda x: x)
    assert sorted(items) == cluster.all_items("data")


def test_layout_offsets_and_rank_lookup():
    layout = SortLayout(machine_ids=[10, 11, 12], counts=[3, 0, 2])
    assert layout.offsets == [0, 3, 3]
    assert layout.total == 5
    assert layout.machine_of_rank(0) == 10
    assert layout.machine_of_rank(2) == 10
    assert layout.machine_of_rank(3) == 12
    with pytest.raises(IndexError):
        layout.machine_of_rank(5)


def test_layout_offsets_are_cached():
    layout = SortLayout(machine_ids=[10, 11, 12], counts=[3, 0, 2])
    first = layout.offsets
    assert layout.offsets is first  # computed once, reused by rank lookups
    assert layout.total == 5
    assert [layout.machine_of_rank(r) for r in range(5)] == [10, 10, 10, 12, 12]


def test_works_without_large_machine():
    config = ModelConfig.sublinear(n=64, m=512)
    cluster = Cluster(config, rng=random.Random(3))
    distribute(cluster, list(range(100))[::-1])
    sample_sort(cluster, "data", key=lambda x: x)
    assert globally_sorted(cluster, "data", key=lambda x: x)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    size=st.integers(min_value=0, max_value=400),
)
def test_sort_property(seed, size):
    cluster = make_cluster()
    rng = random.Random(seed)
    items = [rng.randrange(1000) for _ in range(size)]
    distribute(cluster, items)
    sample_sort(cluster, "data", key=lambda x: x)
    assert cluster.all_items("data") == sorted(items)
