"""Differential property suite: columnar primitives vs the object path.

The tentpole invariant of the array-native primitive layer: for every
primitive and every input, the columnar path (EdgeBlock record batches,
vectorized bucketing/group-by) and the object path (per-item tuples)
produce identical datasets AND identical ledgers — same round records,
same word charges, same memory high-water — under both engine backends.
Speed is the only permitted difference.

Hypothesis drives randomized inputs through sort, aggregate and dedup;
join and arrange run a curated scenario matrix covering every internal
representation switch (flat blocks, nested fallback, mixed value types,
sorted-mode keys, empties).  Kernel-level unit tests pin the columnar
helpers against their obvious per-item references, and the zero-length
regression block pins the PR's empty-batch fix: empty scatters must not
open runs or burn rounds.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.primitives.columnar as columnar
from repro.mpc import Cluster, ModelConfig, RoundPlan
from repro.mpc.backend import available_engine_backends
from repro.mpc.words import word_size_many
from repro.primitives.aggregate import aggregate
from repro.primitives.arrange import arrange_directed
from repro.primitives.columnar import (
    EdgeBlock,
    ingest_rows,
    pack_columns,
    reduce_pairs,
    stable_order,
    value_column,
)
from repro.primitives.dedup import dedup_lightest
from repro.primitives.join import annotate_edges_with_vertex_values
from repro.primitives.sort import SortLayout, sample_sort

HAS_NUMPY = columnar.HAS_NUMPY
ENGINES = available_engine_backends()
PATHS = ("object", "columnar")
NUM_SMALL = 6


def make_cluster(engine: str) -> Cluster:
    config = ModelConfig(n=256, m=1024, num_small=NUM_SMALL)
    return Cluster(config, rng=random.Random(7), backend=engine)


def distribute(cluster: Cluster, name: str, rows) -> None:
    for i, machine in enumerate(cluster.smalls):
        machine.put(name, list(rows[i::NUM_SMALL]))


def snapshot(cluster: Cluster, names) -> tuple:
    datasets = {}
    for name in names:
        for machine in cluster.smalls:
            data = machine.get(name, [])
            rows = data.rows() if isinstance(data, EdgeBlock) else list(data)
            datasets[(name, machine.machine_id)] = rows
    ledger = [
        (r.index, r.note, r.total_words, r.max_sent, r.max_received, r.items)
        for r in cluster.ledger.records
    ]
    return datasets, ledger, cluster.ledger.memory_high_water


def run_everyway(build_and_run, names):
    """Run a primitive under every (path, engine) combination and assert
    all snapshots are identical; returns the reference snapshot."""
    reference = None
    for path in PATHS:
        for engine in ENGINES:
            cluster = make_cluster(engine)
            with columnar.forced_path(path):
                extra = build_and_run(cluster)
            snap = snapshot(cluster, names) + (extra,)
            if reference is None:
                reference = snap
            else:
                assert snap[0] == reference[0], (path, engine, "datasets")
                assert snap[1] == reference[1], (path, engine, "ledger")
                assert snap[2] == reference[2], (path, engine, "memory")
                assert snap[3] == reference[3], (path, engine, "result")
    return reference


# ----------------------------------------------------------------------
# Randomized differentials: sort / aggregate / dedup
# ----------------------------------------------------------------------

edge_rows = st.lists(
    st.tuples(
        st.integers(min_value=-50, max_value=50),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=-(10**6), max_value=10**6),
    ),
    max_size=80,
)


@settings(max_examples=25, deadline=None)
@given(rows=edge_rows, key=st.sampled_from([(0, 1, 2), (2,), (1, 0), (2, 0, 1)]))
def test_sample_sort_differential(rows, key):
    def go(cluster):
        distribute(cluster, "e", rows)
        return sample_sort(cluster, "e", key=key).counts

    run_everyway(go, ["e"])


@settings(max_examples=25, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 30), st.integers(-1000, 1000)), max_size=80
    ),
    reducer=st.sampled_from(["sum", "min", "max"]),
)
def test_aggregate_differential(pairs, reducer):
    def go(cluster):
        per = {
            machine.machine_id: pairs[i::NUM_SMALL]
            for i, machine in enumerate(cluster.smalls)
        }
        return sorted(aggregate(cluster, per, reducer).items())

    run_everyway(go, [])


@settings(max_examples=15, deadline=None)
@given(
    flags=st.lists(st.tuples(st.integers(0, 20), st.booleans()), max_size=60)
)
def test_aggregate_or_differential(flags):
    def go(cluster):
        per = {
            machine.machine_id: flags[i::NUM_SMALL]
            for i, machine in enumerate(cluster.smalls)
        }
        return sorted(aggregate(cluster, per, "or").items())

    run_everyway(go, [])


@settings(max_examples=25, deadline=None)
@given(
    records=st.lists(
        st.tuples(st.integers(0, 25), st.integers(0, 10**6)), max_size=80
    )
)
def test_dedup_differential(records):
    def go(cluster):
        distribute(cluster, "r", records)
        dedup_lightest(cluster, "r", key=(0,), weight=(1,))
        return None

    run_everyway(go, ["r"])


# ----------------------------------------------------------------------
# Scenario-matrix differentials: join / arrange
# ----------------------------------------------------------------------

def _gen_edges(n_vertices, n_edges, seed, weighted=False, float_w=False):
    rng = random.Random(seed)
    seen = set()
    while len(seen) < n_edges:
        u, v = rng.randrange(n_vertices), rng.randrange(n_vertices)
        if u != v:
            seen.add((min(u, v), max(u, v)))
    edges = sorted(seen)
    if weighted:
        if float_w:
            return [(u, v, rng.random()) for u, v in edges]
        return [(u, v, rng.randrange(1000)) for u, v in edges]
    return edges


_NV = 40
_JOIN_CASES = {
    # int values, complete map (the rename pattern; default never used)
    "int-complete": (
        _gen_edges(_NV, 90, 1), {v: v * 3 for v in range(_NV)}, None),
    # bool values with a default (the matching-flag pattern)
    "bool-default": (
        _gen_edges(_NV, 70, 2), {v: True for v in range(0, _NV, 3)}, False),
    # default=None actually delivered -> per-machine nested fallback
    "none-fallback": (
        _gen_edges(_NV, 70, 2), {v: v for v in range(0, _NV, 2)}, None),
    # tuple values cannot columnarize -> nested fallback
    "tuple-fallback": (
        _gen_edges(_NV, 60, 3), {v: (v, v + 1) for v in range(_NV)}, (0, 0)),
    # weighted edges widen the flat representation
    "weighted": (
        _gen_edges(_NV, 80, 4, weighted=True),
        {v: v % 7 for v in range(_NV)}, 0),
    # float edge weights force the sorted (non-packed) sort mode
    "float-weights": (
        _gen_edges(_NV, 80, 5, weighted=True, float_w=True),
        {v: v % 7 for v in range(_NV)}, 0),
    # float values
    "float-values": (
        _gen_edges(_NV, 60, 6), {v: v / 8 for v in range(_NV)}, 0.0),
    # mixed value types across machines -> global re-nest
    "mixed-types": (
        _gen_edges(_NV, 70, 7),
        {0: True, 1: 5, **{v: v for v in range(2, _NV)}}, 0),
    "empty": ([], {0: 1}, None),
    "single-edge": ([(5, 9)], {5: 1, 9: 2}, None),
}


@pytest.mark.parametrize("case", sorted(_JOIN_CASES))
def test_join_differential(case):
    edges, values, default = _JOIN_CASES[case]

    def go(cluster):
        distribute(cluster, "edges", edges)
        annotate_edges_with_vertex_values(
            cluster, "edges", values, "annotated", default=default
        )
        return None

    run_everyway(go, ["annotated"])


_ARRANGE_CASES = {
    # field-spec secondary on an int weight: packed sort mode
    "weight-spec": (_gen_edges(_NV, 80, 11, weighted=True), 2),
    # huge ranks overflow packing -> sorted mode + assume_unique
    "big-ranks": (
        [(u, v, random.Random(u * 97 + v).randrange(2**60))
         for u, v in _gen_edges(_NV, 80, 12)], 2),
    # default secondary: the full edge tuple
    "default": (_gen_edges(_NV, 80, 13, weighted=True), None),
    "unweighted-default": (_gen_edges(_NV, 80, 14), None),
    # legacy callable secondaries stay on the object path everywhere
    "legacy-callable": (
        _gen_edges(_NV, 80, 11, weighted=True), lambda edge: edge[2]),
    "empty": ([], 2),
}


@pytest.mark.parametrize("case", sorted(_ARRANGE_CASES))
def test_arrange_differential(case):
    edges, secondary = _ARRANGE_CASES[case]

    def go(cluster):
        distribute(cluster, "edges", edges)
        arrangement = arrange_directed(
            cluster, "edges", "edges.dir", secondary_key=secondary
        )
        # Consumers index nested records; the primitive must re-nest.
        for machine in cluster.smalls:
            assert not isinstance(machine.get("edges.dir", []), EdgeBlock)
        return (
            sorted(arrangement.out_degrees.items()),
            sorted(arrangement.holders.items()),
            arrangement.layout.counts,
        )

    run_everyway(go, ["edges.dir"])


def test_arrange_spec_matches_legacy_callable():
    """secondary_key=2 (field spec) and the equivalent callable must agree
    on records, degrees and the ledger — specs are a drop-in upgrade."""
    edges = _gen_edges(_NV, 80, 11, weighted=True)

    def go(secondary):
        cluster = make_cluster(ENGINES[0])
        distribute(cluster, "edges", edges)
        with columnar.forced_path("object"):
            arrangement = arrange_directed(
                cluster, "edges", "edges.dir", secondary_key=secondary
            )
        return snapshot(cluster, ["edges.dir"]) + (
            sorted(arrangement.out_degrees.items()),
        )

    assert go(2) == go(lambda edge: edge[2])


# ----------------------------------------------------------------------
# Kernel units: the columnar helpers vs per-item references
# ----------------------------------------------------------------------

pytestmark_np = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")


@pytestmark_np
@settings(max_examples=30, deadline=None)
@given(rows=edge_rows, fields=st.sampled_from([(0,), (2, 1), (0, 1, 2)]))
def test_stable_order_matches_python_sort(rows, fields):
    block = ingest_rows(rows)
    if block is None:
        assert not rows
        return
    order = stable_order(block, fields)
    expected = sorted(
        range(len(rows)), key=lambda i: tuple(rows[i][f] for f in fields)
    )
    assert list(order) == expected


@pytestmark_np
@given(rows=edge_rows, splitter=st.tuples(
    st.integers(-60, 60), st.integers(-5, 45), st.integers(-(10**6), 10**6)
))
@settings(max_examples=30, deadline=None)
def test_pack_columns_preserves_field_order(rows, splitter):
    block = ingest_rows(rows)
    if block is None:
        return
    packed = pack_columns(block.columns, extra_keys=[splitter])
    if packed is None:  # spans overflowed; nothing to check
        return
    packed_rows, packed_extras = packed
    ranks = sorted(range(len(rows)), key=lambda i: int(packed_rows[i]))
    expected = sorted(range(len(rows)), key=lambda i: rows[i])
    assert ranks == expected
    # Cross comparisons against packed extras stay exact.
    for i, row in enumerate(rows):
        assert (row < splitter) == bool(packed_rows[i] < packed_extras[0])


@pytestmark_np
@settings(max_examples=30, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 12), st.integers(-500, 500)), min_size=1,
        max_size=50
    ),
    kind=st.sampled_from(["sum", "min", "max"]),
)
def test_reduce_pairs_matches_dict_loop(pairs, kind):
    import numpy as np

    keys = np.array([k for k, _ in pairs], dtype=np.int64)
    values = np.array([v for _, v in pairs], dtype=np.int64)
    out_keys, out_values = reduce_pairs(keys, values, kind)
    expected: dict[int, int] = {}
    op = {"sum": lambda a, b: a + b, "min": min, "max": max}[kind]
    for k, v in pairs:
        expected[k] = op(expected[k], v) if k in expected else v
    assert dict(zip(out_keys.tolist(), out_values.tolist())) == expected


def test_machine_of_rank_many_matches_scalar():
    layout = SortLayout(machine_ids=(3, 5, 9), counts=(4, 0, 7))
    ranks = list(range(11))
    assert layout.machine_of_rank_many(ranks) == [
        layout.machine_of_rank(r) for r in ranks
    ]
    assert layout.machine_of_rank_many([]) == []
    with pytest.raises(IndexError):
        layout.machine_of_rank_many([11])


@pytestmark_np
def test_value_column_types():
    import numpy as np

    assert value_column([]) is None
    assert value_column([1, 2, 3]).dtype == np.int64
    assert value_column([True, False]).dtype == np.bool_
    assert value_column([0.5, 1.5]).dtype == np.float64
    assert value_column([1, "x"]) is None           # mixed kinds
    assert value_column([float("nan")]) is None     # non-finite
    assert value_column([2**63]) is None            # int64 overflow
    assert value_column([(1, 2)]) is None           # non-scalar


@pytestmark_np
def test_ingest_rows_rejects_unrepresentable():
    assert ingest_rows([(1, 2), (3, 4)]) is not None
    assert ingest_rows([]) is None
    assert ingest_rows([(1, 2), (3,)]) is None           # ragged
    assert ingest_rows([(1, 2**64)]) is None             # overflow
    assert ingest_rows([(1, float("inf"))]) is None      # non-finite
    assert ingest_rows([[1, 2]]) is None                 # non-tuple rows


# ----------------------------------------------------------------------
# Zero-length batches: no runs, no rounds, zero words
# ----------------------------------------------------------------------

@pytestmark_np
def test_word_size_many_empty_arrays_are_zero_words():
    import numpy as np

    for dtype in (np.int64, np.float64, np.bool_, np.dtype("U4"), object):
        assert word_size_many(np.empty(0, dtype=dtype)) == 0


@pytestmark_np
@pytest.mark.parametrize("engine", ENGINES)
def test_send_indexed_empty_arrays_open_no_run(engine):
    import numpy as np

    cluster = make_cluster(engine)
    plan = cluster.plan("empty-scatter")
    plan.send_indexed(
        cluster.small_ids[0],
        np.empty(0, dtype=np.int64),
        np.empty((0, 3), dtype=np.int64),
    )
    assert plan.is_empty
    rounds_before = cluster.ledger.rounds
    cluster.execute(plan)
    # An all-empty plan costs no communication round.
    assert cluster.ledger.rounds == rounds_before


@pytest.mark.parametrize("engine", ENGINES)
def test_empty_cluster_primitives_cost_identically(engine):
    """sample_sort/aggregate on machines holding nothing: the columnar
    path must neither crash nor charge differently than the object path."""
    def go(path):
        cluster = make_cluster(engine)
        distribute(cluster, "e", [])
        with columnar.forced_path(path):
            layout = sample_sort(cluster, "e", key=(0, 1))
            result = aggregate(cluster, {m.machine_id: [] for m in cluster.smalls}, "sum")
        return snapshot(cluster, ["e"]) + (layout.counts, sorted(result))

    assert go("object") == go("columnar")
