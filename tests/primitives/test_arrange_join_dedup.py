"""Claim 4 arrangement, the sort-join annotation, and distributed dedup."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import generators
from repro.mpc import Cluster, ModelConfig
from repro.primitives.arrange import arrange_directed, directed_copies
from repro.primitives.dedup import dedup_lightest
from repro.primitives.edgestore import EdgeStore
from repro.primitives.join import annotate_edges_with_vertex_values


def make_cluster(n=40, m=200) -> Cluster:
    return Cluster(ModelConfig.heterogeneous(n=n, m=m), rng=random.Random(6))


def weighted_graph(n=40, m=200, seed=8):
    rng = random.Random(seed)
    return generators.random_connected_graph(n, m, rng).with_unique_weights(rng)


# ----------------------------------------------------------------------
# directed_copies / arrange_directed
# ----------------------------------------------------------------------
def test_directed_copies_both_orientations():
    edge = (3, 7, 99)
    copies = directed_copies(edge)
    assert copies == [(3, 7, edge), (7, 3, edge)]


def test_arrange_sorts_by_source_then_secondary_key():
    cluster = make_cluster()
    g = weighted_graph()
    cluster.distribute_edges(g.edges, name="edges")
    arrangement = arrange_directed(
        cluster, "edges", "directed", secondary_key=lambda e: e[2]
    )
    previous = None
    for machine in cluster.smalls:
        for src, dst, edge in machine.get("directed", []):
            key = (src, edge[2])
            assert previous is None or key >= previous
            previous = key


def test_arrange_degrees_are_correct():
    cluster = make_cluster()
    g = weighted_graph()
    cluster.distribute_edges(g.edges, name="edges")
    arrangement = arrange_directed(cluster, "edges", "directed")
    truth = g.degrees()
    for v in range(g.n):
        assert arrangement.out_degrees.get(v, 0) == truth[v]


def test_arrange_holders_are_consecutive():
    cluster = make_cluster()
    g = weighted_graph()
    cluster.distribute_edges(g.edges, name="edges")
    arrangement = arrange_directed(cluster, "edges", "directed")
    for v, machines in arrangement.holders.items():
        # Sorted layout => a vertex's machines form a contiguous range.
        assert machines == list(range(machines[0], machines[-1] + 1))
        assert arrangement.first_machine(v) == machines[0]


def test_arrange_vertex_without_edges_has_no_holder():
    cluster = make_cluster()
    cluster.distribute_edges([(0, 1, 5)], name="edges")
    arrangement = arrange_directed(cluster, "edges", "directed")
    assert arrangement.first_machine(39) is None


# ----------------------------------------------------------------------
# annotate (sort-join)
# ----------------------------------------------------------------------
def test_annotate_attaches_both_endpoint_values():
    cluster = make_cluster()
    g = weighted_graph()
    cluster.distribute_edges(g.edges, name="edges")
    values = {v: f"tag{v}" for v in range(g.n)}
    annotate_edges_with_vertex_values(cluster, "edges", values, "out")
    records = cluster.all_items("out")
    assert len(records) == g.m
    for edge, value_u, value_v in records:
        assert value_u == f"tag{edge[0]}"
        assert value_v == f"tag{edge[1]}"


def test_annotate_uses_default_for_missing_vertices():
    cluster = make_cluster()
    cluster.distribute_edges([(0, 1), (1, 2)], name="edges")
    annotate_edges_with_vertex_values(
        cluster, "edges", {0: "x"}, "out", default="?"
    )
    records = {record[0]: record for record in cluster.all_items("out")}
    assert records[(0, 1)][1] == "x" and records[(0, 1)][2] == "?"
    assert records[(1, 2)][1] == "?"


def test_annotate_leaves_source_dataset_untouched():
    cluster = make_cluster()
    g = weighted_graph()
    cluster.distribute_edges(g.edges, name="edges")
    before = sorted(cluster.all_items("edges"))
    annotate_edges_with_vertex_values(cluster, "edges", {}, "out", default=0)
    assert sorted(cluster.all_items("edges")) == before


def test_annotate_charges_constant_rounds():
    counts = []
    for m in (60, 600):
        cluster = make_cluster(n=60, m=m)
        rng = random.Random(m)
        g = generators.random_connected_graph(60, m, rng)
        cluster.distribute_edges(g.edges, name="edges")
        annotate_edges_with_vertex_values(
            cluster, "edges", {v: v for v in range(60)}, "out"
        )
        counts.append(cluster.ledger.rounds)
    # Constant-round: both runs stay under the fixed depth bound of the
    # sort + dissemination trees, far below anything growing with m.
    assert all(c <= 25 for c in counts)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_annotate_property_random_graphs(seed):
    rng = random.Random(seed)
    n = rng.randrange(10, 30)
    m = rng.randrange(n - 1, min(3 * n, n * (n - 1) // 2))
    g = generators.random_connected_graph(n, m, rng)
    cluster = Cluster(
        ModelConfig.heterogeneous(n=n, m=m), rng=random.Random(seed + 1)
    )
    cluster.distribute_edges(g.edges, name="edges")
    values = {v: v * v for v in range(n)}
    annotate_edges_with_vertex_values(cluster, "edges", values, "out")
    for edge, vu, vv in cluster.all_items("out"):
        assert vu == edge[0] ** 2 and vv == edge[1] ** 2


# ----------------------------------------------------------------------
# dedup_lightest
# ----------------------------------------------------------------------
def test_dedup_keeps_lightest_per_key():
    cluster = make_cluster()
    records = [("a", w) for w in (5, 3, 9)] + [("b", w) for w in (2, 7)]
    cluster.distribute_edges(records, name="data")
    dedup_lightest(cluster, "data", key=lambda r: r[0], weight=lambda r: r[1])
    assert sorted(cluster.all_items("data")) == [("a", 3), ("b", 2)]


def test_dedup_handles_groups_spanning_machines():
    cluster = make_cluster()
    # One huge group: only the globally lightest survives.
    records = [("k", w) for w in range(100)]
    cluster.distribute_edges(records, name="data")
    dedup_lightest(cluster, "data", key=lambda r: r[0], weight=lambda r: r[1])
    assert cluster.all_items("data") == [("k", 0)]


def test_dedup_noop_on_unique_keys():
    cluster = make_cluster()
    records = [(i, i) for i in range(50)]
    cluster.distribute_edges(records, name="data")
    dedup_lightest(cluster, "data", key=lambda r: r[0], weight=lambda r: r[1])
    assert sorted(cluster.all_items("data")) == records


def test_dedup_parallel_contracted_edges():
    """The Borůvka use case: keep the lightest edge per contracted pair."""
    cluster = make_cluster()
    rng = random.Random(0)
    records = []
    for pair in [(0, 1), (0, 2), (1, 2)]:
        for w in rng.sample(range(100), 5):
            records.append((pair[0], pair[1], w))
    cluster.distribute_edges(records, name="data")
    dedup_lightest(
        cluster, "data", key=lambda r: (r[0], r[1]), weight=lambda r: r[2]
    )
    result = sorted(cluster.all_items("data"))
    assert len(result) == 3
    by_pair = {(r[0], r[1]): r[2] for r in result}
    for pair in [(0, 1), (0, 2), (1, 2)]:
        expected = min(r[2] for r in records if (r[0], r[1]) == pair)
        assert by_pair[pair] == expected


def test_dedup_empty_dataset():
    cluster = make_cluster()
    cluster.distribute_edges([], name="data")
    dedup_lightest(cluster, "data", key=lambda r: r, weight=lambda r: r)
    assert cluster.all_items("data") == []
