"""Claim 2 — constant-round aggregation."""

import random

from repro.mpc import Cluster, ModelConfig
from repro.primitives.aggregate import aggregate, aggregate_counts, count_items


def make_cluster(n=64, m=512) -> Cluster:
    return Cluster(ModelConfig.heterogeneous(n=n, m=m), rng=random.Random(2))


def test_sums_per_key_land_on_large():
    cluster = make_cluster()
    pairs = {mid: [("a", 1), ("b", 2)] for mid in cluster.small_ids[:10]}
    result = aggregate(cluster, pairs, lambda x, y: x + y)
    assert result == {"a": 10, "b": 20}


def test_aggregation_function_semantics():
    """f({f(X1), f(X2)}) = f(X1 ∪ X2) — check with max, an aggregation
    function per Definition 1."""
    cluster = make_cluster()
    pairs = {mid: [("k", mid)] for mid in cluster.small_ids}
    result = aggregate(cluster, pairs, max)
    assert result["k"] == max(cluster.small_ids)


def test_aggregate_to_explicit_destination():
    cluster = make_cluster()
    pairs = {mid: [("x", 1)] for mid in cluster.small_ids[:5]}
    result = aggregate(cluster, pairs, lambda a, b: a + b, dst=cluster.small_ids[3])
    assert result == {"x": 5}


def test_aggregate_rounds_are_constant_in_volume():
    counts = []
    for width in (5, len(make_cluster().small_ids)):
        cluster = make_cluster()
        pairs = {mid: [(mid % 7, 1)] for mid in cluster.small_ids[:width]}
        aggregate(cluster, pairs, lambda a, b: a + b)
        counts.append(cluster.ledger.rounds)
    fanout_depth = 4
    assert all(c <= fanout_depth for c in counts)


def test_aggregate_counts_degrees():
    cluster = make_cluster()
    keys = {mid: ["u", "v", "u"] for mid in cluster.small_ids[:4]}
    result = aggregate_counts(cluster, keys)
    assert result == {"u": 8, "v": 4}


def test_count_items_with_predicate():
    cluster = make_cluster()
    cluster.distribute_edges(list(range(100)), name="data")
    total = count_items(cluster, "data")
    evens = count_items(cluster, "data", predicate=lambda x: x % 2 == 0)
    assert total == 100
    assert evens == 50


def test_empty_aggregate():
    cluster = make_cluster()
    assert aggregate(cluster, {}, lambda a, b: a + b) == {}


def test_aggregate_works_without_large_machine():
    config = ModelConfig.sublinear(n=64, m=512)
    cluster = Cluster(config, rng=random.Random(1))
    pairs = {mid: [("k", 1)] for mid in cluster.small_ids[:6]}
    result = aggregate(cluster, pairs, lambda a, b: a + b)
    assert result == {"k": 6}


def test_min_aggregation_with_tuple_values():
    cluster = make_cluster()
    pairs = {
        cluster.small_ids[0]: [("v", (3, "c"))],
        cluster.small_ids[1]: [("v", (1, "a"))],
        cluster.small_ids[2]: [("v", (2, "b"))],
    }
    result = aggregate(cluster, pairs, min)
    assert result["v"] == (1, "a")
