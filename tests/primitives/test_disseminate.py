"""Claim 3 — constant-round dissemination."""

import math
import random

from repro.mpc import Cluster, ModelConfig
from repro.primitives.disseminate import disseminate, holders_by_key


def make_cluster(n=64, m=512) -> Cluster:
    return Cluster(ModelConfig.heterogeneous(n=n, m=m), rng=random.Random(4))


def test_every_holder_learns_its_value():
    cluster = make_cluster()
    holders = {
        "a": cluster.small_ids[:7],
        "b": cluster.small_ids[5:9],
    }
    received = disseminate(cluster, {"a": 1, "b": 2}, holders)
    for mid in holders["a"]:
        assert received[mid]["a"] == 1
    for mid in holders["b"]:
        assert received[mid]["b"] == 2


def test_machines_not_holding_a_key_do_not_receive_it():
    cluster = make_cluster()
    received = disseminate(cluster, {"a": 1}, {"a": cluster.small_ids[:2]})
    for mid in cluster.small_ids[2:]:
        assert "a" not in received.get(mid, {})


def test_rounds_logarithmic_in_holder_count():
    cluster = make_cluster()
    holders = {"k": cluster.small_ids}
    disseminate(cluster, {"k": 0}, holders)
    fanout = cluster.config.tree_fanout
    depth = math.ceil(math.log(len(cluster.smalls) + 1, fanout)) + 1
    assert cluster.ledger.rounds <= depth + 1


def test_value_with_no_holders_is_dropped():
    cluster = make_cluster()
    received = disseminate(cluster, {"ghost": 9}, {})
    assert received == {}
    assert cluster.ledger.rounds == 0


def test_all_trees_advance_in_lockstep():
    """Many keys disseminate in the same rounds, not sequentially."""
    cluster = make_cluster()
    holders = {f"k{i}": cluster.small_ids[: 5 + i] for i in range(10)}
    values = {f"k{i}": i for i in range(10)}
    disseminate(cluster, values, holders)
    assert cluster.ledger.rounds <= 4


def test_holders_by_key_scans_stores():
    cluster = make_cluster()
    cluster.smalls[0].put("edges", [(1, 2), (2, 3)])
    cluster.smalls[1].put("edges", [(2, 4)])
    holders = holders_by_key(cluster, "edges", keys_of_item=lambda e: (e[0], e[1]))
    assert holders[2] == [cluster.smalls[0].machine_id, cluster.smalls[1].machine_id]
    assert holders[1] == [cluster.smalls[0].machine_id]


def test_custom_source_machine():
    config = ModelConfig.sublinear(n=64, m=512)
    cluster = Cluster(config, rng=random.Random(1))
    holders = {"a": cluster.small_ids[1:6]}
    received = disseminate(cluster, {"a": 42}, holders, src=cluster.small_ids[0])
    for mid in holders["a"]:
        assert received[mid]["a"] == 42
