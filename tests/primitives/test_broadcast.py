"""Tree broadcast and converge-cast."""

import math
import random

import pytest

from repro.mpc import Cluster, ModelConfig
from repro.primitives.broadcast import broadcast, converge_cast


def make_cluster(n=64, m=512, gamma=0.5) -> Cluster:
    return Cluster(ModelConfig.heterogeneous(n=n, m=m, gamma=gamma), rng=random.Random(0))


def test_broadcast_reaches_everyone_in_log_fanout_rounds():
    cluster = make_cluster()
    rounds = broadcast(cluster, cluster.large.machine_id, "seed", cluster.small_ids)
    k = len(cluster.smalls)
    fanout = cluster.config.tree_fanout
    assert rounds <= math.ceil(math.log(k + 1, fanout)) + 1
    assert cluster.ledger.rounds == rounds


def test_broadcast_to_empty_list_is_free():
    cluster = make_cluster()
    assert broadcast(cluster, cluster.large.machine_id, "x", []) == 0
    assert cluster.ledger.rounds == 0


def test_broadcast_excludes_source():
    cluster = make_cluster()
    rounds = broadcast(cluster, 0, "v", [0])
    assert rounds == 0


def test_broadcast_depth_grows_with_smaller_fanout():
    wide = make_cluster(n=256, m=4096, gamma=0.7)
    narrow = make_cluster(n=256, m=4096, gamma=0.2)
    rounds_wide = broadcast(wide, wide.large.machine_id, "v", wide.small_ids)
    rounds_narrow = broadcast(narrow, narrow.large.machine_id, "v", narrow.small_ids)
    assert rounds_narrow >= rounds_wide


def test_converge_cast_collects_all_items():
    cluster = make_cluster()
    items = {mid: [mid] for mid in cluster.small_ids}
    result = converge_cast(cluster, items, cluster.large.machine_id)
    assert sorted(result) == sorted(cluster.small_ids)


def test_converge_cast_applies_combine_at_levels():
    cluster = make_cluster()
    items = {mid: [1, 1] for mid in cluster.small_ids}

    def summed(buffer):
        return [sum(buffer)]

    result = converge_cast(
        cluster, items, cluster.large.machine_id, combine=summed
    )
    assert result == [2 * len(cluster.smalls)]


def test_converge_cast_empty_input():
    cluster = make_cluster()
    assert converge_cast(cluster, {}, cluster.large.machine_id) == []
    assert cluster.ledger.rounds == 0


def test_converge_cast_items_already_at_destination():
    cluster = make_cluster()
    dst = cluster.large.machine_id
    result = converge_cast(cluster, {dst: ["keep"], 0: ["move"]}, dst)
    assert sorted(result) == ["keep", "move"]


def test_converge_cast_charges_buffers_to_machines():
    """Memory honesty: in-flight cast buffers count as machine memory, so
    the ledger's high-water marks see the tree's intermediate state."""
    cluster = make_cluster()
    items = {mid: [(mid, mid)] for mid in cluster.small_ids}
    before = dict(cluster.ledger.memory_high_water)
    converge_cast(cluster, items, cluster.large.machine_id, note="mem")
    high_water = cluster.ledger.memory_high_water
    assert high_water.get(cluster.large.machine_id, 0) >= 2 * len(cluster.smalls)
    assert high_water != before
    # The scratch is freed on completion: no machine keeps a cast buffer.
    for machine in cluster.machines.values():
        assert not any("#cast-buffer" in name for name in machine.datasets())


def test_converge_cast_abort_leaves_no_scratch_charged():
    """Regression: an exception mid-cast (strict-mode limit, failing
    combine) must not leave `#cast-buffer` scratch datasets behind."""
    cluster = make_cluster()
    items = {mid: [1, 1] for mid in cluster.small_ids}

    def exploding(buffer):
        raise RuntimeError("combine failed")

    with pytest.raises(RuntimeError):
        converge_cast(
            cluster, items, cluster.large.machine_id, combine=exploding
        )
    for machine in cluster.machines.values():
        assert not any("#cast-buffer" in name for name in machine.datasets())
