"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graph import generators
from repro.mpc import Cluster, ModelConfig


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)


@pytest.fixture
def small_weighted_graph(rng):
    """A small connected weighted graph (n=30, m=90)."""
    return generators.random_connected_graph(30, 90, rng).with_unique_weights(rng)


@pytest.fixture
def small_unweighted_graph(rng):
    return generators.random_connected_graph(30, 90, rng)


@pytest.fixture
def small_cluster(rng):
    """A heterogeneous cluster sized for a 30-vertex, 90-edge input."""
    config = ModelConfig.heterogeneous(n=30, m=90)
    return Cluster(config, rng=random.Random(rng.random()))
