"""Golden pins for the huge-n regime scenarios (quick-mode sizing).

The huge group is what the array-native primitive layer buys: sweeps at
10-100x the ``large`` sizes, affordable because every primitive keeps
its items in columnar record batches between ``send_indexed`` calls.
Like the large pins, each test runs one scenario at quick sizing through
the shared ``Runner`` (seed 0, the CLI default) and compares every row —
including the ledger-derived ``*_words`` / ``*_max_memory`` columns —
against values captured at pin time.  Because the default primitive path
is columnar and the pins were captured from the object path's semantics,
a green run here is also a cross-path identity check on real pipelines.

Drift means the primitive layer changed model-level accounting, not just
speed; regenerate deliberately or fix the regression.
"""

import pytest

from repro.experiments import Runner, get_scenario

GOLDEN_QUICK_ROWS = {
    "table1_connectivity_huge": [
        {"n": 1600, "m": 4725, "het_rounds": 2, "sub_rounds": 17,
         "theory_het": "O(1)", "theory_sub": "~log n",
         "het_words": 18769611, "het_max_memory": 3804800,
         "sub_words": 258686, "sub_max_memory": 10473},
    ],
    "table1_mst_huge": [
        {"m/n": 2, "het_steps": 0, "het_rounds": 19, "sub_iters": 7,
         "sub_rounds": 102, "theory_het~loglog(m/n)": 1.0,
         "theory_sub~log(n)": 11.550746785383243,
         "het_words": 475665, "het_max_memory": 17796,
         "sub_words": 1378338, "sub_max_memory": 15165},
    ],
    "table1_matching_huge": [
        {"avg_degree": 4.0, "het_rounds": 38, "phase1_iters": 4,
         "gu_charge": 3.8, "sub_rounds": 65, "theory_het~sqrt": 1.0,
         "het_words": 308977, "het_max_memory": 7995,
         "sub_words": 424498, "sub_max_memory": 8377},
    ],
    "workload_power_law_huge": [
        {"regime": "heterogeneous", "n": 800, "m": 1596, "max_degree": 124,
         "components": 89, "rounds": 4, "words": 7947991,
         "max_memory": 1584800},
        {"regime": "sublinear", "n": 800, "m": 1596, "max_degree": 124,
         "components": 89, "rounds": 31, "words": 97696,
         "max_memory": 4289},
        {"regime": "near_linear", "n": 800, "m": 1596, "max_degree": 124,
         "components": 89, "rounds": 2, "words": 2285252,
         "max_memory": 1584800},
        {"regime": "superlinear", "n": 800, "m": 1596, "max_degree": 124,
         "components": 89, "rounds": 4, "words": 8023307,
         "max_memory": 1584800},
    ],
}


def assert_rows_match(measured, golden) -> None:
    assert len(measured) == len(golden)
    for row, expected in zip(measured, golden):
        assert set(row) == set(expected)
        for key, value in expected.items():
            if isinstance(value, float):
                assert row[key] == pytest.approx(value, rel=1e-9), key
            else:
                assert row[key] == value, key


@pytest.mark.parametrize("name", sorted(GOLDEN_QUICK_ROWS))
def test_huge_scenario_quick_rows_are_pinned(name):
    run = Runner(seed=0).run(get_scenario(name), quick=True)
    assert_rows_match(run.rows, GOLDEN_QUICK_ROWS[name])
