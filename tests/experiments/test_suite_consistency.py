"""``suite.json`` round-trip and totals consistency with the committed
per-scenario artifacts — catches artifact drift the golden pins miss."""

import pathlib

import pytest

from repro.experiments.artifacts import (
    SUITE_SCHEMA_VERSION,
    TOTAL_KEYS,
    load_results_dir,
    load_suite,
    suite_path,
    validate_suite,
    write_suite,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
RESULTS = REPO_ROOT / "benchmarks" / "results"

#: Scenarios whose round columns are not the persisted ledger totals:
#: the robustness artifacts tabulate the throttled-off arm next to the
#: enforce arm (only the enforce ledger is persisted), and the APSP
#: scenario's ``rounds`` column is the oracle's round formula, not a
#: ledger measurement.
ROUNDS_ROLLUP_EXCEPTIONS = {
    "corollary42_apsp",
    "robustness_heavy_components",
    "robustness_near_clique",
    "robustness_power_law_gamma",
}


@pytest.fixture(scope="module")
def suite():
    return load_suite(suite_path(RESULTS))


@pytest.fixture(scope="module")
def artifacts():
    return {a["scenario"]: a for a in load_results_dir(RESULTS)}


def test_suite_schema_and_round_trip(tmp_path, suite):
    assert suite["schema"] == SUITE_SCHEMA_VERSION
    validate_suite(suite)
    path = tmp_path / "suite.json"
    write_suite(path, suite)
    assert load_suite(path) == suite


def test_suite_covers_every_artifact_in_sorted_order(suite, artifacts):
    names = [row["scenario"] for row in suite["scenarios"]]
    assert names == sorted(artifacts)


def test_suite_totals_equal_artifact_totals(suite, artifacts):
    for row in suite["scenarios"]:
        artifact = artifacts[row["scenario"]]
        assert row["group"] == artifact["group"]
        assert row["points"] == len(artifact["rows"])
        for key in TOTAL_KEYS:
            assert row[key] == artifact["totals"][key], (
                row["scenario"], key
            )


def _measure_columns(artifact, suffix):
    return [
        c for c in artifact["columns"]
        if "~" not in c and (c == suffix or c.endswith(f"_{suffix}"))
    ]


def test_words_totals_equal_row_sums(artifacts):
    """Every ledger contributes exactly one ``*_words`` column per row,
    so the totals roll-up must equal the column sum — for all scenarios."""
    for name, artifact in artifacts.items():
        columns = _measure_columns(artifact, "words")
        total = sum(
            row[c] for row in artifact["rows"] for c in columns
        )
        assert total == artifact["totals"]["words"], name


def test_max_memory_totals_equal_row_max(artifacts):
    for name, artifact in artifacts.items():
        columns = _measure_columns(artifact, "max_memory")
        peak = max(
            (row[c] for row in artifact["rows"] for c in columns),
            default=0,
        )
        assert peak == artifact["totals"]["max_memory"], name


def test_rounds_totals_equal_row_sums(artifacts):
    for name, artifact in artifacts.items():
        if name in ROUNDS_ROLLUP_EXCEPTIONS:
            continue
        columns = _measure_columns(artifact, "rounds")
        total = sum(
            row[c] for row in artifact["rows"] for c in columns
        )
        assert total == artifact["totals"]["rounds"], name


def test_rounds_exceptions_still_bounded_by_row_sums(artifacts):
    """The exceptions tabulate *extra* (unpersisted) arms, so the column
    sum can only exceed the ledger totals, never undercount them."""
    for name in ROUNDS_ROLLUP_EXCEPTIONS:
        artifact = artifacts[name]
        columns = _measure_columns(artifact, "rounds")
        total = sum(
            row[c] for row in artifact["rows"] for c in columns
        )
        assert total >= artifact["totals"]["rounds"], name
