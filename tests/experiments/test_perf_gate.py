"""The perf-gate comparator: hypothesis property sweep, pinned synthetic
regressions against the committed baselines, and the CLI wrapper."""

import json
import pathlib
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.perfgate import (
    DEFAULT_TOLERANCE,
    METRIC_KEYS,
    PERF_SCHEMA_VERSION,
    compare_perf,
    load_perf_dir,
    row_identity,
    update_baseline,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
PERF_DIR = REPO_ROOT / "benchmarks" / "results" / "perf"
SCRIPT = REPO_ROOT / "scripts" / "perf_gate.py"


def _artifact(name, rows):
    return {
        "schema": PERF_SCHEMA_VERSION,
        "benchmark": name,
        "params": {},
        "rows": rows,
    }


def _single(value, key="items_per_sec"):
    return {"bench": _artifact("bench", [{"engine": "x", key: value}])}


# --- property sweep -----------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(
    base=st.floats(1.0, 1e9),
    ratio=st.floats(0.0, 3.0),
    tolerance=st.floats(0.01, 0.9),
)
def test_gate_fires_iff_drop_exceeds_tolerance(base, ratio, tolerance):
    measured_value = base * ratio
    result = compare_perf(
        _single(base), _single(measured_value), tolerance=tolerance
    )
    assert result.matched == 1
    fired = bool(result.failures)
    assert fired == (measured_value < base * (1.0 - tolerance))
    assert result.ok(min_matched=1) == (not fired)


@settings(max_examples=100, deadline=None)
@given(
    base=st.floats(1.0, 1e9),
    gain=st.floats(1.0, 100.0),
    tolerance=st.floats(0.01, 0.9),
)
def test_improvements_never_fire(base, gain, tolerance):
    result = compare_perf(
        _single(base), _single(base * gain), tolerance=tolerance
    )
    assert result.failures == []


@settings(max_examples=100, deadline=None)
@given(
    base=st.floats(1.0, 1e9),
    slack=st.floats(0.0, 1.0),
    tolerance=st.floats(0.01, 0.9),
)
def test_drop_within_tolerance_passes(base, slack, tolerance):
    # ratio in [1 - tolerance, 1]: within the allowance, boundary included.
    ratio = (1.0 - tolerance) + slack * tolerance
    result = compare_perf(
        _single(base), _single(base * ratio), tolerance=tolerance
    )
    assert result.failures == []


@settings(max_examples=100, deadline=None)
@given(
    base=st.floats(1.0, 1e9),
    margin=st.floats(0.0, 0.98),
    tolerance=st.floats(0.01, 0.9),
)
def test_clear_drop_always_fires(base, margin, tolerance):
    ratio = (1.0 - tolerance) * (1.0 - 0.01 - margin * 0.98)
    result = compare_perf(
        _single(base), _single(base * ratio), tolerance=tolerance
    )
    assert len(result.failures) == 1


_scalar = st.one_of(
    st.text(max_size=6),
    st.floats(allow_nan=True, allow_infinity=True),
    st.integers(-10**6, 10**6),
    st.booleans(),
    st.none(),
)


@settings(max_examples=100, deadline=None)
@given(
    base_rows=st.lists(
        st.dictionaries(st.text(max_size=6), _scalar, max_size=4), max_size=3
    ),
    meas_rows=st.lists(
        st.dictionaries(st.text(max_size=6), _scalar, max_size=4), max_size=3
    ),
)
def test_arbitrary_rows_never_raise(base_rows, meas_rows):
    """Missing/new benchmarks, rows, and metric keys degrade to notes —
    the comparator must never throw on schema-valid artifacts."""
    baseline = {"a": _artifact("a", base_rows), "b": _artifact("b", [])}
    measured = {"a": _artifact("a", meas_rows), "c": _artifact("c", [])}
    result = compare_perf(baseline, measured)
    assert isinstance(result.failures, list)
    assert any("no measured artifact" in n for n in result.notes)  # b
    assert any("new benchmark" in n for n in result.notes)  # c


def test_sizing_mismatch_is_a_note_not_a_failure():
    baseline = {
        "bench": _artifact(
            "bench", [{"engine": "x", "items": 100000, "items_per_sec": 100.0}]
        )
    }
    measured = {
        "bench": _artifact(
            "bench", [{"engine": "x", "items": 4000, "items_per_sec": 1.0}]
        )
    }
    result = compare_perf(baseline, measured)
    assert result.failures == []
    assert result.matched == 0
    assert any("no matching measured row" in n for n in result.notes)
    assert not result.ok(min_matched=1)  # but --min-matched can demand it
    assert result.ok(min_matched=0)


def test_derived_keys_are_not_identity_or_gated():
    row = {"engine": "x", "items_per_sec": 10.0, "speedup": 3.0,
           "overhead_pct": 1.0}
    assert row_identity(row) == (("engine", "x"),)
    baseline = {"bench": _artifact("bench", [row])}
    measured = {
        "bench": _artifact(
            "bench",
            [{"engine": "x", "items_per_sec": 10.0, "speedup": 0.001}],
        )
    }
    assert compare_perf(baseline, measured).failures == []


# --- pinned tests against the committed baselines -----------------------

def _halved(artifacts):
    halved = {}
    for name, artifact in artifacts.items():
        obj = json.loads(json.dumps(artifact))
        for row in obj["rows"]:
            for key in METRIC_KEYS:
                if isinstance(row.get(key), (int, float)):
                    row[key] = row[key] / 2
        halved[name] = obj
    return halved


def test_committed_baselines_self_check():
    baseline = load_perf_dir(PERF_DIR)
    assert len(baseline) == 6
    assert "executor_scaling" in baseline
    assert "serve_throughput" in baseline
    result = compare_perf(baseline, baseline)
    assert result.failures == []
    assert result.matched >= 20
    assert result.ok(min_matched=1)


def test_synthetic_2x_drop_fails_every_metric():
    """A 2x throughput regression must fail the gate on every matched
    metric at the default 30% tolerance."""
    baseline = load_perf_dir(PERF_DIR)
    result = compare_perf(baseline, _halved(baseline))
    assert result.matched > 0
    assert len(result.failures) == result.matched
    assert not result.ok(min_matched=0)


def test_update_baseline_round_trip(tmp_path):
    measured_dir = tmp_path / "measured"
    baseline_dir = tmp_path / "baseline"
    measured_dir.mkdir()
    obj = _artifact("bench", [{"engine": "x", "items_per_sec": 42.0}])
    (measured_dir / "bench.json").write_text(json.dumps(obj))
    updated = update_baseline(measured_dir, baseline_dir)
    assert [p.name for p in updated] == ["bench.json"]
    result = compare_perf(
        load_perf_dir(baseline_dir), load_perf_dir(measured_dir)
    )
    assert result.failures == [] and result.matched == 1


def test_load_perf_dir_rejects_wrong_schema(tmp_path):
    (tmp_path / "bad.json").write_text('{"schema": "repro.bench/2"}')
    with pytest.raises(ValueError):
        load_perf_dir(tmp_path)


# --- the CLI wrapper ----------------------------------------------------

def _run_script(*args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True, text=True,
    )


def test_script_passes_on_committed_baselines():
    proc = _run_script()
    assert proc.returncode == 0, proc.stderr
    assert "perf gate: OK" in proc.stdout


def test_script_fails_on_synthetic_2x_drop(tmp_path):
    baseline = load_perf_dir(PERF_DIR)
    for name, obj in _halved(baseline).items():
        (tmp_path / f"{name}.json").write_text(json.dumps(obj))
    proc = _run_script("--measured", str(tmp_path))
    assert proc.returncode == 1
    assert "FAIL" in proc.stdout
    # ... and a loose enough tolerance lets the same drop through.
    proc = _run_script("--measured", str(tmp_path), "--tolerance", "0.6")
    assert proc.returncode == 0


def test_script_update_baseline_requires_measured():
    proc = _run_script("--update-baseline")
    assert proc.returncode == 2
