"""Golden pins for the large-n regime scenarios (quick-mode sizing).

The large-regime sweeps are the workloads the columnar engine was built
to afford; their artifacts must stay byte-deterministic across engine
work.  Each test runs one scenario at quick sizing through the shared
``Runner`` (seed 0, the CLI default) and compares every row — including
the ledger-derived ``*_words`` / ``*_max_memory`` columns — against
values captured at pin time.  A drift here means the engine changed
model-level accounting, not just speed.

A final test checks that ``repro report --check`` flags a stale large
artifact, closing the loop from engine changes to the committed guide.
"""

import pytest

from repro.experiments import Runner, get_scenario
from repro.experiments.report import check_report, write_report

GOLDEN_QUICK_ROWS = {
    "table1_connectivity_large": [
        {"n": 160, "m": 471, "het_rounds": 4, "sub_rounds": 17,
         "theory_het": "O(1)", "theory_sub": "~log n",
         "het_words": 4870014, "het_max_memory": 196160,
         "sub_words": 30836, "sub_max_memory": 2519},
        {"n": 320, "m": 944, "het_rounds": 4, "sub_rounds": 17,
         "theory_het": "O(1)", "theory_sub": "~log n",
         "het_words": 11969424, "het_max_memory": 493120,
         "sub_words": 57449, "sub_max_memory": 3861},
    ],
    "table1_mst_large": [
        {"m/n": 2, "het_steps": 0, "het_rounds": 19, "sub_iters": 5,
         "sub_rounds": 68, "theory_het~loglog(m/n)": 1.0,
         "theory_sub~log(n)": 8.321928094887362,
         "het_words": 60455, "het_max_memory": 4518,
         "sub_words": 122686, "sub_max_memory": 3382},
        {"m/n": 8, "het_steps": 2, "het_rounds": 81, "sub_iters": 5,
         "sub_rounds": 68, "theory_het~loglog(m/n)": 1.584962500721156,
         "theory_sub~log(n)": 8.321928094887362,
         "het_words": 1317981, "het_max_memory": 24966,
         "sub_words": 1099077, "sub_max_memory": 16850},
    ],
    "table1_matching_large": [
        {"avg_degree": 4.0, "het_rounds": 36, "phase1_iters": 3,
         "gu_charge": 3.2, "sub_rounds": 49, "theory_het~sqrt": 1.0,
         "het_words": 46922, "het_max_memory": 2250,
         "sub_words": 50466, "sub_max_memory": 2550},
        {"avg_degree": 16.0, "het_rounds": 40, "phase1_iters": 5,
         "gu_charge": 4.9, "sub_rounds": 79,
         "theory_het~sqrt": 2.1805704533822032,
         "het_words": 341129, "het_max_memory": 12384,
         "sub_words": 754501, "sub_max_memory": 12683},
    ],
    "workload_power_law_large": [
        {"regime": "heterogeneous", "n": 320, "m": 599, "max_degree": 61,
         "components": 40, "rounds": 4, "words": 6796116,
         "max_memory": 492800},
        {"regime": "sublinear", "n": 320, "m": 599, "max_degree": 61,
         "components": 40, "rounds": 32, "words": 38098, "max_memory": 2253},
        {"regime": "near_linear", "n": 320, "m": 599, "max_degree": 61,
         "components": 40, "rounds": 2, "words": 2098860,
         "max_memory": 492800},
        {"regime": "superlinear", "n": 320, "m": 599, "max_degree": 61,
         "components": 40, "rounds": 4, "words": 6828477,
         "max_memory": 492800},
    ],
    "workload_grid_large": [
        {"regime": "heterogeneous", "n": 192, "m": 384, "max_degree": 4,
         "components": 1, "rounds": 4, "words": 4299228,
         "max_memory": 249216},
        {"regime": "sublinear", "n": 192, "m": 384, "max_degree": 4,
         "components": 1, "rounds": 17, "words": 21874, "max_memory": 1809},
        {"regime": "near_linear", "n": 192, "m": 384, "max_degree": 4,
         "components": 1, "rounds": 2, "words": 1417434,
         "max_memory": 249216},
        {"regime": "superlinear", "n": 192, "m": 384, "max_degree": 4,
         "components": 1, "rounds": 4, "words": 4275864,
         "max_memory": 249216},
    ],
    "workload_community_large": [
        {"regime": "heterogeneous", "n": 240, "m": 687, "max_degree": 12,
         "components": 1, "rounds": 4, "words": 7309443,
         "max_memory": 311520},
        {"regime": "sublinear", "n": 240, "m": 687, "max_degree": 12,
         "components": 1, "rounds": 34, "words": 60721, "max_memory": 3155},
        {"regime": "near_linear", "n": 240, "m": 687, "max_degree": 12,
         "components": 1, "rounds": 2, "words": 2441565,
         "max_memory": 311520},
        {"regime": "superlinear", "n": 240, "m": 687, "max_degree": 12,
         "components": 1, "rounds": 4, "words": 7367853,
         "max_memory": 311520},
    ],
    "workload_multi_component_large": [
        {"regime": "heterogeneous", "n": 240, "m": 480, "max_degree": 10,
         "components": 5, "rounds": 4, "words": 5140359,
         "max_memory": 311520},
        {"regime": "sublinear", "n": 240, "m": 480, "max_degree": 10,
         "components": 5, "rounds": 17, "words": 26334, "max_memory": 2027},
        {"regime": "near_linear", "n": 240, "m": 480, "max_degree": 10,
         "components": 5, "rounds": 2, "words": 1651074,
         "max_memory": 311520},
        {"regime": "superlinear", "n": 240, "m": 480, "max_degree": 10,
         "components": 5, "rounds": 4, "words": 5128677,
         "max_memory": 311520},
    ],
    "workload_near_clique_large": [
        {"regime": "heterogeneous", "n": 64, "m": 1976, "max_degree": 63,
         "components": 1, "rounds": 6, "words": 15539652,
         "max_memory": 60608},
        {"regime": "sublinear", "n": 64, "m": 1976, "max_degree": 63,
         "components": 1, "rounds": 21, "words": 489636,
         "max_memory": 11936},
        {"regime": "near_linear", "n": 64, "m": 1976, "max_degree": 63,
         "components": 1, "rounds": 2, "words": 4903845,
         "max_memory": 60608},
        {"regime": "superlinear", "n": 64, "m": 1976, "max_degree": 63,
         "components": 1, "rounds": 6, "words": 15477150,
         "max_memory": 60608},
    ],
}


def assert_rows_match(measured, golden) -> None:
    assert len(measured) == len(golden)
    for row, expected in zip(measured, golden):
        assert set(row) == set(expected)
        for key, value in expected.items():
            if isinstance(value, float):
                assert row[key] == pytest.approx(value, rel=1e-9), key
            else:
                assert row[key] == value, key


@pytest.mark.parametrize("name", sorted(GOLDEN_QUICK_ROWS))
def test_large_scenario_quick_rows_are_pinned(name):
    run = Runner(seed=0).run(get_scenario(name), quick=True)
    assert_rows_match(run.rows, GOLDEN_QUICK_ROWS[name])


def test_report_check_flags_stale_large_artifact(tmp_path):
    """`repro report --check` must catch drift in a large-regime artifact."""
    results = tmp_path / "results"
    runner = Runner(results_dir=results, seed=0)
    scenario = get_scenario("table1_connectivity_large")
    runner.persist(runner.run(scenario, quick=True))
    doc = tmp_path / "REPRODUCTION.md"
    write_report(results_dir=results, doc_path=doc)
    assert check_report(results_dir=results, doc_path=doc) == []

    artifact = results / "table1_connectivity_large.json"
    artifact.write_text(
        artifact.read_text().replace('"het_rounds": 4', '"het_rounds": 5')
    )
    problems = check_report(results_dir=results, doc_path=doc)
    assert problems and "stale" in problems[0]
