"""Golden pins and determinism checks for the robustness scenario group.

Each robustness scenario runs its adversarial workload four times per
point (capacity calibration, then throttle off / advise / enforce in the
tightened window) and asserts the acceptance contract *inside* measure:
the off arm records >= 1 communication violation, the enforce arm
records zero, outputs and total words match across arms, and round
inflation stays <= 2x.  The pins below freeze the quick-mode rows —
including the enforce-arm ledger columns and the artifact's ``throttle``
block — and the determinism tests extend the `--jobs` byte-identity
contract to throttled runs across process pools and engine backends.
"""

import json

import pytest

from repro.experiments import ParallelRunner, Runner, get_scenario

ROBUSTNESS_SCENARIOS = (
    "robustness_near_clique",
    "robustness_heavy_components",
    "robustness_power_law_gamma",
)

GOLDEN_QUICK_ROWS = {
    "robustness_near_clique": [
        {"n": 48, "m": 1116, "peak_frac": 0.333, "cap_small": 221,
         "off_rounds": 3, "off_violations": 24, "advise_events": 1,
         "enf_rounds": 5, "enf_violations": 0, "inflation": 1.667,
         "splits": 2, "enforce_words": 7776, "enforce_max_memory": 14},
        {"n": 64, "m": 2000, "peak_frac": 0.444, "cap_small": 393,
         "off_rounds": 3, "off_violations": 28, "advise_events": 1,
         "enf_rounds": 5, "enf_violations": 0, "inflation": 1.667,
         "splits": 2, "enforce_words": 16000, "enforce_max_memory": 16},
    ],
    "robustness_heavy_components": [
        {"n": 48, "m": 139, "peak_frac": 0.127, "cap_small": 84,
         "off_rounds": 6, "off_violations": 4, "advise_events": 1,
         "enf_rounds": 8, "enf_violations": 0, "inflation": 1.333,
         "splits": 2, "enforce_words": 1000, "enforce_max_memory": 14},
        {"n": 64, "m": 186, "peak_frac": 0.13, "cap_small": 115,
         "off_rounds": 4, "off_violations": 4, "advise_events": 1,
         "enf_rounds": 6, "enf_violations": 0, "inflation": 1.5,
         "splits": 2, "enforce_words": 1348, "enforce_max_memory": 16},
    ],
    "robustness_power_law_gamma": [
        {"n": 64, "m": 182, "peak_frac": 0.051, "cap_small": 128,
         "off_rounds": 5, "off_violations": 1, "advise_events": 3,
         "enf_rounds": 6, "enf_violations": 0, "inflation": 1.2,
         "splits": 1, "enforce_words": 1238, "enforce_max_memory": 240},
        {"n": 96, "m": 239, "peak_frac": 0.036, "cap_small": 146,
         "off_rounds": 5, "off_violations": 1, "advise_events": 3,
         "enf_rounds": 6, "enf_violations": 0, "inflation": 1.2,
         "splits": 1, "enforce_words": 1406, "enforce_max_memory": 202},
    ],
}


@pytest.mark.parametrize("name", ROBUSTNESS_SCENARIOS)
def test_quick_rows_match_golden(name):
    run = Runner(seed=0).run(get_scenario(name), quick=True)
    assert run.rows == GOLDEN_QUICK_ROWS[name]


@pytest.mark.parametrize("name", ROBUSTNESS_SCENARIOS)
def test_acceptance_contract_on_quick_rows(name):
    """The ISSUE's acceptance criteria, pinned directly: unthrottled runs
    breach (>= 1 violation), enforced runs never do, inflation <= 2x."""
    run = Runner(seed=0).run(get_scenario(name), quick=True)
    for row in run.rows:
        assert row["off_violations"] >= 1
        assert row["enf_violations"] == 0
        assert row["inflation"] <= 2.0
    # Only the enforce arm's ledger feeds the totals, so the artifact
    # (and `bench --strict`) sees a violation-free scenario.
    assert run.totals["violations"] == 0


@pytest.mark.parametrize("name", ROBUSTNESS_SCENARIOS)
def test_artifact_carries_enforce_throttle_block(name, tmp_path):
    runner = Runner(results_dir=tmp_path, seed=0)
    runner.persist(runner.run(get_scenario(name), quick=True))
    artifact = json.loads((tmp_path / f"{name}.json").read_text())
    block = artifact["throttle"]
    assert block["mode"] == "enforce"
    assert block["headroom"] == 0.9
    assert block["splits"] >= 1
    assert block["extra_rounds"] >= 1
    # Enforcement held every executed round under the headroom line.
    assert block["peak_traffic_frac"] <= 0.9


def test_unthrottled_artifacts_have_no_throttle_block(tmp_path):
    """Classic scenarios must stay byte-identical: no ``throttle`` key."""
    runner = Runner(results_dir=tmp_path, seed=0)
    runner.persist(runner.run(get_scenario("table1_connectivity"), quick=True))
    artifact = json.loads((tmp_path / "table1_connectivity.json").read_text())
    assert "throttle" not in artifact


def test_throttled_artifacts_byte_identical_serial_vs_parallel(tmp_path):
    """The `--jobs N` byte-identity contract extends to throttled runs:
    controller state lives per measurement, so process placement cannot
    leak into the artifact."""
    scenarios = [get_scenario(name) for name in ROBUSTNESS_SCENARIOS]
    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"
    Runner(results_dir=serial_dir, seed=0).run_many(scenarios, quick=True)
    ParallelRunner(results_dir=parallel_dir, seed=0, jobs=2).run_many(
        scenarios, quick=True
    )
    for name in ROBUSTNESS_SCENARIOS:
        assert (serial_dir / f"{name}.json").read_bytes() == (
            parallel_dir / f"{name}.json"
        ).read_bytes(), f"{name} differs between serial and parallel runs"


def test_throttled_artifacts_byte_identical_across_engine_backends(
    tmp_path, monkeypatch
):
    """Splitting decisions are pure functions of plan/ledger state, both
    bit-identical across the pure and numpy engine backends — so the
    throttled artifacts must be too."""
    pytest.importorskip("numpy")
    scenarios = [get_scenario(name) for name in ROBUSTNESS_SCENARIOS]
    outputs = {}
    for backend in ("pure", "numpy"):
        monkeypatch.setenv("REPRO_ENGINE_BACKEND", backend)
        out = tmp_path / backend
        Runner(results_dir=out, seed=0).run_many(scenarios, quick=True)
        outputs[backend] = {
            name: (out / f"{name}.json").read_bytes()
            for name in ROBUSTNESS_SCENARIOS
        }
    assert outputs["pure"] == outputs["numpy"]
