"""Registry completeness and scenario metadata invariants."""

import pathlib

import pytest

from repro.experiments import (
    GROUPS,
    REGIMES,
    SCENARIOS,
    all_scenarios,
    get_scenario,
    scenario_names,
)

BENCH_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"


def test_every_table1_bench_script_has_a_scenario():
    """The bench_table1_* wrappers must stay in sync with the registry."""
    scripts = sorted(p.stem for p in BENCH_DIR.glob("bench_table1_*.py"))
    assert scripts, "no table1 benchmark scripts found"
    for script in scripts:
        name = script.removeprefix("bench_")
        assert name in SCENARIOS, f"{script}.py has no registry scenario"


def test_every_migrated_bench_script_has_a_scenario():
    """All bench scripts except the stand-alone throughput/overhead
    benches are registry wrappers."""
    standalone = {
        "bench_engine_throughput",
        "bench_executor_scaling",
        "bench_primitive_throughput",
        "bench_serve_throughput",
        "bench_sketch_throughput",
        "bench_throttle_overhead",
    }
    for path in BENCH_DIR.glob("bench_*.py"):
        if path.stem in standalone:
            continue
        assert path.stem.removeprefix("bench_") in SCENARIOS


def test_scenario_metadata_is_well_formed():
    for scenario in all_scenarios():
        assert scenario.group in GROUPS
        assert set(scenario.regimes) <= set(REGIMES)
        assert scenario.points
        assert scenario.sweep(quick=True)
        assert scenario.columns
        # quick sweeps never exceed the full sweep.
        assert len(scenario.sweep(quick=True)) <= len(scenario.sweep(quick=False))


def test_registry_spans_the_acceptance_matrix():
    """>= 12 scenarios over >= 4 graph families and >= 3 regimes."""
    scenarios = all_scenarios()
    assert len(scenarios) >= 12
    assert len({s.graph_family for s in scenarios}) >= 4
    assert len({r for s in scenarios for r in s.regimes}) >= 3


def test_workload_matrix_covers_new_families_and_all_regimes():
    families = {s.graph_family for s in all_scenarios() if s.group == "workload"}
    assert families == {
        "power_law", "grid", "planted_community", "multi_component",
        "near_clique",
    }
    for scenario in all_scenarios():
        if scenario.group == "workload":
            assert set(scenario.regimes) == set(REGIMES)


def test_get_scenario_unknown_name():
    with pytest.raises(KeyError, match="unknown scenario"):
        get_scenario("not_a_scenario")


def test_names_are_unique_and_ordered():
    names = scenario_names()
    assert len(names) == len(set(names))
    assert names[0].startswith("table1_")
