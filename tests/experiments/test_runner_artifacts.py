"""Runner execution and the repro.bench/2 artifact schema round-trip."""

import json

import pytest

from repro.experiments import (
    ArtifactError,
    ParallelRunner,
    Runner,
    SCHEMA_VERSION,
    Scenario,
    get_scenario,
    load_artifact,
    load_results_dir,
    load_suite,
    validate_artifact,
    validate_suite,
    write_artifact,
)
from repro.mpc import Cluster, ModelConfig


def _toy_scenario(**overrides):
    def measure(point, rng, quick):
        cluster = Cluster(ModelConfig.heterogeneous(n=16, m=32), rng=rng)
        cluster.ledger.charge(point, note="toy")
        return {"x": point, "doubled": 2 * point, "_ledgers": {"": cluster.ledger}}

    fields = dict(
        name="toy",
        title="Toy scenario",
        group="ablation",
        problem="connectivity",
        graph_family="gnm",
        regimes=("heterogeneous",),
        axis="x",
        points=(1, 2, 3),
        quick_points=(1,),
        measure=measure,
        columns=("x", "doubled"),
    )
    fields.update(overrides)
    return Scenario(**fields)


def test_runner_runs_sweep_and_appends_ledger_columns(tmp_path):
    runner = Runner(results_dir=tmp_path)
    run = runner.run(_toy_scenario())
    assert [row["x"] for row in run.rows] == [1, 2, 3]
    assert all("words" in row and "max_memory" in row for row in run.rows)
    assert run.columns == ("x", "doubled", "words", "max_memory")
    # Totals roll up the per-point ledgers: 1+2+3 charged rounds.
    assert run.totals["rounds"] == 6
    assert run.totals["words"] == 0
    assert run.totals["violations"] == 0


def test_runner_quick_uses_quick_points_and_skips_checks(tmp_path):
    def failing_check(rows):
        raise AssertionError("must not run on quick sweeps")

    runner = Runner(results_dir=tmp_path)
    run = runner.run(_toy_scenario(check=failing_check), quick=True)
    assert [row["x"] for row in run.rows] == [1]
    assert run.quick


def test_runner_check_runs_on_full_sweeps():
    seen = []
    runner = Runner()
    runner.run(_toy_scenario(check=seen.append))
    assert len(seen) == 1 and len(seen[0]) == 3


def test_artifact_round_trip(tmp_path):
    runner = Runner(results_dir=tmp_path)
    run = runner.run(_toy_scenario())
    paths = runner.persist(run)
    assert [p.name for p in paths] == ["toy.txt", "toy.json"]
    loaded = load_artifact(tmp_path / "toy.json")
    assert loaded == run.to_artifact()
    # And a second write is byte-identical (deterministic serialization).
    before = (tmp_path / "toy.json").read_bytes()
    write_artifact(tmp_path / "toy.json", loaded)
    assert (tmp_path / "toy.json").read_bytes() == before


def test_text_artifact_carries_schema_header(tmp_path):
    from repro.experiments.artifacts import text_header

    runner = Runner(results_dir=tmp_path)
    runner.persist(runner.run(_toy_scenario()))
    text = (tmp_path / "toy.txt").read_text()
    assert text.startswith(text_header("toy"))
    assert SCHEMA_VERSION in text


def test_validate_rejects_missing_key():
    artifact = Runner().run(_toy_scenario()).to_artifact()
    artifact.pop("rows")
    with pytest.raises(ArtifactError, match="rows"):
        validate_artifact(artifact)


def test_validate_rejects_wrong_schema_version():
    artifact = Runner().run(_toy_scenario()).to_artifact()
    artifact["schema"] = "repro.bench/99"
    with pytest.raises(ArtifactError, match="schema"):
        validate_artifact(artifact)


def test_validate_rejects_non_scalar_row_values():
    artifact = Runner().run(_toy_scenario()).to_artifact()
    artifact["rows"][0]["bad"] = [1, 2]
    with pytest.raises(ArtifactError, match="non-scalar"):
        validate_artifact(artifact)


def test_load_rejects_invalid_json(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(ArtifactError, match="invalid JSON"):
        load_artifact(path)


def test_load_results_dir_sorts_by_scenario(tmp_path):
    runner = Runner(results_dir=tmp_path)
    for name in ("zeta", "alpha"):
        runner.persist(runner.run(_toy_scenario(name=name)))
    loaded = load_results_dir(tmp_path)
    assert [a["scenario"] for a in loaded] == ["alpha", "zeta"]


def test_registered_scenario_quick_run_validates(tmp_path):
    """A real registry scenario produces a schema-valid artifact."""
    runner = Runner(results_dir=tmp_path, seed=0)
    run = runner.run(get_scenario("workload_grid"), quick=True)
    runner.persist(run)
    artifact = load_artifact(tmp_path / "workload_grid.json")
    assert artifact["quick"] is True
    assert artifact["graph_family"] == "grid"
    assert len(artifact["regimes"]) == 4
    json.dumps(artifact)  # fully JSON-serializable


def test_suite_rollup_round_trip(tmp_path):
    runner = Runner(results_dir=tmp_path)
    runs = runner.run_many([_toy_scenario(), _toy_scenario(name="toy2")])
    path = runner.persist_suite(runs)
    assert path == tmp_path / "suite.json"
    suite = load_suite(path)
    assert [row["scenario"] for row in suite["scenarios"]] == ["toy", "toy2"]
    assert suite["scenarios"][0]["rounds"] == 6
    assert suite["quick"] is False
    # suite.json is not picked up as a per-scenario artifact.
    assert [a["scenario"] for a in load_results_dir(tmp_path)] == ["toy", "toy2"]


def test_validate_suite_rejects_bad_rows():
    with pytest.raises(ArtifactError, match="schema"):
        validate_suite({"schema": "nope", "quick": False, "scenarios": []})
    with pytest.raises(ArtifactError, match="rounds"):
        validate_suite({
            "schema": "repro.bench.suite/1", "quick": False,
            "scenarios": [{"scenario": "x", "group": "table1", "points": 1}],
        })
    with pytest.raises(ArtifactError, match="points"):
        validate_suite({
            "schema": "repro.bench.suite/1", "quick": False,
            "scenarios": [{
                "scenario": "x", "group": "table1", "points": True,
                "rounds": 0, "words": 0, "max_memory": 0, "violations": 0,
            }],
        })


def test_validate_rejects_missing_totals_key():
    artifact = Runner().run(_toy_scenario()).to_artifact()
    del artifact["totals"]["max_memory"]
    with pytest.raises(ArtifactError, match="max_memory"):
        validate_artifact(artifact)


def test_parallel_runner_artifacts_are_byte_identical_to_serial(tmp_path):
    """The acceptance contract of `bench --jobs N`: same bytes as serial.

    Uses registry scenarios (pool workers re-resolve scenarios by name, so
    unregistered toys cannot cross the process boundary).
    """
    names = ["ablation_kkt_sampling", "cycle_problem"]
    scenarios = [get_scenario(name) for name in names]

    serial_dir = tmp_path / "serial"
    serial = Runner(results_dir=serial_dir, seed=0)
    serial.persist_suite(serial.run_many(scenarios, quick=True))

    parallel_dir = tmp_path / "parallel"
    parallel = ParallelRunner(results_dir=parallel_dir, seed=0, jobs=2)
    parallel.persist_suite(parallel.run_many(scenarios, quick=True))

    serial_files = sorted(p.name for p in serial_dir.iterdir())
    assert serial_files == sorted(p.name for p in parallel_dir.iterdir())
    assert "suite.json" in serial_files
    for name in serial_files:
        assert (serial_dir / name).read_bytes() == (
            parallel_dir / name
        ).read_bytes(), f"{name} differs between serial and parallel runs"


def test_point_rng_is_deterministic():
    runner = Runner(seed=7)
    scenario = _toy_scenario()
    a = runner.point_rng(scenario, 0).random()
    b = Runner(seed=7).point_rng(scenario, 0).random()
    assert a == b
    assert runner.point_rng(scenario, 1).random() != a


def test_scenario_rejects_unknown_group_and_regime():
    with pytest.raises(ValueError, match="group"):
        _toy_scenario(group="nope")
    with pytest.raises(ValueError, match="regimes"):
        _toy_scenario(regimes=("warp",))
