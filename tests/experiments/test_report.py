"""The generated reproduction guide: determinism and staleness checks."""

import pathlib

from repro.experiments import (
    Runner,
    check_report,
    get_scenario,
    load_results_dir,
    render_report,
    write_report,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _make_results(tmp_path):
    runner = Runner(results_dir=tmp_path)
    for name in ("workload_grid", "workload_near_clique"):
        runner.persist(runner.run(get_scenario(name), quick=True))
    return tmp_path


def test_render_is_deterministic(tmp_path):
    artifacts = load_results_dir(_make_results(tmp_path))
    assert render_report(artifacts) == render_report(artifacts)


def test_write_then_check_passes(tmp_path):
    results = _make_results(tmp_path)
    doc = tmp_path / "REPRODUCTION.md"
    write_report(results_dir=results, doc_path=doc)
    assert check_report(results_dir=results, doc_path=doc) == []


def test_check_flags_stale_doc(tmp_path):
    results = _make_results(tmp_path)
    doc = tmp_path / "REPRODUCTION.md"
    write_report(results_dir=results, doc_path=doc)
    doc.write_text(doc.read_text() + "drift\n")
    problems = check_report(results_dir=results, doc_path=doc)
    assert problems and "stale" in problems[0]


def test_check_flags_missing_doc(tmp_path):
    results = _make_results(tmp_path)
    problems = check_report(results_dir=results, doc_path=tmp_path / "nope.md")
    assert problems and "missing" in problems[0]


def test_check_flags_empty_results_dir(tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    problems = check_report(results_dir=empty, doc_path=tmp_path / "doc.md")
    assert problems and "no JSON artifacts" in problems[0]


def test_check_flags_corrupt_artifact(tmp_path):
    results = _make_results(tmp_path)
    (results / "bad.json").write_text('{"schema": "wrong"}')
    doc = tmp_path / "REPRODUCTION.md"
    problems = check_report(results_dir=results, doc_path=doc)
    assert problems and "validation failed" in problems[0]


def test_report_mentions_every_artifact(tmp_path):
    results = _make_results(tmp_path)
    artifacts = load_results_dir(results)
    text = render_report(artifacts)
    for artifact in artifacts:
        assert f"### `{artifact['scenario']}`" in text


def test_committed_guide_is_current():
    """The committed docs/REPRODUCTION.md matches the committed artifacts
    (the same invariant CI enforces via `repro report --check`)."""
    results = REPO_ROOT / "benchmarks" / "results"
    doc = REPO_ROOT / "docs" / "REPRODUCTION.md"
    assert check_report(results_dir=results, doc_path=doc) == []
