"""The near-linear regime (Table 1's right column).

The paper's heterogeneous algorithms run unchanged when every machine has
near-linear memory — that regime strictly dominates the heterogeneous one.
These tests run the suite under ``ModelConfig.near_linear`` and check both
correctness and that the large-machine-centric steps get *easier* (no
capacity violations even in strict-leaning accounting).
"""

import random

import pytest

from repro.core import (
    heterogeneous_coloring,
    heterogeneous_connectivity,
    heterogeneous_matching,
    heterogeneous_mst,
    heterogeneous_spanner,
)
from repro.graph import generators
from repro.graph.validation import (
    is_maximal_matching,
    is_proper_coloring,
    spanner_stretch,
    verify_mst,
)
from repro.mpc import Cluster, ModelConfig


@pytest.fixture
def rng():
    return random.Random(181)


def test_near_linear_cluster_shape():
    config = ModelConfig.near_linear(n=100, m=2000)
    cluster = Cluster(config)
    assert config.num_small == 20  # m/n machines
    assert cluster.has_large
    # Every machine can hold the vertex set.
    assert all(m.capacity >= 100 for m in cluster.smalls)


def test_mst_under_near_linear(rng):
    g = generators.random_connected_graph(40, 400, rng).with_unique_weights(rng)
    config = ModelConfig.near_linear(n=g.n, m=g.m)
    result = heterogeneous_mst(g, config=config, rng=random.Random(1))
    assert verify_mst(g, result.edges)


def test_connectivity_under_near_linear(rng):
    g = generators.planted_components_graph(40, 3, 40, rng)
    config = ModelConfig.near_linear(n=g.n, m=g.m)
    result = heterogeneous_connectivity(g, config=config, rng=random.Random(2))
    assert result.num_components == 3


def test_matching_under_near_linear(rng):
    g = generators.random_connected_graph(40, 300, rng)
    config = ModelConfig.near_linear(n=g.n, m=g.m)
    result = heterogeneous_matching(g, config=config, rng=random.Random(3))
    assert is_maximal_matching(g, result.matching)


def test_spanner_under_near_linear(rng):
    g = generators.random_connected_graph(40, 300, rng)
    config = ModelConfig.near_linear(n=g.n, m=g.m)
    result = heterogeneous_spanner(g, k=2, config=config, rng=random.Random(4))
    assert spanner_stretch(g, result.edges) <= result.stretch_bound


def test_coloring_under_near_linear(rng):
    g = generators.random_connected_graph(40, 300, rng)
    config = ModelConfig.near_linear(n=g.n, m=g.m)
    result = heterogeneous_coloring(g, config=config, rng=random.Random(5))
    assert is_proper_coloring(g, result.colors, result.num_colors_allowed)


def test_near_linear_has_no_capacity_violations(rng):
    """With ~n-capacity workers, a full MST run stays inside every
    capacity at test scale."""
    g = generators.random_connected_graph(40, 300, rng).with_unique_weights(rng)
    config = ModelConfig.near_linear(n=g.n, m=g.m)
    result = heterogeneous_mst(g, config=config, rng=random.Random(6))
    assert not result.cluster.ledger.violations
