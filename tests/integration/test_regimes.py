"""Cross-regime integration: the separations the paper is about."""

import random

import pytest

from repro.baselines import sublinear_boruvka_mst, sublinear_connectivity
from repro.core import (
    heterogeneous_connectivity,
    heterogeneous_mst,
    solve_one_vs_two_cycles,
)
from repro.graph import generators
from repro.graph.validation import verify_mst
from repro.mpc import Cluster, ModelConfig


@pytest.fixture
def rng():
    return random.Random(161)


def test_cycle_problem_separation(rng):
    """The paper's starting observation: 1-vs-2 cycles is 1 round with a
    large machine, but the sublinear baseline's rounds grow with n."""
    small = generators.cycle_graph(32, rng)
    big = generators.cycle_graph(256, rng)
    assert solve_one_vs_two_cycles(small, rng=random.Random(1)).rounds == 1
    assert solve_one_vs_two_cycles(big, rng=random.Random(2)).rounds == 1
    sub_small = sublinear_connectivity(small, rng=random.Random(3)).rounds
    sub_big = sublinear_connectivity(big, rng=random.Random(4)).rounds
    assert sub_big > sub_small  # log n growth


def test_connectivity_rounds_flat_vs_growing(rng):
    """Cycles are the hard instance for merging-style algorithms: the
    sublinear baseline's rounds grow with n while the sketch algorithm's
    stay flat.  (On tree-like inputs Borůvka merging collapses whole
    chains per iteration, which is why the conjectured hardness is stated
    for cycles in the first place.)"""
    het_rounds = []
    sub_rounds = []
    for n in (32, 256):
        g = generators.cycle_graph(n, rng)
        het_rounds.append(heterogeneous_connectivity(g, rng=random.Random(n)).rounds)
        sub_rounds.append(sublinear_connectivity(g, rng=random.Random(n)).rounds)
    # O(1): flat up to the (bounded) broadcast-tree depth difference.
    assert abs(het_rounds[1] - het_rounds[0]) <= 2
    assert max(het_rounds) <= 8
    assert sub_rounds[1] > sub_rounds[0]


def test_mst_step_counter_separation(rng):
    """Heterogeneous MST's phase count is log log(m/n); sublinear Borůvka's
    is log n — compare the *scaling quantities*, not the constants."""
    n = 64
    dense = generators.random_connected_graph(n, n * 24, rng).with_unique_weights(rng)
    het = heterogeneous_mst(dense, rng=random.Random(5))
    sub = sublinear_boruvka_mst(dense, rng=random.Random(6))
    assert verify_mst(dense, het.edges) and verify_mst(dense, sub.edges)
    assert het.boruvka_steps < sub.iterations


def test_same_mst_from_both_regimes(rng):
    g = generators.random_connected_graph(40, 400, rng).with_unique_weights(rng)
    het = heterogeneous_mst(g, rng=random.Random(7))
    sub = sublinear_boruvka_mst(g, rng=random.Random(8))
    assert sorted(het.edges) == sorted(sub.edges)  # unique MST


def test_gamma_affects_machine_count_not_correctness(rng):
    g = generators.random_connected_graph(40, 300, rng).with_unique_weights(rng)
    for gamma in (0.3, 0.5, 0.7):
        config = ModelConfig.heterogeneous(n=g.n, m=g.m, gamma=gamma)
        result = heterogeneous_mst(g, config=config, rng=random.Random(int(gamma * 10)))
        assert verify_mst(g, result.edges)


def test_general_model_with_several_large_machines(rng):
    """Section 6's (S_sub, S_lin, S_sup) model: extra near-linear machines
    build and run (our algorithms use large machine #0)."""
    g = generators.random_connected_graph(30, 150, rng).with_unique_weights(rng)
    config = ModelConfig.general(n=g.n, m=g.m, s_sub=g.m, s_lin=3 * g.n)
    cluster = Cluster(config)
    assert len(cluster.larges) == 3
    result = heterogeneous_mst(g, config=config, rng=random.Random(9))
    assert verify_mst(g, result.edges)


def test_general_model_matches_paper_special_case():
    """general(n, m, s_sub=m, s_lin=n) == the paper's Heterogeneous MPC."""
    paper = ModelConfig.heterogeneous(n=100, m=1000)
    general = ModelConfig.general(n=100, m=1000, s_sub=1000, s_lin=100)
    assert general.num_small == paper.num_small
    assert general.num_large == paper.num_large == 1
    assert general.large_capacity == paper.large_capacity


def test_superlinear_general_model(rng):
    config = ModelConfig.general(n=50, m=500, s_sub=500, s_sup=50**1.5 * 2)
    assert config.large_memory_exponent == 1.5
    g = generators.random_connected_graph(50, 500, rng).with_unique_weights(rng)
    result = heterogeneous_mst(g, config=config, rng=random.Random(10))
    assert verify_mst(g, result.edges)
