"""Round-structure introspection: the ledger's section labels expose each
algorithm's phase anatomy, which the benchmarks rely on."""

import random

import pytest

from repro.core import heterogeneous_matching, heterogeneous_mst
from repro.core.spanner import heterogeneous_spanner
from repro.graph import generators


@pytest.fixture
def rng():
    return random.Random(191)


def test_mst_ledger_has_both_phases(rng):
    g = generators.random_connected_graph(48, 480, rng).with_unique_weights(rng)
    result = heterogeneous_mst(g, rng=random.Random(1))
    notes = [record.note for record in result.cluster.ledger.records]
    assert any("boruvka" in note for note in notes)
    assert any("kkt" in note for note in notes)


def test_mst_sparse_graph_skips_boruvka(rng):
    g = generators.random_connected_graph(40, 50, rng).with_unique_weights(rng)
    result = heterogeneous_mst(g, rng=random.Random(2))
    assert result.boruvka_steps == 0
    notes = [record.note for record in result.cluster.ledger.records]
    assert not any("boruvka" in note for note in notes)
    assert any("kkt" in note for note in notes)


def test_matching_ledger_has_three_phases(rng):
    g = generators.random_connected_graph(40, 300, rng)
    result = heterogeneous_matching(g, rng=random.Random(3))
    notes = " ".join(record.note for record in result.cluster.ledger.records)
    assert "phase1" in notes and "phase2" in notes and "phase3" in notes


def test_spanner_ledger_has_clustering_and_levels(rng):
    g = generators.random_connected_graph(40, 250, rng)
    result = heterogeneous_spanner(g, k=2, rng=random.Random(4))
    notes = " ".join(record.note for record in result.cluster.ledger.records)
    assert "clustering-graphs" in notes
    assert "level-spanners" in notes


def test_per_phase_round_counts_are_bounded(rng):
    """Each Borůvka step costs a bounded constant number of rounds — the
    whole point of the O(log log) claim."""
    g = generators.random_connected_graph(64, 1536, rng).with_unique_weights(rng)
    result = heterogeneous_mst(g, rng=random.Random(5))
    boruvka_rounds = result.cluster.ledger.rounds_in_section("boruvka")
    assert result.boruvka_steps >= 2
    per_step = boruvka_rounds / result.boruvka_steps
    assert per_step <= 40  # constant per step at any density


def test_total_words_positive_and_finite(rng):
    g = generators.random_connected_graph(30, 120, rng).with_unique_weights(rng)
    result = heterogeneous_mst(g, rng=random.Random(6))
    assert 0 < result.cluster.ledger.total_words < 10**9
