"""Failure injection and strict-mode behavior."""

import random

import pytest

from repro.core.matching import heterogeneous_matching
from repro.core.mst import heterogeneous_mst
from repro.graph import generators
from repro.mpc import (
    AlgorithmFailure,
    Cluster,
    CommunicationLimitExceeded,
    ModelConfig,
)
from repro.primitives.edgestore import EdgeStore


@pytest.fixture
def rng():
    return random.Random(171)


def test_mst_retry_budget_exhaustion_raises(rng):
    """With max_attempts=0-equivalent (we pass 1 and rig the threshold by
    shrinking the budget via a superlinear... simplest: monkeypatch the
    threshold through a absurdly dense graph and 1 attempt with a tiny
    budget is hard to rig — instead test the exception path directly."""
    g = generators.random_connected_graph(30, 200, rng).with_unique_weights(rng)
    # max_attempts=0 means the sampling loop never runs => failure.
    with pytest.raises(AlgorithmFailure):
        heterogeneous_mst(g, rng=random.Random(1), max_attempts=0)


def test_matching_retry_budget_exhaustion_raises(rng):
    g = generators.random_connected_graph(30, 90, rng)
    with pytest.raises(AlgorithmFailure):
        heterogeneous_matching(g, rng=random.Random(2), max_attempts=0)


def test_strict_mode_catches_oversized_transfer(rng):
    """Shipping the whole edge set of a too-dense graph to one small
    machine must trip strict mode."""
    config = ModelConfig.heterogeneous(n=64, m=1000, strict=True)
    cluster = Cluster(config, rng=random.Random(3))
    payload = [(i, i + 1, i) for i in range(config.small_capacity)]
    with pytest.raises(CommunicationLimitExceeded):
        cluster.exchange([(0, 1, payload)])


def test_nonstrict_mode_records_and_continues(rng):
    config = ModelConfig.heterogeneous(n=64, m=1000, strict=False)
    cluster = Cluster(config, rng=random.Random(4))
    payload = [(i, i + 1, i) for i in range(config.small_capacity)]
    cluster.exchange([(0, 1, payload)])
    assert cluster.ledger.violations
    # The simulation is still usable afterwards.
    cluster.exchange([(1, 2, "ok")])
    assert cluster.ledger.rounds == 2


def test_algorithms_run_clean_under_generous_capacity(rng):
    """With a generous constant, a full MST run stays within capacity at
    test scale — the ledger reports zero violations."""
    g = generators.random_connected_graph(40, 200, rng).with_unique_weights(rng)
    config = ModelConfig.heterogeneous(n=g.n, m=g.m, constant=64.0)
    result = heterogeneous_mst(g, config=config, rng=random.Random(5))
    assert not result.cluster.ledger.violations


def test_ledger_memory_high_water_is_populated(rng):
    g = generators.random_connected_graph(30, 90, rng).with_unique_weights(rng)
    result = heterogeneous_mst(g, rng=random.Random(6))
    high_water = result.cluster.ledger.memory_high_water
    assert high_water
    # The small machines hold the distributed edge sets throughout.
    assert max(high_water.values()) > 0


def test_edgestore_survives_empty_machines(rng):
    """More machines than records: many machines hold nothing; every
    primitive must cope."""
    config = ModelConfig.heterogeneous(n=64, m=2000)  # ~250 machines
    cluster = Cluster(config, rng=random.Random(7))
    store = EdgeStore.create(cluster, [(0, 1, 5), (1, 2, 3), (2, 3, 9)])
    assert store.count() == 3
    layout = store.sort(key=lambda e: e[2])
    assert [e[2] for e in store.items()] == [3, 5, 9]
    annotated = store.annotate({v: v for v in range(64)})
    assert len(annotated.items()) == 3


def test_single_edge_graph(rng):
    from repro.graph import Graph

    g = Graph(2, [(0, 1, 1)])
    result = heterogeneous_mst(g, rng=random.Random(8))
    assert result.edges == [(0, 1, 1)]


def test_two_vertex_matching(rng):
    from repro.graph import Graph
    from repro.graph.validation import is_maximal_matching

    g = Graph(2, [(0, 1)])
    result = heterogeneous_matching(g, rng=random.Random(9))
    assert is_maximal_matching(g, result.matching)
    assert result.size == 1
