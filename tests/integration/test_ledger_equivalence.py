"""Ledger equivalence: the batched round engine must charge exactly what
the seed per-message engine charged.

The golden numbers below were captured by running the seed (pre-RoundPlan)
implementation on fixed inputs.  They pin rounds, total words, and the
violation set — the quantities the paper cares about — so any engine change
that shifts accounting fails loudly here.
"""

import hashlib
import random

from repro.core import heterogeneous_mst
from repro.graph import generators
from repro.mpc import Cluster, ModelConfig
from repro.primitives.sort import sample_sort

# Captured at the seed revision (per-message Cluster.exchange), commit
# 9932a36, with the exact inputs constructed below; re-pinned for the two
# intentional accounting bugfixes of PR 4:
#
# * empty RoundPlans no longer burn a 0-word ledger round (MST: 78 -> 74
#   rounds; every word, volume, and violation is unchanged);
# * `distribute_edges` shuffles with a dedicated placement RNG derived
#   from the cluster seed instead of the shared `self.rng` (the sort
#   fixture places its items differently, shifting the sampled splitter
#   set by a few words; the MST fixture is placement-identical).
MST_GOLDEN = {
    "rounds": 74,
    "total_words": 230358,
    "violation_count": 72,
    "violation_hash": "6edd8b4486c73225",
}
SORT_GOLDEN = {
    "rounds": 6,
    "total_words": 11256,
    "violation_count": 0,
    "counts_hash": "8a4e8db6b4e25cc4",
}


def _hash(parts: list[str]) -> str:
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()[:16]


def test_heterogeneous_mst_ledger_matches_seed_engine():
    rng = random.Random(20260729)
    g = generators.random_connected_graph(48, 480, rng).with_unique_weights(rng)
    result = heterogeneous_mst(g, rng=random.Random(7))
    ledger = result.cluster.ledger
    violations = sorted(set(ledger.violations))
    assert ledger.rounds == MST_GOLDEN["rounds"]
    assert ledger.total_words == MST_GOLDEN["total_words"]
    assert len(violations) == MST_GOLDEN["violation_count"]
    assert _hash(violations) == MST_GOLDEN["violation_hash"]
    assert result.total_weight == 1323  # the algorithm's output is unchanged too


def test_sample_sort_ledger_matches_seed_engine():
    config = ModelConfig.heterogeneous(n=64, m=512)
    cluster = Cluster(config, rng=random.Random(11))
    item_rng = random.Random(5)
    items = [(item_rng.randrange(10**6), i) for i in range(2000)]
    cluster.distribute_edges(items, name="d")
    layout = sample_sort(cluster, "d", key=lambda t: t[0])
    ledger = cluster.ledger
    assert ledger.rounds == SORT_GOLDEN["rounds"]
    assert ledger.total_words == SORT_GOLDEN["total_words"]
    assert len(set(ledger.violations)) == SORT_GOLDEN["violation_count"]
    assert _hash([",".join(map(str, layout.counts))]) == SORT_GOLDEN["counts_hash"]
    # The sort itself is correct: globally ordered across machines.
    flat = [item for m in cluster.smalls for item in m.get("d", [])]
    assert [t[0] for t in flat] == sorted(t[0] for t in flat)
