"""Sketch equivalence: the vectorized bank substrate must reproduce the
seed per-object sketch implementation bit for bit.

Mirrors the ledger-equivalence policy of the round-engine migration: the
golden hashes below were captured by running the seed (pre-SketchBank)
implementation — per-vertex ``VertexSketch`` objects over ``L0Sampler`` /
``OneSparseSketch`` objects — on the exact inputs constructed here.  They
pin raw counter state, the sample traces, Borůvka's forest, component
labels, and the end-to-end connectivity ledger, so any bank or backend
change that shifts sketch semantics fails loudly.

``_seed_build`` is a frozen transplant of the seed update math (kept
independent of ``repro.sketches`` internals), used to cross-check the
golden state hash live.
"""

import hashlib
import random

from repro.core.connectivity import heterogeneous_connectivity
from repro.graph import generators
from repro.sketches import (
    PRIME,
    GraphSketchSpec,
    SketchBank,
    VertexSketch,
    components_from_sketches,
    sketch_boruvka,
)

# Captured at the pre-bank revision (commit fed6cb7), with the exact
# inputs constructed below.
GOLDEN = {
    "state_hash": "485b29e2003b4724",
    "sample_hash": "7a4b12651891231a",
    "labels_hash": "0f0f8d8029277272",
    "forest_hash": "ed03311bc011f4fc",
    "conn_labels_hash": "808981135252dcd2",
    "conn_rounds": 4,
    "conn_total_words": 486744,
    "conn_num_components": 4,
}


def _hash(parts):
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()[:16]


def _fixture_graph():
    return generators.random_connected_graph(40, 160, random.Random(31))


def _fixture_spec(n):
    return GraphSketchSpec.generate(n, random.Random(97), copies=3)


def _seed_build(spec, edges):
    """Frozen transplant of the seed per-object update math: one Horner
    hash per (endpoint, sampler), one ``pow`` per touched level, applied
    per endpoint — exactly what the seed object stack executed."""
    n = spec.n
    flat_seeds = [seeds for phase in spec.seeds for seeds in phase]
    levels = flat_seeds[0].num_levels
    state = {}
    for u, v in edges:
        lo, hi = (u, v) if u < v else (v, u)
        identifier = lo * n + hi
        x = (identifier + 1) % PRIME
        for endpoint in (u, v):
            rows = state.get(endpoint)
            if rows is None:
                rows = state[endpoint] = [
                    [0, 0, 0] for _ in range(len(flat_seeds) * levels)
                ]
            sign = 1 if endpoint == lo else -1
            for j, seeds in enumerate(flat_seeds):
                acc = 0
                for coefficient in seeds.level_hash.coefficients:
                    acc = (acc * x + coefficient) % PRIME
                depth = (acc & -acc).bit_length() - 1 if acc else 61
                top = min(depth, levels - 1)
                for level in range(top + 1):
                    cell = rows[j * levels + level]
                    cell[0] += sign
                    cell[1] += identifier * sign
                    cell[2] = (
                        cell[2]
                        + sign * pow(seeds.z_points[level], identifier, PRIME)
                    ) % PRIME
    return state


def _state_lines(vertex, s0, s1, s2):
    return [f"{vertex},{a},{b},{c}" for a, b, c in zip(s0, s1, s2)]


def test_seed_transplant_still_produces_the_golden_state():
    g = _fixture_graph()
    spec = _fixture_spec(g.n)
    state = _seed_build(spec, [(e[0], e[1]) for e in g.edges])
    lines = []
    for vertex in sorted(state):
        lines.extend(
            f"{vertex},{cell[0]},{cell[1]},{cell[2]}" for cell in state[vertex]
        )
    assert _hash(lines) == GOLDEN["state_hash"]


def test_bank_state_matches_seed_bit_for_bit():
    g = _fixture_graph()
    spec = _fixture_spec(g.n)
    edges = [(e[0], e[1]) for e in g.edges]
    bank = SketchBank(spec)
    bank.update_edges(edges)
    seed_state = _seed_build(spec, edges)
    assert sorted(bank.vertices) == sorted(seed_state)
    lines = []
    for vertex in sorted(bank.vertices):
        row = bank.row(vertex)
        assert [list(cell) for cell in zip(row.s0, row.s1, row.s2)] == seed_state[
            vertex
        ]
        lines.extend(_state_lines(vertex, row.s0, row.s1, row.s2))
    assert _hash(lines) == GOLDEN["state_hash"]


def test_wrapper_state_matches_seed_bit_for_bit():
    g = _fixture_graph()
    spec = _fixture_spec(g.n)
    sketches = {}
    for e in g.edges:
        u, v = e[0], e[1]
        for endpoint in (u, v):
            if endpoint not in sketches:
                sketches[endpoint] = VertexSketch(spec, endpoint)
            sketches[endpoint].add_edge(u, v)
    lines = []
    for vertex in sorted(sketches):
        row = sketches[vertex].bank.row(vertex)
        lines.extend(_state_lines(vertex, row.s0, row.s1, row.s2))
    assert _hash(lines) == GOLDEN["state_hash"]


def _build_sketches(spec, g):
    sketches = {}
    for e in g.edges:
        u, v = e[0], e[1]
        for endpoint in (u, v):
            if endpoint not in sketches:
                sketches[endpoint] = VertexSketch(spec, endpoint)
            sketches[endpoint].add_edge(u, v)
    return sketches


def test_sample_trace_matches_seed():
    g = _fixture_graph()
    spec = _fixture_spec(g.n)
    sketches = _build_sketches(spec, g)
    trace = [
        f"{vertex}:{phase}:{sketches[vertex].sample_outgoing(phase)}"
        for vertex in sorted(sketches)
        for phase in range(spec.phases)
    ]
    assert _hash(trace) == GOLDEN["sample_hash"]


def test_boruvka_forest_and_labels_match_seed():
    g = _fixture_graph()
    spec = _fixture_spec(g.n)
    sketches = _build_sketches(spec, g)
    _, forest = sketch_boruvka(spec, sketches)
    assert _hash([",".join(f"{u}-{v}" for u, v in forest)]) == GOLDEN["forest_hash"]
    labels = components_from_sketches(spec, sketches)
    assert _hash([",".join(map(str, labels))]) == GOLDEN["labels_hash"]


def test_end_to_end_connectivity_matches_seed_labels_and_ledger():
    g = generators.planted_components_graph(48, 4, 36, random.Random(77))
    result = heterogeneous_connectivity(g, rng=random.Random(13))
    assert _hash([",".join(map(str, result.labels))]) == GOLDEN["conn_labels_hash"]
    assert result.num_components == GOLDEN["conn_num_components"]
    assert result.rounds == GOLDEN["conn_rounds"]
    assert result.cluster.ledger.total_words == GOLDEN["conn_total_words"]
