"""Differential property test: the columnar engine vs per-message semantics.

This is the conformance gate for the columnar ``RoundPlan`` rewrite.  For
arbitrary message lists — interleaved senders, mixed payload types
(scalars, strings, ``bytes``, tuples), empty runs sprinkled in — a
reference per-message model (an independent reimplementation of the seed
``Cluster.exchange`` accounting) must agree with every way of feeding the
engine:

* ``Cluster.exchange`` (the pure delegate),
* ``Cluster.execute`` of a plan built with per-item ``send`` calls,
* ``Cluster.execute`` of a plan built with randomly-chunked
  ``send_batch`` calls,
* ``Cluster.execute`` of a plan built with per-source ``send_indexed``
  scatters,

on **inboxes, round counts, word charges, per-round volumes, and memory
ledger entries**.  The whole suite runs under both engine backends (the
CI matrix re-runs it with ``REPRO_ENGINE_BACKEND=numpy``) — ledgers must
be bit-identical across backends.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpc import Cluster, ModelConfig, RoundPlan, word_size
from repro.mpc.backend import HAS_NUMPY, available_engine_backends

NUM_SMALL = 6

BACKENDS = available_engine_backends()


def make_cluster(backend: str) -> Cluster:
    config = ModelConfig.heterogeneous(n=64, m=256, num_small=NUM_SMALL)
    return Cluster(config, rng=random.Random(0), backend=backend)


# Payloads cover every accounting class: interned and large scalars,
# floats, bools, None, strings, bytes blobs, flat and nested tuples.
scalars = st.one_of(
    st.integers(min_value=-3, max_value=3),          # interned ints
    st.integers(min_value=10**6, max_value=10**7),   # non-interned ints
    st.booleans(),
    st.none(),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)
payloads = st.one_of(
    scalars,
    st.text(max_size=20),
    st.binary(max_size=24),
    st.tuples(st.integers(0, 100), st.integers(0, 100)),
    st.tuples(st.integers(0, 100), st.integers(0, 100), st.integers(0, 10**6)),
    st.tuples(st.tuples(st.integers(0, 9), st.integers(0, 9)), st.text(max_size=4)),
    st.tuples(),                                     # zero-word payload
)
messages_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=NUM_SMALL),  # src (incl. the large)
        st.integers(min_value=0, max_value=NUM_SMALL),  # dst
        payloads,
    ),
    max_size=80,
)


def reference_model(cluster: Cluster, messages) -> dict:
    """Seed-semantics per-message accounting, reimplemented independently."""
    inboxes: dict[int, list] = {}
    sent: dict[int, int] = {}
    received: dict[int, int] = {}
    total = 0
    for src, dst, payload in messages:
        words = word_size(payload)
        total += words
        sent[src] = sent.get(src, 0) + words
        received[dst] = received.get(dst, 0) + words
        inboxes.setdefault(dst, []).append(payload)
    return {
        "inboxes": inboxes,
        "total_words": total,
        "max_sent": max(sent.values(), default=0),
        "max_received": max(received.values(), default=0),
        "items": len(messages),
        "rounds": 0 if not messages else 1,
        # No machine stores datasets in these runs, so the high-water dict
        # stays empty (zero marks are never recorded).
        "memory": {},
    }


def assert_matches_reference(cluster: Cluster, inboxes, expected) -> None:
    assert inboxes == expected["inboxes"]
    assert cluster.ledger.rounds == expected["rounds"]
    if expected["rounds"]:
        record = cluster.ledger.records[-1]
        assert record.total_words == expected["total_words"]
        assert record.max_sent == expected["max_sent"]
        assert record.max_received == expected["max_received"]
        assert record.items == expected["items"]
        assert record.violations == ()
    else:
        assert cluster.ledger.records == []
    assert cluster.ledger.memory_high_water == expected["memory"]


def chunked_plan(messages, note: str, chunk_seed: int) -> RoundPlan:
    """Build the plan with randomly-sized send_batch chunks (grouping
    consecutive same-route messages arbitrarily), with empty batches
    sprinkled in — they must be invisible."""
    rng = random.Random(chunk_seed)
    plan = RoundPlan(note=note)
    index = 0
    while index < len(messages):
        src, dst, _ = messages[index]
        stop = index + 1
        while stop < len(messages) and messages[stop][:2] == (src, dst):
            stop += 1
        stop = min(stop, index + rng.randrange(1, 5))
        plan.send_batch(src, dst, [m[2] for m in messages[index:stop]])
        if rng.random() < 0.3:
            plan.send_batch(src, dst, [])
            plan.send(dst, src)
        index = stop
    return plan


def indexed_plan(cluster: Cluster, messages, note: str) -> RoundPlan:
    """Build the plan with one send_indexed scatter per source.

    Scatters deliver per destination in ascending-dst grouped order, so
    only single-source traffic keeps exact per-message inbox order; the
    caller arranges for that.
    """
    plan = cluster.plan(note=note)
    by_src: dict[int, tuple[list, list]] = {}
    for src, dst, payload in messages:
        dsts, items = by_src.setdefault(src, ([], []))
        dsts.append(dst)
        items.append(payload)
    for src, (dsts, items) in by_src.items():
        plan.send_indexed(src, dsts, items)
    return plan


@pytest.mark.parametrize("backend", BACKENDS)
@given(messages=messages_strategy)
@settings(max_examples=60, deadline=None)
def test_all_build_paths_match_the_reference_model(backend, messages):
    expected = None
    for build in ("exchange", "send", "send_batch"):
        cluster = make_cluster(backend)
        if expected is None:
            expected = reference_model(cluster, messages)
        if build == "exchange":
            inboxes = cluster.exchange(list(messages), note="d")
        elif build == "send":
            plan = RoundPlan(note="d")
            for src, dst, payload in messages:
                plan.send(src, dst, payload)
            inboxes = cluster.execute(plan)
        else:
            inboxes = cluster.execute(chunked_plan(messages, "d", len(messages)))
        assert_matches_reference(cluster, inboxes, expected)


@pytest.mark.parametrize("backend", BACKENDS)
@given(messages=messages_strategy)
@settings(max_examples=40, deadline=None)
def test_send_indexed_matches_reference_accounting(backend, messages):
    """Scatters regroup traffic (ascending dst per source), so inbox
    *ordering* may legitimately differ for interleaved sources — but all
    ledger accounting and per-destination inbox *contents* must match."""
    cluster = make_cluster(backend)
    expected = reference_model(cluster, messages)
    inboxes = cluster.execute(indexed_plan(cluster, messages, "d"))
    assert cluster.ledger.rounds == expected["rounds"]
    if expected["rounds"]:
        record = cluster.ledger.records[-1]
        assert record.total_words == expected["total_words"]
        assert record.max_sent == expected["max_sent"]
        assert record.max_received == expected["max_received"]
        assert record.items == expected["items"]
    assert cluster.ledger.memory_high_water == expected["memory"]
    assert set(inboxes) == set(expected["inboxes"])
    for dst, items in inboxes.items():
        assert sorted(map(repr, items)) == sorted(map(repr, expected["inboxes"][dst]))


@given(messages=messages_strategy)
@settings(max_examples=40, deadline=None)
@pytest.mark.skipif(not HAS_NUMPY, reason="numpy backend not installed")
def test_pure_and_numpy_backends_produce_identical_ledgers(messages):
    """The backend seam contract: same traffic, bit-identical ledgers."""
    results = {}
    for backend in ("pure", "numpy"):
        cluster = make_cluster(backend)
        inboxes = cluster.execute(indexed_plan(cluster, messages, "b"))
        results[backend] = (inboxes, cluster.ledger)
    pure_inboxes, pure_ledger = results["pure"]
    numpy_inboxes, numpy_ledger = results["numpy"]
    assert pure_inboxes == numpy_inboxes
    assert pure_ledger.rounds == numpy_ledger.rounds
    assert [
        (r.note, r.total_words, r.max_sent, r.max_received, r.items, r.violations)
        for r in pure_ledger.records
    ] == [
        (r.note, r.total_words, r.max_sent, r.max_received, r.items, r.violations)
        for r in numpy_ledger.records
    ]
    assert pure_ledger.memory_high_water == numpy_ledger.memory_high_water


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy backend not installed")
def test_array_scatter_accounts_like_the_equivalent_tuples():
    """A numpy block scatter charges exactly what the equivalent tuple
    messages charge, and delivers the same rows (as zero-copy blocks)."""
    import numpy as np

    rng = random.Random(7)
    k = 500
    dsts = [rng.randrange(NUM_SMALL) for _ in range(k)]
    rows = [(rng.randrange(64), rng.randrange(64), rng.randrange(10**6))
            for _ in range(k)]

    via_tuples = make_cluster("pure")
    expected = reference_model(via_tuples, [(0, d, r) for d, r in zip(dsts, rows)])

    via_arrays = make_cluster("numpy")
    plan = via_arrays.plan(note="arr")
    plan.send_indexed(0, np.asarray(dsts, dtype=np.int64),
                      np.asarray(rows, dtype=np.int64))
    inboxes = via_arrays.execute(plan)

    record = via_arrays.ledger.records[-1]
    assert record.total_words == expected["total_words"]
    assert record.max_sent == expected["max_sent"]
    assert record.max_received == expected["max_received"]
    assert record.items == expected["items"]
    for dst, blocks in inboxes.items():
        delivered = [tuple(row) for block in blocks for row in block.tolist()]
        assert delivered == expected["inboxes"][dst]
