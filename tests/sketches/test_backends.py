"""Backend seam equivalence: pure-Python, numpy, and the legacy object API
must produce bit-identical sketches, samples, and component labels."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches import (
    HAS_NUMPY,
    GraphSketchSpec,
    KWiseHash,
    PRIME,
    SketchBank,
    VertexSketch,
    available_backends,
    bank_boruvka,
    get_backend,
    sketch_boruvka,
    trailing_zeros,
)
from repro.sketches.backend import NumpyBackend, PureBackend

needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")


# ----------------------------------------------------------------------
# backend resolution
# ----------------------------------------------------------------------
def test_default_backend_is_pure(monkeypatch):
    monkeypatch.delenv("REPRO_SKETCH_BACKEND", raising=False)
    assert isinstance(get_backend(), PureBackend)


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_SKETCH_BACKEND", "pure")
    assert isinstance(get_backend(), PureBackend)


def test_backend_instance_passthrough():
    backend = PureBackend()
    assert get_backend(backend) is backend


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        get_backend("cuda")


def test_available_backends_always_include_pure():
    names = available_backends()
    assert "pure" in names
    assert ("numpy" in names) == HAS_NUMPY


def test_auto_resolves():
    backend = get_backend("auto")
    assert isinstance(backend, NumpyBackend if HAS_NUMPY else PureBackend)


# ----------------------------------------------------------------------
# kernel equivalence
# ----------------------------------------------------------------------
def kernel_backends():
    backends = [PureBackend()]
    if HAS_NUMPY:
        backends.append(NumpyBackend())
    return backends


@pytest.mark.parametrize("backend", kernel_backends(), ids=lambda b: b.name)
def test_poly_eval_many_matches_pointwise(backend):
    hash_fn = KWiseHash(8, random.Random(3))
    xs = [0, 1, 2, PRIME - 1, PRIME, PRIME + 7, 12345, 2**60]
    assert backend.poly_eval_many(hash_fn.coefficients, xs) == [
        hash_fn(x) for x in xs
    ]
    assert hash_fn.eval_many(xs, backend=backend) == [hash_fn(x) for x in xs]
    assert backend.poly_eval_many(hash_fn.coefficients, []) == []


@pytest.mark.parametrize("backend", kernel_backends(), ids=lambda b: b.name)
def test_trailing_zeros_many_matches_scalar(backend):
    rng = random.Random(5)
    values = [0, 1, 2, 8, 12, PRIME - 1] + [rng.randrange(PRIME) for _ in range(200)]
    assert backend.trailing_zeros_many(values) == [trailing_zeros(v) for v in values]


@pytest.mark.parametrize("backend", kernel_backends(), ids=lambda b: b.name)
def test_pow_many_matches_pow(backend):
    rng = random.Random(7)
    z = rng.randrange(1, PRIME)
    exponents = [0, 1, 2, 63, 4095] + [rng.randrange(10**6) for _ in range(300)]
    expected = [pow(z, e, PRIME) for e in exponents]
    assert backend.pow_many(z, exponents, max_exponent=10**6) == expected
    assert backend.pow_many(z, [], max_exponent=10**6) == []


def test_pure_pow_many_table_path_is_exact():
    """Force the baby-step/giant-step table (large batch) and the direct
    path (tiny batch) to agree with pow, including out-of-hint exponents."""
    rng = random.Random(11)
    z = rng.randrange(1, PRIME)
    backend = PureBackend()
    big = [rng.randrange(5000) for _ in range(2000)]
    assert backend.pow_many(z, big, max_exponent=5000) == [
        pow(z, e, PRIME) for e in big
    ]
    assert z in backend._pow_tables
    # Exponents beyond the table's reach fall back to pow, exactly.
    beyond = [10**7 + 1, 3, 10**9]
    assert backend.pow_many(z, beyond, max_exponent=5000) == [
        pow(z, e, PRIME) for e in beyond
    ]
    fresh = PureBackend()
    small = [1, 2, 3]
    assert fresh.pow_many(z, small, max_exponent=10**12) == [
        pow(z, e, PRIME) for e in small
    ]
    assert z not in fresh._pow_tables  # tiny batch: no table built


@needs_numpy
def test_numpy_mulmod_extremes():
    backend = NumpyBackend()
    import numpy as np

    values = [0, 1, 2, PRIME - 1, PRIME - 2, (1 << 60) + 12345]
    a = np.array(values, dtype=np.uint64)
    for other in values:
        got = backend._mulmod(a, np.uint64(other))
        assert [int(x) for x in got] == [(v * other) % PRIME for v in values]


# ----------------------------------------------------------------------
# end-to-end equivalence: object API vs bank(pure) vs bank(numpy)
# ----------------------------------------------------------------------
def _random_graph(seed):
    rng = random.Random(seed)
    n = rng.randrange(2, 20)
    m = rng.randrange(0, 2 * n + 1)
    edges = []
    for _ in range(m):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.append((u, v))
    return n, edges


def _labels_from_uf(uf, vertices):
    smallest = {}
    for v in vertices:
        smallest.setdefault(uf.find(v), v)
    return [smallest[uf.find(v)] for v in vertices]


def _object_path(spec, n, edges):
    sketches = {v: VertexSketch(spec, v) for v in range(n)}
    for u, v in edges:
        sketches[u].add_edge(u, v)
        sketches[v].add_edge(u, v)
    return sketches


def _bank_path(spec, n, edges, backend):
    bank = SketchBank(spec, vertices=range(n), backend=backend)
    bank.update_edges(edges)
    return bank


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_backends_and_object_api_agree(seed):
    n, edges = _random_graph(seed)
    spec = GraphSketchSpec.generate(n, random.Random(seed + 1), copies=2)
    sketches = _object_path(spec, n, edges)
    banks = {
        name: _bank_path(spec, n, edges, backend=name)
        for name in available_backends()
    }

    pure = banks["pure"]
    for vertex in range(n):
        object_row = sketches[vertex].bank.row(vertex)
        for bank in banks.values():
            row = bank.row(vertex)
            assert (
                row.s0 == object_row.s0
                and row.s1 == object_row.s1
                and row.s2 == object_row.s2
            )
        for phase in range(spec.phases):
            expected = sketches[vertex].sample_outgoing(phase)
            for bank in banks.values():
                assert bank.sample_outgoing(vertex, phase) == expected

    object_uf, object_forest = sketch_boruvka(spec, sketches)
    expected_labels = _labels_from_uf(object_uf, range(n))
    for bank in banks.values():
        uf, forest = bank_boruvka(bank)
        assert forest == object_forest
        assert _labels_from_uf(uf, range(n)) == expected_labels
