"""Array-backed sketch banks: bulk construction, merging, sampling."""

import random

import pytest

from repro.graph import Graph, generators
from repro.graph.traversal import component_labels
from repro.sketches import (
    GraphSketchSpec,
    SketchBank,
    SketchRow,
    VertexSketch,
    bank_boruvka,
)


def make_spec(n=8, seed=0, phases=3, copies=2):
    return GraphSketchSpec.generate(n, random.Random(seed), phases=phases, copies=copies)


def object_rows(spec, edges):
    """Reference rows built through the per-object wrapper API."""
    sketches = {}
    for u, v in edges:
        for endpoint in (u, v):
            if endpoint not in sketches:
                sketches[endpoint] = VertexSketch(spec, endpoint)
            sketches[endpoint].add_edge(u, v)
    return {v: s.bank.row(v) for v, s in sketches.items()}


def rows_equal(a: SketchRow, b: SketchRow) -> bool:
    return a.s0 == b.s0 and a.s1 == b.s1 and a.s2 == b.s2


EDGES = [(0, 1), (1, 2), (2, 0), (3, 4), (1, 5), (6, 2), (5, 0)]


def test_update_edges_matches_object_api():
    spec = make_spec()
    bank = SketchBank(spec)
    bank.update_edges(EDGES)
    for vertex, reference in object_rows(spec, EDGES).items():
        assert rows_equal(bank.row(vertex), reference)


def test_bulk_equals_incremental():
    spec = make_spec()
    bulk = SketchBank(spec)
    bulk.update_edges(EDGES)
    incremental = SketchBank(spec)
    for edge in EDGES:
        incremental.update_edges([edge])
    for vertex in bulk.vertices:
        assert rows_equal(bulk.row(vertex), incremental.row(vertex))


def test_update_accepts_weighted_tuples():
    spec = make_spec()
    a, b = SketchBank(spec), SketchBank(spec)
    a.update_edges([(0, 1, 7), (1, 2, 9)])
    b.update_edges([(0, 1), (1, 2)])
    for vertex in (0, 1, 2):
        assert rows_equal(a.row(vertex), b.row(vertex))


def test_self_loop_matches_object_semantics():
    """A self-loop contributes +1 per endpoint visit — twice to one row,
    exactly as the per-endpoint object construction does."""
    spec = make_spec()
    bank = SketchBank(spec)
    bank.update_edges([(3, 3)])
    reference = VertexSketch(spec, 3)
    reference.add_edge(3, 3)
    reference.add_edge(3, 3)
    assert rows_equal(bank.row(3), reference.bank.row(3))


def test_vertex_rows_auto_created_in_endpoint_order():
    spec = make_spec()
    bank = SketchBank(spec)
    bank.update_edges([(4, 2), (0, 2)])
    assert bank.vertices == [4, 2, 0]
    assert 4 in bank and 7 not in bank
    assert len(bank) == 3


def test_internal_edge_cancels_on_merge():
    spec = make_spec()
    bank = SketchBank(spec)
    bank.update_edges([(0, 1)])
    assert not bank.is_zero_vertex(0)
    bank.merge_vertices(0, 1)
    assert bank.is_zero_vertex(0)
    assert bank.sample_outgoing(0, phase=0) is None


def test_merged_rows_sample_the_cut_edge():
    spec = make_spec(n=4, seed=6, phases=2, copies=3)
    bank = SketchBank(spec)
    bank.update_edges([(0, 1), (1, 2)])
    bank.merge_vertices(0, 1)
    # The cut ({0,1}, {2}) has exactly edge (1,2).
    assert bank.sample_outgoing(0, phase=0) == (1, 2)


def test_insert_row_and_row_items_roundtrip():
    spec = make_spec()
    bank = SketchBank(spec)
    bank.update_edges(EDGES)
    rebuilt = SketchBank(spec)
    for vertex, row in bank.row_items():
        rebuilt.insert_row(vertex, row)
    for vertex in bank.vertices:
        assert rows_equal(bank.row(vertex), rebuilt.row(vertex))


def test_row_merge_is_linear():
    spec = make_spec()
    left = SketchBank(spec)
    left.update_edges([(0, 1), (1, 2)])
    right = SketchBank(spec)
    right.update_edges([(0, 3), (2, 4)])
    combined = SketchBank(spec)
    combined.update_edges([(0, 1), (1, 2), (0, 3), (2, 4)])
    merged = left.row(0).merge(right.row(0))
    assert rows_equal(merged, combined.row(0))


def test_absorb_accumulates_other_bank():
    spec = make_spec()
    a = SketchBank(spec)
    a.update_edges([(0, 1)])
    b = SketchBank(spec)
    b.update_edges([(1, 2)])
    a.absorb(b)
    reference = SketchBank(spec)
    reference.update_edges([(0, 1), (1, 2)])
    for vertex in (0, 1, 2):
        assert rows_equal(a.row(vertex), reference.row(vertex))


def test_copy_is_independent():
    spec = make_spec()
    bank = SketchBank(spec)
    bank.update_edges([(0, 1)])
    before = bank.row(1)
    clone = bank.copy()
    clone.update_edges([(1, 2)])
    assert rows_equal(bank.row(1), before)  # original intact
    assert not rows_equal(bank.row(1), clone.row(1))
    assert 2 not in bank


def test_merge_different_seeds_rejected():
    bank = SketchBank(make_spec(seed=1))
    other = SketchBank(make_spec(seed=2), vertices=(0,))
    with pytest.raises(ValueError):
        bank.merge_row_from(other, 0)
    with pytest.raises(ValueError):
        bank.absorb(other)


def test_wrapper_merge_different_seeds_rejected():
    a = VertexSketch(make_spec(seed=1), 0)
    b = VertexSketch(make_spec(seed=2), 0)
    with pytest.raises(ValueError):
        a.merge(b)


def test_add_incident_requires_incidence():
    bank = SketchBank(make_spec())
    with pytest.raises(ValueError):
        bank.add_incident(0, 1, 2)


def test_word_size_matches_legacy_charge():
    spec = make_spec()
    bank = SketchBank(spec)
    bank.update_edges(EDGES)
    legacy = VertexSketch(spec, 0).word_size()
    assert bank.word_size() == len(bank) * legacy
    assert bank.row(0).word_size() == legacy


def test_decode_slot_recovers_single_edge():
    spec = make_spec()
    bank = SketchBank(spec)
    bank.update_edges([(0, 1)])
    identifier = 0 * spec.n + 1
    decoded = bank.decode_slot(0, phase=0, copy=0, level=0)
    assert decoded == (identifier, 1)
    assert bank.decode_slot(1, phase=0, copy=0, level=0) == (identifier, -1)


def test_bank_boruvka_matches_truth_on_random_graphs():
    for seed in range(4):
        rng = random.Random(seed)
        g = generators.random_connected_graph(18, 40, rng)
        spec = GraphSketchSpec.generate(g.n, random.Random(seed + 50), copies=3)
        bank = SketchBank(spec, vertices=range(g.n))
        bank.update_edges((e[0], e[1]) for e in g.edges)
        uf, forest = bank_boruvka(bank)
        assert uf.num_components == 1
        assert len(forest) == g.n - 1
        edge_set = g.edge_set()
        assert all((min(u, v), max(u, v)) in edge_set for u, v in forest)


def test_bank_boruvka_on_edgeless_bank():
    g = Graph(5, [])
    spec = GraphSketchSpec.generate(g.n, random.Random(3), copies=2)
    bank = SketchBank(spec, vertices=range(g.n))
    uf, forest = bank_boruvka(bank)
    assert uf.num_components == 5
    assert forest == []
    labels = component_labels(g)
    assert labels == list(range(5))


def test_nonuniform_level_counts_rejected():
    from repro.sketches import L0SamplerSeeds

    rng = random.Random(0)
    mixed = GraphSketchSpec(
        n=8,
        seeds=(
            (L0SamplerSeeds.generate(64, rng),),
            (L0SamplerSeeds.generate(100_000, rng),),
        ),
    )
    with pytest.raises(ValueError):
        SketchBank(mixed)


def test_wrapper_samplers_snapshot_matches_bank():
    spec = make_spec()
    sketch = VertexSketch(spec, 0)
    sketch.add_edge(0, 1)
    sketch.add_edge(0, 2)
    row = sketch.bank.row(0)
    flat_index = 0
    for phase in sketch.samplers:
        for sampler in phase:
            for level in sampler.levels:
                assert level.s0 == row.s0[flat_index]
                assert level.s1 == row.s1[flat_index]
                assert level.s2 == row.s2[flat_index]
                flat_index += 1
