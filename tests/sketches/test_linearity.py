"""Signed sketch updates: linearity properties and self-loop semantics.

The AGM sketches are linear maps of the edge multiset, which is what the
dynamic-graph service (:mod:`repro.serve`) builds on: a delete is the
insert applied with ``sign=-1``.  These tests pin the algebra —
insert-then-delete returns a bank to all-zero counters, interleaved
signed updates land on exactly the insert-only bank of the surviving
multiset — across both compute backends, plus the self-loop no-op fix
(loops used to double-apply one endpoint's ``+1``).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches import GraphSketchSpec, SketchBank
from repro.sketches.backend import available_backends

N = 16
SPEC = GraphSketchSpec.generate(N, random.Random(7), copies=2)

vertices = st.integers(0, N - 1)
edges = st.tuples(vertices, vertices)
edge_lists = st.lists(edges, max_size=30)


def rows_of(bank: SketchBank) -> dict[int, tuple]:
    """Per-vertex counter rows for every vertex of the universe
    (row-order independent)."""
    for v in range(N):
        bank.add_vertex(v)
    return {
        v: (row.s0, row.s1, row.s2)
        for v in range(N)
        for row in [bank.row(v)]
    }


@pytest.mark.parametrize("backend", available_backends())
@settings(max_examples=25, deadline=None)
@given(batch=edge_lists, order_seed=st.integers(0, 2**16))
def test_insert_then_delete_returns_to_zero(backend, batch, order_seed):
    bank = SketchBank(SPEC, backend=backend)
    bank.update_edges(batch)
    deletions = list(batch)
    random.Random(order_seed).shuffle(deletions)
    bank.update_edges(deletions, sign=-1)
    assert not any(bank.s0) and not any(bank.s1) and not any(bank.s2)
    for v in bank.vertices:
        assert bank.is_zero_vertex(v)


@pytest.mark.parametrize("backend", available_backends())
@settings(max_examples=25, deadline=None)
@given(
    batch=edge_lists,
    delete_mask=st.lists(st.booleans(), max_size=30),
    order_seed=st.integers(0, 2**16),
    chunk=st.integers(1, 7),
)
def test_interleaved_signed_updates_match_surviving_insert_only(
    backend, batch, delete_mask, order_seed, chunk
):
    """Apply inserts and deletes interleaved in chunks of arbitrary sign
    order; the bank must equal a fresh insert-only bank of the surviving
    edge multiset, counter for counter."""
    deletions = [e for e, kill in zip(batch, delete_mask) if kill]
    surviving = list(batch)
    for e in deletions:
        surviving.remove(e)

    ops = [(e, 1) for e in batch] + [(e, -1) for e in deletions]
    random.Random(order_seed).shuffle(ops)

    streamed = SketchBank(SPEC, backend=backend)
    for start in range(0, len(ops), chunk):
        for sign in (1, -1):
            group = [e for e, s in ops[start : start + chunk] if s == sign]
            if group:
                streamed.update_edges(group, sign=sign)

    fresh = SketchBank(SPEC, backend=backend)
    fresh.update_edges(surviving)
    assert rows_of(streamed) == rows_of(fresh)


@pytest.mark.parametrize("backend", available_backends())
def test_backends_agree_on_signed_updates(backend):
    reference = SketchBank(SPEC, backend="pure")
    other = SketchBank(SPEC, backend=backend)
    for bank in (reference, other):
        bank.update_edges([(0, 1), (1, 2), (2, 3), (0, 3)])
        bank.update_edges([(1, 2), (0, 3)], sign=-1)
    assert rows_of(reference) == rows_of(other)


# --- self-loop semantics (regression: loops used to double-apply) -------

def test_update_edges_short_circuits_self_loops():
    bank = SketchBank(SPEC)
    bank.update_edges([(5, 5)])
    # The vertex gets a row, but no counter moves: the loop's +1 (as the
    # smaller endpoint) and -1 (as the larger) cancel on the same row.
    assert 5 in bank
    assert bank.is_zero_vertex(5)
    assert not any(bank.s0) and not any(bank.s1) and not any(bank.s2)


def test_loops_in_a_batch_do_not_change_the_bank():
    with_loops = SketchBank(SPEC)
    with_loops.update_edges([(0, 1), (3, 3), (1, 2), (7, 7)])
    without = SketchBank(SPEC)
    without.update_edges([(0, 1), (1, 2)])
    assert rows_of(with_loops) == rows_of(without)
    # ... and the loop vertices still exist (zero rows).
    assert 3 in with_loops and 7 in with_loops


def test_loop_hash_evaluations_are_skipped(monkeypatch):
    bank = SketchBank(SPEC)
    calls = []
    original = bank.backend.poly_eval_many

    def counting(*args, **kwargs):
        calls.append(1)
        return original(*args, **kwargs)

    monkeypatch.setattr(bank.backend, "poly_eval_many", counting)
    bank.update_edges([(4, 4), (9, 9)])
    assert calls == []  # loop-only batches never reach the hash kernels


def test_add_incident_loop_is_a_no_op():
    bank = SketchBank(SPEC)
    bank.add_incident(2, 2, 2)
    assert 2 in bank
    assert bank.is_zero_vertex(2)


def test_signed_add_incident_mirrors_insert():
    inserted = SketchBank(SPEC)
    inserted.add_incident(0, 0, 1)
    inserted.add_incident(1, 0, 1)
    inserted.add_incident(0, 0, 1, sign=-1)
    inserted.add_incident(1, 0, 1, sign=-1)
    assert not any(inserted.s0) and not any(inserted.s1) and not any(inserted.s2)


def test_update_edges_rejects_bad_sign():
    bank = SketchBank(SPEC)
    with pytest.raises(ValueError):
        bank.update_edges([(0, 1)], sign=0)
    with pytest.raises(ValueError):
        bank.add_incident(0, 0, 1, sign=2)
