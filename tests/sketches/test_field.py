"""k-wise independent hashing over GF(2^61 - 1)."""

import random

from repro.sketches import KWiseHash, PRIME, trailing_zeros


def test_hash_is_deterministic():
    h = KWiseHash(4, random.Random(1))
    assert h(42) == h(42)


def test_hash_range():
    h = KWiseHash(4, random.Random(2))
    for x in range(100):
        assert 0 <= h(x) < PRIME


def test_different_seeds_differ():
    a = KWiseHash(4, random.Random(3))
    b = KWiseHash(4, random.Random(4))
    assert any(a(x) != b(x) for x in range(10))


def test_degree_matches_k():
    h = KWiseHash(5, random.Random(5))
    assert len(h.coefficients) == 5


def test_leading_coefficient_nonzero():
    for seed in range(20):
        h = KWiseHash(3, random.Random(seed))
        assert h.coefficients[0] != 0


def test_uniformity_rough():
    """Bucketed outputs should not all collapse (sanity, not a real
    statistical test)."""
    h = KWiseHash(8, random.Random(6))
    buckets = [0] * 16
    for x in range(4000):
        buckets[h(x) % 16] += 1
    assert min(buckets) > 100


def test_k_must_be_positive():
    import pytest

    with pytest.raises(ValueError):
        KWiseHash(0, random.Random(0))


def test_trailing_zeros():
    assert trailing_zeros(1) == 0
    assert trailing_zeros(8) == 3
    assert trailing_zeros(12) == 2
    assert trailing_zeros(0) == 61


def test_trailing_zeros_geometric_distribution():
    rng = random.Random(7)
    h = KWiseHash(8, rng)
    levels = [trailing_zeros(h(x)) for x in range(8000)]
    zero_fraction = sum(1 for l in levels if l == 0) / len(levels)
    assert 0.4 < zero_fraction < 0.6  # ~1/2 of hashes are odd
