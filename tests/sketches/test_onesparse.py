"""One-sparse recovery: exactness, linearity, rejection."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches import OneSparseSketch


def fresh(seed=0):
    return OneSparseSketch.fresh(random.Random(seed))


def test_recovers_single_update():
    sketch = fresh()
    sketch.update(17, 3)
    assert sketch.decode() == (17, 3)


def test_recovers_after_cancellation():
    sketch = fresh()
    sketch.update(5, 1)
    sketch.update(9, 1)
    sketch.update(9, -1)
    assert sketch.decode() == (5, 1)


def test_zero_vector_decodes_none():
    sketch = fresh()
    assert sketch.is_zero
    assert sketch.decode() is None
    sketch.update(3, 4)
    sketch.update(3, -4)
    assert sketch.is_zero


def test_two_sparse_rejected():
    rejections = 0
    for seed in range(30):
        sketch = fresh(seed)
        sketch.update(1, 1)
        sketch.update(2, 1)
        if sketch.decode() is None:
            rejections += 1
    assert rejections == 30  # Schwartz–Zippel failure is ~2^-60


def test_negative_value_recovery():
    sketch = fresh()
    sketch.update(7, -2)
    assert sketch.decode() == (7, -2)


def test_merge_is_addition():
    a, b = fresh(1), OneSparseSketch(fresh(1).z)
    # Same z is required; construct b with a's seed.
    a2 = a.copy()
    a.update(4, 1)
    a2.update(4, 2)
    a.merge(a2)
    assert a.decode() == (4, 3)


def test_merge_different_seeds_rejected():
    a, b = fresh(1), fresh(2)
    if a.z != b.z:
        with pytest.raises(ValueError):
            a.merge(b)


def test_copy_is_independent():
    a = fresh()
    a.update(1, 1)
    b = a.copy()
    b.update(2, 1)
    assert a.decode() == (1, 1)
    assert b.decode() is None or b.decode() not in ((1, 1),)


def test_negative_index_rejected():
    with pytest.raises(ValueError):
        fresh().update(-1, 1)


def test_word_size_is_constant():
    assert fresh().word_size() == 4


@settings(max_examples=25, deadline=None)
@given(
    index=st.integers(min_value=0, max_value=10**6),
    value=st.integers(min_value=-100, max_value=100).filter(lambda v: v != 0),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_one_sparse_recovery_property(index, value, seed):
    sketch = fresh(seed)
    sketch.update(index, value)
    assert sketch.decode() == (index, value)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_linearity_property(seed):
    """sketch(x) + sketch(y) == sketch(x + y) for random sparse vectors."""
    rng = random.Random(seed)
    base = fresh(seed)
    a, b = base.copy(), base.copy()
    combined = {}
    for _ in range(5):
        index, delta = rng.randrange(100), rng.choice((-2, -1, 1, 2))
        target = rng.choice((a, b))
        target.update(index, delta)
        combined[index] = combined.get(index, 0) + delta
    a.merge(b)
    direct = base.copy()
    for index, delta in combined.items():
        if delta:
            direct.update(index, delta)
    assert a.s0 == direct.s0 and a.s1 == direct.s1 and a.s2 == direct.s2
