"""ℓ₀-samplers and AGM graph sketches."""

import random

import pytest

from repro.graph import generators
from repro.graph.traversal import component_labels
from repro.sketches import (
    GraphSketchSpec,
    L0Sampler,
    L0SamplerSeeds,
    VertexSketch,
    components_from_sketches,
    edge_from_id,
    edge_id,
    sketch_boruvka,
)


def make_sampler(universe=1000, seed=0):
    return L0Sampler(L0SamplerSeeds.generate(universe, random.Random(seed)))


# ----------------------------------------------------------------------
# L0 sampler
# ----------------------------------------------------------------------
def test_samples_one_of_the_nonzero_coordinates():
    sampler = make_sampler()
    support = {10: 1, 20: 1, 30: 1}
    for index, value in support.items():
        sampler.update(index, value)
    result = sampler.sample()
    assert result is not None
    index, value = result
    assert index in support and value == support[index]


def test_empty_sampler_returns_none():
    sampler = make_sampler()
    assert sampler.is_zero
    assert sampler.sample() is None


def test_cancellation_removes_support():
    sampler = make_sampler()
    sampler.update(5, 1)
    sampler.update(5, -1)
    assert sampler.is_zero


def test_success_rate_over_seeds():
    """A single sampler succeeds with constant probability; over many seeds
    the success rate should be high for moderate support sizes."""
    successes = 0
    for seed in range(40):
        sampler = make_sampler(seed=seed)
        rng = random.Random(seed + 1)
        support = rng.sample(range(1000), 25)
        for index in support:
            sampler.update(index, 1)
        result = sampler.sample()
        if result is not None and result[0] in support:
            successes += 1
    assert successes >= 30


def test_merge_requires_same_seeds():
    a = make_sampler(seed=1)
    b = make_sampler(seed=2)
    with pytest.raises(ValueError):
        a.merge(b)


def test_merge_combines_vectors():
    seeds = L0SamplerSeeds.generate(100, random.Random(3))
    a, b = L0Sampler(seeds), L0Sampler(seeds)
    a.update(7, 1)
    b.update(7, -1)
    b.update(9, 1)
    a.merge(b)
    assert a.sample() == (9, 1)


def test_zero_delta_is_noop():
    sampler = make_sampler()
    sampler.update(5, 0)
    assert sampler.is_zero


def test_word_size_scales_with_levels():
    seeds = L0SamplerSeeds.generate(10_000, random.Random(4))
    sampler = L0Sampler(seeds)
    assert sampler.word_size() == 3 * seeds.num_levels


# ----------------------------------------------------------------------
# Graph sketches
# ----------------------------------------------------------------------
def test_edge_id_roundtrip():
    n = 50
    for u, v in [(0, 1), (3, 40), (48, 49)]:
        assert edge_from_id(n, edge_id(n, u, v)) == (u, v)
        assert edge_id(n, v, u) == edge_id(n, u, v)


def test_internal_edges_cancel_in_merged_sketch():
    """Merging the two endpoint sketches of an isolated edge yields zero."""
    rng = random.Random(5)
    spec = GraphSketchSpec.generate(4, rng, phases=2, copies=2)
    a, b = VertexSketch(spec, 0), VertexSketch(spec, 1)
    a.add_edge(0, 1)
    b.add_edge(0, 1)
    a.merge(b)
    assert a.sample_outgoing(0) is None


def test_merged_sketch_samples_cut_edge():
    rng = random.Random(6)
    spec = GraphSketchSpec.generate(4, rng, phases=2, copies=3)
    sketches = {v: VertexSketch(spec, v) for v in range(3)}
    for u, v in [(0, 1), (1, 2)]:
        sketches[u].add_edge(u, v)
        sketches[v].add_edge(u, v)
    merged = sketches[0].copy()
    merged.merge(sketches[1])
    # The cut ({0,1}, {2}) has exactly edge (1,2).
    assert merged.sample_outgoing(0) == (1, 2)


def test_add_edge_requires_incidence():
    rng = random.Random(7)
    spec = GraphSketchSpec.generate(4, rng, phases=1, copies=1)
    sketch = VertexSketch(spec, 0)
    with pytest.raises(ValueError):
        sketch.add_edge(1, 2)


def build_sketches(graph, seed):
    rng = random.Random(seed)
    spec = GraphSketchSpec.generate(graph.n, rng)
    sketches = {v: VertexSketch(spec, v) for v in range(graph.n)}
    for u, v in graph.edges:
        sketches[u].add_edge(u, v)
        sketches[v].add_edge(u, v)
    return spec, sketches


def test_boruvka_on_connected_graph():
    rng = random.Random(8)
    g = generators.random_connected_graph(25, 60, rng)
    spec, sketches = build_sketches(g, seed=9)
    uf, forest = sketch_boruvka(spec, sketches)
    assert uf.num_components == 1
    assert len(forest) == g.n - 1


def test_components_match_truth_on_planted_graph():
    rng = random.Random(10)
    g = generators.planted_components_graph(40, 4, 30, rng)
    spec, sketches = build_sketches(g, seed=11)
    assert components_from_sketches(spec, sketches) == component_labels(g)


def test_components_on_edgeless_graph():
    from repro.graph import Graph

    g = Graph(6, [])
    spec, sketches = build_sketches(g, seed=12)
    assert components_from_sketches(spec, sketches) == list(range(6))


def test_forest_edges_are_real_edges():
    rng = random.Random(13)
    g = generators.random_connected_graph(20, 50, rng)
    spec, sketches = build_sketches(g, seed=14)
    _, forest = sketch_boruvka(spec, sketches)
    edge_set = g.edge_set()
    assert all((min(u, v), max(u, v)) in edge_set for u, v in forest)
