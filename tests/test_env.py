"""The shared env-knob helpers (and the knobs that consume them).

``REPRO_BENCH_SMOKE=true`` used to be silently ignored because the knob
was compared against the literal string ``"1"``; these tests pin the
helper's vocabulary (``1/true/yes/on`` vs ``0/false/no/off``, unset, and
loud failure on junk) and that the name-valued executor/backend knobs
tolerate padding and capitalization.
"""

import pytest

from repro.env import env_flag, env_int, env_name

VAR = "REPRO_TEST_KNOB"


@pytest.mark.parametrize("value", ["1", "true", "yes", "on", "TRUE", " Yes ", "On"])
def test_env_flag_truthy(monkeypatch, value):
    monkeypatch.setenv(VAR, value)
    assert env_flag(VAR) is True
    assert env_flag(VAR, default=False) is True


@pytest.mark.parametrize("value", ["0", "false", "no", "off", "FALSE", " No "])
def test_env_flag_falsy(monkeypatch, value):
    monkeypatch.setenv(VAR, value)
    assert env_flag(VAR) is False
    assert env_flag(VAR, default=True) is False


@pytest.mark.parametrize("default", [False, True])
def test_env_flag_unset_and_empty_use_default(monkeypatch, default):
    monkeypatch.delenv(VAR, raising=False)
    assert env_flag(VAR, default=default) is default
    monkeypatch.setenv(VAR, "   ")
    assert env_flag(VAR, default=default) is default


def test_env_flag_rejects_junk(monkeypatch):
    monkeypatch.setenv(VAR, "maybe")
    with pytest.raises(ValueError, match="REPRO_TEST_KNOB"):
        env_flag(VAR)


def test_env_name_normalizes(monkeypatch):
    monkeypatch.setenv(VAR, "  NumPy ")
    assert env_name(VAR, "pure") == "numpy"
    monkeypatch.setenv(VAR, "")
    assert env_name(VAR, "pure") == "pure"
    monkeypatch.delenv(VAR)
    assert env_name(VAR, "pure") == "pure"


def test_env_int(monkeypatch):
    monkeypatch.setenv(VAR, " 4 ")
    assert env_int(VAR) == 4
    monkeypatch.setenv(VAR, "")
    assert env_int(VAR, 2) == 2
    monkeypatch.delenv(VAR)
    assert env_int(VAR, 3) == 3
    monkeypatch.setenv(VAR, "four")
    with pytest.raises(ValueError, match="REPRO_TEST_KNOB"):
        env_int(VAR)


# --- the knobs wired through the helpers --------------------------------

def test_executor_env_tolerates_padding(monkeypatch):
    from repro.mpc.executor import ProcessExecutor, get_executor

    monkeypatch.setenv("REPRO_EXECUTOR", " Process ")
    monkeypatch.setenv("REPRO_EXECUTOR_WORKERS", " 2 ")
    resolved = get_executor()
    assert isinstance(resolved, ProcessExecutor)
    assert resolved.workers == 2


def test_backend_envs_tolerate_padding(monkeypatch):
    from repro.mpc.backend import PureEngineBackend, get_engine_backend
    from repro.primitives.columnar import primitive_path
    from repro.sketches.backend import PureBackend, get_backend

    monkeypatch.setenv("REPRO_SKETCH_BACKEND", "PURE")
    assert isinstance(get_backend(), PureBackend)
    monkeypatch.setenv("REPRO_ENGINE_BACKEND", " pure\t")
    assert isinstance(get_engine_backend(), PureEngineBackend)
    monkeypatch.setenv("REPRO_PRIMITIVE_PATH", " Object ")
    assert primitive_path() == "object"


def test_bench_smoke_accepts_word_forms(monkeypatch):
    # The original bug: REPRO_BENCH_SMOKE=true was silently ignored.
    monkeypatch.setenv("REPRO_BENCH_SMOKE", "true")
    assert env_flag("REPRO_BENCH_SMOKE") is True
    monkeypatch.setenv("REPRO_BENCH_SMOKE", "0")
    assert env_flag("REPRO_BENCH_SMOKE") is False
