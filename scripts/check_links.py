#!/usr/bin/env python3
"""Cross-reference link check for the repo's markdown docs.

Scans README.md, PAPERS.md, ROADMAP.md, CHANGES.md and docs/*.md for
relative markdown links and inline-code path references, and fails when a
referenced file does not exist.  External (http/https/mailto) links are
not fetched — CI must stay hermetic.

Usage: python scripts/check_links.py  (exit 1 on broken references)
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

DOCS = sorted(
    p for p in [
        REPO_ROOT / "README.md",
        REPO_ROOT / "PAPERS.md",
        REPO_ROOT / "ROADMAP.md",
        REPO_ROOT / "CHANGES.md",
        *(REPO_ROOT / "docs").glob("*.md"),
    ]
    if p.exists()
)

LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)[^)]*\)")
# `path/like.this` references inside backticks; only ones that look like
# repo paths (contain a slash and an extension or trailing slash).
CODE_PATH = re.compile(r"`((?:[\w.\-]+/)+[\w.\-]*)`")

EXTERNAL = ("http://", "https://", "mailto:")


def check_doc(doc: pathlib.Path) -> list[str]:
    problems = []
    text = doc.read_text()
    targets: set[str] = set()
    for match in LINK.finditer(text):
        target = match.group(1)
        if not target.startswith(EXTERNAL):
            targets.add(target)
    for match in CODE_PATH.finditer(text):
        target = match.group(1)
        # Only treat as a path claim when the prefix exists in-repo
        # (skips module dotted-paths, shell output, glob patterns, and
        # illustrative snippets).
        if "*" in target or "<" in target:
            continue
        first = target.split("/", 1)[0]
        if (REPO_ROOT / first).exists():
            targets.add(target)
    for target in sorted(targets):
        resolved = (doc.parent / target).resolve()
        in_repo = (REPO_ROOT / target).resolve()
        if not resolved.exists() and not in_repo.exists():
            problems.append(f"{doc.relative_to(REPO_ROOT)}: broken reference {target!r}")
    return problems


def main() -> int:
    problems = [p for doc in DOCS for p in check_doc(doc)]
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        return 1
    print(f"checked {len(DOCS)} docs, all cross-references resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
