#!/usr/bin/env python3
"""CI throughput regression gate over ``repro.perf/1`` artifacts.

Compares freshly measured throughput artifacts against the committed
baselines in ``benchmarks/results/perf/`` and exits non-zero when any
matched metric dropped by more than the tolerance (default 30%).

Usage::

    python scripts/perf_gate.py                      # self-check baselines
    python scripts/perf_gate.py --measured /tmp/perf # gate a fresh run
    python scripts/perf_gate.py --measured /tmp/perf --update-baseline
    python scripts/perf_gate.py --tolerance 0.5      # loosen the gate

Rows are matched by their full non-metric identity (benchmark, engine,
sizing knobs, ...), so quick-mode runs at smoke sizes simply do not
match the full-size baseline rows: they are reported as notes, never
failures.  Use ``--min-matched`` to require that at least N metrics
actually matched (guards against a silently empty comparison).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.experiments import perfgate  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="throughput regression gate (repro.perf/1 artifacts)"
    )
    parser.add_argument(
        "--baseline", default=str(perfgate.DEFAULT_BASELINE_DIR),
        help="committed baseline directory (default benchmarks/results/perf)",
    )
    parser.add_argument(
        "--measured", default=None,
        help="freshly measured artifact directory "
             "(default: the baseline dir — a self-check)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=perfgate.DEFAULT_TOLERANCE,
        help="allowed fractional drop before the gate fires (default 0.30)",
    )
    parser.add_argument(
        "--min-matched", type=int, default=1,
        help="fail unless at least N metrics were actually compared "
             "(default 1; use 0 for sizing-mismatched quick runs)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="copy the measured artifacts over the baselines and exit",
    )
    args = parser.parse_args(argv)

    measured_dir = args.measured or args.baseline
    if args.update_baseline:
        if args.measured is None:
            print("perf_gate: --update-baseline needs --measured",
                  file=sys.stderr)
            return 2
        updated = perfgate.update_baseline(measured_dir, args.baseline)
        for path in updated:
            print(f"updated {path}")
        return 0

    try:
        baseline = perfgate.load_perf_dir(args.baseline)
        measured = perfgate.load_perf_dir(measured_dir)
    except ValueError as exc:
        print(f"perf_gate: {exc}", file=sys.stderr)
        return 2
    if not baseline:
        print(f"perf_gate: no baseline artifacts in {args.baseline}",
              file=sys.stderr)
        return 2

    result = perfgate.compare_perf(
        baseline, measured, tolerance=args.tolerance
    )
    print(result.render())
    if not result.ok(min_matched=args.min_matched):
        if not result.failures:
            print(
                f"perf_gate: only {result.matched} metric(s) matched "
                f"(--min-matched {args.min_matched})",
                file=sys.stderr,
            )
        return 1
    print("perf gate: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
