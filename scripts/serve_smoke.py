#!/usr/bin/env python3
"""CI smoke for the serve daemon: stream, verify, and byte-diff.

Spawns a real ``python -m repro serve`` daemon over stdio, streams a
deterministic mix of inserts, deletes, and queries, then checks:

1. **Correctness** — after every update batch, the daemon's canonical
   component labels equal a from-scratch
   :func:`repro.core.connectivity.sketch_components` run (same seed) on
   the surviving edge multiset (recomputed independently here).
2. **Determinism** — the full response transcript of a second,
   identically driven daemon is byte-identical to the first.

Run it under both sketch backends::

    python scripts/serve_smoke.py
    REPRO_SKETCH_BACKEND=numpy python scripts/serve_smoke.py
"""

from __future__ import annotations

import pathlib
import random
import sys

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.core.connectivity import sketch_components  # noqa: E402
from repro.mpc import Cluster, ModelConfig  # noqa: E402
from repro.primitives.edgestore import EdgeStore  # noqa: E402
from repro.serve import ServeClient  # noqa: E402

N = 24
SEED = 13
BATCHES = 5
PER_BATCH = 10


def scratch_labels(surviving: list[tuple[int, int]]) -> list[int]:
    cluster = Cluster(
        ModelConfig.heterogeneous(n=N, m=max(4, len(surviving))),
        rng=random.Random(555),
    )
    store = EdgeStore.create(cluster, surviving, name="smoke")
    return sketch_components(cluster, store, N, random.Random(SEED), copies=3)


def drive_daemon() -> tuple[list[str], int]:
    """Run one full daemon session; returns (transcript, checks done)."""
    rng = random.Random(99)
    live: list[tuple[int, int]] = []
    transcript: list[str] = []
    checks = 0
    env = {"PYTHONPATH": str(_REPO_ROOT / "src")}
    with ServeClient.spawn(["--n", str(N), "--seed", str(SEED)], env=env) as c:
        record = lambda op, **kw: transcript.append(  # noqa: E731
            str(sorted(c.request(op, **kw).items()))
        )
        record("ping")
        for _ in range(BATCHES):
            inserts = []
            for _ in range(PER_BATCH):
                u, v = rng.randrange(N), rng.randrange(N)
                inserts.append([u, v])
                if u != v:
                    live.append((min(u, v), max(u, v)))
            deletes = []
            for _ in range(min(3, len(live))):
                deletes.append(list(live.pop(rng.randrange(len(live)))))
            record("update", insert=inserts, delete=deletes)
            record("connected", u=rng.randrange(N), v=rng.randrange(N))
            record("components", labels=True)
            response = c.components(labels=True)
            expected = scratch_labels(sorted(live))
            assert response["labels"] == expected, (
                f"daemon labels diverged from from-scratch recompute:\n"
                f"  daemon:  {response['labels']}\n  scratch: {expected}"
            )
            checks += 1
        record("stats")
        record("shutdown")
    return transcript, checks


def main() -> int:
    first, checks = drive_daemon()
    second, _ = drive_daemon()
    assert first == second, "repeated daemon runs are not byte-identical"
    print(
        f"serve smoke OK: {BATCHES} batches, {checks} differential "
        f"recompute checks, {len(first)}-line transcript byte-stable"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
