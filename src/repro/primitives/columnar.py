"""Columnar item representation for the MPC primitives.

The round engine went columnar in PR 5 (``repro.mpc.plan`` stores traffic
as per-run blocks); this module pushes the same representation *up* into
the eight primitives so a whole pipeline run can stay array-native
between ``send_indexed`` calls instead of materializing per-item Python
tuples at every step.

Three pieces, mirroring the ``repro.mpc.backend`` / ``repro.sketches.backend``
seams:

* :class:`EdgeBlock` — a typed record batch: fixed-width rows held as
  per-field columns (numpy 1-D arrays when numpy is installed, plain row
  lists otherwise).  A block knows its word count in O(1)
  (``len * width`` — every field of a qualifying record is one machine
  word), which is what lets ``Machine.put`` and the converge-cast scratch
  charges account a 100k-row dataset without iterating it: the block
  implements the ``word_size()`` duck-type hook of
  :func:`repro.mpc.words.word_size`.  Blocks are sequences of the exact
  row tuples they were built from — iterating one yields the same Python
  tuples the object path would have produced, so downstream consumers
  are path-agnostic.

* ingestion/kernels — ``ingest_rows`` qualifies a row list for columnar
  treatment (uniform width, per-field scalar types that round-trip
  exactly through numpy: ``int`` within int64, finite ``float``,
  ``bool``); ``lexsort_block`` / ``reduce_pairs`` are the array kernels
  behind sample sort and aggregation.  Every kernel has a pure fallback
  so minimal installs keep working; when numpy is missing the primitives
  simply stay on the object path (the pure kernels preserve semantics,
  they do not chase the array speed).

* the path switch — ``REPRO_PRIMITIVE_PATH`` (``columnar``, the default,
  or ``object``) selects which implementation the primitives run.
  Ledgers and outputs are bit-identical across paths *by construction*:
  the columnar paths consume the shared RNG identically, build the same
  plan runs (same (src, dst) sets, same lengths, same word totals —
  blocks size as ``rows * width``, exactly the sum of the row word
  sizes) and re-emit results in the same order the object path would
  (stable sorts, first-encounter aggregation order).  A differential
  property suite pins this.
"""

from __future__ import annotations

from contextlib import contextmanager
from itertools import chain
from operator import itemgetter
from typing import Any, Callable, Iterator, Sequence
from ..env import env_name

try:  # optional accelerator — the object path is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on minimal installs
    _np = None

__all__ = [
    "HAS_NUMPY",
    "EdgeBlock",
    "primitive_path",
    "columnar_enabled",
    "forced_path",
    "key_fields",
    "as_callable",
    "ingest_rows",
    "ensure_block",
    "concat_blocks",
    "lexsort_block",
    "bucket_bounds",
    "pack_columns",
    "stable_order",
    "spans_fit_packing",
    "reduce_pairs",
    "ingest_pairs",
    "REDUCERS",
]

HAS_NUMPY = _np is not None

_ENV_VAR = "REPRO_PRIMITIVE_PATH"
_FORCED: str | None = None

#: Exact int64 range — Python ints outside it do not round-trip through a
#: numpy column, so such rows stay on the object path.
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def primitive_path() -> str:
    """The active primitive path: ``"columnar"`` (default) or ``"object"``.

    ``REPRO_PRIMITIVE_PATH`` overrides the default; :func:`forced_path`
    overrides both (benchmarks and differential tests pin a path with it).
    """
    if _FORCED is not None:
        return _FORCED
    path = env_name(_ENV_VAR, "columnar")
    if path not in ("columnar", "object"):
        raise ValueError(
            f"unknown primitive path {path!r} (expected 'columnar' or 'object')"
        )
    return path


def columnar_enabled() -> bool:
    """Whether the primitives should try their columnar implementations."""
    return primitive_path() == "columnar"


@contextmanager
def forced_path(path: str) -> Iterator[None]:
    """Force the primitive path for a ``with`` block (tests/benchmarks)."""
    if path not in ("columnar", "object"):
        raise ValueError(
            f"unknown primitive path {path!r} (expected 'columnar' or 'object')"
        )
    global _FORCED
    previous = _FORCED
    _FORCED = path
    try:
        yield
    finally:
        _FORCED = previous


# ----------------------------------------------------------------------
# Sort keys as field specs
# ----------------------------------------------------------------------
def key_fields(key: Any) -> tuple[int, ...] | None:
    """Normalize a field-spec sort key to a tuple of column indices.

    A field spec is an ``int`` or a tuple of ``int`` — "sort by these
    columns, in this order".  Callables (the pre-columnar idiom) return
    ``None``: they cannot be vectorized, so they keep the object path.
    """
    if isinstance(key, int) and not isinstance(key, bool):
        return (key,)
    if (
        isinstance(key, tuple)
        and key
        and all(isinstance(f, int) and not isinstance(f, bool) for f in key)
    ):
        return tuple(key)
    return None


def as_callable(key: Any) -> Callable[[Any], Any]:
    """The per-item form of a sort key (field specs become itemgetters).

    A single-field spec still keys by a 1-tuple, so the object and
    columnar paths order ties identically regardless of the spec shape.
    """
    fields = key_fields(key)
    if fields is None:
        return key
    if len(fields) == 1:
        field = fields[0]
        return lambda item: (item[field],)
    return itemgetter(*fields)


# ----------------------------------------------------------------------
# EdgeBlock — a typed record batch
# ----------------------------------------------------------------------
class EdgeBlock:
    """A batch of fixed-width scalar records, stored as per-field columns.

    Behaves as an immutable sequence of the row tuples it was built from
    (iteration materializes rows lazily, once).  ``word_size()`` is the
    O(1) accounting hook: ``rows * width``, exactly what
    :func:`repro.mpc.words.word_size` charges for the equivalent tuples.
    """

    __slots__ = ("columns", "_length", "_rows")

    def __init__(self, columns: Sequence[Any], length: int | None = None) -> None:
        #: Per-field columns: numpy 1-D arrays (numpy mode) or column
        #: lists (pure mode).  All the same length.
        self.columns = tuple(columns)
        if length is None:
            length = len(self.columns[0]) if self.columns else 0
        self._length = int(length)
        self._rows: list[tuple] | None = None

    # -- accounting ----------------------------------------------------
    @property
    def width(self) -> int:
        return len(self.columns)

    def word_size(self) -> int:
        """Total words, in O(1) — every field of every row is one word."""
        return self._length * len(self.columns)

    # -- sequence protocol --------------------------------------------
    def rows(self) -> list[tuple]:
        """The records as Python tuples (materialized once, then cached).

        Numpy columns come back through ``tolist()``, so every scalar is
        the exact Python value the row was built from (int64 ints, IEEE
        floats, bools) — consumers cannot tell which path produced the
        dataset.
        """
        if self._rows is None:
            if _np is not None and self.columns and isinstance(
                self.columns[0], _np.ndarray
            ):
                self._rows = list(zip(*(col.tolist() for col in self.columns)))
            else:
                self._rows = list(zip(*self.columns))
        return self._rows

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows())

    def __getitem__(self, index: Any) -> Any:
        if isinstance(index, slice):
            return EdgeBlock([col[index] for col in self.columns])
        return self.rows()[index]

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, EdgeBlock):
            return self.rows() == other.rows()
        if isinstance(other, list):
            return self.rows() == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EdgeBlock(rows={self._length}, width={self.width})"


def _column_dtype(values: list) -> Any:
    """The numpy dtype a column of Python scalars round-trips through,
    or ``None`` if it does not round-trip exactly."""
    kinds = set(map(type, values))
    if kinds == {int}:
        if all(_INT64_MIN <= v <= _INT64_MAX for v in (min(values), max(values))):
            return _np.int64
        return None
    if kinds == {float}:
        return _np.float64
    if kinds == {bool}:
        return _np.bool_
    return None


def ingest_rows(rows: Sequence[Any]) -> EdgeBlock | None:
    """Build an :class:`EdgeBlock` from *rows*, or ``None`` if they do not
    qualify (non-tuples, ragged widths, fields that would not round-trip
    exactly through a typed column).

    The common case — edge lists, flat tuples of ints — is recognized
    with C-level passes (one flatten, one type scan, one array build);
    per-column dtypes only get inspected on the rarer mixed-type batches.
    """
    if _np is None or not rows:
        return None
    if isinstance(rows, EdgeBlock):
        return rows
    if set(map(type, rows)) != {tuple}:
        return None
    width = len(rows[0])
    if width == 0:
        return None
    flat = list(chain.from_iterable(rows))
    if len(flat) != width * len(rows):
        return None
    kinds = set(map(type, flat))
    if kinds == {int}:
        lo, hi = min(flat), max(flat)
        if lo < _INT64_MIN or hi > _INT64_MAX:
            return None
        arr = _np.array(flat, dtype=_np.int64).reshape(len(rows), width)
        return EdgeBlock([arr[:, j] for j in range(width)], len(rows))
    if not kinds <= {int, float, bool}:
        return None
    columns = []
    for j in range(width):
        values = flat[j::width]
        dtype = _column_dtype(values)
        if dtype is None:
            return None
        col = _np.array(values, dtype=dtype)
        if dtype is _np.float64 and not _np.isfinite(col).all():
            # NaN/inf break the ordering equivalence with Python sorts.
            return None
        columns.append(col)
    return EdgeBlock(columns, len(rows))


def value_column(values: list) -> Any | None:
    """A list of scalars as one exact typed column, or ``None`` if the
    values do not round-trip (mixed types, NaN/inf, out-of-range ints)."""
    if _np is None or not values:
        return None
    dtype = _column_dtype(values)
    if dtype is None:
        return None
    col = _np.array(values, dtype=dtype)
    if dtype is _np.float64 and not _np.isfinite(col).all():
        return None
    return col


def ensure_block(data: Any) -> EdgeBlock | None:
    """*data* as an :class:`EdgeBlock` (lists are ingested), else ``None``."""
    if isinstance(data, EdgeBlock):
        return data
    if isinstance(data, list):
        return ingest_rows(data)
    return None


def concat_blocks(blocks: Sequence[EdgeBlock]) -> EdgeBlock:
    """Concatenate blocks of identical width (numpy mode)."""
    if len(blocks) == 1:
        return blocks[0]
    width = blocks[0].width
    columns = [
        _np.concatenate([b.columns[j] for b in blocks]) for j in range(width)
    ]
    return EdgeBlock(columns)


def lexsort_block(block: EdgeBlock, fields: Sequence[int]) -> EdgeBlock:
    """Rows of *block* stably sorted by *fields* (first field primary).

    Stability makes the result identical to ``sorted(rows, key=itemgetter
    (*fields))`` — the exact permutation of the object path — even when
    key ties exist.
    """
    if len(block) <= 1:
        return block
    order = stable_order(block, fields)
    return EdgeBlock([col[order] for col in block.columns], len(block))


def bucket_bounds(
    block: EdgeBlock, fields: Sequence[int], splitters: Sequence[tuple]
) -> list[int]:
    """Bucket boundaries of an already-sorted *block* against *splitters*.

    Returns ``bounds`` with ``len(splitters)`` entries; bucket ``b`` owns
    rows ``[bounds[b-1], bounds[b])`` (bucket 0 starts at row 0, the last
    bucket ends at ``len(block)``).  ``bounds[b]`` is the bisect-*left*
    position of splitter ``b`` among the row keys: a row whose key equals
    a splitter lands in the bucket *after* it, matching the object path's
    ``bisect_right(splitters, key(item))`` assignment exactly.

    The row keys are materialized once as Python tuples (C-level
    ``tolist``/``zip``) so every bisect comparison is a C tuple compare —
    per-comparison numpy scalar extraction is an order of magnitude
    slower at realistic splitter counts.
    """
    from bisect import bisect_left

    keys = list(zip(*(block.columns[f].tolist() for f in fields)))
    return [bisect_left(keys, splitter) for splitter in splitters]


#: Packed sort keys must fit an int64 exactly.
_PACK_LIMIT = 2**63


def spans_fit_packing(spans: Sequence[int]) -> bool:
    """Whether per-field value spans multiply into an int64 composite."""
    product = 1
    for span in spans:
        product *= span
        if product >= _PACK_LIMIT:
            return False
    return True


def pack_columns(
    cols: Sequence[Any], extra_keys: Sequence[tuple] = ()
) -> tuple[Any, Any] | None:
    """Pack integer key columns into one int64 composite, order-preserving.

    Returns ``(packed_rows, packed_extras)`` — int64 arrays whose numeric
    order equals the lexicographic order of the key tuples — or ``None``
    when a column is not int/bool or the value spans do not fit 63 bits.
    *extra_keys* (e.g. sort splitters) are packed with the same offsets,
    so cross comparisons between rows and extras stay exact; their values
    widen the per-field spans as needed.

    Sorting one packed column (a single stable ``argsort``) is ~2-3x
    faster than a multi-key ``lexsort`` and bucket assignment against
    packed splitters becomes a single vectorized ``searchsorted``.
    """
    if _np is None or any(col.dtype.kind not in "ib" for col in cols):
        return None
    mins, spans = [], []
    for j, col in enumerate(cols):
        lo = int(col.min()) if len(col) else 0
        hi = int(col.max()) if len(col) else 0
        for extra in extra_keys:
            value = int(extra[j])
            lo = min(lo, value)
            hi = max(hi, value)
        mins.append(lo)
        spans.append(hi - lo + 1)
    if not spans_fit_packing(spans):
        return None
    packed = _np.zeros(len(cols[0]) if cols else 0, dtype=_np.int64)
    packed_extras = _np.zeros(len(extra_keys), dtype=_np.int64)
    for j, col in enumerate(cols):
        if col.dtype.kind == "b":
            col = col.astype(_np.int64)
        packed = packed * spans[j] + (col.astype(_np.int64) - mins[j])
        if len(extra_keys):
            extra_col = _np.array(
                [int(extra[j]) for extra in extra_keys], dtype=_np.int64
            )
            packed_extras = packed_extras * spans[j] + (extra_col - mins[j])
    return packed, packed_extras


def stable_order(block: EdgeBlock, fields: Sequence[int]) -> Any:
    """The stable permutation sorting *block* by *fields*.

    Identical to the permutation of ``sorted(rows, key=itemgetter(*fields))``
    — packed single-key ``argsort`` when the key columns pack
    (:func:`pack_columns`), stable ``lexsort`` otherwise.
    """
    cols = [block.columns[f] for f in fields]
    packed = pack_columns(cols)
    if packed is not None:
        return _np.argsort(packed[0], kind="stable")
    return _np.lexsort(cols[::-1])


# ----------------------------------------------------------------------
# Named reducers (group-by-key aggregation kernels)
# ----------------------------------------------------------------------
def _or(a: Any, b: Any) -> Any:
    return a | b


#: Named binary reducers the columnar aggregation kernel understands.
#: The callables are the object-path semantics; ``builtins.min``/``max``
#: passed as a combine function are recognized as their named forms.
REDUCERS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "min": min,
    "max": max,
    "or": _or,
}

_REDUCER_UFUNCS = {"sum": "add", "min": "minimum", "max": "maximum", "or": "bitwise_or"}

#: Keys above this magnitude do not survive the float64 transport used
#: when values are floats (53-bit mantissa, with margin).
_FLOAT_SAFE_KEY = 2**52
#: |value| * count bound that keeps int64 sums exact with margin to spare.
_SUM_SAFE = 2**61


def resolve_reducer(combine: Any) -> str | None:
    """The named form of *combine*, or ``None`` for custom callables."""
    if isinstance(combine, str):
        if combine not in REDUCERS:
            raise ValueError(
                f"unknown reducer {combine!r} (expected one of {sorted(REDUCERS)})"
            )
        return combine
    if combine is min:
        return "min"
    if combine is max:
        return "max"
    return None


def reducer_callable(combine: Any) -> Callable[[Any, Any], Any]:
    """The binary-callable form of *combine* (object path / fallbacks)."""
    if isinstance(combine, str):
        return REDUCERS[combine]
    return combine


def ingest_pairs(pairs: Sequence[Any]) -> tuple[Any, Any] | None:
    """Qualify ``(key, value)`` pairs for the array aggregation kernel.

    Returns ``(keys, values)`` columns or ``None``.  Keys must be ints
    (they ride the shared transport column, so they must survive float64
    when the values are floats); values must be a single exact scalar
    type.  Reducer compatibility (float sums, overflow headroom) is the
    caller's global check — see :func:`pairs_fit_kind`.
    """
    if _np is None:
        return None
    if isinstance(pairs, EdgeBlock):
        if pairs.width != 2:
            return None
        keys, values = pairs.columns
        if keys.dtype.kind != "i":
            return None
        return keys, values
    if not isinstance(pairs, list) or not pairs:
        return None
    if set(map(type, pairs)) != {tuple}:
        return None
    flat = list(chain.from_iterable(pairs))
    if len(flat) != 2 * len(pairs):
        return None
    key_list = flat[0::2]
    if set(map(type, key_list)) != {int}:
        return None
    if min(key_list) < _INT64_MIN or max(key_list) > _INT64_MAX:
        return None
    value_list = flat[1::2]
    value_dtype = _column_dtype(value_list)
    if value_dtype is None:
        return None
    keys = _np.array(key_list, dtype=_np.int64)
    values = _np.array(value_list, dtype=value_dtype)
    if value_dtype is _np.float64 and not _np.isfinite(values).all():
        return None
    return keys, values


def pairs_fit_kind(columns: Sequence[tuple[Any, Any]], kind: str) -> bool:
    """Whether reducer *kind* stays exact over all the ingested columns.

    This is the cross-machine check: int sums accumulate across converge
    levels, so the overflow bound must hold for the *global* multiset of
    values, not per machine.
    """
    value_kinds = {values.dtype.kind for _, values in columns}
    if len(value_kinds) > 1:
        # Mixed value types across machines would merge into one column
        # and lose the original Python types.
        return False
    if "f" in value_kinds:
        if kind in ("sum", "or"):
            # Float sums are order-sensitive; bitwise-or is undefined.
            return False
        for keys, _ in columns:
            if len(keys) and int(_np.abs(keys).max()) > _FLOAT_SAFE_KEY:
                # Keys share the float64 transport column with the values.
                return False
        return True
    if "b" in value_kinds and kind == "sum":
        # bool + bool is int on the object path but bool under numpy.
        return False
    if kind == "sum":
        bound = sum(
            int(_np.abs(values).max()) * len(values)
            for _, values in columns
            if len(values)
        )
        if bound > _SUM_SAFE:
            return False
    return True


def reduce_pairs(keys: Any, values: Any, kind: str) -> tuple[Any, Any]:
    """Group *values* by *keys* and reduce each group with *kind*.

    Results come back in **first-encounter key order** — the insertion
    order of the object path's dict loop — so the two paths emit the same
    pair sequence, which keeps every downstream word count and payload
    identical.  Within a group the reduction is order-free for the named
    reducers (int sums are exact under the ingest guard; min/max/or are
    associative and commutative on exact scalars).
    """
    n = len(keys)
    if n == 0:
        return keys, values
    order = _np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_values = values[order]
    starts_tail = _np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
    starts = _np.concatenate(([0], starts_tail))
    ufunc = getattr(_np, _REDUCER_UFUNCS[kind])
    reduced = ufunc.reduceat(sorted_values, starts)
    unique_keys = sorted_keys[starts]
    # Stable argsort puts each group's earliest original index first, so
    # order[starts] is every key's first-encounter position.
    encounter = _np.argsort(order[starts], kind="stable")
    return unique_keys[encounter], reduced[encounter]
