"""Distributed deduplication: keep the lightest record per key.

After a contraction step, parallel edges appear between contracted
vertices; the paper keeps only the lightest edge between any two nodes
("easily done using a variant of Claim 2").  The output must stay
*distributed*, so instead of funneling through the large machine we sort by
``(key, weight)`` (Claim 1), drop duplicates locally, and fix groups that
straddle machine boundaries with one extra round in which every machine
tells its successor the last key it holds.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from ..mpc.cluster import Cluster
from ..mpc.plan import RoundPlan
from .sort import sample_sort

__all__ = ["dedup_lightest"]


def dedup_lightest(
    cluster: Cluster,
    name: str,
    key: Callable[[Any], Hashable],
    weight: Callable[[Any], Any],
    note: str = "dedup",
) -> None:
    """Keep, for each key, only the record with the smallest weight.

    Weights are unique within a key group (the paper's unique-weight
    convention), so "the lightest" is well defined.
    """
    sample_sort(
        cluster, name, key=lambda item: (key(item), weight(item)), note=f"{note}/sort"
    )

    # Local pass: within a machine, keep the first record of each group.
    for machine in cluster.smalls:
        kept = []
        last_key: Any = _SENTINEL
        for item in machine.get(name, []):
            item_key = key(item)
            if item_key != last_key:
                kept.append(item)
                last_key = item_key
        machine.put(name, kept)

    # Boundary pass: each non-empty machine announces the key of its last
    # (pre-drop) record to the next non-empty machine, which then drops its
    # leading records of that key.  One round.
    nonempty = [m for m in cluster.smalls if m.get(name)]
    plan = RoundPlan(note=f"{note}/boundary")
    for left, right in zip(nonempty, nonempty[1:]):
        plan.send(
            left.machine_id, right.machine_id, ("last-key", key(left.get(name)[-1]))
        )
    inboxes = cluster.execute(plan)
    for mid, received in inboxes.items():
        machine = cluster.machine(mid)
        boundary_keys = {payload[1] for payload in received}
        items = machine.get(name, [])
        index = 0
        while index < len(items) and key(items[index]) in boundary_keys:
            index += 1
        machine.put(name, items[index:])


class _Sentinel:
    __slots__ = ()


_SENTINEL = _Sentinel()
