"""Distributed deduplication: keep the lightest record per key.

After a contraction step, parallel edges appear between contracted
vertices; the paper keeps only the lightest edge between any two nodes
("easily done using a variant of Claim 2").  The output must stay
*distributed*, so instead of funneling through the large machine we sort by
``(key, weight)`` (Claim 1), drop duplicates locally, and fix groups that
straddle machine boundaries with one extra round in which every machine
tells its successor the last key it holds.

*key* and *weight* accept field specs (column indices) as well as
callables.  Field specs ride :func:`~repro.primitives.sort.sample_sort`'s
columnar path, and the local keep-first pass becomes one vectorized
neighbor-difference mask over the key columns instead of a per-item loop.
Both paths produce the same records, rounds and words: the sort is pinned
identical by construction, the mask keeps exactly the records the object
scan keeps, and boundary messages carry the same key tuples (a field-spec
key is always tuple-valued, on both paths, via
:func:`~repro.primitives.columnar.as_callable`).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from ..mpc.cluster import Cluster
from ..mpc.executor import local_step
from ..mpc.plan import RoundPlan
from . import columnar
from .columnar import EdgeBlock
from .sort import sample_sort

try:  # optional accelerator — the object path is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on minimal installs
    _np = None

__all__ = ["dedup_lightest"]


@local_step("dedup/keep-first-columnar")
def _keep_first_columnar_step(payload: tuple) -> "EdgeBlock":
    """One machine's local keep-first pass over its sorted block."""
    columns, length, fields = payload
    return _keep_first_block(EdgeBlock(columns, length), fields)


@local_step("dedup/keep-first-object", ships=False)
def _keep_first_object_step(payload: tuple) -> list[Any]:
    """One machine's local keep-first scan.  ``ships=False``: *key_fn*
    is a user callable."""
    items, key_fn = payload
    kept = []
    last_key: Any = _SENTINEL
    for item in items:
        item_key = key_fn(item)
        if item_key != last_key:
            kept.append(item)
            last_key = item_key
    return kept


def dedup_lightest(
    cluster: Cluster,
    name: str,
    key: Callable[[Any], Hashable] | int | tuple[int, ...],
    weight: Callable[[Any], Any] | int | tuple[int, ...],
    note: str = "dedup",
) -> None:
    """Keep, for each key, only the record with the smallest weight.

    Weights are unique within a key group (the paper's unique-weight
    convention), so "the lightest" is well defined.
    """
    key_spec = columnar.key_fields(key)
    weight_spec = columnar.key_fields(weight)
    if key_spec is not None and weight_spec is not None:
        # One flat field spec — unlocks the columnar sort.  Flat (k..., w...)
        # tuples order exactly like the object path's ((k...), (w...)) pairs
        # and cost the same words (tuples charge the sum of their leaves).
        sort_key: Any = key_spec + weight_spec
    else:
        key_fn0 = columnar.as_callable(key)
        weight_fn0 = columnar.as_callable(weight)
        sort_key = lambda item: (key_fn0(item), weight_fn0(item))  # noqa: E731
    sample_sort(cluster, name, key=sort_key, note=f"{note}/sort")

    key_fn = columnar.as_callable(key)

    # Local pass: within a machine, keep the first record of each group —
    # one local step per machine on the executor seam (columnar blocks
    # ship as a vectorized mask pass; object scans stay inline).
    col_mids: list[int] = []
    col_payloads = []
    obj_mids: list[int] = []
    obj_payloads = []
    for machine in cluster.smalls:
        data = machine.get(name, [])
        if key_spec is not None and isinstance(data, EdgeBlock):
            col_mids.append(machine.machine_id)
            col_payloads.append((data.columns, len(data), key_spec))
        else:
            obj_mids.append(machine.machine_id)
            obj_payloads.append((data, key_fn))
    for mid, kept_block in zip(
        col_mids, cluster.run_local_steps("dedup/keep-first-columnar", col_payloads)
    ):
        cluster.machine(mid).put(name, kept_block)
    for mid, kept in zip(
        obj_mids, cluster.run_local_steps("dedup/keep-first-object", obj_payloads)
    ):
        cluster.machine(mid).put(name, kept)

    # Boundary pass: each non-empty machine announces the key of its last
    # (pre-drop) record to the next non-empty machine, which then drops its
    # leading records of that key.  One round.
    nonempty = [m for m in cluster.smalls if m.get(name)]
    plan = RoundPlan(note=f"{note}/boundary")
    for left, right in zip(nonempty, nonempty[1:]):
        plan.send(
            left.machine_id,
            right.machine_id,
            ("last-key", _last_key(left.get(name), key_spec, key_fn)),
        )
    inboxes = cluster.execute(plan)
    for mid, received in inboxes.items():
        machine = cluster.machine(mid)
        boundary_keys = {payload[1] for payload in received}
        items = machine.get(name, [])
        index = 0
        if key_spec is not None and isinstance(items, EdgeBlock):
            cols = [items.columns[f] for f in key_spec]
            while index < len(items) and (
                tuple(col[index].item() for col in cols) in boundary_keys
            ):
                index += 1
        else:
            while index < len(items) and key_fn(items[index]) in boundary_keys:
                index += 1
        machine.put(name, items[index:])


def _keep_first_block(block: EdgeBlock, fields: tuple[int, ...]) -> EdgeBlock:
    """The first record of each consecutive key group, as one mask pass."""
    if len(block) <= 1:
        return block
    keep = _np.zeros(len(block), dtype=bool)
    keep[0] = True
    for f in fields:
        col = block.columns[f]
        keep[1:] |= col[1:] != col[:-1]
    if keep.all():
        return block
    return EdgeBlock([col[keep] for col in block.columns])


def _last_key(data: Any, key_spec: tuple[int, ...] | None, key_fn: Callable) -> Any:
    """Key of the last stored record without materializing block rows."""
    if key_spec is not None and isinstance(data, EdgeBlock):
        return tuple(data.columns[f][-1].item() for f in key_spec)
    return key_fn(data[-1])


class _Sentinel:
    __slots__ = ()


_SENTINEL = _Sentinel()
