"""Claim 3 — constant-round dissemination.

The large machine holds a value ``x_key`` per key; every small machine that
stores an item with that key must learn the value.  Values flow down
per-key fanout-``n^gamma`` trees over the holder machines, all trees
advancing in the same synchronous rounds, exactly as in the proof of
Claim 3 (after the arrangement of Claim 4, each machine is an inner node of
at most one tree, so the per-level volume is bounded).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from ..mpc.cluster import Cluster
from ..mpc.plan import RoundPlan

__all__ = ["disseminate", "holders_by_key"]


def holders_by_key(
    cluster: Cluster,
    name: str,
    keys_of_item: Callable[[Any], tuple],
) -> dict[Hashable, list[int]]:
    """Which small machines hold items with each key.

    In the real protocol this mapping is established by the arrangement of
    Claim 4 (it already charged its rounds); the simulator reads it off the
    stores.
    """
    holders: dict[Hashable, list[int]] = {}
    for machine in cluster.smalls:
        seen: set[Hashable] = set()
        for item in machine.get(name, []):
            for key in keys_of_item(item):
                seen.add(key)
        for key in seen:
            holders.setdefault(key, []).append(machine.machine_id)
    return holders


def disseminate(
    cluster: Cluster,
    values: dict[Hashable, Any],
    holders: dict[Hashable, list[int]],
    src: int | None = None,
    note: str = "disseminate",
) -> dict[int, dict[Hashable, Any]]:
    """Deliver ``values[key]`` to every machine in ``holders[key]``.

    Returns, per machine id, the mapping of key->value it received.
    """
    if src is None:
        src = (
            cluster.large.machine_id if cluster.has_large else cluster.small_ids[0]
        )
    # Throttle hook, consulted once per call: the heap-indexed tree layout
    # below must use one consistent fanout for all of its rounds, so an
    # enforcing controller narrows the *next* dissemination's trees.
    fanout = cluster.throttled_fanout(cluster.config.tree_fanout, note=note)

    received: dict[int, dict[Hashable, Any]] = {}

    # Per-level sends are batched per (sender, receiver) machine pair: many
    # trees advance in the same round, and e.g. the seed round pushes one
    # message per key from one source.  A batch of k messages and k single
    # sends are the same run-length sum, words and per-machine totals, so
    # the ledger cannot tell them apart (receivers are simulation-side
    # here: the inboxes go unread).  Message order inside a batch follows
    # the key/frontier iteration order, unchanged.

    # Round 0: the source seeds the root (first holder) of each key's tree.
    seed_batches: dict[int, list[tuple[Hashable, Any]]] = {}
    trees: dict[Hashable, list[int]] = {}
    for key, value in values.items():
        machine_list = holders.get(key, [])
        if not machine_list:
            continue
        trees[key] = machine_list
        seed_batches.setdefault(machine_list[0], []).append((key, value))
        received.setdefault(machine_list[0], {})[key] = value
    if seed_batches:
        seed_plan = RoundPlan(note=f"{note}/seed")
        for root, messages in seed_batches.items():
            seed_plan.send_batch(src, root, messages)
        cluster.execute(seed_plan)

    # Subsequent rounds: heap-indexed tree push, all keys in lockstep.
    # Node at position i forwards to children at positions i*fanout+1 ...
    frontier: dict[Hashable, list[int]] = {key: [0] for key in trees}
    while True:
        batches: dict[tuple[int, int], list[tuple[Hashable, Any]]] = {}
        new_frontier: dict[Hashable, list[int]] = {}
        for key, positions in frontier.items():
            machine_list = trees[key]
            value = values[key]
            for position in positions:
                first_child = position * fanout + 1
                for child in range(first_child, min(first_child + fanout, len(machine_list))):
                    pair = (machine_list[position], machine_list[child])
                    batches.setdefault(pair, []).append((key, value))
                    received.setdefault(machine_list[child], {})[key] = value
                    new_frontier.setdefault(key, []).append(child)
        if not batches:
            break
        plan = RoundPlan(note=f"{note}/push")
        for (sender, target), messages in batches.items():
            plan.send_batch(sender, target, messages)
        cluster.execute(plan)
        frontier = new_frontier
    return received
