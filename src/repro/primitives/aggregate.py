"""Claim 2 — constant-round aggregation.

Given key/value items scattered over the small machines and an aggregation
function (Definition 1), compute the aggregate per key.  Each machine first
combines its own items per key; the partial aggregates then flow up a
fanout-``n^gamma`` converge-cast tree, being re-combined at every level so
intermediate volumes stay bounded; the final aggregates land on a
destination machine (the large machine, in all of the paper's uses).

All traffic moves through the batched round engine: every tree level is one
:class:`~repro.mpc.plan.RoundPlan` (built by
:func:`~repro.primitives.broadcast.converge_cast`) with one batch per
machine pair, so the per-level cost is a handful of bulk sizing passes
rather than one recursive sizing call per partial aggregate.

*combine* is either a binary callable (the pre-columnar idiom, always
executed on the object path) or a **named reducer** —
``"sum"`` / ``"min"`` / ``"max"`` / ``"or"`` (builtin ``min``/``max`` are
recognized as their named forms).  Named reducers unlock the columnar
path: when every machine's pairs qualify as int-keyed typed columns
(:func:`~repro.primitives.columnar.ingest_pairs`) and the reducer stays
exact over the global value multiset
(:func:`~repro.primitives.columnar.pairs_fit_kind`), each tree level is
one ``argsort``/``reduceat`` group-by per machine instead of a per-item
dict loop, and partial aggregates travel as one ``(n, 2)`` block per edge
of the tree.  The columnar cast reproduces the object path exactly: same
levels, same scratch charges (a block accounts ``2n`` words, like ``n``
pairs), same first-encounter output order — ledgers and results are
bit-identical by construction.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable

from ..mpc.cluster import Cluster
from ..mpc.executor import local_step
from . import columnar
from .broadcast import converge_cast
from .columnar import EdgeBlock

try:  # optional accelerator — the object path is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on minimal installs
    _np = None

__all__ = ["aggregate", "aggregate_counts", "count_items"]


def _combine_pairs(
    pairs: list[tuple[Hashable, Any]],
    combine: Callable[[Any, Any], Any],
) -> list[tuple[Hashable, Any]]:
    result: dict[Hashable, Any] = {}
    for key, value in pairs:
        result[key] = value if key not in result else combine(result[key], value)
    return list(result.items())


@local_step("aggregate/combine-object", ships=False)
def _combine_object_step(payload: tuple) -> list[tuple[Hashable, Any]]:
    """One machine's local pre-combine, object path.  ``ships=False``:
    *combine* is a user callable."""
    pairs, combine = payload
    return _combine_pairs(pairs, combine)


@local_step("aggregate/reduce-pairs")
def _reduce_pairs_step(payload: tuple) -> tuple[Any, Any]:
    """One machine's group-by-key reduction, columnar path (the per-level
    ``argsort``/``reduceat`` kernel of the converge-cast)."""
    keys, values, kind = payload
    return columnar.reduce_pairs(keys, values, kind)


def aggregate(
    cluster: Cluster,
    pairs_by_machine: dict[int, Iterable[tuple[Hashable, Any]]],
    combine: Callable[[Any, Any], Any] | str,
    dst: int | None = None,
    note: str = "aggregate",
) -> dict[Hashable, Any]:
    """Aggregate ``(key, value)`` items with *combine* (callable or named
    reducer).

    Returns the per-key aggregates, delivered to machine *dst* (default:
    the large machine if present, else small machine 0).
    """
    if dst is None:
        dst = cluster.large.machine_id if cluster.has_large else cluster.small_ids[0]

    # Materialize once: qualification must not consume one-shot iterables
    # the object path would then miss.
    materialized = {
        mid: pairs if isinstance(pairs, (list, EdgeBlock)) else list(pairs)
        for mid, pairs in pairs_by_machine.items()
    }

    kind = columnar.resolve_reducer(combine)
    if kind is not None and columnar.columnar_enabled():
        columns = _ingest_all(materialized)
        # An all-empty cast has nothing to vectorize; the object path is
        # free and trivially identical.
        if columns and columnar.pairs_fit_kind(list(columns.values()), kind):
            return _aggregate_columnar(cluster, columns, kind, dst, note)

    combine_fn = columnar.reducer_callable(combine)

    def level_combine(buffer: list[Any]) -> list[Any]:
        return _combine_pairs(buffer, combine_fn)

    mids = list(materialized)
    combined = cluster.run_local_steps(
        "aggregate/combine-object",
        [(list(materialized[mid]), combine_fn) for mid in mids],
    )
    locally_combined = dict(zip(mids, combined))
    result_pairs = converge_cast(
        cluster, locally_combined, dst, combine=level_combine, note=note
    )
    return dict(result_pairs)


def aggregate_counts(
    cluster: Cluster,
    keys_by_machine: dict[int, Iterable[Hashable]],
    dst: int | None = None,
    note: str = "count",
) -> dict[Hashable, int]:
    """Count occurrences per key (e.g. vertex degrees, Claim 4 step 2).

    A numpy key column (e.g. an :class:`EdgeBlock` endpoint column) skips
    pair materialization entirely — the ``(key, 1)`` pairs are assembled
    as columns.
    """
    pairs: dict[int, Any] = {}
    for mid, keys in keys_by_machine.items():
        if _np is not None and isinstance(keys, _np.ndarray):
            pairs[mid] = EdgeBlock(
                [
                    keys.astype(_np.int64, copy=False),
                    _np.ones(len(keys), dtype=_np.int64),
                ]
            )
        else:
            pairs[mid] = [(key, 1) for key in keys]
    return aggregate(cluster, pairs, "sum", dst=dst, note=note)


def count_items(
    cluster: Cluster,
    name: str,
    predicate: Callable[[Any], bool] | None = None,
    note: str = "count",
) -> int:
    """Total number of items (matching *predicate*) stored under *name*.

    This is the 'each small machine sends a count, the large machine sums'
    pattern used before every all-edges-to-the-large-machine step.
    """
    pairs = {
        machine.machine_id: [
            (
                "total",
                len(machine.get(name, []))
                if predicate is None
                else sum(1 for item in machine.get(name, []) if predicate(item)),
            )
        ]
        for machine in cluster.smalls
    }
    totals = aggregate(cluster, pairs, "sum", note=note)
    return totals.get("total", 0)


# ----------------------------------------------------------------------
# Columnar converge-cast
# ----------------------------------------------------------------------
def _ingest_all(
    materialized: dict[int, Any]
) -> dict[int, tuple[Any, Any]] | None:
    """Every machine's pairs as ``(keys, values)`` columns, or ``None`` if
    any machine's pairs do not qualify (all machines or none — a mixed
    cast could not keep the per-level accounting identical)."""
    columns: dict[int, tuple[Any, Any]] = {}
    for mid, pairs in materialized.items():
        if not len(pairs):
            continue
        ingested = columnar.ingest_pairs(pairs)
        if ingested is None:
            return None
        columns[mid] = ingested
    return columns


def _aggregate_columnar(
    cluster: Cluster,
    columns_by_machine: dict[int, tuple[Any, Any]],
    kind: str,
    dst: int,
    note: str,
) -> dict[int, Any]:
    """The converge-cast of :func:`aggregate`, on ``(keys, values)`` columns.

    Mirrors :func:`~repro.primitives.broadcast.converge_cast` level for
    level — same sources/representatives schedule, same per-level
    throttle-hook consultation, same scratch dataset and charge points,
    same note strings — with the per-level dict loop
    replaced by :func:`~repro.primitives.columnar.reduce_pairs` and each
    tree edge carrying one ``(n, 2)`` block (``n`` items, ``2n`` words:
    exactly the object path's ``n`` pairs).
    """
    base_fanout = cluster.config.tree_fanout
    scratch = f"{note}#cast-buffer"
    machines = cluster.machines

    value_dtype = next(iter(columns_by_machine.values()))[1].dtype
    transport = _np.float64 if value_dtype.kind == "f" else _np.int64

    # Local pre-combine (uncharged, like the object path's) — one
    # shippable local step per machine on the executor seam.
    mids = list(columns_by_machine)
    reduced = cluster.run_local_steps(
        "aggregate/reduce-pairs",
        [(*columns_by_machine[mid], kind) for mid in mids],
    )
    buffers: dict[int, tuple[Any, Any]] = dict(zip(mids, reduced))

    def charge(mid: int) -> None:
        buffer = buffers.get(mid)
        if buffer is not None and len(buffer[0]):
            machines[mid].put(scratch, EdgeBlock(buffer))
        else:
            machines[mid].pop(scratch, None)

    def as_transport(buffer: tuple[Any, Any]) -> Any:
        keys, values = buffer
        return _np.column_stack(
            [keys.astype(transport, copy=False), values.astype(transport, copy=False)]
        )

    def from_transport(blocks: list[Any]) -> tuple[Any, Any]:
        merged = blocks[0] if len(blocks) == 1 else _np.concatenate(blocks)
        return (
            merged[:, 0].astype(_np.int64, copy=False),
            merged[:, 1].astype(value_dtype, copy=False),
        )

    empty = (
        _np.empty(0, dtype=_np.int64),
        _np.empty(0, dtype=value_dtype),
    )
    try:
        for mid in buffers:
            charge(mid)
        while True:
            sources = sorted(
                mid for mid in buffers if mid != dst and len(buffers[mid][0])
            )
            if not sources:
                break
            fanout = cluster.throttled_fanout(base_fanout, note=note)
            if len(sources) <= fanout:
                representatives = {mid: dst for mid in sources}
            else:
                representatives = {}
                for position, mid in enumerate(sources):
                    group = position // fanout
                    representatives[mid] = (
                        sources[group] if sources[group] != mid else mid
                    )
            plan = cluster.plan(note=f"{note}/level")
            for mid in sources:
                target = representatives[mid]
                if target == mid:
                    continue
                plan.send_batch(mid, target, as_transport(buffers[mid]))
                buffers[mid] = empty
                charge(mid)
            inboxes = cluster.execute(plan)
            merged: dict[int, tuple[Any, Any]] = {}
            for target, received in inboxes.items():
                keys, values = from_transport(received)
                held = buffers.get(target)
                if held is not None and len(held[0]):
                    keys = _np.concatenate([held[0], keys])
                    values = _np.concatenate([held[1], values])
                merged[target] = (keys, values)
            # Per-level re-combine: every representative's reduction is
            # one shippable local step (the destination holds its buffer
            # unreduced, exactly like the object path).
            reps = [target for target in merged if target != dst]
            reduced = cluster.run_local_steps(
                "aggregate/reduce-pairs",
                [(*merged[target], kind) for target in reps],
            )
            merged.update(zip(reps, reduced))
            for target in inboxes:
                buffers[target] = merged[target]
                charge(target)
        held = buffers.get(dst, empty)
        [(keys, values)] = cluster.run_local_steps(
            "aggregate/reduce-pairs", [(*held, kind)]
        )
        # Record the destination's post-combine peak (it may never see
        # another round), then hand the result back to the caller.
        buffers[dst] = (keys, values)
        charge(dst)
        cluster.checkpoint_memory(f"{note}/result")
    finally:
        # Strict-mode aborts mid-tree must not leave scratch charged.
        for mid in buffers:
            machine = machines.get(mid)
            if machine is not None:
                machine.pop(scratch, None)
    return dict(zip(keys.tolist(), values.tolist()))
