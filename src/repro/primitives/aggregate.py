"""Claim 2 — constant-round aggregation.

Given key/value items scattered over the small machines and an aggregation
function (Definition 1), compute the aggregate per key.  Each machine first
combines its own items per key; the partial aggregates then flow up a
fanout-``n^gamma`` converge-cast tree, being re-combined at every level so
intermediate volumes stay bounded; the final aggregates land on a
destination machine (the large machine, in all of the paper's uses).

All traffic moves through the batched round engine: every tree level is one
:class:`~repro.mpc.plan.RoundPlan` (built by
:func:`~repro.primitives.broadcast.converge_cast`) with one batch per
machine pair, so the per-level cost is a handful of bulk sizing passes
rather than one recursive sizing call per partial aggregate.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable

from ..mpc.cluster import Cluster
from .broadcast import converge_cast

__all__ = ["aggregate", "aggregate_counts", "count_items"]


def _combine_pairs(
    pairs: list[tuple[Hashable, Any]],
    combine: Callable[[Any, Any], Any],
) -> list[tuple[Hashable, Any]]:
    result: dict[Hashable, Any] = {}
    for key, value in pairs:
        result[key] = value if key not in result else combine(result[key], value)
    return list(result.items())


def aggregate(
    cluster: Cluster,
    pairs_by_machine: dict[int, Iterable[tuple[Hashable, Any]]],
    combine: Callable[[Any, Any], Any],
    dst: int | None = None,
    note: str = "aggregate",
) -> dict[Hashable, Any]:
    """Aggregate ``(key, value)`` items with the binary *combine* function.

    Returns the per-key aggregates, delivered to machine *dst* (default:
    the large machine if present, else small machine 0).
    """
    if dst is None:
        dst = cluster.large.machine_id if cluster.has_large else cluster.small_ids[0]

    def level_combine(buffer: list[Any]) -> list[Any]:
        return _combine_pairs(buffer, combine)

    locally_combined = {
        mid: _combine_pairs(list(pairs), combine)
        for mid, pairs in pairs_by_machine.items()
    }
    result_pairs = converge_cast(
        cluster, locally_combined, dst, combine=level_combine, note=note
    )
    return dict(result_pairs)


def aggregate_counts(
    cluster: Cluster,
    keys_by_machine: dict[int, Iterable[Hashable]],
    dst: int | None = None,
    note: str = "count",
) -> dict[Hashable, int]:
    """Count occurrences per key (e.g. vertex degrees, Claim 4 step 2)."""
    pairs = {
        mid: [(key, 1) for key in keys] for mid, keys in keys_by_machine.items()
    }
    return aggregate(cluster, pairs, lambda a, b: a + b, dst=dst, note=note)


def count_items(
    cluster: Cluster,
    name: str,
    predicate: Callable[[Any], bool] | None = None,
    note: str = "count",
) -> int:
    """Total number of items (matching *predicate*) stored under *name*.

    This is the 'each small machine sends a count, the large machine sums'
    pattern used before every all-edges-to-the-large-machine step.
    """
    pairs = {
        machine.machine_id: [
            ("total", sum(1 for item in machine.get(name, []) if predicate is None or predicate(item)))
        ]
        for machine in cluster.smalls
    }
    totals = aggregate(cluster, pairs, lambda a, b: a + b, note=note)
    return totals.get("total", 0)
