"""Tree broadcast and converge-cast over the small machines.

The proofs of Claims 2 and 3 route information along trees with branching
factor ``n^gamma``, giving depth ``O((1-gamma)/gamma) = O(1)`` for constant
``gamma``.  These two functions are the reusable building blocks: broadcast
pushes one value from a source to many machines; converge-cast pulls items
from many machines to one destination, combining partial results at every
level so no intermediate machine receives more than it can store.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..mpc.cluster import Cluster
from ..mpc.plan import RoundPlan

__all__ = ["broadcast", "converge_cast"]


def broadcast(
    cluster: Cluster,
    src: int,
    value: Any,
    dst_ids: Sequence[int],
    note: str = "broadcast",
) -> int:
    """Send *value* from machine *src* to every machine in *dst_ids* along a
    fanout-``n^gamma`` tree.  Returns the number of rounds used.

    The fanout is a throttle hook: consulted per level, so an enforcing
    controller forecasting an over-headroom round narrows the tree (more
    levels, each sender pushing fewer copies per round)."""
    base_fanout = cluster.config.tree_fanout
    holders = [src]
    pending = [d for d in dst_ids if d != src]
    rounds = 0
    while pending:
        fanout = cluster.throttled_fanout(base_fanout, note=note)
        plan = RoundPlan(note=f"{note}/push")
        new_holders = []
        index = 0
        for holder in holders:
            for _ in range(fanout):
                if index >= len(pending):
                    break
                target = pending[index]
                index += 1
                plan.send(holder, target, value)
                new_holders.append(target)
        pending = pending[index:]
        cluster.execute(plan)
        holders.extend(new_holders)
        rounds += 1
    return rounds


def converge_cast(
    cluster: Cluster,
    items_by_machine: dict[int, list[Any]],
    dst: int,
    combine: Callable[[list[Any]], list[Any]] | None = None,
    note: str = "converge",
) -> list[Any]:
    """Funnel items from many machines into *dst* along a fanout tree.

    *combine* (if given) is applied to each intermediate machine's buffer
    after every level — this is how aggregation keeps intermediate volumes
    bounded (Claim 2).  Returns the list of items that reach *dst*.

    Memory honesty: every in-flight buffer is charged to the machine
    holding it (a scratch dataset per cast), so the per-round memory check
    sees the tree's intermediate state, and strict mode fails a cast whose
    buffers outgrow a machine — exactly the condition Claim 2's per-level
    combining is there to prevent.  The scratch is freed as buffers drain;
    the combined result is the caller's to charge wherever it stores it.

    The fan-in is a throttle hook (consulted per level, like
    :func:`broadcast`'s fanout): narrowing the tree shrinks both the
    per-round receive volume and the in-flight buffer growth at every
    intermediate machine.
    """
    base_fanout = cluster.config.tree_fanout
    scratch = f"{note}#cast-buffer"
    machines = cluster.machines

    def charge(mid: int) -> None:
        buffer = buffers.get(mid)
        if buffer:
            machines[mid].put(scratch, buffer)
        else:
            machines[mid].pop(scratch, None)

    buffers: dict[int, list[Any]] = {
        mid: list(items) for mid, items in items_by_machine.items() if items
    }
    try:
        for mid in buffers:
            charge(mid)
        while True:
            sources = sorted(mid for mid in buffers if mid != dst and buffers[mid])
            if not sources:
                break
            fanout = cluster.throttled_fanout(base_fanout, note=note)
            if len(sources) <= fanout:
                representatives = {mid: dst for mid in sources}
            else:
                representatives = {}
                for position, mid in enumerate(sources):
                    group = position // fanout
                    representatives[mid] = sources[group] if sources[group] != mid else mid
            plan = RoundPlan(note=f"{note}/level")
            for mid in sources:
                target = representatives[mid]
                if target == mid:
                    continue
                plan.send_batch(mid, target, buffers[mid])
                buffers[mid] = []
                charge(mid)
            inboxes = cluster.execute(plan)
            for target, received in inboxes.items():
                buffers.setdefault(target, []).extend(received)
                if combine is not None and target != dst:
                    buffers[target] = combine(buffers[target])
                charge(target)
        result = buffers.get(dst, [])
        if combine is not None:
            result = combine(result)
        # Record the destination's post-combine peak (it may never see
        # another round), then hand the buffer back to the caller.
        buffers[dst] = result
        charge(dst)
        cluster.checkpoint_memory(f"{note}/result")
    finally:
        # Strict-mode aborts mid-tree must not leave scratch charged.
        for mid in buffers:
            machine = machines.get(mid)
            if machine is not None:
                machine.pop(scratch, None)
    return result
