"""EdgeStore — a distributed multiset of records on the small machines.

This is the ergonomic layer the algorithms are written against.  Local
(zero-round) transformations mutate data in place; everything that moves
data charges rounds through the cluster.  Derived datasets get fresh names
so several stores can coexist (e.g. the contracted graph and the original
edges during Borůvka).
"""

from __future__ import annotations

import itertools
import random
from typing import Any, Callable, Hashable, Iterable, Sequence

from ..mpc.cluster import Cluster
from ..mpc.executor import local_step
from .aggregate import aggregate, count_items
from .columnar import EdgeBlock
from .join import annotate_edges_with_vertex_values
from .sort import SortLayout, sample_sort

__all__ = ["EdgeStore"]


@local_step("edgestore/scan", ships=False)
def _scan_step(payload: tuple) -> list[Any]:
    """One machine's record scan (``gather_to_large``).  ``ships=False``:
    *predicate* is a user callable."""
    items, predicate = payload
    return [
        item for item in items if predicate is None or predicate(item)
    ]


@local_step("edgestore/pairs", ships=False)
def _pairs_step(payload: tuple) -> list[Any]:
    """One machine's pair extraction (``aggregate``).  ``ships=False``:
    *pair_fn* is a user callable."""
    items, pair_fn = payload
    return [pair for pair in map(pair_fn, items) if pair is not None]

_counter = itertools.count()


def _fresh(prefix: str) -> str:
    return f"{prefix}#{next(_counter)}"


class EdgeStore:
    """Handle to a named dataset spread over the small machines."""

    def __init__(self, cluster: Cluster, name: str) -> None:
        self.cluster = cluster
        self.name = name

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        cluster: Cluster,
        items: Sequence[Any],
        name: str | None = None,
        shuffle: bool = True,
    ) -> "EdgeStore":
        """Place *items* on the small machines as the initial input
        distribution (zero rounds, per the model)."""
        name = name if name is not None else _fresh("store")
        cluster.distribute_edges(items, name=name, shuffle=shuffle)
        return cls(cluster, name)

    # ------------------------------------------------------------------
    # Local (zero-round) operations
    # ------------------------------------------------------------------
    def items(self) -> list[Any]:
        """All records, in machine order (simulation-side view)."""
        return self.cluster.all_items(self.name)

    def __len__(self) -> int:
        return sum(len(m.get(self.name, [])) for m in self.cluster.smalls)

    def map_local(self, fn: Callable[[Any], Any]) -> "EdgeStore":
        self.cluster.map_small(self.name, lambda m, items: [fn(i) for i in items])
        return self

    def filter_local(self, predicate: Callable[[Any], bool]) -> "EdgeStore":
        self.cluster.map_small(
            self.name, lambda m, items: [i for i in items if predicate(i)]
        )
        return self

    def flat_map_local(self, fn: Callable[[Any], Iterable[Any]]) -> "EdgeStore":
        self.cluster.map_small(
            self.name,
            lambda m, items: [out for item in items for out in fn(item)],
        )
        return self

    def sample(
        self, p: float, rng: random.Random, name: str | None = None
    ) -> "EdgeStore":
        """Independently keep each record with probability *p* into a new
        store (local coin flips, zero rounds)."""
        target = name if name is not None else _fresh(f"{self.name}.sample")
        for machine in self.cluster.smalls:
            kept = [i for i in machine.get(self.name, []) if rng.random() < p]
            machine.put(target, kept)
        return EdgeStore(self.cluster, target)

    def copy(self, name: str | None = None) -> "EdgeStore":
        target = name if name is not None else _fresh(f"{self.name}.copy")
        for machine in self.cluster.smalls:
            data = machine.get(self.name, [])
            if isinstance(data, EdgeBlock):
                # Keep the columnar layout (columns are never mutated in
                # place, so sharing them across stores is safe).
                machine.put(target, EdgeBlock(data.columns, len(data)))
            else:
                machine.put(target, list(data))
        return EdgeStore(self.cluster, target)

    def drop(self) -> None:
        for machine in self.cluster.smalls:
            machine.pop(self.name, None)

    # ------------------------------------------------------------------
    # Communicating operations (charge rounds)
    # ------------------------------------------------------------------
    def count(
        self, predicate: Callable[[Any], bool] | None = None, note: str = "count"
    ) -> int:
        """Count records via the converge-cast of Claim 2."""
        return count_items(self.cluster, self.name, predicate, note=note)

    def gather_to_large(
        self,
        predicate: Callable[[Any], bool] | None = None,
        note: str = "gather",
    ) -> list[Any]:
        """Every machine ships its (matching) records to the large machine
        in one round (one batch per machine, via the batched engine)."""
        large_id = self.cluster.large.machine_id
        smalls = self.cluster.smalls
        scanned = self.cluster.run_local_steps(
            "edgestore/scan",
            [(machine.get(self.name, []), predicate) for machine in smalls],
        )
        items_by_src = {
            machine.machine_id: items for machine, items in zip(smalls, scanned)
        }
        return self.cluster.gather(large_id, items_by_src, note=note)

    def sort(
        self,
        key: Callable[[Any], Any] | int | tuple[int, ...],
        note: str = "sort",
        assume_unique: bool = False,
    ) -> SortLayout:
        """Sort the records (Claim 1).  A field-spec *key* (column index
        or tuple of indices) rides the columnar routing path; see
        :func:`~repro.primitives.sort.sample_sort`."""
        return sample_sort(
            self.cluster, self.name, key, note=note, assume_unique=assume_unique
        )

    def aggregate(
        self,
        pair_fn: Callable[[Any], tuple[Hashable, Any] | None],
        combine: Callable[[Any, Any], Any] | str,
        note: str = "aggregate",
    ) -> dict[Hashable, Any]:
        """Per-key aggregation (Claim 2): *pair_fn* maps a record to a
        ``(key, value)`` pair or ``None`` to skip it; results land on the
        large machine.  *combine* accepts a named reducer (``"sum"`` /
        ``"min"`` / ``"max"`` / ``"or"``), which unlocks the columnar
        converge-cast; see :func:`~repro.primitives.aggregate.aggregate`."""
        smalls = self.cluster.smalls
        extracted = self.cluster.run_local_steps(
            "edgestore/pairs",
            [(machine.get(self.name, []), pair_fn) for machine in smalls],
        )
        pairs_by_machine = {
            machine.machine_id: pairs for machine, pairs in zip(smalls, extracted)
        }
        return aggregate(self.cluster, pairs_by_machine, combine, note=note)

    def annotate(
        self,
        values: dict[Hashable, Any],
        default: Any = None,
        name: str | None = None,
        note: str = "annotate",
    ) -> "EdgeStore":
        """Attach endpoint values to every edge record (Claim 3 + sort-join);
        returns a store of ``(edge, value_u, value_v)`` records."""
        target = name if name is not None else _fresh(f"{self.name}.annotated")
        annotate_edges_with_vertex_values(
            self.cluster, self.name, values, target, default=default, note=note
        )
        return EdgeStore(self.cluster, target)
