"""Claim 1 — O(1)-round distributed sorting (sample sort).

Implements the Goodrich-style constant-round sort the paper cites [34]:

1. every machine samples its items and ships the sample to a coordinator;
2. the coordinator picks ``K-1`` splitters at even sample quantiles and
   tree-broadcasts them;
3. every machine routes each item to the bucket machine owning its splitter
   interval (one round), and sorts its bucket locally;
4. bucket counts are reported so later steps know the global layout.

With sample rate ``Theta(K log K / N)`` the buckets are balanced within a
constant factor w.h.p.; any overload is recorded by the ledger.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from functools import cached_property
from typing import Any, Callable

from ..mpc.cluster import Cluster
from .broadcast import broadcast, converge_cast

__all__ = ["SortLayout", "sample_sort"]


@dataclass
class SortLayout:
    """Where the globally sorted sequence lives.

    ``counts[i]`` is the number of items on the i-th small machine (in
    machine order); ``offsets[i]`` is the global rank of that machine's
    first item.  A layout describes one finished sort and is treated as
    immutable: ``total`` and ``offsets`` are computed once and cached
    (callers invoke :meth:`machine_of_rank` in tight loops).
    """

    machine_ids: list[int]
    counts: list[int]

    @cached_property
    def total(self) -> int:
        return sum(self.counts)

    @cached_property
    def offsets(self) -> list[int]:
        result = []
        acc = 0
        for count in self.counts:
            result.append(acc)
            acc += count
        return result

    def machine_of_rank(self, rank: int) -> int:
        """The machine holding the item of global rank *rank*."""
        if not 0 <= rank < self.total:
            raise IndexError(rank)
        index = bisect.bisect_right(self.offsets, rank) - 1
        return self.machine_ids[index]


def sample_sort(
    cluster: Cluster,
    name: str,
    key: Callable[[Any], Any],
    note: str = "sort",
) -> SortLayout:
    """Sort the items stored under dataset *name* across the small machines.

    After the call, machine ``i``'s items are all <= machine ``i+1``'s
    items (by *key*), and each machine's list is locally sorted.
    """
    smalls = cluster.smalls
    machine_ids = [m.machine_id for m in smalls]
    coordinator = cluster.large.machine_id if cluster.has_large else machine_ids[0]
    total = sum(len(m.get(name, [])) for m in smalls)

    if total == 0:
        return SortLayout(machine_ids=machine_ids, counts=[0] * len(smalls))

    # Step 1: sample and converge-cast the sample keys to the coordinator.
    k = len(smalls)
    rate = min(1.0, (4.0 * k * max(1.0, math.log2(k + 2))) / total)
    samples_by_machine: dict[int, list[Any]] = {}
    for machine in smalls:
        local = machine.get(name, [])
        samples = [key(item) for item in local if cluster.rng.random() < rate]
        if samples:
            samples_by_machine[machine.machine_id] = samples
    sample_keys = converge_cast(
        cluster, samples_by_machine, coordinator, note=f"{note}/sample"
    )
    sample_keys.sort()

    # Step 2: the coordinator picks splitters and broadcasts them.
    splitters: list[Any] = []
    if sample_keys:
        for bucket in range(1, k):
            index = min(len(sample_keys) - 1, (bucket * len(sample_keys)) // k)
            splitters.append(sample_keys[index])
    broadcast(cluster, coordinator, tuple(splitters), machine_ids, note=f"{note}/splitters")

    # Step 3: route every item to its bucket machine — the hottest exchange
    # in the repo: each machine hands the engine its destination column and
    # the engine groups the scatter into one run per (machine, bucket) pair.
    plan = cluster.plan(note=f"{note}/route")
    for machine in smalls:
        items = machine.pop(name, [])
        if items:
            dsts = [
                machine_ids[bisect.bisect_right(splitters, key(item))]
                for item in items
            ]
            plan.send_indexed(machine.machine_id, dsts, items)
    inboxes = cluster.execute(plan)
    counts = []
    for machine in smalls:
        bucket_items = sorted(inboxes.get(machine.machine_id, []), key=key)
        machine.put(name, bucket_items)
        counts.append(len(bucket_items))

    # Step 4: report bucket counts to the coordinator so the layout is known.
    cluster.gather(
        coordinator,
        {mid: [(mid, count)] for mid, count in zip(machine_ids, counts)},
        note=f"{note}/counts",
    )
    return SortLayout(machine_ids=machine_ids, counts=counts)
