"""Claim 1 — O(1)-round distributed sorting (sample sort).

Implements the Goodrich-style constant-round sort the paper cites [34]:

1. every machine samples its items and ships the sample to a coordinator;
2. the coordinator picks ``K-1`` splitters at even sample quantiles and
   tree-broadcasts them;
3. every machine routes each item to the bucket machine owning its splitter
   interval (one round), and sorts its bucket locally;
4. bucket counts are reported so later steps know the global layout.

With sample rate ``Theta(K log K / N)`` the buckets are balanced within a
constant factor w.h.p.; any overload is recorded by the ledger.

Two routing implementations share steps 1/2/4 verbatim:

* the **object path** — per-item ``bisect`` bucketing and a
  ``send_indexed`` scatter, the pre-columnar behavior;
* the **columnar path** (:mod:`repro.primitives.columnar`) — engaged when
  the sort key is a *field spec* (column indices instead of a callable)
  and the rows qualify as a typed record batch: one stable ``lexsort``
  per machine, splitter boundaries by binary search on the sorted
  columns, per-bucket array slices sent as zero-copy blocks, and a final
  stable ``lexsort`` per bucket.  The datasets left behind are
  :class:`~repro.primitives.columnar.EdgeBlock` batches whose rows
  materialize to the exact tuples the object path would have stored.

Both paths consume the shared RNG identically, build the same runs with
the same word totals, and (for field specs covering every column, or
caller-guaranteed unique keys) produce identical outputs — the ledger and
the data cannot tell them apart.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from functools import cached_property
from typing import Any, Callable, Sequence

from ..mpc.cluster import Cluster
from ..mpc.executor import local_step
from . import columnar
from .broadcast import broadcast, converge_cast
from .columnar import EdgeBlock

try:  # optional accelerator — the object path is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on minimal installs
    _np = None

__all__ = ["SortLayout", "sample_sort"]


# ----------------------------------------------------------------------
# Local steps (the executor seam's per-machine units; repro.mpc.executor)
# ----------------------------------------------------------------------
@local_step("sort/bucket-object", ships=False)
def _bucket_object_step(payload: tuple) -> list[int]:
    """One machine's route step, object path: each item's bucket index.
    ``ships=False``: *key* is a user callable."""
    items, splitters, key = payload
    return [bisect.bisect_right(splitters, key(item)) for item in items]


@local_step("sort/rank-object", ships=False)
def _rank_object_step(payload: tuple) -> list[Any]:
    """One machine's rank step, object path: sort the received bucket."""
    items, key = payload
    return sorted(items, key=key)


@local_step("sort/partition-columnar")
def _partition_columnar_step(payload: tuple) -> list[tuple[int, Any]]:
    """One machine's route step, columnar path: pre-grouped per-bucket
    segments ``(bucket, stacked_rows)`` in ascending bucket order with
    stable within-bucket item order — exactly the runs the engine
    backend's grouping would emit for the equivalent scatter, so
    accounting is identical whether this runs inline or in a worker.

    Packed mode assigns buckets with one vectorized ``searchsorted`` and
    keeps arrival order (stable argsort); sorted mode (unpackable keys)
    pre-sorts locally and slices at the splitter boundaries.
    """
    columns, fields, splitters, packed, transport = payload
    if packed:
        packed_rows, packed_splitters = columnar.pack_columns(
            [columns[f] for f in fields], splitters
        )
        buckets = _np.searchsorted(packed_splitters, packed_rows, side="right")
        stacked = _np.column_stack(
            [col.astype(transport, copy=False) for col in columns]
        )
        order = _np.argsort(buckets, kind="stable")
        sorted_buckets = buckets[order]
        sorted_rows = stacked[order]
        edges = _np.flatnonzero(sorted_buckets[1:] != sorted_buckets[:-1]) + 1
        starts = [0, *edges.tolist(), len(sorted_buckets)]
        return [
            (int(sorted_buckets[start]), sorted_rows[start:stop])
            for start, stop in zip(starts[:-1], starts[1:])
        ]
    ordered = columnar.lexsort_block(EdgeBlock(columns), fields)
    stacked = _np.column_stack(
        [col.astype(transport, copy=False) for col in ordered.columns]
    )
    bounds = columnar.bucket_bounds(ordered, fields, splitters)
    starts = [0, *bounds]
    stops = [*bounds, len(ordered)]
    return [
        (bucket, stacked[start:stop])
        for bucket, (start, stop) in enumerate(zip(starts, stops))
        if stop > start
    ]


@local_step("sort/rank-columnar")
def _rank_columnar_step(payload: tuple) -> EdgeBlock:
    """One machine's rank step, columnar path: merge the received blocks
    and stably sort the bucket."""
    received, dtypes, fields = payload
    merged = received[0] if len(received) == 1 else _np.concatenate(received)
    columns = [
        merged[:, j].astype(dtypes[j], copy=False) for j in range(len(dtypes))
    ]
    return columnar.lexsort_block(EdgeBlock(columns, merged.shape[0]), fields)


@dataclass
class SortLayout:
    """Where the globally sorted sequence lives.

    ``counts[i]`` is the number of items on the i-th small machine (in
    machine order); ``offsets[i]`` is the global rank of that machine's
    first item.  A layout describes one finished sort and is treated as
    immutable: ``total`` and ``offsets`` are computed once and cached
    (callers invoke :meth:`machine_of_rank` in tight loops).
    """

    machine_ids: list[int]
    counts: list[int]

    @cached_property
    def total(self) -> int:
        return sum(self.counts)

    @cached_property
    def offsets(self) -> list[int]:
        result = []
        acc = 0
        for count in self.counts:
            result.append(acc)
            acc += count
        return result

    @cached_property
    def _offsets_array(self) -> Any:
        return _np.array(self.offsets, dtype=_np.int64) if _np is not None else None

    def machine_of_rank(self, rank: int) -> int:
        """The machine holding the item of global rank *rank*."""
        if not 0 <= rank < self.total:
            raise IndexError(rank)
        index = bisect.bisect_right(self.offsets, rank) - 1
        return self.machine_ids[index]

    def machine_of_rank_many(self, ranks: Sequence[int]) -> list[int]:
        """Vectorized :meth:`machine_of_rank` for a batch of ranks.

        One ``searchsorted`` over the cached offsets (pure ``bisect``
        fallback without numpy); semantically identical to mapping
        :meth:`machine_of_rank`, including the bounds check.
        """
        if not len(ranks):
            return []
        if min(ranks) < 0 or max(ranks) >= self.total:
            raise IndexError(
                f"rank out of range in {list(ranks)!r} (total {self.total})"
            )
        if self._offsets_array is not None:
            indices = _np.searchsorted(
                self._offsets_array, _np.asarray(ranks, dtype=_np.int64), side="right"
            ) - 1
            machine_ids = self.machine_ids
            return [machine_ids[i] for i in indices.tolist()]
        offsets = self.offsets
        return [
            self.machine_ids[bisect.bisect_right(offsets, rank) - 1]
            for rank in ranks
        ]


def sample_sort(
    cluster: Cluster,
    name: str,
    key: Callable[[Any], Any] | int | tuple[int, ...],
    note: str = "sort",
    assume_unique: bool = False,
) -> SortLayout:
    """Sort the items stored under dataset *name* across the small machines.

    After the call, machine ``i``'s items are all <= machine ``i+1``'s
    items (by *key*), and each machine's list is locally sorted.

    *key* is either a per-item callable (always routed on the object
    path) or a field spec — a column index or tuple of column indices —
    which enables the columnar path when the rows qualify.  A field-spec
    key of a single column keys by a 1-tuple.  The columnar path requires
    the spec to touch every column exactly once (so equal keys mean equal
    rows and stable sorting keeps the two paths identical); pass
    ``assume_unique=True`` to lift that requirement when the caller
    guarantees no two distinct rows share a key.
    """
    smalls = cluster.smalls
    machine_ids = [m.machine_id for m in smalls]
    coordinator = cluster.large.machine_id if cluster.has_large else machine_ids[0]

    plan_ctx = _columnar_sort_context(cluster, name, key, assume_unique)
    if plan_ctx is not None:
        blocks, packed = plan_ctx
        return _sample_sort_columnar(cluster, name, key, note, blocks, packed)

    key = columnar.as_callable(key)
    total = sum(len(m.get(name, [])) for m in smalls)

    if total == 0:
        return SortLayout(machine_ids=machine_ids, counts=[0] * len(smalls))

    # Step 1: sample and converge-cast the sample keys to the coordinator.
    # The rate is a throttle hook: an enforcing controller forecasting an
    # over-headroom round thins the sample (coarser splitters, lighter
    # converge-cast — the adaptive-sparsification trade).
    k = len(smalls)
    rate = min(1.0, (4.0 * k * max(1.0, math.log2(k + 2))) / total)
    rate = cluster.throttled_sample_rate(rate, note=f"{note}/sample")
    samples_by_machine: dict[int, list[Any]] = {}
    for machine in smalls:
        local = machine.get(name, [])
        samples = [key(item) for item in local if cluster.rng.random() < rate]
        if samples:
            samples_by_machine[machine.machine_id] = samples
    sample_keys = converge_cast(
        cluster, samples_by_machine, coordinator, note=f"{note}/sample"
    )
    sample_keys.sort()

    # Step 2: the coordinator picks splitters and broadcasts them.
    splitters = _pick_splitters(sample_keys, k)
    broadcast(cluster, coordinator, tuple(splitters), machine_ids, note=f"{note}/splitters")

    # Step 3: route every item to its bucket machine — the hottest exchange
    # in the repo.  Each machine's bucket assignment is one local step on
    # the executor seam; the engine then groups the scatter into one run
    # per (machine, bucket) pair.
    participants: list[tuple[int, list[Any]]] = []
    payloads = []
    for machine in smalls:
        items = machine.pop(name, [])
        if items:
            participants.append((machine.machine_id, items))
            payloads.append((items, splitters, key))
    bucket_lists = cluster.run_local_steps("sort/bucket-object", payloads)
    plan = cluster.plan(note=f"{note}/route")
    for (mid, items), buckets in zip(participants, bucket_lists):
        plan.send_indexed(mid, [machine_ids[b] for b in buckets], items)
    inboxes = cluster.execute(plan)
    ranked = cluster.run_local_steps(
        "sort/rank-object",
        [(inboxes.get(m.machine_id, []), key) for m in smalls],
    )
    counts = []
    for machine, bucket_items in zip(smalls, ranked):
        machine.put(name, bucket_items)
        counts.append(len(bucket_items))

    # Step 4: report bucket counts to the coordinator so the layout is known.
    cluster.gather(
        coordinator,
        {mid: [(mid, count)] for mid, count in zip(machine_ids, counts)},
        note=f"{note}/counts",
    )
    return SortLayout(machine_ids=machine_ids, counts=counts)


def _pick_splitters(sample_keys: list[Any], k: int) -> list[Any]:
    """``k - 1`` splitters at even quantiles of the sorted sample."""
    splitters: list[Any] = []
    if sample_keys:
        for bucket in range(1, k):
            index = min(len(sample_keys) - 1, (bucket * len(sample_keys)) // k)
            splitters.append(sample_keys[index])
    return splitters


# ----------------------------------------------------------------------
# Columnar routing
# ----------------------------------------------------------------------
def _columnar_sort_context(
    cluster: Cluster,
    name: str,
    key: Any,
    assume_unique: bool,
) -> tuple[dict[int, EdgeBlock], bool] | None:
    """Qualify this sort for the columnar path.

    Returns ``(blocks, packed)`` — the per-machine ingested blocks (empty
    datasets excluded) and whether the packed routing mode applies — or
    ``None`` to stay on the object path.  Qualification requires: the
    columnar path enabled, numpy present, a field-spec key, and every
    non-empty dataset a typed batch of one shared width and per-column
    dtype.  Routing mode:

    * **packed** — the key columns are int/bool and their global value
      spans pack into an int64 composite.  Routing preserves arrival
      order, so *any* field spec matches the object path exactly (ties
      resolve by position on both paths).
    * **sorted** — keys that do not pack (floats, giant spans) route via
      a local pre-sort, which reorders ties; exactness then needs the
      spec to cover every column (equal keys ⇒ equal rows) or the
      caller's ``assume_unique``.

    Nothing is mutated on failure.
    """
    if not columnar.HAS_NUMPY or not columnar.columnar_enabled():
        return None
    fields = columnar.key_fields(key)
    if fields is None or len(set(fields)) != len(fields):
        return None
    machine_ids = [m.machine_id for m in cluster.smalls]
    if machine_ids != sorted(machine_ids):
        # Bucket order must equal destination-id order for the routing
        # runs to line up with the object path's ascending-dst grouping.
        return None
    blocks: dict[int, EdgeBlock] = {}
    width: int | None = None
    dtypes: tuple | None = None
    for machine in cluster.smalls:
        local = machine.get(name, [])
        if not len(local):
            continue
        block = columnar.ensure_block(local)
        if block is None:
            return None
        col_dtypes = tuple(col.dtype for col in block.columns)
        if width is None:
            width, dtypes = block.width, col_dtypes
        elif block.width != width or col_dtypes != dtypes:
            return None
        blocks[machine.machine_id] = block
    if width is None:
        return blocks, True
    if max(fields) >= width or min(fields) < 0:
        return None
    transport = _transport_dtype(dtypes)
    if transport is None:
        return None
    if transport is _np.float64:
        # Int columns must survive the float64 transport exactly.
        for block in blocks.values():
            for col in block.columns:
                if col.dtype.kind == "i" and len(col):
                    if int(_np.abs(col).max()) > 2**52:
                        return None
    packed = _packable_key(blocks, fields, dtypes)
    if not packed and not assume_unique and set(fields) != set(range(width)):
        # Partial-field keys can tie between distinct rows; the sorted
        # routing mode reorders ties, diverging from the object path.
        return None
    return blocks, packed


def _packable_key(
    blocks: dict[int, EdgeBlock], fields: tuple[int, ...], dtypes: tuple
) -> bool:
    """Whether the key columns pack globally (splitters are sampled row
    keys, so per-machine spans widened by splitters stay within the
    global spans checked here)."""
    if any(dtypes[f].kind not in "ib" for f in fields):
        return False
    spans = []
    for f in fields:
        lo = min(int(block.columns[f].min()) for block in blocks.values())
        hi = max(int(block.columns[f].max()) for block in blocks.values())
        spans.append(hi - lo + 1)
    return columnar.spans_fit_packing(spans)


def _transport_dtype(dtypes: tuple) -> Any:
    """The single dtype all columns ride the wire in, or ``None``.

    Uniform int/bool columns travel as ``int64``; any float column makes
    the transport ``float64``, which is exact for the float columns and
    for int columns within the 53-bit mantissa (checked by the caller via
    the ingested values — ids and weights in this repo are far smaller).
    """
    kinds = {dt.kind for dt in dtypes}
    if kinds <= {"i", "b"}:
        return _np.int64
    if "f" in kinds and kinds <= {"i", "b", "f"}:
        return _np.float64
    return None


def _sample_sort_columnar(
    cluster: Cluster,
    name: str,
    key: Any,
    note: str,
    blocks: dict[int, EdgeBlock],
    packed: bool,
) -> SortLayout:
    """Array-native steps 1–4; RNG use, runs and results match the object
    path bit for bit (see the module docstring)."""
    smalls = cluster.smalls
    machine_ids = [m.machine_id for m in smalls]
    coordinator = cluster.large.machine_id if cluster.has_large else machine_ids[0]
    fields = columnar.key_fields(key)
    total = sum(len(block) for block in blocks.values())

    if total == 0:
        return SortLayout(machine_ids=machine_ids, counts=[0] * len(smalls))

    dtypes = tuple(col.dtype for col in next(iter(blocks.values())).columns)
    transport = _transport_dtype(dtypes)

    # Step 1: sample (identical RNG draws: one per stored item, in
    # dataset order) and converge-cast the keys to the coordinator.
    # Same throttle hook as the object path, so the two stay identical.
    k = len(smalls)
    rate = min(1.0, (4.0 * k * max(1.0, math.log2(k + 2))) / total)
    rate = cluster.throttled_sample_rate(rate, note=f"{note}/sample")
    samples_by_machine: dict[int, list[Any]] = {}
    for machine in smalls:
        block = blocks.get(machine.machine_id)
        if block is None:
            continue
        rng_random = cluster.rng.random
        picked = [i for i in range(len(block)) if rng_random() < rate]
        if picked:
            cols = [block.columns[f][picked].tolist() for f in fields]
            samples_by_machine[machine.machine_id] = list(zip(*cols))
    sample_keys = converge_cast(
        cluster, samples_by_machine, coordinator, note=f"{note}/sample"
    )
    sample_keys.sort()

    # Step 2: splitters, exactly as the object path picks them.
    splitters = _pick_splitters(sample_keys, k)
    broadcast(cluster, coordinator, tuple(splitters), machine_ids, note=f"{note}/splitters")

    # Step 3: route.  Each machine's partition is one shippable local
    # step (``sort/partition-columnar``) that pre-groups its rows into
    # per-bucket segments — ascending bucket, stable within a bucket —
    # which is exactly the run set the engine backend's ``send_indexed``
    # grouping would emit, so runs, words and inbox order are identical
    # across executors and engine backends.  Packed mode assigns buckets
    # in arrival order like the object path's per-item ``bisect``; sorted
    # mode (unpackable keys) pre-sorts locally and slices at splitter
    # boundaries.
    participants: list[int] = []
    payloads = []
    for machine in smalls:
        block = blocks.get(machine.machine_id)
        machine.pop(name, None)
        if block is None:
            continue
        participants.append(machine.machine_id)
        payloads.append((block.columns, fields, splitters, packed, transport))
    segment_lists = cluster.run_local_steps("sort/partition-columnar", payloads)
    plan = cluster.plan(note=f"{note}/route")
    for mid, segments in zip(participants, segment_lists):
        for bucket, segment in segments:
            plan.send_batch(mid, machine_ids[bucket], segment)
    inboxes = cluster.execute(plan)
    receivers: list[int] = []
    payloads = []
    for machine in smalls:
        received = inboxes.get(machine.machine_id, [])
        if received:
            receivers.append(machine.machine_id)
            payloads.append((received, dtypes, fields))
    ranked = dict(
        zip(receivers, cluster.run_local_steps("sort/rank-columnar", payloads))
    )
    counts = []
    for machine in smalls:
        bucket_block = ranked.get(machine.machine_id)
        if bucket_block is None:
            machine.put(name, [])
            counts.append(0)
            continue
        machine.put(name, bucket_block)
        counts.append(len(bucket_block))

    # Step 4: report bucket counts to the coordinator.
    cluster.gather(
        coordinator,
        {mid: [(mid, count)] for mid, count in zip(machine_ids, counts)},
        note=f"{note}/counts",
    )
    return SortLayout(machine_ids=machine_ids, counts=counts)
