"""Annotating edges with per-endpoint values (a constant-round sort-join).

Many steps of the paper's algorithms end with: "the large machine
disseminates a value per vertex, and each small machine examines every edge
{u, v} it stores using the values of *both* u and v" (F-light filtering,
cluster-center records, matched-vertex flags, palettes, ...).

With edges laid out as directed copies, dissemination by source key (Claim
3) hands each copy the value of one endpoint only.  The standard MPC remedy
is a sort-join, and that is what we implement:

1. make directed copies, sort by source, disseminate values keyed by source
   so each copy of edge ``{u, v}`` oriented at ``u`` learns ``value[u]``;
2. re-sort the annotated copies by canonical edge id — the two copies of
   each undirected edge become globally adjacent (ranks 2j, 2j+1);
3. one boundary round re-unites pairs that straddle a machine boundary;
4. each machine zips adjacent copies into a single record
   ``(edge, value_u, value_v)``.

Total cost: O(1) rounds.

When the stored edges qualify as typed record batches
(:mod:`repro.primitives.columnar`) the directed copies are built as *flat*
:class:`~repro.primitives.columnar.EdgeBlock` rows ``(src, e0, ..,
e_{w-1})`` instead of nested ``(src, edge)`` tuples, which lets both sorts
ride :func:`~repro.primitives.sort.sample_sort`'s columnar path with field
-spec keys.  Flat and nested rows cost identical words (tuples charge the
sum of their leaves), the sort keys order isomorphically, and the final
records are re-nested — so ledgers and outputs match the object path bit
for bit.  Annotation values that do not fit a typed column (tuples,
``None``) drop the flat rows back to nested tuples mid-flight at the
annotate step, which is ledger-neutral for the same word-parity reason;
the second sort then runs on the object path, exactly as if the columnar
path had never engaged.  (The second flat sort passes ``assume_unique``:
duplicate ``(edge, src)`` copies — the only possible key ties — carry the
same disseminated value, so tied rows are identical and any stable order
of them matches the object path.)
"""

from __future__ import annotations

from typing import Any, Hashable

from ..mpc.cluster import Cluster
from ..mpc.errors import ProtocolError
from ..mpc.executor import local_step
from ..mpc.plan import RoundPlan
from . import columnar
from .columnar import EdgeBlock
from .disseminate import disseminate
from .sort import sample_sort

try:  # optional accelerator — the object path is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on minimal installs
    _np = None

__all__ = ["annotate_edges_with_vertex_values"]


@local_step("join/directed-flat")
def _directed_flat_step(columns: tuple) -> EdgeBlock:
    """One machine's directed-copy build, flat path: interleave both
    orientations (row ``2i`` is ``(u, edge_i...)``, row ``2i+1`` is
    ``(v, edge_i...)``)."""
    src = _np.empty(2 * len(columns[0]), dtype=columns[0].dtype)
    src[0::2] = columns[0]
    src[1::2] = columns[1]
    return EdgeBlock([src, *(_np.repeat(col, 2) for col in columns)])


@local_step("join/directed-object", ships=False)
def _directed_object_step(edges: list) -> list[tuple]:
    """One machine's directed-copy build, nested path.  ``ships=False``:
    edge payloads may be arbitrary objects."""
    records = []
    for edge in edges:
        records.append((edge[0], edge))
        records.append((edge[1], edge))
    return records


def annotate_edges_with_vertex_values(
    cluster: Cluster,
    edges_name: str,
    values: dict[Hashable, Any],
    out_name: str,
    default: Any = None,
    note: str = "annotate",
) -> None:
    """Build dataset *out_name*: one record ``(edge, value_u, value_v)`` per
    undirected edge of *edges_name* (``value_u`` matches ``edge[0]``).

    Vertices absent from *values* get *default*.  The input dataset is left
    untouched.
    """
    work = f"{out_name}__directed"

    # Step 1: directed copies, sorted by source vertex.  Flat columnar
    # copies when every machine's edges qualify (the representation must
    # be uniform across machines: boundary records travel between them).
    directed = _directed_blocks(cluster, edges_name)
    if directed is not None:
        width, blocks = directed
        for machine in cluster.smalls:
            machine.put(work, blocks[machine.machine_id])
        sort1_key: Any = tuple(range(width + 1))
    else:
        width = -1
        built = cluster.run_local_steps(
            "join/directed-object",
            [list(machine.get(edges_name, [])) for machine in cluster.smalls],
        )
        for machine, records in zip(cluster.smalls, built):
            machine.put(work, records)
        sort1_key = lambda r: (r[0], r[1])  # noqa: E731
    sample_sort(cluster, work, key=sort1_key, note=f"{note}/sort-src")

    # Step 2: disseminate values down per-vertex trees (Claim 3).  Both
    # representations feed the holder sets in record order, so the holder
    # (and therefore ``present``) iteration orders are identical.
    holders: dict[Hashable, list[int]] = {}
    for machine in cluster.smalls:
        data = machine.get(work, [])
        if isinstance(data, EdgeBlock):
            vertices = set(data.columns[0].tolist())
        else:
            vertices = {record[0] for record in data}
        for vertex in vertices:
            holders.setdefault(vertex, []).append(machine.machine_id)
    present = {key: values.get(key, default) for key in holders}
    received = disseminate(cluster, present, holders, note=f"{note}/values")

    flat = directed is not None
    if flat:
        flat = _annotate_flat(cluster, work, received, default)
    if not flat:
        for machine in cluster.smalls:
            local_values = received.get(machine.machine_id, {})
            data = machine.get(work, [])
            rows = data.rows() if isinstance(data, EdgeBlock) else data
            if directed is not None:
                # Nested fallback off flat rows (value did not columnize):
                # the exact records the object path would have built.
                machine.put(
                    work,
                    [
                        (row[1:], row[0], local_values.get(row[0], default))
                        for row in rows
                    ],
                )
            else:
                machine.put(
                    work,
                    [
                        (record[1], record[0], local_values.get(record[0], default))
                        for record in rows
                    ],
                )

    # Step 3: re-sort by canonical edge id; the two copies become adjacent.
    if flat:
        sort2_key: Any = tuple(range(width + 1))
        layout = sample_sort(
            cluster, work, key=sort2_key, note=f"{note}/sort-edge", assume_unique=True
        )
    else:
        sort2_key = lambda r: (r[0], r[1])  # noqa: E731
        layout = sample_sort(cluster, work, key=sort2_key, note=f"{note}/sort-edge")
    if layout.total % 2 != 0:
        raise ProtocolError("odd number of directed copies; duplicate edges?")

    # Step 4: pairs live at global ranks (2j, 2j+1); a machine whose range
    # starts at an odd rank sends its first record back to the machine that
    # holds the rank just before it.  One round fixes all boundaries.
    offsets = layout.offsets
    senders = []
    for index, machine in enumerate(cluster.smalls):
        records = machine.get(work, [])
        if len(records) and offsets[index] % 2 == 1:
            senders.append((machine, records, offsets[index] - 1))
    targets = layout.machine_of_rank_many([rank for _, _, rank in senders])
    plan = RoundPlan(note=f"{note}/boundary")
    for (machine, records, _), target in zip(senders, targets):
        if isinstance(records, EdgeBlock):
            first: Any = tuple(col[0].item() for col in records.columns)
        else:
            first = records[0]
        plan.send(machine.machine_id, target, first)
        machine.put(work, records[1:])
    inboxes = cluster.execute(plan)
    for mid, received_records in inboxes.items():
        machine = cluster.machine(mid)
        local = machine.get(work, [])
        if flat and isinstance(local, EdgeBlock):
            merged = EdgeBlock(
                [
                    _np.concatenate(
                        [col, _np.array([row[j] for row in received_records], col.dtype)]
                    )
                    for j, col in enumerate(local.columns)
                ]
            )
            machine.put(work, columnar.lexsort_block(merged, sort2_key))
        elif flat:
            # An empty bucket that received a boundary record: sort the
            # flat rows by the full (edge, src) prefix, like the lexsort.
            local = list(local)
            local.extend(received_records)
            local.sort(key=lambda r: r[: width + 1])
            machine.put(work, local)
        else:
            local.extend(received_records)
            machine.put(work, sorted(local, key=lambda r: (r[0], r[1])))

    # Step 5: zip adjacent copies into one record per undirected edge.
    for machine in cluster.smalls:
        records = machine.pop(work, [])
        rows = records.rows() if isinstance(records, EdgeBlock) else records
        if len(rows) % 2 != 0:
            raise ProtocolError(
                f"machine {machine.machine_id} holds an unpaired edge copy"
            )
        joined = []
        if flat:
            for index in range(0, len(rows), 2):
                first, second = rows[index], rows[index + 1]
                if first[:width] != second[:width]:
                    raise ProtocolError(f"mismatched edge copies {first} / {second}")
                edge = first[:width]
                by_vertex = {first[width]: first[width + 1], second[width]: second[width + 1]}
                joined.append((edge, by_vertex[edge[0]], by_vertex[edge[1]]))
        else:
            for index in range(0, len(rows), 2):
                first, second = rows[index], rows[index + 1]
                if first[0] != second[0]:
                    raise ProtocolError(f"mismatched edge copies {first} / {second}")
                edge = first[0]
                by_vertex = {first[1]: first[2], second[1]: second[2]}
                joined.append((edge, by_vertex[edge[0]], by_vertex[edge[1]]))
        machine.put(out_name, joined)


def _directed_blocks(
    cluster: Cluster, edges_name: str
) -> tuple[int, dict[int, Any]] | None:
    """Directed copies of every machine's edges as flat blocks.

    Returns ``(edge_width, blocks_by_machine)`` (empty machines map to
    ``[]``) or ``None`` when any machine's edges do not qualify — the flat
    representation must be all-or-nothing, because sorted runs and
    boundary records mix rows from different machines.  Flat row ``2i``
    is ``(u, edge_i...)`` and row ``2i + 1`` is ``(v, edge_i...)`` — the
    interleaving the object path builds.  Nothing is mutated.
    """
    if _np is None or not columnar.columnar_enabled():
        return None
    width: int | None = None
    dtypes: tuple | None = None
    blocks: dict[int, Any] = {}
    qualified: list[tuple[int, EdgeBlock]] = []
    for machine in cluster.smalls:
        local = machine.get(edges_name, [])
        if not len(local):
            blocks[machine.machine_id] = []
            continue
        block = columnar.ensure_block(local)
        if block is None or block.width < 2:
            return None
        col_dtypes = tuple(col.dtype for col in block.columns)
        if width is None:
            width, dtypes = block.width, col_dtypes
        elif block.width != width or col_dtypes != dtypes:
            return None
        src_dtype = block.columns[0].dtype
        if src_dtype.kind != "i" or block.columns[1].dtype != src_dtype:
            return None
        qualified.append((machine.machine_id, block))
    if not qualified:
        # All machines empty: the object path costs zero rounds anyway.
        return None
    # Build the interleaved copies — one shippable local step per machine.
    built = cluster.run_local_steps(
        "join/directed-flat", [block.columns for _, block in qualified]
    )
    for (mid, _), directed in zip(qualified, built):
        blocks[mid] = directed
    return width, blocks


def _annotate_flat(
    cluster: Cluster,
    work: str,
    received: dict[int, dict[Hashable, Any]],
    default: Any,
) -> bool:
    """Attach the value column to every machine's flat block.

    All-or-nothing: if any machine's values do not fit one exact typed
    column, nothing is written and the caller re-nests (a mixed fleet
    would leave the second sort with per-machine dtype mismatches).
    Value lookups run in record order, exactly like the object path.
    """
    annotated: dict[int, tuple[Any, Any]] = {}
    for machine in cluster.smalls:
        data = machine.get(work, [])
        if not len(data):
            continue
        if not isinstance(data, EdgeBlock):
            # The source sort itself declined the columnar path and left
            # plain rows; keep one representation and re-nest.
            return False
        local_values = received.get(machine.machine_id, {})
        vals = [local_values.get(v, default) for v in data.columns[0].tolist()]
        col = columnar.value_column(vals)
        if col is None:
            return False
        annotated[machine.machine_id] = (data, col)
    value_dtypes = {col.dtype for _, col in annotated.values()}
    if len(value_dtypes) > 1:
        # Mixed value types across machines (a heterogeneous values dict)
        # would fail the sort qualification anyway; re-nest for exactness.
        return False
    for machine in cluster.smalls:
        entry = annotated.get(machine.machine_id)
        if entry is None:
            machine.put(work, [])
            continue
        data, col = entry
        machine.put(work, EdgeBlock([*data.columns[1:], data.columns[0], col]))
    return True
