"""Annotating edges with per-endpoint values (a constant-round sort-join).

Many steps of the paper's algorithms end with: "the large machine
disseminates a value per vertex, and each small machine examines every edge
{u, v} it stores using the values of *both* u and v" (F-light filtering,
cluster-center records, matched-vertex flags, palettes, ...).

With edges laid out as directed copies, dissemination by source key (Claim
3) hands each copy the value of one endpoint only.  The standard MPC remedy
is a sort-join, and that is what we implement:

1. make directed copies, sort by source, disseminate values keyed by source
   so each copy of edge ``{u, v}`` oriented at ``u`` learns ``value[u]``;
2. re-sort the annotated copies by canonical edge id — the two copies of
   each undirected edge become globally adjacent (ranks 2j, 2j+1);
3. one boundary round re-unites pairs that straddle a machine boundary;
4. each machine zips adjacent copies into a single record
   ``(edge, value_u, value_v)``.

Total cost: O(1) rounds.
"""

from __future__ import annotations

from typing import Any, Hashable

from ..mpc.cluster import Cluster
from ..mpc.errors import ProtocolError
from ..mpc.plan import RoundPlan
from .disseminate import disseminate
from .sort import sample_sort

__all__ = ["annotate_edges_with_vertex_values"]


def annotate_edges_with_vertex_values(
    cluster: Cluster,
    edges_name: str,
    values: dict[Hashable, Any],
    out_name: str,
    default: Any = None,
    note: str = "annotate",
) -> None:
    """Build dataset *out_name*: one record ``(edge, value_u, value_v)`` per
    undirected edge of *edges_name* (``value_u`` matches ``edge[0]``).

    Vertices absent from *values* get *default*.  The input dataset is left
    untouched.
    """
    work = f"{out_name}__directed"

    # Step 1: directed copies, sorted by source vertex.
    for machine in cluster.smalls:
        records = []
        for edge in machine.get(edges_name, []):
            records.append((edge[0], edge))
            records.append((edge[1], edge))
        machine.put(work, records)
    sample_sort(cluster, work, key=lambda r: (r[0], r[1]), note=f"{note}/sort-src")

    # Step 2: disseminate values down per-vertex trees (Claim 3).
    holders: dict[Hashable, list[int]] = {}
    for machine in cluster.smalls:
        for vertex in {record[0] for record in machine.get(work, [])}:
            holders.setdefault(vertex, []).append(machine.machine_id)
    present = {key: values.get(key, default) for key in holders}
    received = disseminate(cluster, present, holders, note=f"{note}/values")

    for machine in cluster.smalls:
        local_values = received.get(machine.machine_id, {})
        machine.put(
            work,
            [
                (record[1], record[0], local_values.get(record[0], default))
                for record in machine.get(work, [])
            ],
        )

    # Step 3: re-sort by canonical edge id; the two copies become adjacent.
    layout = sample_sort(
        cluster, work, key=lambda r: (r[0], r[1]), note=f"{note}/sort-edge"
    )
    if layout.total % 2 != 0:
        raise ProtocolError("odd number of directed copies; duplicate edges?")

    # Step 4: pairs live at global ranks (2j, 2j+1); a machine whose range
    # starts at an odd rank sends its first record back to the machine that
    # holds the rank just before it.  One round fixes all boundaries.
    offsets = layout.offsets
    plan = RoundPlan(note=f"{note}/boundary")
    for index, machine in enumerate(cluster.smalls):
        records = machine.get(work, [])
        if records and offsets[index] % 2 == 1:
            target = layout.machine_of_rank(offsets[index] - 1)
            plan.send(machine.machine_id, target, records[0])
            machine.put(work, records[1:])
    inboxes = cluster.execute(plan)
    for mid, received_records in inboxes.items():
        machine = cluster.machine(mid)
        local = machine.get(work, [])
        local.extend(received_records)
        machine.put(work, sorted(local, key=lambda r: (r[0], r[1])))

    # Step 5: zip adjacent copies into one record per undirected edge.
    for machine in cluster.smalls:
        records = machine.pop(work, [])
        if len(records) % 2 != 0:
            raise ProtocolError(
                f"machine {machine.machine_id} holds an unpaired edge copy"
            )
        joined = []
        for index in range(0, len(records), 2):
            first, second = records[index], records[index + 1]
            if first[0] != second[0]:
                raise ProtocolError(f"mismatched edge copies {first} / {second}")
            edge = first[0]
            by_vertex = {first[1]: first[2], second[1]: second[2]}
            joined.append((edge, by_vertex[edge[0]], by_vertex[edge[1]]))
        machine.put(out_name, joined)
