"""Claim 4 — arranging the edges of a directed graph on the machines.

After ``arrange_directed``:

1. each vertex's outgoing edges sit on consecutive small machines, sorted;
2. the large machine knows, for every vertex, its out-degree, the first
   machine holding its edges (``M_first``), and the full machine range —
   this is exactly the information the MST algorithm's query step and the
   dissemination trees of Claim 3 need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..mpc.cluster import Cluster
from .aggregate import aggregate_counts
from .sort import SortLayout, sample_sort

__all__ = ["Arrangement", "arrange_directed", "directed_copies"]


def directed_copies(edge: tuple) -> list[tuple]:
    """Both orientations of an undirected edge, carrying the original edge:
    ``(src, dst, edge)``."""
    u, v = edge[0], edge[1]
    return [(u, v, edge), (v, u, edge)]


@dataclass
class Arrangement:
    """The outcome of Claim 4 (see module docstring)."""

    name: str
    layout: SortLayout
    out_degrees: dict[int, int]
    holders: dict[int, list[int]]

    def first_machine(self, vertex: int) -> int | None:
        machines = self.holders.get(vertex)
        return machines[0] if machines else None


def arrange_directed(
    cluster: Cluster,
    edges_name: str,
    directed_name: str,
    secondary_key: Callable[[tuple], Any] | None = None,
    note: str = "arrange",
) -> Arrangement:
    """Arrange directed copies of the edges stored under *edges_name*.

    Directed records are ``(src, dst, edge)`` tuples sorted by
    ``(src, secondary_key(edge), dst)``; *secondary_key* defaults to the
    edge itself (the MST algorithm passes the weight, so each vertex's
    out-edges are weight-sorted as Section 3 requires).
    """
    key2 = secondary_key if secondary_key is not None else (lambda edge: edge)

    for machine in cluster.smalls:
        records = []
        for edge in machine.get(edges_name, []):
            records.extend(directed_copies(edge))
        machine.put(directed_name, records)

    layout = sample_sort(
        cluster,
        directed_name,
        key=lambda record: (record[0], key2(record[2]), record[1]),
        note=f"{note}/sort",
    )

    out_degrees = aggregate_counts(
        cluster,
        {
            machine.machine_id: [record[0] for record in machine.get(directed_name, [])]
            for machine in cluster.smalls
        },
        note=f"{note}/degrees",
    )

    holders: dict[int, list[int]] = {}
    for machine in cluster.smalls:
        seen: set[int] = set()
        for record in machine.get(directed_name, []):
            seen.add(record[0])
        for vertex in sorted(seen):
            holders.setdefault(vertex, []).append(machine.machine_id)

    # Claim 4, property 2: the large machine informs each M_first(v).  (One
    # scatter round; in the sublinear configuration machine 0 plays large.)
    src = cluster.large.machine_id if cluster.has_large else cluster.small_ids[0]
    notifications: dict[int, list[Any]] = {}
    for vertex, machines in holders.items():
        notifications.setdefault(machines[0], []).append(
            (vertex, out_degrees.get(vertex, 0))
        )
    cluster.scatter(src, notifications, note=f"{note}/notify-first")

    return Arrangement(
        name=directed_name,
        layout=layout,
        out_degrees=out_degrees,
        holders=holders,
    )
