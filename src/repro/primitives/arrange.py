"""Claim 4 — arranging the edges of a directed graph on the machines.

After ``arrange_directed``:

1. each vertex's outgoing edges sit on consecutive small machines, sorted;
2. the large machine knows, for every vertex, its out-degree, the first
   machine holding its edges (``M_first``), and the full machine range —
   this is exactly the information the MST algorithm's query step and the
   dissemination trees of Claim 3 need.

The directed records handed back to callers are always the nested
``(src, dst, edge)`` tuples of the original design.  Internally, when the
stored edges qualify as typed record batches
(:mod:`repro.primitives.columnar`) and *secondary_key* is a field spec,
the copies are built flat — ``(src, dst, e0, ..., e_{w-1})`` columns — so
the dominant sort rides the columnar path and the degree count feeds
:func:`~repro.primitives.aggregate.aggregate_counts` a key *column*; the
rows are re-nested before returning.  Flat and nested rows cost the same
words and their sort keys order isomorphically, so ledgers and results
match the object path bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..mpc.cluster import Cluster
from ..mpc.executor import local_step
from . import columnar
from .aggregate import aggregate_counts
from .columnar import EdgeBlock
from .sort import SortLayout, sample_sort

try:  # optional accelerator — the object path is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on minimal installs
    _np = None

__all__ = ["Arrangement", "arrange_directed", "directed_copies"]


def directed_copies(edge: tuple) -> list[tuple]:
    """Both orientations of an undirected edge, carrying the original edge:
    ``(src, dst, edge)``."""
    u, v = edge[0], edge[1]
    return [(u, v, edge), (v, u, edge)]


@local_step("arrange/directed-flat")
def _flat_directed_step(columns: tuple) -> EdgeBlock:
    """One machine's flat directed-copy build: both orientations
    interleaved, the original edge columns repeated alongside."""
    end_dtype = columns[0].dtype
    src = _np.empty(2 * len(columns[0]), dtype=end_dtype)
    dst = _np.empty(2 * len(columns[0]), dtype=end_dtype)
    src[0::2] = columns[0]
    src[1::2] = columns[1]
    dst[0::2] = columns[1]
    dst[1::2] = columns[0]
    return EdgeBlock([src, dst, *(_np.repeat(col, 2) for col in columns)])


@local_step("arrange/directed-object", ships=False)
def _directed_object_step(edges: list) -> list[tuple]:
    """One machine's nested directed-copy build.  ``ships=False``: edge
    payloads may be arbitrary objects."""
    records: list[tuple] = []
    for edge in edges:
        records.extend(directed_copies(edge))
    return records


@dataclass
class Arrangement:
    """The outcome of Claim 4 (see module docstring)."""

    name: str
    layout: SortLayout
    out_degrees: dict[int, int]
    holders: dict[int, list[int]]

    def first_machine(self, vertex: int) -> int | None:
        machines = self.holders.get(vertex)
        return machines[0] if machines else None


def arrange_directed(
    cluster: Cluster,
    edges_name: str,
    directed_name: str,
    secondary_key: Callable[[tuple], Any] | int | tuple[int, ...] | None = None,
    note: str = "arrange",
) -> Arrangement:
    """Arrange directed copies of the edges stored under *edges_name*.

    Directed records are ``(src, dst, edge)`` tuples sorted by
    ``(src, secondary_key(edge), dst)``; *secondary_key* defaults to the
    edge itself (the MST algorithm passes the weight, so each vertex's
    out-edges are weight-sorted as Section 3 requires).

    *secondary_key* may be a field spec (an edge column index or tuple of
    indices) instead of a callable, which unlocks the columnar sort.  A
    field spec asserts that ``(src, key, dst)`` determines the record —
    true under the paper's unique-weight convention — mirroring
    ``sample_sort``'s ``assume_unique`` contract.
    """
    edge_spec = (
        columnar.key_fields(secondary_key) if secondary_key is not None else None
    )
    flat = None
    if secondary_key is None or edge_spec is not None:
        flat = _flat_directed(cluster, edges_name, edge_spec)

    if flat is not None:
        sort_spec, blocks = flat
        for machine in cluster.smalls:
            machine.put(directed_name, blocks[machine.machine_id])
        layout = sample_sort(
            cluster,
            directed_name,
            key=sort_spec,
            note=f"{note}/sort",
            assume_unique=edge_spec is not None,
        )
    else:
        if secondary_key is None:
            key2: Callable[[tuple], Any] = lambda edge: edge  # noqa: E731
        else:
            key2 = columnar.as_callable(secondary_key)
        built = cluster.run_local_steps(
            "arrange/directed-object",
            [list(machine.get(edges_name, [])) for machine in cluster.smalls],
        )
        for machine, records in zip(cluster.smalls, built):
            machine.put(directed_name, records)
        layout = sample_sort(
            cluster,
            directed_name,
            key=lambda record: (record[0], key2(record[2]), record[1]),
            note=f"{note}/sort",
        )

    out_degrees = aggregate_counts(
        cluster,
        {
            machine.machine_id: _source_keys(machine.get(directed_name, []))
            for machine in cluster.smalls
        },
        note=f"{note}/degrees",
    )

    holders: dict[int, list[int]] = {}
    for machine in cluster.smalls:
        data = machine.get(directed_name, [])
        if isinstance(data, EdgeBlock):
            seen = set(data.columns[0].tolist())
        else:
            seen = {record[0] for record in data}
        for vertex in sorted(seen):
            holders.setdefault(vertex, []).append(machine.machine_id)

    # Hand the nested records back before any caller looks at the dataset.
    # Flat and nested rows are the same words, so this is ledger-neutral.
    if flat is not None:
        for machine in cluster.smalls:
            data = machine.get(directed_name, [])
            rows = data.rows() if isinstance(data, EdgeBlock) else data
            machine.put(
                directed_name, [(row[0], row[1], row[2:]) for row in rows]
            )

    # Claim 4, property 2: the large machine informs each M_first(v).  (One
    # scatter round; in the sublinear configuration machine 0 plays large.)
    src = cluster.large.machine_id if cluster.has_large else cluster.small_ids[0]
    notifications: dict[int, list[Any]] = {}
    for vertex, machines in holders.items():
        notifications.setdefault(machines[0], []).append(
            (vertex, out_degrees.get(vertex, 0))
        )
    cluster.scatter(src, notifications, note=f"{note}/notify-first")

    return Arrangement(
        name=directed_name,
        layout=layout,
        out_degrees=out_degrees,
        holders=holders,
    )


def _source_keys(data: Any) -> Any:
    """The source-vertex key of every directed record — as the raw column
    when the records are a flat block (``aggregate_counts``'s array fast
    path), else a list."""
    if isinstance(data, EdgeBlock):
        return data.columns[0]
    return [record[0] for record in data]


def _flat_directed(
    cluster: Cluster, edges_name: str, edge_spec: tuple[int, ...] | None
) -> tuple[tuple[int, ...], dict[int, Any]] | None:
    """Flat directed copies of every machine's edges, or ``None`` if any
    machine's edges do not qualify (all machines or none — sorted runs
    mix rows across machines, so the representation must be uniform).

    Returns ``(sort_spec, blocks_by_machine)``; the spec maps the
    ``(src, secondary, dst)`` key onto the flat ``(src, dst, edge...)``
    layout.  Nothing is mutated.
    """
    if _np is None or not columnar.columnar_enabled():
        return None
    width: int | None = None
    dtypes: tuple | None = None
    blocks: dict[int, Any] = {}
    qualified: list[tuple[int, EdgeBlock]] = []
    for machine in cluster.smalls:
        local = machine.get(edges_name, [])
        if not len(local):
            blocks[machine.machine_id] = []
            continue
        block = columnar.ensure_block(local)
        if block is None or block.width < 2:
            return None
        col_dtypes = tuple(col.dtype for col in block.columns)
        if width is None:
            width, dtypes = block.width, col_dtypes
        elif block.width != width or col_dtypes != dtypes:
            return None
        end_dtype = block.columns[0].dtype
        if end_dtype.kind != "i" or block.columns[1].dtype != end_dtype:
            return None
        qualified.append((machine.machine_id, block))
    if not qualified:
        return None
    built = cluster.run_local_steps(
        "arrange/directed-flat", [block.columns for _, block in qualified]
    )
    for (mid, _), directed in zip(qualified, built):
        blocks[mid] = directed
    key_fields = edge_spec if edge_spec is not None else tuple(range(width))
    if key_fields and (max(key_fields) >= width or min(key_fields) < 0):
        return None
    sort_spec = (0, *(2 + f for f in key_fields), 1)
    return sort_spec, blocks
