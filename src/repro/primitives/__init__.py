"""Distributed primitives: the paper's Claims 1-4 plus supporting plumbing."""

from .aggregate import aggregate, aggregate_counts, count_items
from .arrange import Arrangement, arrange_directed, directed_copies
from .broadcast import broadcast, converge_cast
from .disseminate import disseminate, holders_by_key
from .edgestore import EdgeStore
from .join import annotate_edges_with_vertex_values
from .sort import SortLayout, sample_sort

__all__ = [
    "aggregate",
    "aggregate_counts",
    "count_items",
    "Arrangement",
    "arrange_directed",
    "directed_copies",
    "broadcast",
    "converge_cast",
    "disseminate",
    "holders_by_key",
    "EdgeStore",
    "annotate_edges_with_vertex_values",
    "SortLayout",
    "sample_sort",
]
