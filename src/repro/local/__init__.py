"""Sequential algorithms: the large machine's local toolbox plus the
ground-truth oracles used by validators and tests."""

from . import baswana_sen, coloring, matching, mincut, mis, mst

__all__ = ["baswana_sen", "coloring", "matching", "mincut", "mis", "mst"]
