"""The classic Baswana–Sen spanner (Algorithm 1 of the paper).

This is the sequential (2k-1)-spanner construction that (a) the large
machine runs directly on clustering graphs that fit in its memory, and
(b) serves as the reference point for Figure 1 and Lemma 4.3 — the modified
variant in ``repro.core.spanner`` over-approximates *this* algorithm's
output by a factor ``1/p``.

The paper states the algorithm for unweighted graphs (Section 4 reduces the
weighted case to the unweighted one), and so do we.  The implementation
follows the pseudocode of Algorithm 1 literally, including the convention
that level-``k`` is empty so every still-clustered vertex is "removed" at
the last step.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..graph.graph import Graph

__all__ = ["BaswanaSenRun", "baswana_sen"]


@dataclass
class BaswanaSenRun:
    """Full trace of a Baswana–Sen execution.

    Attributes:
        spanner: the (2k-1)-spanner edge set (canonical pairs).
        centers: ``centers[i][v]`` is the center of v's level-i cluster, or
            ``None``; index 0 is the trivial clustering ``c_0(v) = v``.
        reclustered_edges: edges added when a vertex was re-clustered
            (line 12 of Algorithm 1).
        removal_edges: edges added when a vertex was removed (line 15).
    """

    spanner: set[tuple[int, int]]
    centers: list[list[int | None]]
    reclustered_edges: set[tuple[int, int]] = field(default_factory=set)
    removal_edges: set[tuple[int, int]] = field(default_factory=set)

    @property
    def size(self) -> int:
        return len(self.spanner)


def baswana_sen(graph: Graph, k: int, rng: random.Random) -> BaswanaSenRun:
    """Compute a (2k-1)-spanner of expected size ``O(k n^{1+1/k})``.

    Args:
        graph: an unweighted graph (weights, if present, are ignored — the
            paper's spanner section treats the unweighted case).
        k: stretch parameter, ``1 <= k <= log2 n`` is the useful range.
        rng: source of randomness for the center sampling.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    n = graph.n
    adjacency = graph.adjacency()
    sample_probability = n ** (-1.0 / k)

    spanner: set[tuple[int, int]] = set()
    reclustered: set[tuple[int, int]] = set()
    removal: set[tuple[int, int]] = set()

    centers: list[list[int | None]] = [list(range(n))]
    current_centers: set[int] = set(range(n))

    for i in range(1, k + 1):
        prev = centers[-1]
        if i == k:
            new_centers: set[int] = set()
        else:
            new_centers = {
                c for c in current_centers if rng.random() < sample_probability
            }
        level: list[int | None] = [None] * n
        for v in range(n):
            center = prev[v]
            if center is None:
                continue
            if center in new_centers:
                level[v] = center
                continue
            # v became unclustered; try to re-cluster via a sampled neighbor.
            candidate_edge = None
            for u, _ in adjacency[v]:
                u_center = prev[u]
                if u_center is not None and u_center in new_centers:
                    candidate_edge = (min(u, v), max(u, v))
                    level[v] = u_center
                    break
            if candidate_edge is not None:
                spanner.add(candidate_edge)
                reclustered.add(candidate_edge)
            else:
                # v is removed: one edge to each adjacent level-(i-1) cluster.
                chosen: dict[int, tuple[int, int]] = {}
                for u, _ in adjacency[v]:
                    u_center = prev[u]
                    if u_center is None:
                        continue
                    edge = (min(u, v), max(u, v))
                    if u_center not in chosen or edge < chosen[u_center]:
                        chosen[u_center] = edge
                for edge in chosen.values():
                    spanner.add(edge)
                    removal.add(edge)
        centers.append(level)
        current_centers = new_centers

    return BaswanaSenRun(
        spanner=spanner,
        centers=centers,
        reclustered_edges=reclustered,
        removal_edges=removal,
    )
