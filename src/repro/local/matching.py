"""Sequential matching routines used by the large machine."""

from __future__ import annotations

import random
from typing import Iterable, Sequence

__all__ = ["greedy_maximal_matching", "random_greedy_matching", "extend_matching"]


def greedy_maximal_matching(
    edges: Iterable[tuple], matched: set[int] | None = None
) -> list[tuple[int, int]]:
    """Greedy maximal matching over an edge list, skipping endpoints already
    in *matched* (which is updated in place when provided)."""
    used = matched if matched is not None else set()
    result: list[tuple[int, int]] = []
    for edge in edges:
        u, v = edge[0], edge[1]
        if u not in used and v not in used:
            used.update((u, v))
            result.append((min(u, v), max(u, v)))
    return result


def random_greedy_matching(
    edges: Sequence[tuple], rng: random.Random
) -> list[tuple[int, int]]:
    """Greedy matching over a uniformly random edge order."""
    order = list(edges)
    rng.shuffle(order)
    return greedy_maximal_matching(order)


def extend_matching(
    matching: Iterable[tuple[int, int]], extra_edges: Iterable[tuple]
) -> list[tuple[int, int]]:
    """Extend *matching* greedily with *extra_edges*; returns the union."""
    result = [(min(u, v), max(u, v)) for u, v in matching]
    used = {x for e in result for x in e}
    result.extend(greedy_maximal_matching(extra_edges, matched=used))
    return result
