"""Sequential minimum-cut algorithms: Stoer–Wagner and Karger contraction.

Stoer–Wagner is the exact oracle (it handles weighted multigraphs, which is
what the contraction pipelines of Appendix C produce); Karger's randomized
contraction is provided both as a cross-check and because the 2-out
contraction analysis of Ghaffari–Nowicki–Thorup builds on it.
"""

from __future__ import annotations

import random
from typing import Iterable

from ..graph.union_find import UnionFind

__all__ = ["stoer_wagner", "min_cut_value", "karger_contract", "min_degree_cut"]


def _weight_matrix(
    vertices: set[int], edges: Iterable[tuple]
) -> dict[int, dict[int, float]]:
    weights: dict[int, dict[int, float]] = {v: {} for v in vertices}
    for edge in edges:
        u, v = edge[0], edge[1]
        w = edge[2] if len(edge) == 3 else 1
        if u == v:
            continue
        weights[u][v] = weights[u].get(v, 0) + w
        weights[v][u] = weights[v].get(u, 0) + w
    return weights


def stoer_wagner(
    vertices: Iterable[int], edges: Iterable[tuple]
) -> tuple[float, set[int]]:
    """Exact global minimum cut of a connected weighted multigraph.

    Returns ``(value, side)`` where *side* is one shore of an optimal cut.
    Parallel edges are merged by summing weights; unweighted edges count 1.
    """
    vertex_set = set(vertices)
    if len(vertex_set) < 2:
        raise ValueError("min cut needs at least two vertices")
    weights = _weight_matrix(vertex_set, edges)
    merged: dict[int, set[int]] = {v: {v} for v in vertex_set}
    active = set(vertex_set)
    best_value = float("inf")
    best_side: set[int] = set()

    while len(active) > 1:
        # Maximum-adjacency (minimum-cut-phase) ordering.
        start = next(iter(active))
        in_a = {start}
        order = [start]
        connectivity = dict(weights[start])
        while len(in_a) < len(active):
            candidates = [v for v in active if v not in in_a]
            most = max(candidates, key=lambda v: connectivity.get(v, 0))
            in_a.add(most)
            order.append(most)
            for v, w in weights[most].items():
                if v not in in_a:
                    connectivity[v] = connectivity.get(v, 0) + w
        t = order[-1]
        s = order[-2]
        cut_of_phase = sum(weights[t].values())
        if cut_of_phase < best_value:
            best_value = cut_of_phase
            best_side = set(merged[t])
        # Merge t into s.
        for v, w in list(weights[t].items()):
            if v == s:
                continue
            weights[s][v] = weights[s].get(v, 0) + w
            weights[v][s] = weights[v].get(s, 0) + w
        for v in list(weights[t]):
            weights[v].pop(t, None)
        weights.pop(t)
        weights[s].pop(t, None)
        merged[s] |= merged[t]
        active.discard(t)

    return best_value, best_side


def min_cut_value(n: int, edges: Iterable[tuple]) -> float:
    """Exact min-cut value of a graph on vertices ``0..n-1``; ``0`` if the
    graph is disconnected."""
    edges = list(edges)
    uf = UnionFind(range(n))
    for edge in edges:
        uf.union(edge[0], edge[1])
    if uf.num_components > 1:
        return 0.0
    value, _ = stoer_wagner(range(n), edges)
    return value


def karger_contract(
    vertices: Iterable[int],
    edges: list[tuple],
    rng: random.Random,
    target: int = 2,
) -> tuple[UnionFind, list[tuple]]:
    """Contract random edges until *target* supernodes remain.

    Returns the contraction map and the surviving (inter-supernode)
    multigraph edges, each tagged with its original edge.
    """
    uf = UnionFind(vertices)
    order = list(edges)
    rng.shuffle(order)
    for edge in order:
        if uf.num_components <= target:
            break
        uf.union(edge[0], edge[1])
    survivors = [e for e in edges if uf.find(e[0]) != uf.find(e[1])]
    return uf, survivors


def min_degree_cut(n: int, edges: Iterable[tuple]) -> tuple[float, int]:
    """The best *singleton* cut: (weighted degree, vertex)."""
    degree = [0.0] * n
    for edge in edges:
        w = edge[2] if len(edge) == 3 else 1
        degree[edge[0]] += w
        degree[edge[1]] += w
    vertex = min(range(n), key=lambda v: degree[v])
    return degree[vertex], vertex
