"""Sequential coloring routines: greedy (Delta+1) and list coloring."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["greedy_coloring", "list_coloring"]


def greedy_coloring(n: int, edges: Iterable[tuple]) -> list[int]:
    """Greedy coloring in vertex-id order; uses at most Delta+1 colors."""
    adjacency: list[list[int]] = [[] for _ in range(n)]
    for edge in edges:
        adjacency[edge[0]].append(edge[1])
        adjacency[edge[1]].append(edge[0])
    colors = [-1] * n
    for v in range(n):
        taken = {colors[u] for u in adjacency[v] if colors[u] >= 0}
        color = 0
        while color in taken:
            color += 1
        colors[v] = color
    return colors


def list_coloring(
    vertices: Sequence[int],
    edges: Iterable[tuple],
    palettes: Mapping[int, Sequence[int]],
) -> dict[int, int] | None:
    """Proper coloring where each vertex must use a color from its palette.

    Greedy over vertices in decreasing conflict-degree order, which succeeds
    with high probability for the random ``Theta(log n)`` palettes of
    Assadi–Chen–Khanna (the caller retries with fresh palettes on failure).
    Returns ``None`` if the greedy pass gets stuck.
    """
    adjacency: dict[int, list[int]] = {v: [] for v in vertices}
    for edge in edges:
        if edge[0] in adjacency and edge[1] in adjacency:
            adjacency[edge[0]].append(edge[1])
            adjacency[edge[1]].append(edge[0])
    order = sorted(vertices, key=lambda v: -len(adjacency[v]))
    assignment: dict[int, int] = {}
    for v in order:
        taken = {assignment[u] for u in adjacency[v] if u in assignment}
        choice = next((c for c in palettes[v] if c not in taken), None)
        if choice is None:
            return None
        assignment[v] = choice
    return assignment
