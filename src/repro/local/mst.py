"""Sequential MST machinery: Kruskal, spanning forests, F-light edges.

The large machine performs unbounded local computation between rounds; in
practice our heterogeneous algorithms have it run Kruskal on ``O~(n)``-edge
graphs.  The brute-force F-light test is the ground truth against which the
flow-labeling scheme (``repro.labeling``) is validated.

Weight comparisons use the key ``(w, u, v)`` so the code also behaves
deterministically if a caller feeds non-unique weights, even though the
library's generators always produce unique ones.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Iterable, Sequence

from ..graph.graph import Graph
from ..graph.union_find import UnionFind

__all__ = [
    "kruskal",
    "kruskal_edges",
    "minimum_spanning_forest",
    "spanning_forest",
    "forest_components",
    "heaviest_weight_on_path",
    "is_f_light",
    "f_light_edges",
]


def _weight_key(edge: tuple) -> tuple:
    return (edge[2], edge[0], edge[1])


def kruskal_edges(
    n: int, edges: Iterable[tuple[int, int, int]]
) -> list[tuple[int, int, int]]:
    """Minimum spanning forest of the (multi)graph given as an edge list."""
    forest: list[tuple[int, int, int]] = []
    uf = UnionFind()
    for edge in sorted(edges, key=_weight_key):
        if uf.union(edge[0], edge[1]):
            forest.append(edge)
    # Make sure isolated vertices exist in the UF for component queries.
    for v in range(n):
        uf.add(v)
    return forest


def kruskal(graph: Graph) -> list[tuple[int, int, int]]:
    """Minimum spanning forest of a weighted :class:`Graph`."""
    if not graph.weighted:
        raise ValueError("kruskal needs a weighted graph")
    return kruskal_edges(graph.n, graph.edges)


def minimum_spanning_forest(graph: Graph) -> Graph:
    return Graph(graph.n, kruskal(graph), weighted=True)


def spanning_forest(n: int, edges: Iterable[tuple]) -> list[tuple[int, int]]:
    """An arbitrary spanning forest (ignores weights)."""
    forest: list[tuple[int, int]] = []
    uf = UnionFind()
    for edge in edges:
        if uf.union(edge[0], edge[1]):
            forest.append((edge[0], edge[1]))
    return forest


def forest_components(n: int, forest_edges: Iterable[tuple]) -> UnionFind:
    uf = UnionFind(range(n))
    for edge in forest_edges:
        uf.union(edge[0], edge[1])
    return uf


def heaviest_weight_on_path(
    n: int, forest_edges: Sequence[tuple[int, int, int]], u: int, v: int
) -> float:
    """Max edge weight on the forest path between *u* and *v*.

    Returns ``-inf`` if ``u == v`` and ``+inf`` if they lie in different
    trees (any edge joining different trees is F-light by definition).
    """
    if u == v:
        return -math.inf
    adjacency: dict[int, list[tuple[int, int]]] = {}
    for a, b, w in forest_edges:
        adjacency.setdefault(a, []).append((b, w))
        adjacency.setdefault(b, []).append((a, w))
    best: dict[int, float] = {u: -math.inf}
    queue = deque([u])
    while queue:
        x = queue.popleft()
        if x == v:
            return best[x]
        for y, w in adjacency.get(x, ()):
            if y not in best:
                best[y] = max(best[x], w)
                queue.append(y)
    return math.inf


def is_f_light(
    n: int,
    forest_edges: Sequence[tuple[int, int, int]],
    edge: tuple[int, int, int],
) -> bool:
    """Ground-truth F-light test (Section 3): an edge is F-*heavy* iff
    adding it to F closes a cycle on which it is the heaviest edge."""
    u, v, w = edge
    return w <= heaviest_weight_on_path(n, forest_edges, u, v)


def f_light_edges(
    n: int,
    forest_edges: Sequence[tuple[int, int, int]],
    edges: Iterable[tuple[int, int, int]],
) -> list[tuple[int, int, int]]:
    """All F-light edges among *edges* (brute force; for validation)."""
    return [e for e in edges if is_f_light(n, forest_edges, e)]
