"""Sequential maximal independent set routines."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["greedy_mis", "greedy_mis_edges"]


def greedy_mis(n: int, edges: Iterable[tuple], order: Sequence[int]) -> set[int]:
    """Greedy MIS over vertex *order* (the rank order of GGKMR)."""
    adjacency: dict[int, set[int]] = {v: set() for v in range(n)}
    for edge in edges:
        adjacency[edge[0]].add(edge[1])
        adjacency[edge[1]].add(edge[0])
    chosen: set[int] = set()
    blocked: set[int] = set()
    for v in order:
        if v in blocked:
            continue
        chosen.add(v)
        blocked.add(v)
        blocked.update(adjacency[v])
    return chosen


def greedy_mis_edges(
    vertices: Iterable[int],
    edges: Iterable[tuple],
    order: Sequence[int],
    already_blocked: set[int] | None = None,
) -> set[int]:
    """Greedy MIS on an arbitrary vertex subset given by id, respecting a
    set of vertices that are *already* dominated (by earlier iterations)."""
    vertex_set = set(vertices)
    adjacency: dict[int, set[int]] = {v: set() for v in vertex_set}
    for edge in edges:
        if edge[0] in vertex_set and edge[1] in vertex_set:
            adjacency[edge[0]].add(edge[1])
            adjacency[edge[1]].add(edge[0])
    blocked = set(already_blocked or ())
    chosen: set[int] = set()
    for v in order:
        if v not in vertex_set or v in blocked:
            continue
        chosen.add(v)
        blocked.add(v)
        blocked.update(adjacency[v])
    return chosen
