"""Client for the serve daemon: spawn a stdio daemon or dial TCP.

``ServeClient.spawn()`` launches ``python -m repro serve`` as a child
process and talks JSONL over its pipes; ``ServeClient.connect()`` dials
a running ``--listen`` daemon.  Either way, :meth:`call` raises
:class:`ServeRemoteError` on an error response and returns the
``result`` payload otherwise, and the convenience wrappers mirror the
ops one-to-one.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
from typing import IO, Sequence

__all__ = ["ServeClient", "ServeRemoteError"]


class ServeRemoteError(RuntimeError):
    """The daemon answered ``ok: false``."""


class ServeClient:
    def __init__(self, reader: IO[str], writer: IO[str], *,
                 proc: subprocess.Popen | None = None,
                 sock: socket.socket | None = None) -> None:
        self._reader = reader
        self._writer = writer
        self._proc = proc
        self._sock = sock
        self._next_id = 0

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def spawn(cls, args: Sequence[str] = (), *,
              python: str = sys.executable,
              env: dict | None = None) -> "ServeClient":
        """Start ``python -m repro serve <args>`` and attach to its pipes."""
        proc = subprocess.Popen(
            [python, "-m", "repro", "serve", *args],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            env={**os.environ, **(env or {})},
        )
        return cls(proc.stdout, proc.stdin, proc=proc)

    @classmethod
    def connect(cls, host: str, port: int) -> "ServeClient":
        sock = socket.create_connection((host, port))
        stream = sock.makefile("rw", encoding="utf-8")
        return cls(stream, stream, sock=sock)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def request(self, op: str, **fields) -> dict:
        """Send one op and block for its response (full envelope)."""
        self._next_id += 1
        payload = {"op": op, "id": self._next_id, **fields}
        self._writer.write(json.dumps(payload) + "\n")
        self._writer.flush()
        line = self._reader.readline()
        if not line:
            raise ServeRemoteError(f"daemon closed the stream during {op!r}")
        response = json.loads(line)
        if response.get("id") not in (None, self._next_id):
            raise ServeRemoteError(
                f"response id {response.get('id')!r} does not match "
                f"request id {self._next_id}"
            )
        return response

    def call(self, op: str, **fields):
        response = self.request(op, **fields)
        if not response.get("ok"):
            raise ServeRemoteError(response.get("error", "unknown error"))
        return response.get("result")

    # ------------------------------------------------------------------
    # convenience ops
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        return self.call("ping")

    def init(self, n: int, **fields) -> dict:
        return self.call("init", n=n, **fields)

    def update(self, insert: Sequence = (), delete: Sequence = ()) -> dict:
        return self.call(
            "update", insert=[list(e) for e in insert],
            delete=[list(e) for e in delete],
        )

    def connected(self, u: int, v: int) -> bool:
        return self.call("connected", u=u, v=v)["connected"]

    def components(self, labels: bool = False) -> dict:
        return self.call("components", labels=labels)

    def mst_weight(self) -> dict:
        return self.call("mst_weight")

    def stats(self) -> dict:
        return self.call("stats")

    def shutdown(self) -> dict:
        result = self.call("shutdown")
        self.close()
        return result

    # ------------------------------------------------------------------
    def close(self) -> None:
        for stream in (self._writer, self._reader):
            try:
                stream.close()
            except (OSError, ValueError):
                pass
        if self._sock is not None:
            self._sock.close()
        if self._proc is not None:
            self._proc.wait(timeout=30)

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
