"""The ``repro serve`` daemon: JSONL over stdio or a TCP socket.

Stdio mode (the default) reads one request per line from stdin and
writes one response per line to stdout — trivially scriptable and what
the CI serve-smoke job drives.  ``--listen HOST:PORT`` serves the same
protocol over TCP, one client at a time (the service is single-writer
by design; queries are cheap, so sequential sessions are the honest
model, not a concurrency bottleneck to hide).

Either way the daemon can be pre-initialized from CLI flags (``--n``
...) so clients can skip the ``init`` op, and teardown always releases
the shared executor pools via :func:`repro.mpc.executor.shutdown_pools`
rather than leaving them to the atexit reaper.
"""

from __future__ import annotations

import socket
import sys
from typing import IO

from ..mpc.executor import shutdown_pools
from .protocol import ServeSession
from .service import GraphService, ServeConfig

__all__ = ["build_session", "serve_stdio", "serve_tcp", "run_daemon"]


def build_session(args) -> ServeSession:
    """Build a session, pre-initialized when ``--n`` was given."""
    service = None
    if getattr(args, "n", None) is not None:
        config = ServeConfig(
            n=args.n,
            seed=args.seed,
            copies=args.copies,
            shards=args.shards,
            backend=args.backend,
            max_weight=args.max_weight,
            epsilon=args.epsilon,
        )
        service = GraphService(config)
    return ServeSession(service)


def serve_stdio(session: ServeSession, stdin: IO[str], stdout: IO[str]) -> int:
    for line in stdin:
        if not line.strip():
            continue
        stdout.write(session.handle_line(line) + "\n")
        stdout.flush()
        if session.closed:
            break
    return 0


def serve_tcp(session: ServeSession, host: str, port: int,
              ready: IO[str] | None = None) -> int:
    with socket.create_server((host, port)) as server:
        if ready is not None:
            # Announce the bound port (port 0 => ephemeral) for test drivers.
            ready.write(f"listening {server.getsockname()[1]}\n")
            ready.flush()
        while not session.closed:
            conn, _ = server.accept()
            with conn, conn.makefile("rw", encoding="utf-8") as stream:
                for line in stream:
                    if not line.strip():
                        continue
                    stream.write(session.handle_line(line) + "\n")
                    stream.flush()
                    if session.closed:
                        break
    return 0


def run_daemon(args) -> int:
    session = build_session(args)
    try:
        if args.listen:
            host, _, port = args.listen.rpartition(":")
            return serve_tcp(session, host or "127.0.0.1", int(port),
                             ready=sys.stdout)
        return serve_stdio(session, sys.stdin, sys.stdout)
    finally:
        shutdown_pools()
