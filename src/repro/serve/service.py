"""The incremental dynamic-graph service core.

Every query used to cost a full ``repro bench`` pipeline run: generate
the graph, distribute edges, build every sketch from scratch, aggregate,
run Borůvka.  But the AGM sketches are *linear* — an edge insert or
delete is a signed update of a handful of counters — so a long-lived
service can keep :class:`~repro.sketches.bank.SketchBank` shards warm
and answer connectivity / component / approximate-MST-weight questions
from them on demand:

* **Updates** stream in as signed batches.  Each edge lands in one shard
  bank (sharded by edge id, mirroring the per-machine partial banks of
  Theorem C.1) via :meth:`SketchBank.update_edges` with ``sign=+1`` or
  ``-1``; cost is proportional to the batch, never to the graph.
* **Queries** read a maintained component forest.  The forest is
  refreshed lazily: the first query after an update batch merges the
  shard banks (linearity again: banks add) and runs sketch-space Borůvka
  — ``O(n polylog n)`` work, independent of how many updates streamed in
  since the last refresh.  Subsequent queries are dictionary lookups.
* **Approximate MST weight** (Appendix C.1.1) keeps one extra bank per
  geometric weight threshold ``t`` holding the subgraph with weight
  ``<= t``; the estimate is the same blockwise sum
  ``sum_t (cc(t) - 1)`` as :func:`repro.core.mst_approx`.

Determinism contract (pinned by the differential-replay tests): a
service seeded with ``seed`` answers every query *identically* to a
from-scratch :func:`repro.core.connectivity.sketch_components` run with
``rng=random.Random(seed)`` on the surviving edge multiset, under either
sketch backend.  This holds because the seed package derivation is
shared, bank counters are order-independent sums, and
:func:`bank_boruvka`'s output partition depends only on counter contents
(see its docstring).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.mst_approx import geometric_thresholds
from ..sketches import GraphSketchSpec, SketchBank, bank_boruvka, edge_id
from ..sketches.backend import get_backend

__all__ = ["ServeConfig", "ServiceError", "GraphService", "ComponentView"]


class ServiceError(ValueError):
    """A client-visible service failure (bad edge, bad query, bad op)."""


@dataclass(frozen=True)
class ServeConfig:
    """Static configuration of one service instance.

    ``max_weight`` enables approximate-MST-weight queries: the service
    then maintains one threshold bank per geometric level up to
    ``max_weight`` and every update must carry a weight in
    ``[1, max_weight]``.  Left at ``None``, updates are unweighted pairs
    and only connectivity queries are served.
    """

    n: int
    seed: int = 0
    copies: int = 3
    shards: int = 4
    backend: str | None = None
    max_weight: int | None = None
    epsilon: float = 0.5

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ServiceError("n must be >= 1")
        if self.copies < 1:
            raise ServiceError("copies must be >= 1")
        if self.shards < 1:
            raise ServiceError("shards must be >= 1")
        if self.max_weight is not None and self.max_weight < 1:
            raise ServiceError("max_weight must be >= 1")
        if self.epsilon <= 0:
            raise ServiceError("epsilon must be positive")

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "seed": self.seed,
            "copies": self.copies,
            "shards": self.shards,
            "backend": self.backend,
            "max_weight": self.max_weight,
            "epsilon": self.epsilon,
        }


@dataclass
class ComponentView:
    """One refreshed snapshot of the component structure."""

    labels: list[int]
    num_components: int
    forest: list[tuple[int, int]] = field(repr=False, default_factory=list)


class GraphService:
    """Persistent sketch state + maintained component forest."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.backend = get_backend(config.backend)
        # The seed-package streams are the determinism anchors.
        # Connectivity: the first spec drawn from random.Random(seed) is
        # exactly what sketch_components(rng=random.Random(seed)) builds.
        self.spec = GraphSketchSpec.generate(
            config.n, random.Random(config.seed), copies=config.copies
        )
        self._shards = [
            SketchBank(self.spec, backend=self.backend)
            for _ in range(config.shards)
        ]
        self.thresholds: list[int] = []
        self._mst_specs: list[GraphSketchSpec] = []
        self._mst_banks: list[SketchBank] = []
        if config.max_weight is not None:
            self.thresholds = geometric_thresholds(
                config.max_weight, config.epsilon
            )
            # MST: mirror approximate_mst_weight's rng discipline — it
            # burns one rng.random() seeding its cluster, then draws one
            # spec per threshold in order — so the service's estimate
            # replays a from-scratch run with rng=random.Random(seed).
            mst_rng = random.Random(config.seed)
            mst_rng.random()
            for _ in self.thresholds:
                spec = GraphSketchSpec.generate(
                    config.n, mst_rng, copies=config.copies
                )
                self._mst_specs.append(spec)
                self._mst_banks.append(SketchBank(spec, backend=self.backend))
        #: Surviving edge multiset: (u, v, w) normalized -> multiplicity.
        #: The validation ledger — sketches never read it, but deletes are
        #: checked against it so the forest can't silently go negative.
        self._edges: Counter = Counter()
        self._components: ComponentView | None = None
        self._mst_estimate: float | None = None
        self._mst_counts: list[int] = []
        self.updates_applied = 0
        self.queries_answered = 0
        self.refreshes = 0

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def _normalize(self, edge: Sequence[int]) -> tuple[int, int, int]:
        if len(edge) == 2:
            u, v = edge
            w = 1
        elif len(edge) == 3:
            u, v, w = edge
        else:
            raise ServiceError(f"edge must be [u, v] or [u, v, w], got {edge!r}")
        n = self.config.n
        if not (isinstance(u, int) and isinstance(v, int)):
            raise ServiceError(f"edge endpoints must be integers, got {edge!r}")
        if not (0 <= u < n and 0 <= v < n):
            raise ServiceError(f"edge {edge!r} outside the vertex universe [0, {n})")
        if not isinstance(w, int) or w < 1:
            raise ServiceError(f"edge weight must be a positive integer, got {edge!r}")
        if self.config.max_weight is not None and w > self.config.max_weight:
            raise ServiceError(
                f"edge weight {w} exceeds configured max_weight "
                f"{self.config.max_weight}"
            )
        if u > v:
            u, v = v, u
        return u, v, w

    def update(
        self,
        insert: Iterable[Sequence[int]] = (),
        delete: Iterable[Sequence[int]] = (),
    ) -> dict:
        """Apply one batched signed update (inserts first, then deletes).

        Deletes must name surviving edges (same endpoints and weight);
        a batch that would drive any multiplicity negative is rejected
        *before* any counter moves, so the sketch state never diverges
        from the validation ledger.
        """
        inserts = [self._normalize(e) for e in insert]
        deletes = [self._normalize(e) for e in delete]
        after = self._edges.copy()
        after.update(inserts)
        after.subtract(deletes)
        negative = [e for e, c in after.items() if c < 0]
        if negative:
            raise ServiceError(
                f"cannot delete edges not in the surviving set: "
                f"{sorted(negative)[:5]}"
            )
        self._edges = +after  # drop zero-count entries
        for batch, sign in ((inserts, 1), (deletes, -1)):
            if not batch:
                continue
            self._apply(batch, sign)
            self.updates_applied += len(batch)
        if inserts or deletes:
            self._components = None
            self._mst_estimate = None
        return {
            "inserted": len(inserts),
            "deleted": len(deletes),
            "edges": sum(self._edges.values()),
        }

    def _apply(self, batch: list[tuple[int, int, int]], sign: int) -> None:
        n = self.config.n
        shards = len(self._shards)
        by_shard: dict[int, list[tuple[int, int]]] = {}
        for u, v, _ in batch:
            by_shard.setdefault(edge_id(n, u, v) % shards, []).append((u, v))
        for index, edges in by_shard.items():
            self._shards[index].update_edges(edges, sign=sign)
        for t, bank in zip(self.thresholds, self._mst_banks):
            level = [(u, v) for u, v, w in batch if w <= t]
            if level:
                bank.update_edges(level, sign=sign)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _merged_bank(
        self, partials: Iterable[SketchBank], spec: GraphSketchSpec
    ) -> SketchBank:
        merged = SketchBank(spec, range(self.config.n), backend=self.backend)
        for partial in partials:
            merged.absorb(partial)
        return merged

    def _labels_from(self, bank: SketchBank) -> ComponentView:
        uf, forest = bank_boruvka(bank)
        smallest: dict[int, int] = {}
        for v in range(self.config.n):
            root = uf.find(v)
            if root not in smallest or v < smallest[root]:
                smallest[root] = v
        labels = [smallest[uf.find(v)] for v in range(self.config.n)]
        return ComponentView(
            labels=labels,
            num_components=len(set(labels)),
            forest=forest,
        )

    def refresh(self) -> ComponentView:
        """Rebuild the component forest from the shard banks (lazy: query
        paths call this only when updates arrived since the last one)."""
        view = self._labels_from(self._merged_bank(self._shards, self.spec))
        self._components = view
        self.refreshes += 1
        return view

    def _view(self) -> ComponentView:
        view = self._components
        if view is None:
            view = self.refresh()
        return view

    def connected(self, u: int, v: int) -> bool:
        n = self.config.n
        if not (0 <= u < n and 0 <= v < n):
            raise ServiceError(f"query ({u}, {v}) outside the vertex universe [0, {n})")
        view = self._view()
        self.queries_answered += 1
        return view.labels[u] == view.labels[v]

    def components(self) -> ComponentView:
        view = self._view()
        self.queries_answered += 1
        return view

    def mst_weight(self) -> dict:
        """Blockwise ``(1+eps)`` spanning-forest weight estimate over the
        maintained threshold banks (Appendix C.1.1 formula)."""
        if not self._mst_banks:
            raise ServiceError(
                "MST-weight queries need a service configured with max_weight"
            )
        if self._mst_estimate is None:
            counts = []
            for spec, bank in zip(self._mst_specs, self._mst_banks):
                view = self._labels_from(self._merged_bank([bank], spec))
                counts.append(view.num_components)
            max_weight = self.config.max_weight
            estimate = float(self.config.n - 1)
            for j, t in enumerate(self.thresholds):
                upper = (
                    self.thresholds[j + 1]
                    if j + 1 < len(self.thresholds)
                    else max_weight
                )
                estimate += max(0, upper - t) * (counts[j] - 1)
            self._mst_counts = counts
            self._mst_estimate = estimate
        self.queries_answered += 1
        return {
            "estimate": self._mst_estimate,
            "thresholds": list(self.thresholds),
            "component_counts": list(self._mst_counts),
        }

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def surviving_edges(self) -> list[tuple[int, int, int]]:
        """The surviving edge multiset, expanded, in sorted order (the
        differential-replay input)."""
        out: list[tuple[int, int, int]] = []
        for edge in sorted(self._edges):
            out.extend([edge] * self._edges[edge])
        return out

    def stats(self) -> dict:
        return {
            "n": self.config.n,
            "shards": len(self._shards),
            "backend": self.backend.name,
            "edges": sum(self._edges.values()),
            "distinct_edges": len(self._edges),
            "updates_applied": self.updates_applied,
            "queries_answered": self.queries_answered,
            "refreshes": self.refreshes,
            "forest_fresh": self._components is not None,
            "mst_enabled": bool(self._mst_banks),
            "sketch_words": sum(b.word_size() for b in self._shards),
        }
