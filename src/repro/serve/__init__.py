"""Dynamic-graph query service over linear sketches.

The sketches of Appendix C.1 are *linear*, so edge deletions are signed
updates and a long-lived service can maintain connectivity under a
stream of inserts and deletes without ever re-running the pipeline:

* :mod:`repro.serve.service` — the incremental core: per-shard
  :class:`~repro.sketches.bank.SketchBank` state, a lazily refreshed
  component forest, and connectivity / components / approximate-MST
  weight queries.
* :mod:`repro.serve.protocol` — the deterministic JSONL op protocol.
* :mod:`repro.serve.daemon` — ``python -m repro serve`` over stdio or
  TCP.
* :mod:`repro.serve.client` — spawn-or-dial client.

Determinism: a service seeded with ``seed`` answers exactly as a
from-scratch :func:`~repro.core.connectivity.sketch_components` run on
the surviving edge multiset, under either sketch backend (pinned by the
differential-replay tests in ``tests/serve/``).
"""

from .client import ServeClient, ServeRemoteError
from .protocol import ServeSession, decode, encode
from .service import ComponentView, GraphService, ServeConfig, ServiceError

__all__ = [
    "ComponentView",
    "GraphService",
    "ServeConfig",
    "ServiceError",
    "ServeSession",
    "ServeClient",
    "ServeRemoteError",
    "encode",
    "decode",
]
