"""JSONL request/response protocol for the serve daemon.

One request per line, one response per line.  Requests are JSON objects
with an ``op`` field; an optional ``id`` field is echoed back verbatim
so clients can pipeline.  Responses are canonical JSON (sorted keys, no
whitespace variation, no timestamps) so repeated runs of the same
request stream byte-diff clean — the CI serve-smoke job relies on this.

Ops:

``ping``
    Liveness probe; works before ``init``.
``init``
    Create the service: ``{"op": "init", "n": 64, "seed": 7, ...}``
    (fields mirror :class:`~repro.serve.service.ServeConfig`).  The
    daemon can also be pre-initialized from CLI flags.
``update``
    ``{"op": "update", "insert": [[u, v], [u, v, w], ...],
    "delete": [...]}`` — batched signed edge updates, inserts first.
``connected``
    ``{"op": "connected", "u": 3, "v": 9}``.
``components``
    Component count; pass ``"labels": true`` for the full canonical
    label vector.
``mst_weight``
    Approximate spanning-forest weight (needs ``max_weight``).
``stats`` / ``shutdown``
    Introspection / clean stop.
"""

from __future__ import annotations

import json

from .service import GraphService, ServeConfig, ServiceError

__all__ = ["ServeSession", "encode", "decode"]

_CONFIG_FIELDS = (
    "n", "seed", "copies", "shards", "backend", "max_weight", "epsilon"
)


def encode(response: dict) -> str:
    """Canonical one-line encoding (deterministic across runs)."""
    return json.dumps(response, sort_keys=True, separators=(",", ":"))


def decode(line: str) -> dict:
    request = json.loads(line)
    if not isinstance(request, dict):
        raise ServiceError("request must be a JSON object")
    return request


class ServeSession:
    """One client session: dispatches decoded requests to a service."""

    def __init__(self, service: GraphService | None = None) -> None:
        self.service = service
        self.closed = False

    # ------------------------------------------------------------------
    def handle_line(self, line: str) -> str:
        """Parse one raw request line and return the encoded response."""
        try:
            request = decode(line)
        except (ValueError, ServiceError) as exc:
            return encode({"error": f"bad request: {exc}", "ok": False})
        return encode(self.handle(request))

    def handle(self, request: dict) -> dict:
        op = request.get("op")
        response: dict = {"ok": True, "op": op}
        if "id" in request:
            response["id"] = request["id"]
        try:
            response["result"] = self._dispatch(op, request)
        except ServiceError as exc:
            response["ok"] = False
            response["error"] = str(exc)
            response.pop("result", None)
        return response

    # ------------------------------------------------------------------
    def _require_service(self) -> GraphService:
        if self.service is None:
            raise ServiceError("service not initialized; send an 'init' op first")
        return self.service

    def _dispatch(self, op, request: dict):
        if op == "ping":
            return {"pong": True, "initialized": self.service is not None}
        if op == "init":
            if self.service is not None:
                raise ServiceError("service already initialized")
            kwargs = {
                key: request[key] for key in _CONFIG_FIELDS if key in request
            }
            if "n" not in kwargs:
                raise ServiceError("init needs 'n'")
            try:
                config = ServeConfig(**kwargs)
            except TypeError as exc:
                raise ServiceError(f"bad init parameters: {exc}") from exc
            self.service = GraphService(config)
            return {"config": config.to_dict()}
        if op == "shutdown":
            self.closed = True
            return {"stopped": True}
        service = self._require_service()
        if op == "update":
            return service.update(
                insert=request.get("insert", ()),
                delete=request.get("delete", ()),
            )
        if op == "connected":
            try:
                u, v = request["u"], request["v"]
            except KeyError as exc:
                raise ServiceError(f"connected needs {exc.args[0]!r}") from exc
            return {"connected": service.connected(u, v)}
        if op == "components":
            view = service.components()
            result = {"num_components": view.num_components}
            if request.get("labels"):
                result["labels"] = view.labels
            return result
        if op == "mst_weight":
            return service.mst_weight()
        if op == "stats":
            return service.stats()
        raise ServiceError(f"unknown op {op!r}")
