"""Labeling schemes: the KKKP flow labels used to identify F-light edges."""

from .flow_labels import (
    FlowLabel,
    build_flow_labels,
    decode_heaviest,
    label_entries_bound,
)

__all__ = ["FlowLabel", "build_flow_labels", "decode_heaviest", "label_entries_bound"]
