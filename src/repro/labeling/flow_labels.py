"""The flow labeling scheme of Katz, Katz, Korman and Peleg [42].

Section 3 of the paper uses a labeling scheme for forests: a *marker*
algorithm assigns each vertex a label of ``O(log^2 n)`` bits, and a
*decoder* computes, from the labels of ``u`` and ``v`` alone, the weight of
the heaviest edge on the forest path between them.  A small machine can
then test whether an edge it stores is F-light (``w({u,v}) <=
heaviest-on-path``) without seeing the forest.

We realize the scheme through centroid decomposition, the textbook
construction achieving the KKKP bounds:

* every vertex's label stores, for each ancestor centroid ``c`` of its
  component chain (at most ``ceil(log2 n) + 1`` of them), the pair
  ``(centroid id, max edge weight on the forest path to c)``;
* the ancestor chains of two vertices in the same tree share a non-empty
  prefix, and the *deepest shared centroid* lies on the path between them,
  so the heaviest edge weight is the max of the two stored values there;
* vertices in different trees share no prefix, and the decoder reports
  ``+inf`` — any edge joining two trees of F is F-light by definition.

Labels cost ``2 * (#entries) + 1`` words, i.e. ``O(log n)`` words =
``O(log^2 n)`` bits, exactly the budget the paper allots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["FlowLabel", "build_flow_labels", "decode_heaviest", "label_entries_bound"]


@dataclass(frozen=True)
class FlowLabel:
    """A vertex label: ``entries[d] = (centroid id, max weight to it)``
    ordered from the root of the centroid decomposition downward."""

    entries: tuple[tuple[int, float], ...]

    def word_size(self) -> int:
        return 1 + 2 * len(self.entries)


def label_entries_bound(n: int) -> int:
    """The guaranteed bound on label length: centroid decomposition halves
    component sizes, so chains have at most ``floor(log2 n) + 1`` entries."""
    return int(math.log2(max(n, 1))) + 1


def build_flow_labels(
    vertices: Iterable[int],
    forest_edges: Sequence[tuple[int, int, float]],
) -> dict[int, FlowLabel]:
    """The marker algorithm ``M_flow``: label every vertex of the forest.

    Args:
        vertices: all vertices that need labels (isolated ones included).
        forest_edges: ``(u, v, w)`` edges forming a forest (not validated
            for acyclicity here; the caller passes an MSF).
    """
    vertex_list = list(vertices)
    adjacency: dict[int, list[tuple[int, float]]] = {v: [] for v in vertex_list}
    for u, v, w in forest_edges:
        adjacency[u].append((v, w))
        adjacency[v].append((u, w))

    chains: dict[int, list[tuple[int, float]]] = {v: [] for v in vertex_list}
    removed: set[int] = set()

    def component_of(start: int) -> list[int]:
        seen = {start}
        stack = [start]
        order = []
        while stack:
            x = stack.pop()
            order.append(x)
            for y, _ in adjacency[x]:
                if y not in removed and y not in seen:
                    seen.add(y)
                    stack.append(y)
        return order

    def centroid_of(component: list[int]) -> int:
        component_set = set(component)
        size = {x: 1 for x in component}
        parent: dict[int, int | None] = {}
        # Iterative post-order to accumulate subtree sizes.
        root = component[0]
        parent[root] = None
        order: list[int] = []
        stack = [root]
        seen = {root}
        while stack:
            x = stack.pop()
            order.append(x)
            for y, _ in adjacency[x]:
                if y in component_set and y not in removed and y not in seen:
                    seen.add(y)
                    parent[y] = x
                    stack.append(y)
        for x in reversed(order):
            if parent[x] is not None:
                size[parent[x]] += size[x]
        total = len(component)
        for x in order:
            heaviest_part = total - size[x]
            for y, _ in adjacency[x]:
                if y in component_set and y not in removed and parent.get(y) == x:
                    heaviest_part = max(heaviest_part, size[y])
            if heaviest_part <= total // 2:
                return x
        return root  # unreachable for a valid tree

    def max_weights_from(centroid: int, component_set: set[int]) -> dict[int, float]:
        best = {centroid: -math.inf}
        stack = [centroid]
        while stack:
            x = stack.pop()
            for y, w in adjacency[x]:
                if y in component_set and y not in removed and y not in best:
                    best[y] = max(best[x], w)
                    stack.append(y)
        return best

    pending: list[list[int]] = []
    visited: set[int] = set()
    for v in vertex_list:
        if v not in visited:
            component = component_of(v)
            visited.update(component)
            pending.append(component)

    while pending:
        component = pending.pop()
        centroid = centroid_of(component)
        component_set = set(component)
        reach = max_weights_from(centroid, component_set)
        for x in component:
            chains[x].append((centroid, reach[x]))
        removed.add(centroid)
        leftovers: set[int] = set()
        for x in component:
            if x != centroid and x not in leftovers:
                sub = component_of(x)
                leftovers.update(sub)
                pending.append(sub)

    return {v: FlowLabel(tuple(chains[v])) for v in vertex_list}


def decode_heaviest(label_u: FlowLabel, label_v: FlowLabel) -> float:
    """The decoder ``D_flow``: the heaviest edge weight on the forest path
    between the two labeled vertices; ``+inf`` if they lie in different
    trees (adding an edge between trees never closes a cycle, so callers
    treating the result as an F-light threshold get the right answer);
    ``-inf`` when both labels belong to the same vertex."""
    last: int | None = None
    for index in range(min(len(label_u.entries), len(label_v.entries))):
        if label_u.entries[index][0] != label_v.entries[index][0]:
            break
        last = index
    if last is None:
        return math.inf
    return max(label_u.entries[last][1], label_v.entries[last][1])
