"""Sublinear-MPC baselines — the left column of Table 1.

These algorithms use *only* the small machines, so their round counts
exhibit the ``Θ(log n)``-type growth that the heterogeneous algorithms
circumvent:

* ``sublinear_boruvka_mst`` — classic Borůvka: each component finds its
  single lightest outgoing edge (always MST-safe by the cut property),
  components merge, repeat; ``O(log n)`` iterations of O(1) rounds each.
  This stands in for the ``O(log n)`` sublinear MST of [5].
* ``sublinear_connectivity`` — the same loop ignoring weights, standing in
  for the sublinear connectivity algorithms.
* ``sublinear_matching`` — the randomized peeling matching run entirely in
  the sublinear regime, standing in for the
  ``O(sqrt(log Δ) log log Δ + sqrt(log log n))`` algorithm of [33].

Coordination (choosing merges) happens on small machine 0; the per-round
volumes it handles are recorded by the ledger, faithfully exposing why the
sublinear regime is communication-bound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..graph.graph import Graph
from ..graph.union_find import UnionFind
from ..mpc import Cluster, ModelConfig
from ..primitives.aggregate import aggregate
from ..primitives.edgestore import EdgeStore

__all__ = [
    "SublinearResult",
    "sublinear_boruvka_mst",
    "sublinear_connectivity",
    "sublinear_matching",
]


@dataclass
class SublinearResult:
    """Outcome of a sublinear-regime baseline run."""

    rounds: int
    iterations: int
    edges: list[tuple] = field(default_factory=list)
    labels: list[int] = field(default_factory=list)
    matching: list[tuple[int, int]] = field(default_factory=list)
    cluster: Cluster = field(default=None, repr=False)


def _boruvka_loop(
    cluster: Cluster,
    store: EdgeStore,
    n: int,
    weighted: bool,
) -> tuple[list[tuple], UnionFind, int]:
    """Borůvka on the small machines: O(log n) merge iterations."""
    coordinator = cluster.small_ids[0]
    component = {v: v for v in range(n)}
    uf = UnionFind(range(n))
    chosen: list[tuple] = []
    iterations = 0

    while True:
        iterations += 1
        # Each component's lightest outgoing edge (Claim 2, toward the
        # coordinator small machine).
        def lighter(a: tuple, b: tuple) -> tuple:
            return a if a < b else b

        pairs_by_machine = {}
        for machine in cluster.smalls:
            pairs = []
            for edge in machine.get(store.name, []):
                cu, cv = component[edge[0]], component[edge[1]]
                if cu == cv:
                    continue
                weight = edge[2] if weighted else (edge[0], edge[1])
                pairs.append((cu, (weight, edge)))
                pairs.append((cv, (weight, edge)))
            pairs_by_machine[machine.machine_id] = pairs
        lightest = aggregate(
            cluster, pairs_by_machine, lighter, dst=coordinator, note="boruvka/min"
        )
        if not lightest:
            break

        merged_any = False
        for _, edge in sorted(lightest.values()):
            if uf.union(edge[0], edge[1]):
                chosen.append(edge)
                merged_any = True
        if not merged_any:
            break

        # Broadcast the updated component labels (one dissemination round
        # per annotate; the rename volume is what the ledger records).
        rename = {v: uf.find(v) for v in range(n)}
        annotated = store.annotate(rename, note="boruvka/rename")
        for machine in cluster.smalls:
            survivors = []
            for record, root_u, root_v in machine.pop(annotated.name, []):
                if root_u != root_v:
                    survivors.append(record)
            machine.put(store.name, survivors)
        component = rename

    return chosen, uf, iterations


def sublinear_boruvka_mst(
    graph: Graph,
    config: ModelConfig | None = None,
    rng: random.Random | None = None,
) -> SublinearResult:
    """Exact MST with small machines only; O(log n) Borůvka iterations."""
    if not graph.weighted:
        raise ValueError("MST needs a weighted graph")
    rng = rng if rng is not None else random.Random(0)
    config = (
        config
        if config is not None
        else ModelConfig.sublinear(n=graph.n, m=max(graph.m, 1))
    )
    cluster = Cluster(config, rng=random.Random(rng.random()))
    store = EdgeStore.create(cluster, list(graph.edges), name="sub-mst")
    edges, _, iterations = _boruvka_loop(cluster, store, graph.n, weighted=True)
    return SublinearResult(
        rounds=cluster.ledger.rounds,
        iterations=iterations,
        edges=sorted(edges),
        cluster=cluster,
    )


def sublinear_connectivity(
    graph: Graph,
    config: ModelConfig | None = None,
    rng: random.Random | None = None,
) -> SublinearResult:
    """Connected components with small machines only."""
    rng = rng if rng is not None else random.Random(0)
    config = (
        config
        if config is not None
        else ModelConfig.sublinear(n=graph.n, m=max(graph.m, 1))
    )
    cluster = Cluster(config, rng=random.Random(rng.random()))
    store = EdgeStore.create(
        cluster, [(e[0], e[1]) for e in graph.edges], name="sub-conn"
    )
    _, uf, iterations = _boruvka_loop(cluster, store, graph.n, weighted=False)
    smallest: dict[int, int] = {}
    for v in range(graph.n):
        root = uf.find(v)
        if root not in smallest or v < smallest[root]:
            smallest[root] = v
    labels = [smallest[uf.find(v)] for v in range(graph.n)]
    return SublinearResult(
        rounds=cluster.ledger.rounds,
        iterations=iterations,
        labels=labels,
        cluster=cluster,
    )


def sublinear_matching(
    graph: Graph,
    config: ModelConfig | None = None,
    rng: random.Random | None = None,
) -> SublinearResult:
    """Maximal matching with small machines only, by local-minimum peeling:
    every iteration each surviving edge draws a rank, per-vertex minima are
    aggregated, and locally minimal edges join the matching."""
    rng = rng if rng is not None else random.Random(0)
    config = (
        config
        if config is not None
        else ModelConfig.sublinear(n=graph.n, m=max(graph.m, 1))
    )
    cluster = Cluster(config, rng=random.Random(rng.random()))
    store = EdgeStore.create(
        cluster, [(e[0], e[1]) for e in graph.edges], name="sub-match"
    )
    coordinator = cluster.small_ids[0]
    matching: list[tuple[int, int]] = []
    matched: set[int] = set()
    iterations = 0

    while len(store):
        iterations += 1
        ranks = {
            edge: cluster.rng.random() for machine in cluster.smalls
            for edge in machine.get(store.name, [])
        }
        pairs_by_machine = {
            machine.machine_id: [
                pair
                for edge in machine.get(store.name, [])
                for pair in ((edge[0], ranks[edge]), (edge[1], ranks[edge]))
            ]
            for machine in cluster.smalls
        }
        best = aggregate(cluster, pairs_by_machine, min, dst=coordinator, note="peel/min")
        winners = {
            edge
            for edge in ranks
            if best[edge[0]] == ranks[edge] and best[edge[1]] == ranks[edge]
        }
        for u, v in sorted(winners):
            if u not in matched and v not in matched:
                matching.append((u, v))
                matched.update((u, v))

        flags = {v: (v in matched) for v in range(graph.n)}
        annotated = store.annotate(flags, default=False, note="peel/flags")
        for machine in cluster.smalls:
            survivors = [
                record
                for record, flag_u, flag_v in machine.pop(annotated.name, [])
                if not flag_u and not flag_v
            ]
            machine.put(store.name, survivors)

    return SublinearResult(
        rounds=cluster.ledger.rounds,
        iterations=iterations,
        matching=sorted(matching),
        cluster=cluster,
    )
