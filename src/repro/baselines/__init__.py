"""Sublinear-regime baselines (the left column of Table 1)."""

from .sublinear import (
    SublinearResult,
    sublinear_boruvka_mst,
    sublinear_connectivity,
    sublinear_matching,
)

__all__ = [
    "SublinearResult",
    "sublinear_boruvka_mst",
    "sublinear_connectivity",
    "sublinear_matching",
]
