"""RoundPlan — the builder side of the batched round engine.

A :class:`RoundPlan` describes one synchronous round of traffic as a set of
per-``(src, dst)`` *batches* instead of a flat list of per-item messages.
Algorithms accumulate traffic with :meth:`RoundPlan.send` /
:meth:`RoundPlan.send_batch` and hand the plan to
:meth:`repro.mpc.cluster.Cluster.execute`, which charges the round, sizes
every batch in bulk (:func:`repro.mpc.words.word_size_many`) and fills the
destination inboxes batch by batch.

Semantics are identical to the legacy per-message
:meth:`~repro.mpc.cluster.Cluster.exchange` path: the words charged are the
sum of the item word sizes, capacity checks see per-machine totals, and a
plan always costs exactly one round.  The only observable difference is
inbox ordering for callers that interleave sources: items arrive grouped by
``(src, dst)`` pair, pairs in first-``send`` order, items within a pair in
send order.  (Every in-repo producer already emits traffic source-major, so
orderings coincide.)
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

__all__ = ["Message", "RoundPlan"]

#: (source machine id, destination machine id, payload) — the per-item
#: message form; re-exported by :mod:`repro.mpc.cluster`.
Message = tuple[int, int, Any]


class RoundPlan:
    """Accumulates one round of traffic, grouped per ``(src, dst)`` pair."""

    __slots__ = ("note", "_batches")

    def __init__(self, note: str = "") -> None:
        self.note = note
        self._batches: dict[tuple[int, int], list[Any]] = {}

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, *items: Any) -> "RoundPlan":
        """Queue *items* from machine *src* to machine *dst*."""
        if items:
            batch = self._batches.get((src, dst))
            if batch is None:
                self._batches[(src, dst)] = list(items)
            else:
                batch.extend(items)
        return self

    def send_batch(self, src: int, dst: int, items: Iterable[Any]) -> "RoundPlan":
        """Queue a whole batch of items from *src* to *dst*.

        The fast path of the engine: one route entry and one bulk sizing
        pass regardless of how many items the batch holds.
        """
        batch = self._batches.get((src, dst))
        if batch is None:
            batch = list(items)
            if batch:
                self._batches[(src, dst)] = batch
        else:
            batch.extend(items)
        return self

    def extend(self, messages: Iterable[Message]) -> "RoundPlan":
        """Absorb legacy ``(src, dst, payload)`` message tuples."""
        for src, dst, payload in messages:
            self.send(src, dst, payload)
        return self

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self._batches

    def batches(self) -> Iterator[tuple[int, int, list[Any]]]:
        """Yield ``(src, dst, items)`` in first-send order."""
        for (src, dst), items in self._batches.items():
            yield src, dst, items

    def routes(self) -> int:
        """Number of distinct ``(src, dst)`` pairs with traffic."""
        return len(self._batches)

    def item_count(self) -> int:
        """Total number of logical items queued."""
        return sum(len(items) for items in self._batches.values())

    def __len__(self) -> int:
        return self.item_count()

    def messages(self) -> Iterator[Message]:
        """Flatten back to legacy message tuples (debugging / tests)."""
        for (src, dst), items in self._batches.items():
            for item in items:
                yield src, dst, item

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoundPlan(note={self.note!r}, routes={self.routes()}, "
            f"items={self.item_count()})"
        )
