"""RoundPlan — the builder side of the batched round engine.

A :class:`RoundPlan` describes one synchronous round of traffic as a set of
per-``(src, dst)`` *batches* instead of a flat list of per-item messages.
Algorithms accumulate traffic with :meth:`RoundPlan.send` /
:meth:`RoundPlan.send_batch` and hand the plan to
:meth:`repro.mpc.cluster.Cluster.execute`, which charges the round, sizes
every batch in bulk (:func:`repro.mpc.words.word_size_many`) and fills the
destination inboxes.

Semantics are identical to the legacy per-message
:meth:`~repro.mpc.cluster.Cluster.exchange` path: the words charged are the
sum of the item word sizes, capacity checks see per-machine totals, a plan
always costs exactly one round, and — since traffic is stored as
per-destination *delivery runs* in send-call order — each inbox receives
its items exactly as they were sent, even when sources interleave.  A plan
whose batches are all empty moves no data and costs **zero** rounds
(:meth:`Cluster.execute` treats it as a no-op).

Storage: each payload is held once, in its delivery run.  Source-major
producers (every bulk producer in this repo) create one run per
``(src, dst)`` route, so sizing stays one bulk pass per route; the
aggregated :meth:`batches` view is materialized on demand for inspection
and the legacy flatteners.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

__all__ = ["Message", "RoundPlan"]

#: (source machine id, destination machine id, payload) — the per-item
#: message form; re-exported by :mod:`repro.mpc.cluster`.
Message = tuple[int, int, Any]


class RoundPlan:
    """Accumulates one round of traffic, grouped per ``(src, dst)`` pair.

    ``_segments`` maps each destination to an ordered list of
    ``[src, items]`` runs in send-call order — the single authoritative
    store (payloads are never duplicated).  ``_routes`` tracks the
    distinct ``(src, dst)`` pairs in first-send order with their queued
    item counts, so route-level views need no scan.
    """

    __slots__ = ("note", "_segments", "_routes")

    def __init__(self, note: str = "") -> None:
        self.note = note
        self._segments: dict[int, list[list[Any]]] = {}
        self._routes: dict[tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def _append(self, src: int, dst: int, items: list[Any]) -> None:
        """Queue *items* (a fresh list the plan takes ownership of)."""
        runs = self._segments.get(dst)
        if runs is None:
            self._segments[dst] = [[src, items]]
        elif runs[-1][0] == src:
            runs[-1][1].extend(items)
        else:
            runs.append([src, items])
        route = (src, dst)
        self._routes[route] = self._routes.get(route, 0) + len(items)

    def send(self, src: int, dst: int, *items: Any) -> "RoundPlan":
        """Queue *items* from machine *src* to machine *dst*."""
        if items:
            self._append(src, dst, list(items))
        return self

    def send_batch(self, src: int, dst: int, items: Iterable[Any]) -> "RoundPlan":
        """Queue a whole batch of items from *src* to *dst*.

        The fast path of the engine: one route entry and one bulk sizing
        pass regardless of how many items the batch holds.  The input is
        copied once (callers may reuse their list); the plan owns the copy.
        """
        batch = list(items)
        if batch:
            self._append(src, dst, batch)
        return self

    def extend(self, messages: Iterable[Message]) -> "RoundPlan":
        """Absorb legacy ``(src, dst, payload)`` message tuples."""
        for src, dst, payload in messages:
            self.send(src, dst, payload)
        return self

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self._routes

    def runs(self) -> Iterator[tuple[int, int, list[Any]]]:
        """Yield ``(src, dst, items)`` delivery runs in send-call order.

        This is the engine's sizing/accounting view: word totals are
        additive over runs, and source-major producers emit exactly one
        run per route, so bulk sizing stays one pass per batch.
        """
        for dst, runs in self._segments.items():
            for src, items in runs:
                yield src, dst, items

    def batches(self) -> Iterator[tuple[int, int, list[Any]]]:
        """Yield ``(src, dst, items)`` aggregated per route, routes in
        first-send order (materialized on demand)."""
        grouped: dict[tuple[int, int], list[Any]] = {
            route: [] for route in self._routes
        }
        for src, dst, items in self.runs():
            grouped[(src, dst)].extend(items)
        for (src, dst), items in grouped.items():
            yield src, dst, items

    def deliveries(self) -> Iterator[tuple[int, list[Any]]]:
        """Yield ``(dst, items)`` with items in exact send-call order.

        This is the inbox-fill view: unlike :meth:`batches` it interleaves
        sources the way the sends happened, so per-message and batched
        producers observe identical inbox orderings.
        """
        for dst, runs in self._segments.items():
            items: list[Any] = []
            for _, run in runs:
                items.extend(run)
            yield dst, items

    def routes(self) -> int:
        """Number of distinct ``(src, dst)`` pairs with traffic."""
        return len(self._routes)

    def item_count(self) -> int:
        """Total number of logical items queued."""
        return sum(self._routes.values())

    def __len__(self) -> int:
        return self.item_count()

    def messages(self) -> Iterator[Message]:
        """Flatten back to legacy message tuples (debugging / tests)."""
        for src, dst, items in self.batches():
            for item in items:
                yield src, dst, item

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoundPlan(note={self.note!r}, routes={self.routes()}, "
            f"items={self.item_count()})"
        )
