"""RoundPlan — the builder side of the columnar round engine.

A :class:`RoundPlan` describes one synchronous round of traffic as a set of
per-``(src, dst)`` *runs* kept in flat parallel arrays (``_run_src``,
``_run_dst``, ``_run_start``, ``_run_len``) over one flat payload store —
not as per-item Python lists.  Algorithms accumulate traffic with
:meth:`RoundPlan.send` / :meth:`RoundPlan.send_batch` /
:meth:`RoundPlan.send_indexed` and hand the plan to
:meth:`repro.mpc.cluster.Cluster.execute`, which sizes every run once
(:func:`repro.mpc.words.word_size_many`, cached on the plan by
:meth:`run_words`) and routes the whole plan in a single grouped pass.

Semantics are identical to the legacy per-message
:meth:`~repro.mpc.cluster.Cluster.exchange` path: the words charged are the
sum of the item word sizes, capacity checks see per-machine totals, a plan
always costs exactly one round, and — since runs are stored in send-call
order — each inbox receives its items exactly as they were sent, even when
sources interleave.  A plan whose batches are all empty moves no data and
costs **zero** rounds (:meth:`Cluster.execute` treats it as a no-op).

Storage:

* Object traffic (``send`` / ``send_batch``) lives once in the flat
  ``_items`` list; a run is a ``[start, start+length)`` slice of it.
  Consecutive sends on the same route extend the open run in place, so
  source-major producers (every bulk producer in this repo) still create
  one run per ``(src, dst)`` route and sizing stays one bulk pass per
  route.
* Columnar traffic (:meth:`send_indexed` with numpy columns under the
  numpy backend) is stored as per-run array *blocks* — zero-copy slices
  of the scatter, sized O(1) per run (``block.size``).

The aggregated :meth:`batches` view is materialized on demand for
inspection and the legacy flatteners.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from .backend import get_engine_backend
from .words import word_size_many

try:  # pragma: no cover - import guard exercised on minimal installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["Message", "RoundPlan"]

#: (source machine id, destination machine id, payload) — the per-item
#: message form; re-exported by :mod:`repro.mpc.cluster`.
Message = tuple[int, int, Any]


class RoundPlan:
    """Accumulates one round of traffic as columnar per-``(src, dst)`` runs.

    ``_run_src`` / ``_run_dst`` / ``_run_start`` / ``_run_len`` are flat
    parallel arrays, one entry per run, in send-call order — the single
    authoritative store (payloads are never duplicated).  ``_run_block``
    is parallel too: ``None`` for object runs (whose payloads occupy
    ``_items[start:start+length]``) or the numpy block of a columnar run.
    ``_routes`` tracks the distinct ``(src, dst)`` pairs in first-send
    order with their queued item counts, so route-level views need no
    scan.  ``_run_words`` caches the per-run word totals computed by
    :meth:`run_words` (invalidated by any later send).
    """

    __slots__ = (
        "note",
        "backend",
        "_run_src",
        "_run_dst",
        "_run_start",
        "_run_len",
        "_run_block",
        "_items",
        "_routes",
        "_run_words",
    )

    def __init__(self, note: str = "", backend: object = None) -> None:
        self.note = note
        #: Engine backend used to group :meth:`send_indexed` scatters —
        #: resolved lazily so ``RoundPlan()`` stays dependency-free.
        self.backend = backend
        self._run_src: list[int] = []
        self._run_dst: list[int] = []
        self._run_start: list[int] = []
        self._run_len: list[int] = []
        self._run_block: list[Any] = []
        self._items: list[Any] = []
        self._routes: dict[tuple[int, int], int] = {}
        self._run_words: list[int] | None = None

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def _note_object_run(self, src: int, dst: int, start: int, count: int) -> None:
        """Account a fresh object segment ``[start, start+count)`` of the
        flat store, extending the open run when contiguous.

        Contiguity is an invariant, not a check: object items only ever
        append to the end of ``_items``, and array blocks never touch it,
        so whenever the globally-last run is this route's object run its
        slice necessarily ends exactly at *start*.
        """
        self._run_words = None
        if (
            self._run_src
            and self._run_src[-1] == src
            and self._run_dst[-1] == dst
            and self._run_block[-1] is None
        ):
            self._run_len[-1] += count
        else:
            self._run_src.append(src)
            self._run_dst.append(dst)
            self._run_start.append(start)
            self._run_len.append(count)
            self._run_block.append(None)
        route = (src, dst)
        self._routes[route] = self._routes.get(route, 0) + count

    def _append(self, src: int, dst: int, items: Iterable[Any]) -> None:
        """Queue object *items* (copied once into the flat store)."""
        before = len(self._items)
        self._items.extend(items)
        count = len(self._items) - before
        if count:
            self._note_object_run(src, dst, before, count)

    def _append_block(self, src: int, dst: int, block: Any) -> None:
        """Queue a columnar run (*block* is a numeric numpy array whose
        leading axis indexes items).

        An empty block is dropped without opening a run, mirroring
        :meth:`_append`: a plan whose scatters are all empty stays empty
        and :meth:`Cluster.execute` charges no round for it.
        """
        count = int(block.shape[0])
        if count == 0:
            return
        if block.dtype.kind not in "iufb":
            raise TypeError(
                f"columnar blocks must have a numeric dtype, got {block.dtype}"
            )
        self._run_words = None
        self._run_src.append(src)
        self._run_dst.append(dst)
        self._run_start.append(len(self._items))
        self._run_len.append(count)
        self._run_block.append(block)
        route = (src, dst)
        self._routes[route] = self._routes.get(route, 0) + count

    def send(self, src: int, dst: int, *items: Any) -> "RoundPlan":
        """Queue *items* from machine *src* to machine *dst*."""
        if items:
            self._append(src, dst, items)
        return self

    def send_batch(self, src: int, dst: int, items: Iterable[Any]) -> "RoundPlan":
        """Queue a whole batch of items from *src* to *dst*.

        The bulk path of the engine: one run entry and one bulk sizing
        pass regardless of how many items the batch holds.  The input is
        copied once into the flat store (callers may reuse their list).

        A numpy batch (leading axis indexing items) is kept as a columnar
        run directly — zero copy, O(1) sizing — regardless of the engine
        backend: the columnar primitives pre-group their routing into
        per-destination blocks, and a pre-grouped block needs no backend
        pass.  Accounting is identical either way (``block.size`` equals
        the summed word sizes of the equivalent rows).
        """
        if _np is not None and isinstance(items, _np.ndarray):
            self._append_block(src, dst, items)
        else:
            self._append(src, dst, items)
        return self

    def send_indexed(
        self, src: int, dsts: Sequence[int], items: Sequence[Any]
    ) -> "RoundPlan":
        """Queue one *scatter*: item ``i`` goes from *src* to ``dsts[i]``.

        The columnar fast path: the destination column is grouped into
        per-``(src, dst)`` runs by the engine backend (ascending
        destination, stable within each destination) in one pass — no
        caller-side bucketing loop.  With the numpy backend and numpy
        columns, grouping is a single stable ``argsort`` and the payload
        stays an array block end to end (delivered whole, sized O(1)).
        With lists (or the pure backend), items are delivered
        individually, exactly like :meth:`send_batch` traffic.
        """
        count = items.shape[0] if _np is not None and isinstance(items, _np.ndarray) else len(items)
        dst_count = dsts.shape[0] if _np is not None and isinstance(dsts, _np.ndarray) else len(dsts)
        if count != dst_count:
            raise ValueError(
                f"scatter shape mismatch: {dst_count} destinations for "
                f"{count} items"
            )
        if not count:
            return self
        # Resolve lazily, then pin the instance on the plan so repeated
        # scatters (one per source in the routing primitives) skip the
        # env lookup and group on one backend for the whole plan.
        backend = self.backend = get_engine_backend(self.backend)
        for dst, block in backend.group_indexed(dsts, items):
            if _np is not None and isinstance(block, _np.ndarray):
                self._append_block(src, dst, block)
            else:
                self._append(src, dst, block)
        return self

    def extend(self, messages: Iterable[Message]) -> "RoundPlan":
        """Absorb legacy ``(src, dst, payload)`` message tuples."""
        for src, dst, payload in messages:
            self._append(src, dst, (payload,))
        return self

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self._routes

    def _run_items(self, index: int) -> Any:
        """Payloads of run *index*: a list slice or the array block."""
        block = self._run_block[index]
        if block is not None:
            return block
        start = self._run_start[index]
        return self._items[start:start + self._run_len[index]]

    def runs(self) -> Iterator[tuple[int, int, Any]]:
        """Yield ``(src, dst, items)`` delivery runs in send-call order.

        This is the engine's sizing/accounting view: word totals are
        additive over runs, and source-major producers emit exactly one
        run per route, so bulk sizing stays one pass per batch.  ``items``
        is a list for object runs and a numpy block for columnar runs.
        """
        for index in range(len(self._run_src)):
            yield self._run_src[index], self._run_dst[index], self._run_items(index)

    def run_count(self) -> int:
        """Number of stored delivery runs (>= :meth:`routes` when sends
        interleave)."""
        return len(self._run_src)

    def run_words(self) -> list[int]:
        """Per-run word totals, computed once and cached on the plan.

        Object runs cost one :func:`word_size_many` pass over their flat
        slice; columnar runs cost O(1) (``block.size`` — every element of
        a numeric dtype is one machine word).  Any later send invalidates
        the cache.
        """
        if self._run_words is None:
            words = []
            for index in range(len(self._run_src)):
                block = self._run_block[index]
                if block is not None:
                    words.append(int(block.size))
                else:
                    start = self._run_start[index]
                    words.append(
                        word_size_many(self._items[start:start + self._run_len[index]])
                    )
            self._run_words = words
        return self._run_words

    def run_meta(self) -> tuple[list[int], list[int], list[int], list[int]]:
        """The accounting columns: ``(srcs, dsts, lengths, words)`` —
        parallel arrays over runs, words from the :meth:`run_words`
        cache.  This is everything the grouped accounting pass of
        :meth:`Cluster.execute` consumes."""
        return self._run_src, self._run_dst, self._run_len, self.run_words()

    def batches(self) -> Iterator[tuple[int, int, list[Any]]]:
        """Yield ``(src, dst, items)`` aggregated per route, routes in
        first-send order (materialized on demand; columnar blocks are
        flattened to rows)."""
        grouped: dict[tuple[int, int], list[Any]] = {
            route: [] for route in self._routes
        }
        for src, dst, items in self.runs():
            grouped[(src, dst)].extend(_as_rows(items))
        for (src, dst), items in grouped.items():
            yield src, dst, items

    def deliveries(self) -> Iterator[tuple[int, list[Any]]]:
        """Yield ``(dst, items)`` with items in exact send-call order.

        This is the inbox-fill view: unlike :meth:`batches` it interleaves
        sources the way the sends happened, so per-message and batched
        producers observe identical inbox orderings.  Columnar runs
        deliver their block *whole* — one inbox entry per block, a
        zero-copy array view — while their logical items stay the block's
        rows for all accounting.
        """
        order: list[int] = []
        grouped: dict[int, list[Any]] = {}
        for index in range(len(self._run_src)):
            dst = self._run_dst[index]
            inbox = grouped.get(dst)
            if inbox is None:
                inbox = grouped[dst] = []
                order.append(dst)
            block = self._run_block[index]
            if block is not None:
                inbox.append(block)
            else:
                start = self._run_start[index]
                inbox.extend(self._items[start:start + self._run_len[index]])
        for dst in order:
            yield dst, grouped[dst]

    def routes(self) -> int:
        """Number of distinct ``(src, dst)`` pairs with traffic."""
        return len(self._routes)

    def item_count(self) -> int:
        """Total number of logical items queued (block rows count one each)."""
        return sum(self._run_len)

    def __len__(self) -> int:
        return self.item_count()

    def messages(self) -> Iterator[Message]:
        """Flatten back to legacy message tuples (debugging / tests)."""
        for src, dst, items in self.batches():
            for item in items:
                yield src, dst, item

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoundPlan(note={self.note!r}, routes={self.routes()}, "
            f"items={self.item_count()})"
        )


def _as_rows(items: Any) -> list[Any]:
    """Flatten a run's payloads to per-item Python objects (legacy views):
    2D blocks become tuples of scalars, 1D blocks plain scalars."""
    if _np is not None and isinstance(items, _np.ndarray):
        if items.ndim >= 2:
            return [tuple(row) for row in items.tolist()]
        return items.tolist()
    return list(items)
