"""Exceptions raised by the MPC simulator."""

from __future__ import annotations

__all__ = [
    "MPCError",
    "MemoryLimitExceeded",
    "CommunicationLimitExceeded",
    "ProtocolError",
    "AlgorithmFailure",
]


class MPCError(Exception):
    """Base class for all simulator errors."""


class MemoryLimitExceeded(MPCError):
    """A machine's stored data exceeded its memory capacity (strict mode)."""


class CommunicationLimitExceeded(MPCError):
    """A machine sent or received more words in one round than it can store
    (strict mode)."""


class ProtocolError(MPCError):
    """An algorithm violated the simulator's protocol (e.g. messaging a
    machine that does not exist)."""


class AlgorithmFailure(MPCError):
    """A with-high-probability algorithm exhausted its retry budget."""
