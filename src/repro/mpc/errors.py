"""Exceptions raised by the MPC simulator.

Capacity breaches form a small hierarchy: :class:`MemoryLimitExceeded`
and :class:`CommunicationLimitExceeded` share the
:class:`CapacityExceeded` base, which carries the structured
:class:`~repro.mpc.ledger.Violation` records behind the failure in its
``violations`` attribute — strict-mode callers can catch the base and
consume data (machine id, kind, amount, capacity, round) instead of
parsing the message string.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .ledger import Violation

__all__ = [
    "MPCError",
    "CapacityExceeded",
    "MemoryLimitExceeded",
    "CommunicationLimitExceeded",
    "ProtocolError",
    "AlgorithmFailure",
]


class MPCError(Exception):
    """Base class for all simulator errors."""


class CapacityExceeded(MPCError):
    """A budget of the model was breached in strict mode.

    Attributes:
        violations: the structured :class:`~repro.mpc.ledger.Violation`
            records (each also renders as the legacy message string).
    """

    def __init__(self, message: str = "", violations: Iterable["Violation"] = ()):
        super().__init__(message)
        self.violations: list["Violation"] = list(violations)


class MemoryLimitExceeded(CapacityExceeded):
    """A machine's stored data exceeded its memory capacity (strict mode)."""


class CommunicationLimitExceeded(CapacityExceeded):
    """A machine sent or received more words in one round than it can store
    (strict mode)."""


class ProtocolError(MPCError):
    """An algorithm violated the simulator's protocol (e.g. messaging a
    machine that does not exist)."""


class AlgorithmFailure(MPCError):
    """A with-high-probability algorithm exhausted its retry budget."""
