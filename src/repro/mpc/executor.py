"""Executor seam: where per-machine local compute runs.

The simulated cluster used to run every machine's local compute serially
in the coordinator process, so a "round" cost wall-clock proportional to
the number of machines even though the model's whole point is that
machines work in parallel.  This module is the seam that fixes it,
mirroring the :mod:`repro.mpc.backend` / :mod:`repro.sketches.backend`
idiom:

* :class:`SerialExecutor` (the default) runs every *local step* inline —
  the historical behavior, bit for bit.
* :class:`ProcessExecutor` ships shippable steps to a process pool, one
  task per machine shard, and reassembles results in machine order.

A **local step** is a registered pure function over one machine's shard
of data (typically that machine's dataset columns): the primitives
declare their hot per-machine loops with the :func:`local_step` decorator
and run them through :meth:`Cluster.run_local_steps`.  Steps are
addressed *by name* across the process boundary (workers re-import the
defining module and look the kernel up in the registry — closures never
cross; the same resolve-by-name idiom as ``ParallelRunner``).  Steps
whose payloads carry user callables or :class:`~repro.mpc.machine.
Machine` objects register ``ships=False`` and always run inline, on
every executor — the shipping decision is static per kernel, never
data-dependent, so executor choice cannot change which code runs.

Ledger equivalence is **by construction**: executors only ever run pure
functions over per-machine payloads and return results in machine order;
all accounting (words, rounds, memory checkpoints, throttle estimator
feeds) stays derived from plans on the coordinator, never from worker
timing.  A determinism test suite and a CI leg pin artifacts byte-equal
across ``serial``/``process`` and both engine backends.

Selection mirrors the backend seam: ``ModelConfig.with_executor("serial"
| "process", workers=N)`` per cluster, the ``REPRO_EXECUTOR`` /
``REPRO_EXECUTOR_WORKERS`` environment variables as the ambient default,
and :func:`forced_executor` for tests and benchmarks.  Nested
parallelism is guarded: inside any worker process spawned by this module
or by ``ParallelRunner`` (``bench --jobs N``), :func:`get_executor`
always returns a :class:`SerialExecutor` — ``--jobs`` takes precedence
over ``--executor``, so a pool of scenario workers never forks a second
pool per worker.
"""

from __future__ import annotations

import atexit
import importlib
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Iterator, Sequence

from ..env import env_int, env_name

__all__ = [
    "LocalStep",
    "local_step",
    "resolve_step",
    "SerialExecutor",
    "ProcessExecutor",
    "shutdown_pools",
    "get_executor",
    "available_executors",
    "forced_executor",
    "in_worker",
    "mark_worker_process",
]

_ENV_VAR = "REPRO_EXECUTOR"
_ENV_WORKERS = "REPRO_EXECUTOR_WORKERS"

#: Forced override installed by :func:`forced_executor` (name, workers).
_FORCED: tuple[str, int] | None = None

#: Set in pool workers (by this module's pools and by ``ParallelRunner``)
#: so nested `get_executor` calls degrade to serial instead of forking a
#: pool inside a pool.
_IN_WORKER = False


def mark_worker_process() -> None:
    """Flag this process as a pool worker (used as a pool *initializer*).

    Any :func:`get_executor` call made after this — e.g. by a Cluster
    constructed inside a ``ParallelRunner`` scenario point — resolves to
    a :class:`SerialExecutor` regardless of config, environment or
    forced override.
    """
    global _IN_WORKER
    _IN_WORKER = True


def in_worker() -> bool:
    """Whether this process is a pool worker (nested-parallelism guard)."""
    return _IN_WORKER


# ----------------------------------------------------------------------
# The local-step registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LocalStep:
    """One registered per-machine kernel.

    ``ships`` is a static property of the kernel: ``True`` only when its
    payloads and results are plain data (arrays, tuples, scalars) that
    pickle exactly.  ``module`` records where the kernel is defined so a
    spawned worker can import it before resolving by name.
    """

    name: str
    fn: Callable[[Any], Any]
    ships: bool
    module: str


_REGISTRY: dict[str, LocalStep] = {}


def local_step(name: str, *, ships: bool = True) -> Callable[[Callable], Callable]:
    """Register a module-level function as a named local step.

    The function must take exactly one *payload* argument (one machine's
    shard) and be pure — executors may run it inline, in any worker, or
    twice after a pool failure.  Re-registering a name from the same
    module replaces the entry (module reloads); a clash across modules
    raises.
    """

    def register(fn: Callable[[Any], Any]) -> Callable[[Any], Any]:
        existing = _REGISTRY.get(name)
        if existing is not None and existing.module != fn.__module__:
            raise ValueError(
                f"local step {name!r} already registered by {existing.module}"
            )
        _REGISTRY[name] = LocalStep(
            name=name, fn=fn, ships=ships, module=fn.__module__
        )
        return fn

    return register


def resolve_step(name: str, module: str | None = None) -> LocalStep:
    """Look a step up by name, importing *module* first if needed.

    The import path is what makes resolve-by-name work under the
    ``spawn`` start method, where workers begin with an empty registry.
    """
    step = _REGISTRY.get(name)
    if step is None and module is not None:
        importlib.import_module(module)
        step = _REGISTRY.get(name)
    if step is None:
        raise KeyError(f"unknown local step {name!r}")
    return step


def _invoke(module: str, name: str, payload: Any) -> Any:
    """Pool-side entry point: resolve the kernel and run one payload."""
    return resolve_step(name, module=module).fn(payload)


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
class SerialExecutor:
    """Runs every local step inline in the coordinator process."""

    name = "serial"
    workers = 1

    def map_steps(self, step: str, payloads: Sequence[Any]) -> list[Any]:
        """Apply step *step* to each payload, in order."""
        fn = resolve_step(step).fn
        return [fn(payload) for payload in payloads]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialExecutor()"


#: Shared pools, keyed by worker count — process startup is amortized
#: across every cluster and every step of a run.
_POOLS: dict[int, ProcessPoolExecutor] = {}

#: Set when pool creation failed (sandboxes without working
#: multiprocessing); all process executors then degrade to inline.
_POOL_UNAVAILABLE = False


def _shared_pool(workers: int) -> ProcessPoolExecutor | None:
    global _POOL_UNAVAILABLE
    if _POOL_UNAVAILABLE:
        return None
    pool = _POOLS.get(workers)
    if pool is None:
        try:
            pool = ProcessPoolExecutor(
                max_workers=workers, initializer=mark_worker_process
            )
        except (OSError, ValueError, RuntimeError):  # pragma: no cover
            _POOL_UNAVAILABLE = True
            return None
        _POOLS[workers] = pool
    return pool


def shutdown_pools(wait: bool = False) -> None:
    """Reap every shared worker pool now (idempotent).

    The pools are process-lifetime caches: without this call they are
    only torn down by the ``atexit`` hook, which is fine for a benchmark
    run but leaks worker processes across reconfigurations of a
    long-lived daemon.  ``repro serve`` teardown and the benchmark
    epilogues call this explicitly; the next :class:`ProcessExecutor`
    dispatch after a shutdown builds a fresh pool, so shutting down
    eagerly is always safe.  Also resets the pool-unavailable latch, so
    a sandbox that temporarily failed pool creation gets retried.
    """
    global _POOL_UNAVAILABLE
    for pool in _POOLS.values():
        pool.shutdown(wait=wait, cancel_futures=True)
    _POOLS.clear()
    _POOL_UNAVAILABLE = False


atexit.register(shutdown_pools)


class ProcessExecutor:
    """Ships shippable local steps to a process pool.

    One pool task per machine shard; results come back in machine order
    (``Executor.map`` preserves it), so reassembly on the coordinator is
    order-identical to the serial loop.  Non-shippable steps, single
    payloads, and any call made from inside a pool worker run inline.
    A broken pool (a worker killed mid-step) falls back to inline for
    that call and rebuilds the pool on the next — kernels are pure, so
    re-running them is safe.
    """

    name = "process"

    def __init__(self, workers: int = 0) -> None:
        if workers <= 0:
            workers = os.cpu_count() or 1
        self.workers = max(1, int(workers))

    def map_steps(self, step: str, payloads: Sequence[Any]) -> list[Any]:
        """Apply step *step* to each payload, in order."""
        resolved = resolve_step(step)
        payloads = list(payloads)
        if (
            not resolved.ships
            or in_worker()
            or self.workers <= 1
            or len(payloads) <= 1
        ):
            return [resolved.fn(payload) for payload in payloads]
        pool = _shared_pool(self.workers)
        if pool is None:
            return [resolved.fn(payload) for payload in payloads]
        task = partial(_invoke, resolved.module, resolved.name)
        chunksize = max(1, len(payloads) // (self.workers * 4))
        try:
            return list(pool.map(task, payloads, chunksize=chunksize))
        except BrokenProcessPool:  # pragma: no cover - rare pool failure
            _POOLS.pop(self.workers, None)
            return [resolved.fn(payload) for payload in payloads]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessExecutor(workers={self.workers})"


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------
def available_executors() -> tuple[str, ...]:
    """Names accepted by :func:`get_executor`."""
    return ("serial", "process")


def get_executor(
    spec: object = None, workers: int = 0
) -> SerialExecutor | ProcessExecutor:
    """Resolve *spec* to an executor instance.

    Accepts an existing executor (returned as is), a name (``"serial"``
    or ``"process"``), or ``None`` — which consults the
    :func:`forced_executor` override, then ``REPRO_EXECUTOR``, then the
    serial default.  ``workers`` (or ``REPRO_EXECUTOR_WORKERS``) sizes
    the process pool; 0 means one worker per CPU.

    Inside a pool worker every resolution returns a
    :class:`SerialExecutor` — the nested-parallelism guard that gives
    ``bench --jobs N`` precedence over ``--executor``.
    """
    if in_worker():
        return SerialExecutor()
    if isinstance(spec, (SerialExecutor, ProcessExecutor)):
        return spec
    if spec is None:
        if _FORCED is not None:
            spec, forced_workers = _FORCED
            if workers <= 0:
                workers = forced_workers
        else:
            spec = env_name(_ENV_VAR, "serial")
    if workers <= 0:
        workers = env_int(_ENV_WORKERS, 0)
    name = str(spec).lower()
    if name == "serial":
        return SerialExecutor()
    if name == "process":
        return ProcessExecutor(workers)
    raise ValueError(
        f"unknown executor {spec!r} (expected 'serial' or 'process')"
    )


@contextmanager
def forced_executor(spec: str, workers: int = 0) -> Iterator[None]:
    """Force the default executor for a ``with`` block (tests/benchmarks).

    Overrides the environment for every ``get_executor(None)`` resolution
    inside the block; explicit config choices and the in-worker guard
    still win.
    """
    if spec not in available_executors():
        raise ValueError(
            f"unknown executor {spec!r} (expected 'serial' or 'process')"
        )
    global _FORCED
    previous = _FORCED
    _FORCED = (spec, workers)
    try:
        yield
    finally:
        _FORCED = previous
