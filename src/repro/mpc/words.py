"""Word-size accounting for the MPC simulator.

The MPC model measures memory and communication in machine *words* of
``Theta(log n)`` bits.  Every payload stored on a machine or sent in a round
is charged according to :func:`word_size`:

* scalars (ints, floats, bools, ``None``) cost one word — vertex ids, edge
  weights and counters all fit in ``O(log n)`` bits by the paper's
  conventions;
* containers cost the sum of their elements (an ``(u, v, w)`` edge costs 3);
* objects may define their own cost by implementing ``word_size()`` —
  sketches and flow labels do this.

Strings are charged one word per 8 characters (a word is at least 64 bits at
any practical ``n``); they only appear in debugging payloads.  ``bytes`` /
``bytearray`` payloads are charged the same way — one word per 8 bytes —
so serialized blobs (sketch dumps, packed records) account like the
equivalent text.

:func:`word_size_many` is the bulk companion used by the columnar round
engine: it sizes a whole batch in one pass, with fast paths for the two
batch shapes that dominate real traffic — homogeneous scalar batches and
flat tuples of scalars (edge lists).  It is semantically identical to
summing :func:`word_size` over the batch.

Numeric numpy arrays (when numpy is installed) are charged one word per
element — a ``(k, 3)`` int block costs exactly what the equivalent ``k``
``(u, v, w)`` tuples cost — which is what makes the columnar engine's
O(1) run sizing (``block.size``) bit-identical to the object path.
"""

from __future__ import annotations

from itertools import chain
from typing import Any, Iterable

try:  # pragma: no cover - import guard exercised on minimal installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["word_size", "word_size_many"]

_SCALARS = (int, float, bool, type(None))


def word_size(obj: Any) -> int:
    """Return the number of machine words needed to represent *obj*."""
    if isinstance(obj, _SCALARS):
        return 1
    sizer = getattr(obj, "word_size", None)
    if callable(sizer):
        return int(sizer())
    if isinstance(obj, str):
        return 1 + len(obj) // 8
    if isinstance(obj, (bytes, bytearray)):
        return 1 + len(obj) // 8
    if isinstance(obj, dict):
        return sum(word_size(k) + word_size(v) for k, v in obj.items())
    if isinstance(obj, (tuple, list, set, frozenset)):
        return sum(word_size(item) for item in obj)
    if _np is not None and isinstance(obj, _np.generic):
        # A lone numpy scalar accounts like the Python scalar it wraps.
        if obj.dtype.kind in "iufb":
            return 1
        raise TypeError(f"cannot compute word size of dtype {obj.dtype}")
    if _np is not None and isinstance(obj, _np.ndarray):
        if obj.dtype.kind in "iufb":
            return int(obj.size)
        raise TypeError(f"cannot compute word size of dtype {obj.dtype}")
    raise TypeError(f"cannot compute word size of {type(obj).__name__}")


_SCALAR_TYPES = frozenset(_SCALARS)
_BYTES_TYPES = frozenset((bytes, bytearray))


def word_size_many(items: Iterable[Any]) -> int:
    """Total word size of a batch; equals ``sum(word_size(i) for i in items)``.

    Fast paths (C-level ``map(type)``/``set``/``chain`` passes, no per-item
    Python recursion):

    * every item exactly a scalar type → ``len(items)`` — counter and key
      batches;
    * every item exactly ``bytes``/``bytearray`` → summed ``1 + len // 8``
      without per-item dispatch — packed-blob batches;
    * every item exactly a ``tuple`` whose elements are all scalars →
      total element count — edge lists, the hottest batch shape in the
      repo.  Plain tuples cannot carry a custom ``word_size`` method, so
      counting elements is exact.  Subclasses (namedtuples, which can
      define ``word_size``; scalar subclasses like ``IntEnum``) fail the
      exact-type checks and fall back to the per-item sizer, which handles
      them identically to :func:`word_size`.
    """
    if _np is not None and isinstance(items, _np.ndarray):
        # A numeric block: the leading axis indexes items, every element
        # is one word, so the whole run sizes in O(1).  An *empty* array
        # is zero words whatever its dtype — empty index arrays from the
        # columnar primitives must size cleanly, mirroring the engine's
        # empty-scatter handling (no run, no round).
        if items.size == 0:
            return 0
        if items.dtype.kind in "iufb":
            return int(items.size)
        raise TypeError(f"cannot compute word size of dtype {items.dtype}")
    if not isinstance(items, (list, tuple)):
        items = list(items)
    if not items:
        return 0
    types = set(map(type, items))
    if types <= _SCALAR_TYPES:
        return len(items)
    if types <= _BYTES_TYPES:
        return sum(1 + len(blob) // 8 for blob in items)
    if types == {tuple}:
        flat = list(chain.from_iterable(items))
        if set(map(type, flat)) <= _SCALAR_TYPES:
            return len(flat)
        # Mixed leaves (nested records, objects): one level of flattening
        # still saves the per-item tuple dispatch.
        return sum(map(word_size, flat))
    return sum(map(word_size, items))
