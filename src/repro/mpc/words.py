"""Word-size accounting for the MPC simulator.

The MPC model measures memory and communication in machine *words* of
``Theta(log n)`` bits.  Every payload stored on a machine or sent in a round
is charged according to :func:`word_size`:

* scalars (ints, floats, bools, ``None``) cost one word — vertex ids, edge
  weights and counters all fit in ``O(log n)`` bits by the paper's
  conventions;
* containers cost the sum of their elements (an ``(u, v, w)`` edge costs 3);
* objects may define their own cost by implementing ``word_size()`` —
  sketches and flow labels do this.

Strings are charged one word per 8 characters (a word is at least 64 bits at
any practical ``n``); they only appear in debugging payloads.
"""

from __future__ import annotations

from typing import Any

__all__ = ["word_size"]

_SCALARS = (int, float, bool, type(None))


def word_size(obj: Any) -> int:
    """Return the number of machine words needed to represent *obj*."""
    if isinstance(obj, _SCALARS):
        return 1
    sizer = getattr(obj, "word_size", None)
    if callable(sizer):
        return int(sizer())
    if isinstance(obj, str):
        return 1 + len(obj) // 8
    if isinstance(obj, dict):
        return sum(word_size(k) + word_size(v) for k, v in obj.items())
    if isinstance(obj, (tuple, list, set, frozenset)):
        return sum(word_size(item) for item in obj)
    raise TypeError(f"cannot compute word size of {type(obj).__name__}")
