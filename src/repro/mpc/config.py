"""Model configurations for the Heterogeneous MPC simulator.

The paper's model (Section 2): one *large* machine with memory
``O(n polylog n)`` and ``K = m / n^gamma`` *small* machines with memory
``O(n^gamma polylog n)`` each, ``gamma in (0, 1)``.  Section 6 generalizes to
machines of memory ``n^{1+f(n)}``; Theorems 3.1 and 5.5 exploit a large
machine with superlinear memory, which we expose through
``large_memory_exponent = 1 + f``.

We also provide a pure *sublinear* configuration (no large machine) for the
baseline column of Table 1, and a *near-linear* configuration where every
machine has near-linear memory.

Capacities are ``constant * n^exponent * (log2 n)^polylog_power`` words.  At
the sizes a single-host simulation can reach, the polylog slack dominates
the asymptotics, so by default the simulator *records* capacity violations
in the ledger instead of raising; pass ``strict=True`` to hard-fail.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from .throttle import ThrottlePolicy

__all__ = ["ModelConfig"]


@dataclass(frozen=True)
class ModelConfig:
    """Parameters of a (possibly heterogeneous) MPC deployment.

    Attributes:
        n: number of vertices of the input graph.
        m: number of edges of the input graph.
        gamma: memory exponent of the small machines.
        large_memory_exponent: memory exponent of the large machine(s);
            ``1.0`` is the paper's near-linear large machine, ``1 + f``
            models Theorems 3.1 / 5.5.
        num_large: number of large machines (0 for the sublinear regime,
            1 for the paper's Heterogeneous MPC model).
        num_small: number of small machines; defaults to
            ``max(2, ceil(m / n^gamma))`` as in the paper.
        polylog_power: exponent of the ``log^a n`` slack in every capacity.
        constant: leading constant of every capacity.
        strict: raise on capacity violations instead of recording them.
        throttle: the adaptive-throttling policy
            (:class:`~repro.mpc.throttle.ThrottlePolicy`); the default
            ``mode="off"`` attaches no controller at all.
        executor: where per-machine local compute runs
            (:mod:`repro.mpc.executor`): ``"serial"``, ``"process"``, or
            ``None`` — the default — which defers to the ambient
            ``REPRO_EXECUTOR`` resolution.  Ledgers and results are
            identical across executors by construction.
        executor_workers: process-pool size for the ``"process"``
            executor; 0 means one worker per CPU.
    """

    n: int
    m: int
    gamma: float = 0.5
    large_memory_exponent: float = 1.0
    num_large: int = 1
    num_small: int = 0
    polylog_power: int = 2
    constant: float = 4.0
    strict: bool = False
    throttle: ThrottlePolicy = field(default_factory=ThrottlePolicy)
    executor: str | None = None
    executor_workers: int = 0

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError("need at least 2 vertices")
        if not 0.0 < self.gamma < 1.0:
            raise ValueError("gamma must lie in (0, 1)")
        if self.executor is not None and self.executor not in ("serial", "process"):
            raise ValueError(
                f"unknown executor {self.executor!r} "
                "(expected 'serial' or 'process')"
            )
        if self.executor_workers < 0:
            raise ValueError("executor_workers must be non-negative")
        if self.num_small <= 0:
            default = max(2, math.ceil(max(self.m, 1) / self.n**self.gamma))
            object.__setattr__(self, "num_small", default)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def _capacity(self, exponent: float) -> int:
        polylog = max(1.0, math.log2(self.n)) ** self.polylog_power
        return max(8, int(self.constant * self.n**exponent * polylog))

    @property
    def small_capacity(self) -> int:
        """Memory (and per-round bandwidth) of one small machine, in words."""
        return self._capacity(self.gamma)

    @property
    def large_capacity(self) -> int:
        """Memory (and per-round bandwidth) of one large machine, in words."""
        return self._capacity(self.large_memory_exponent)

    @property
    def f(self) -> float:
        """The superlinear-memory parameter ``f`` with large memory
        ``n^{1+f}`` (Theorem 3.1); ``f = 1/log n`` for a near-linear
        machine."""
        extra = self.large_memory_exponent - 1.0
        return max(extra, 1.0 / max(2.0, math.log2(self.n)))

    @property
    def tree_fanout(self) -> int:
        """Branching factor of aggregation/dissemination trees — ``n^gamma``
        as in the proofs of Claims 2 and 3."""
        return max(2, int(self.n**self.gamma))

    # ------------------------------------------------------------------
    # Named regimes
    # ------------------------------------------------------------------
    @classmethod
    def heterogeneous(cls, n: int, m: int, gamma: float = 0.5, **kw) -> "ModelConfig":
        """The paper's Heterogeneous MPC model: one near-linear machine plus
        ``m / n^gamma`` sublinear machines."""
        return cls(n=n, m=m, gamma=gamma, num_large=1, **kw)

    @classmethod
    def heterogeneous_superlinear(
        cls, n: int, m: int, f: float, gamma: float = 0.5, **kw
    ) -> "ModelConfig":
        """Heterogeneous MPC with a superlinear large machine of memory
        ``n^{1+f} polylog n`` (Theorems 3.1 and 5.5)."""
        if f < 0:
            raise ValueError("f must be non-negative")
        return cls(
            n=n, m=m, gamma=gamma, num_large=1, large_memory_exponent=1.0 + f, **kw
        )

    @classmethod
    def general(
        cls,
        n: int,
        m: int,
        s_sub: int,
        s_lin: int = 0,
        s_sup: int = 0,
        gamma: float = 0.5,
        **kw,
    ) -> "ModelConfig":
        """The generalized ``(S_sub, S_lin, S_sup)``-Heterogeneous MPC model
        proposed in Section 6: total memories per machine class translate
        into machine counts (``S_sub / n^gamma`` small machines and
        ``S_lin / n`` near-linear or ``S_sup / n^{1+gamma}`` superlinear
        large machines).

        The paper's model is ``general(n, m, s_sub=m, s_lin=n)``.  Mixing
        near-linear *and* superlinear machines in one deployment is left
        open by the paper and unsupported here (raise).
        """
        if s_lin and s_sup:
            raise ValueError(
                "mixed near-linear + superlinear deployments are an open "
                "problem in the paper and not supported"
            )
        num_small = max(2, math.ceil(s_sub / n**gamma))
        if s_sup:
            exponent = 1.0 + gamma
            num_large = max(1, math.ceil(s_sup / n**exponent))
        elif s_lin:
            exponent = 1.0
            num_large = max(1, math.ceil(s_lin / n))
        else:
            exponent = 1.0
            num_large = 0
        return cls(
            n=n,
            m=m,
            gamma=gamma,
            num_small=num_small,
            num_large=num_large,
            large_memory_exponent=exponent,
            **kw,
        )

    @classmethod
    def sublinear(cls, n: int, m: int, gamma: float = 0.5, **kw) -> "ModelConfig":
        """The sublinear MPC regime: no large machine at all."""
        return cls(n=n, m=m, gamma=gamma, num_large=0, **kw)

    @classmethod
    def near_linear(cls, n: int, m: int, **kw) -> "ModelConfig":
        """The near-linear MPC regime: every machine has ``~n`` memory.

        Modelled as small machines whose exponent is pushed to (almost) 1;
        we keep one designated large machine so near-linear algorithms that
        centralize ``~n`` words run unchanged.
        """
        num_small = max(2, math.ceil(max(m, 1) / max(n, 2)))
        return cls(n=n, m=m, gamma=0.999999, num_large=1, num_small=num_small, **kw)

    def with_strict(self, strict: bool = True) -> "ModelConfig":
        """Return a copy of this configuration with strict checking set."""
        return replace(self, strict=strict)

    def with_throttle(
        self, policy: "ThrottlePolicy | str", **kw
    ) -> "ModelConfig":
        """Return a copy with the given throttle policy.

        Accepts a full :class:`~repro.mpc.throttle.ThrottlePolicy` or a
        mode string shorthand (``"off"``/``"advise"``/``"enforce"``)
        with policy fields as keywords::

            config.with_throttle("enforce", headroom=0.85)
        """
        if isinstance(policy, str):
            policy = ThrottlePolicy(mode=policy, **kw)
        elif kw:
            raise TypeError("pass either a ThrottlePolicy or mode + keywords")
        return replace(self, throttle=policy)

    def with_executor(self, executor: str, workers: int = 0) -> "ModelConfig":
        """Return a copy selecting where local compute runs
        (:mod:`repro.mpc.executor`)::

            config.with_executor("process", workers=4)

        ``workers`` sizes the process pool (0 = one per CPU).  Executor
        choice never changes ledgers or results — only wall-clock.
        """
        return replace(self, executor=executor, executor_workers=workers)
