"""Adaptive communication throttling: the feedback-control layer.

The ledger *records* capacity violations; this module closes the loop so
protocols stay under budget on adversarially dense inputs instead of
merely reporting the breach.  Two pieces:

* :class:`PeakHoldLoadEstimator` — predicts next-round per-machine load
  from the ledger's per-round stream.  Each executed round contributes
  one *load fraction* per budget (worst ``words / capacity`` over the
  machines for traffic, worst ``usage / capacity`` for memory); the
  prediction is the held peak over a sliding window of recent rounds.
  Peak-hold rather than a mean is deliberate: the budgets are hard
  per-round limits, so the controller must provision for the recent
  worst case, not the average — a single over-budget round is a
  violation no matter how idle its neighbours were.

* :class:`ThrottleController` — owns the estimator and the degradation
  machinery, configured by a :class:`ThrottlePolicy` on
  :class:`~repro.mpc.config.ModelConfig`:

  - ``mode="off"``: no controller is attached at all; the hot path and
    every artifact byte are identical to a build without this module.
  - ``mode="advise"``: the estimator runs and throttling *decisions*
    are recorded as :class:`ThrottleEvent` entries, but behaviour is
    unchanged — a dry run for sizing headroom.
  - ``mode="enforce"``: decisions are applied.  An over-budget
    :class:`~repro.mpc.plan.RoundPlan` is split across extra rounds at
    the run-column boundary (:meth:`ThrottleController.split_plan`),
    and the primitives lower participation through the throttle hooks
    (tree fan-in/out via :meth:`~ThrottleController.fanout`, sort
    sample rates via :meth:`~ThrottleController.sample_rate`).

Determinism: every decision is a pure function of the policy and the
ledger history, both of which are bit-identical across engine backends
and across serial/parallel scenario execution — so throttled artifacts
stay byte-deterministic (pinned by tests and the determinism CI job).

Honesty: splitting re-schedules *transport* — each extra round is
charged to the ledger like any other round.  It cannot shrink a
machine's *stored* state; memory violations are predicted and surfaced
(:meth:`~ThrottleController.note_bank`, advise events) but only the
participation hooks, which shrink in-flight scratch, can reduce them.
An indivisible payload larger than a budget still violates and is still
recorded — the controller degrades gracefully, it never hides a breach.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

from .plan import RoundPlan
from .words import word_size

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .ledger import RoundLedger

try:  # pragma: no cover - import guard exercised on minimal installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "MODES",
    "PeakHoldLoadEstimator",
    "ThrottleController",
    "ThrottleEvent",
    "ThrottlePolicy",
]

#: The recognised throttle modes, in increasing order of intervention.
MODES = ("off", "advise", "enforce")


@dataclass(frozen=True)
class ThrottlePolicy:
    """Configuration of the throttle controller (on ``ModelConfig``).

    Attributes:
        mode: one of :data:`MODES`.
        headroom: target fraction of each capacity the controller
            provisions to — budgets are ``headroom * capacity``, so a
            0.9 headroom keeps a 10% safety margin under the hard limit.
        window: peak-hold window of the load estimator, in rounds.
        min_fanout: floor for throttled tree fanouts (a tree must still
            branch, or dissemination never terminates).
        min_scale: floor for the participation scale factor — graceful
            degradation, never a full stop.
    """

    mode: str = "off"
    headroom: float = 0.9
    window: int = 8
    min_fanout: int = 2
    min_scale: float = 0.25

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown throttle mode {self.mode!r}; known: {MODES}")
        if not 0.0 < self.headroom <= 1.0:
            raise ValueError("headroom must lie in (0, 1]")
        if self.window < 1:
            raise ValueError("window must be >= 1 round")
        if self.min_fanout < 2:
            raise ValueError("min_fanout must be >= 2 (trees must branch)")
        if not 0.0 < self.min_scale <= 1.0:
            raise ValueError("min_scale must lie in (0, 1]")

    @property
    def enabled(self) -> bool:
        """Whether a controller should observe rounds at all."""
        return self.mode != "off"

    @property
    def enforcing(self) -> bool:
        """Whether throttling decisions are applied (vs only recorded)."""
        return self.mode == "enforce"


@dataclass(frozen=True)
class ThrottleEvent:
    """One recorded throttling decision.

    ``applied`` distinguishes enforce-mode interventions from
    advise-mode dry-run observations of the same decision.
    """

    round: int
    kind: str  # "split" | "fanout" | "sample_rate" | "bank"
    note: str
    before: float
    after: float
    applied: bool


class PeakHoldLoadEstimator:
    """Peak-hold predictor over per-round load fractions.

    Fed one observation per executed round (see the module docstring);
    :attr:`predicted_traffic` / :attr:`predicted_memory` are the held
    peaks over the last ``window`` rounds — the estimator's forecast of
    the next round's worst per-machine budget fraction.
    """

    __slots__ = ("window", "observations", "_traffic", "_memory")

    def __init__(self, window: int = 8) -> None:
        if window < 1:
            raise ValueError("window must be >= 1 round")
        self.window = window
        self.observations = 0
        self._traffic: deque[float] = deque(maxlen=window)
        self._memory: deque[float] = deque(maxlen=window)

    def observe(self, traffic_frac: float, memory_frac: float = 0.0) -> None:
        """Record one round's worst traffic and memory budget fractions."""
        self.observations += 1
        self._traffic.append(float(traffic_frac))
        self._memory.append(float(memory_frac))

    @property
    def predicted_traffic(self) -> float:
        """Held peak of the per-round traffic fraction (0.0 when unfed)."""
        return max(self._traffic, default=0.0)

    @property
    def predicted_memory(self) -> float:
        """Held peak of the per-round memory fraction (0.0 when unfed)."""
        return max(self._memory, default=0.0)

    @classmethod
    def from_ledger(
        cls, ledger: "RoundLedger", capacity: int, window: int = 8
    ) -> "PeakHoldLoadEstimator":
        """Replay a finished ledger's ``RoundRecord`` stream offline.

        For post-hoc analysis and tests: traffic fractions come from each
        record's ``max(max_sent, max_received)`` against *capacity* (use
        the binding — usually smallest — capacity), the memory fraction
        from the final ``memory_high_water`` table (the ledger keeps
        high-water marks, not a per-round memory series).
        """
        estimator = cls(window=window)
        cap = max(1, capacity)
        memory_frac = ledger.max_memory / cap
        for record in ledger.records:
            estimator.observe(
                max(record.max_sent, record.max_received) / cap, memory_frac
            )
        return estimator


class ThrottleController:
    """Applies a :class:`ThrottlePolicy` using the estimator's forecast.

    One controller per cluster, created by ``Cluster.__init__`` when the
    config's policy is not ``off``.  The cluster feeds it after every
    round (:meth:`observe`); primitives consult the hooks; ``execute``
    asks :meth:`split_plan` before running a plan in enforce mode.
    """

    def __init__(self, policy: ThrottlePolicy, capacities: Mapping[int, int]) -> None:
        self.policy = policy
        self.capacities = dict(capacities)
        self.estimator = PeakHoldLoadEstimator(policy.window)
        self.events: list[ThrottleEvent] = []
        self.splits = 0
        self.extra_rounds = 0
        self.overload_rounds = 0
        self.peak_traffic_frac = 0.0
        self.peak_memory_frac = 0.0
        self._round = 0

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------
    def observe(self, traffic_frac: float, memory_frac: float) -> None:
        """Feed one executed round's budget fractions to the estimator."""
        self._round += 1
        self.estimator.observe(traffic_frac, memory_frac)
        self.peak_traffic_frac = max(self.peak_traffic_frac, traffic_frac)
        self.peak_memory_frac = max(self.peak_memory_frac, memory_frac)
        if max(traffic_frac, memory_frac) > self.policy.headroom:
            self.overload_rounds += 1

    def scale(self) -> float:
        """Current participation scale in ``[min_scale, 1.0]``.

        1.0 while the forecast stays inside headroom; otherwise shrink
        proportionally so the forecast load lands back on the headroom
        line (classic multiplicative feedback), floored at ``min_scale``.
        """
        predicted = self.estimator.predicted_traffic
        if predicted <= self.policy.headroom:
            return 1.0
        return max(self.policy.min_scale, self.policy.headroom / predicted)

    # ------------------------------------------------------------------
    # Hooks (primitives)
    # ------------------------------------------------------------------
    def fanout(self, base: int, note: str = "") -> int:
        """Throttle hook for tree fan-in/out (broadcast, converge-cast,
        disseminate, columnar aggregation).  Returns *base* unless the
        forecast is over headroom in enforce mode."""
        scale = self.scale()
        if scale >= 1.0:
            return base
        throttled = max(self.policy.min_fanout, int(base * scale))
        if throttled >= base:
            return base
        self.events.append(
            ThrottleEvent(
                round=self._round, kind="fanout", note=note,
                before=base, after=throttled, applied=self.policy.enforcing,
            )
        )
        return throttled if self.policy.enforcing else base

    def sample_rate(self, base: float, note: str = "") -> float:
        """Throttle hook for sampling rates (``sample_sort`` splitter
        sampling).  Scales the rate down when the forecast is over
        headroom in enforce mode."""
        scale = self.scale()
        if scale >= 1.0 or base <= 0.0:
            return base
        throttled = base * scale
        self.events.append(
            ThrottleEvent(
                round=self._round, kind="sample_rate", note=note,
                before=base, after=throttled, applied=self.policy.enforcing,
            )
        )
        return throttled if self.policy.enforcing else base

    def note_bank(self, words: int, capacity: int, note: str = "") -> None:
        """Advisory hook for bulk resident state (the connectivity
        sketch-bank build): a planned allocation past headroom is
        recorded as an event.  Memory cannot be re-scheduled the way
        traffic can — the bank *is* the algorithm's working set — so
        this hook never blocks; it feeds the advise channel and the
        artifact's throttle block."""
        if capacity <= 0:
            return
        if words > self.policy.headroom * capacity:
            self.events.append(
                ThrottleEvent(
                    round=self._round, kind="bank", note=note,
                    before=words, after=capacity, applied=False,
                )
            )

    # ------------------------------------------------------------------
    # Plan splitting (enforce mode)
    # ------------------------------------------------------------------
    def budget(self, machine_id: int) -> int | None:
        """Headroom budget of a machine in words (None when unknown —
        ``execute`` raises ``ProtocolError`` for unknown machines)."""
        capacity = self.capacities.get(machine_id)
        if capacity is None:
            return None
        return max(1, int(self.policy.headroom * capacity))

    def split_plan(self, plan: RoundPlan) -> list[RoundPlan]:
        """Split *plan* into per-round chunks within headroom budgets.

        First-fit pass over the run columns in send-call order: each
        piece lands in the earliest chunk where both its sender's and
        receiver's running volumes stay within budget (per-machine
        tallies — saturating one sender never cuts off packing for the
        others), floored at the chunk holding the previous piece for the
        same destination so per-destination delivery order is preserved.
        Each chunk is one extra round.  A single run larger than the
        binding budget is sliced at item granularity (numpy blocks by
        row slices, object runs by cumulative word size); an indivisible
        over-budget item is emitted alone in an otherwise-idle slot for
        its machines and still violates.

        Order preservation: chunks execute in sequence, pieces for one
        destination occupy non-decreasing chunk indices in send order,
        and each chunk keeps insertion order — so the concatenated
        inboxes observe the exact original per-destination send order
        and the summed words/items equal the unsplit plan's (pinned by
        property tests).  Returns ``[plan]`` untouched when every
        machine already fits its budget.
        """
        if not self.policy.enforcing:
            return [plan]
        run_srcs, run_dsts, _run_lens, run_words = plan.run_meta()
        sent: dict[int, int] = {}
        received: dict[int, int] = {}
        for src, dst, words in zip(run_srcs, run_dsts, run_words):
            sent[src] = sent.get(src, 0) + words
            received[dst] = received.get(dst, 0) + words
        if self._fits(sent) and self._fits(received):
            return [plan]

        def side_fits(current: int, words: int, budget: int | None) -> bool:
            if budget is None or current + words <= budget:
                return True
            # An indivisible over-budget piece can never fit; allow it
            # alone in a slot where this machine is otherwise idle.
            return current == 0 and words > budget

        buckets: list[list[tuple[int, int, object]]] = []
        chunk_sent: list[dict[int, int]] = []
        chunk_received: list[dict[int, int]] = []
        dst_floor: dict[int, int] = {}
        for (src, dst, items), words in zip(plan.runs(), run_words):
            src_budget = self.budget(src)
            dst_budget = self.budget(dst)
            for piece, piece_words in self._pieces(items, words, src_budget, dst_budget):
                index = dst_floor.get(dst, 0)
                while index < len(buckets) and not (
                    side_fits(chunk_sent[index].get(src, 0), piece_words, src_budget)
                    and side_fits(
                        chunk_received[index].get(dst, 0), piece_words, dst_budget
                    )
                ):
                    index += 1
                if index == len(buckets):
                    buckets.append([])
                    chunk_sent.append({})
                    chunk_received.append({})
                buckets[index].append((src, dst, piece))
                chunk_sent[index][src] = chunk_sent[index].get(src, 0) + piece_words
                chunk_received[index][dst] = (
                    chunk_received[index].get(dst, 0) + piece_words
                )
                dst_floor[dst] = index
        if len(buckets) <= 1:
            return [plan]
        chunks: list[RoundPlan] = []
        for bucket in buckets:
            chunk = RoundPlan(note=plan.note, backend=plan.backend)
            for src, dst, piece in bucket:
                chunk.send_batch(src, dst, piece)
            chunks.append(chunk)
        self.splits += 1
        self.extra_rounds += len(chunks) - 1
        self.events.append(
            ThrottleEvent(
                round=self._round, kind="split", note=plan.note,
                before=1, after=len(chunks), applied=True,
            )
        )
        return chunks

    def _fits(self, volumes: Mapping[int, int]) -> bool:
        for machine_id, words in volumes.items():
            budget = self.budget(machine_id)
            if budget is not None and words > budget:
                return False
        return True

    def _pieces(
        self,
        items: object,
        total_words: int,
        src_budget: int | None,
        dst_budget: int | None,
    ) -> Iterator[tuple[object, int]]:
        """Slice one run into budget-sized pieces (see :meth:`split_plan`)."""
        budgets = [b for b in (src_budget, dst_budget) if b is not None]
        limit = min(budgets) if budgets else None
        if limit is None or total_words <= limit:
            yield items, total_words
            return
        if _np is not None and isinstance(items, _np.ndarray):
            rows = int(items.shape[0])
            per_row = max(1, total_words // rows)
            step = max(1, limit // per_row)
            for start in range(0, rows, step):
                piece = items[start:start + step]
                yield piece, int(piece.size)
            return
        piece: list = []
        piece_words = 0
        for item in items:
            words = word_size(item)
            if piece and piece_words + words > limit:
                yield piece, piece_words
                piece = []
                piece_words = 0
            piece.append(item)
            piece_words += words
        if piece:
            yield piece, piece_words

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def event_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def summary(self) -> dict:
        """Deterministic JSON-serializable digest (the artifact's
        ``throttle`` block is assembled from these)."""
        counts = self.event_counts()
        return {
            "mode": self.policy.mode,
            "headroom": self.policy.headroom,
            "window": self.policy.window,
            "splits": self.splits,
            "extra_rounds": self.extra_rounds,
            "overload_rounds": self.overload_rounds,
            "peak_traffic_frac": round(self.peak_traffic_frac, 6),
            "peak_memory_frac": round(self.peak_memory_frac, 6),
            "fanout_events": counts.get("fanout", 0),
            "sample_rate_events": counts.get("sample_rate", 0),
            "bank_events": counts.get("bank", 0),
            "events": len(self.events),
        }
