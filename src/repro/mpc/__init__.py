"""Heterogeneous MPC simulator: machines, rounds, and accounting.

This package implements the computational model of Section 2 of the paper:
synchronous rounds, per-round communication bounded by machine memory, one
near-linear machine plus many sublinear machines (with sublinear-only and
superlinear-large variants for the baselines and for Theorems 3.1/5.5).

The RoundPlan API (batched round engine)
----------------------------------------

One synchronous round is described by a :class:`RoundPlan` and executed by
:meth:`Cluster.execute`::

    plan = RoundPlan(note="route")
    plan.send(src, dst, item)                 # one item
    plan.send_batch(src, dst, [a, b, c])      # a whole batch, sized in bulk
    inboxes = cluster.execute(plan)           # charges exactly one round

The plan groups traffic per ``(src, dst)`` pair for accounting; ``execute``
sizes every batch with one :func:`word_size_many` pass (fast-pathing
homogeneous scalar, edge-tuple, and bytes batches), charges send/receive
volumes against machine capacities, and fills inboxes in exact send-call
order.  A plan that moves no data is a no-op (zero rounds).  Per-round
item counts and wall-clock time are recorded in the ledger's
:class:`NoteStats` so benchmarks can attribute cost per note label.

Both budgets of the model are enforced: per-round communication volumes
and per-machine memory (``Machine.put`` datasets versus capacity, checked
at every round and at input placement).  In strict mode
(``ModelConfig(strict=True)``) the former raises
:class:`CommunicationLimitExceeded` and the latter
:class:`MemoryLimitExceeded`; otherwise both are recorded in the ledger's
``violations`` stream.

Compatibility policy
--------------------

:meth:`Cluster.exchange` — the original per-``(src, dst, payload)`` message
API — is retained indefinitely as a thin wrapper that builds a plan and
calls ``execute``.  Rounds charged, words charged, strict-mode behavior,
ledger totals, and inbox orderings are identical on both paths: the plan
tracks per-destination delivery segments, so even message lists that
interleave sources deliver in exact per-message order (pinned by a
property test in ``tests/mpc/test_plan.py``).  New code should prefer
``RoundPlan`` + ``Cluster.execute``; ``exchange`` exists so external
callers never break.
"""

from .cluster import Cluster, Message
from .config import ModelConfig
from .errors import (
    AlgorithmFailure,
    CommunicationLimitExceeded,
    MemoryLimitExceeded,
    MPCError,
    ProtocolError,
)
from .ledger import NoteStats, RoundLedger, RoundRecord
from .machine import LARGE, SMALL, Machine
from .plan import RoundPlan
from .words import word_size, word_size_many

__all__ = [
    "Cluster",
    "Message",
    "ModelConfig",
    "RoundLedger",
    "RoundPlan",
    "RoundRecord",
    "NoteStats",
    "Machine",
    "SMALL",
    "LARGE",
    "word_size",
    "word_size_many",
    "MPCError",
    "MemoryLimitExceeded",
    "CommunicationLimitExceeded",
    "ProtocolError",
    "AlgorithmFailure",
]
