"""Heterogeneous MPC simulator: machines, rounds, and accounting.

This package implements the computational model of Section 2 of the paper:
synchronous rounds, per-round communication bounded by machine memory, one
near-linear machine plus many sublinear machines (with sublinear-only and
superlinear-large variants for the baselines and for Theorems 3.1/5.5).

The RoundPlan API (columnar round engine)
-----------------------------------------

One synchronous round is described by a :class:`RoundPlan` and executed by
:meth:`Cluster.execute`::

    plan = RoundPlan(note="route")
    plan.send(src, dst, item)                 # one item
    plan.send_batch(src, dst, [a, b, c])      # a whole batch, sized in bulk
    plan.send_indexed(src, dsts, items)       # a scatter: item i -> dsts[i]
    inboxes = cluster.execute(plan)           # charges exactly one round

The plan stores traffic as per-``(src, dst)`` runs in flat parallel
arrays over one flat payload store; ``execute`` sizes every run exactly
once with :func:`word_size_many` (fast-pathing homogeneous scalar,
edge-tuple, and bytes batches; numeric numpy blocks size O(1)), caches
the totals on the plan, accumulates send/receive volumes in a single
grouped pass over the run columns, and fills inboxes in exact send-call
order.  A plan that moves no data is a no-op (zero rounds).  Per-round
item counts and wall-clock time are recorded in the ledger's
:class:`NoteStats` so benchmarks can attribute cost per note label.

``send_indexed`` scatters group on the engine backend seam
(:mod:`repro.mpc.backend`): the pure-Python default buckets stably per
destination; the optional numpy backend (``pip install .[fast]``, or
``REPRO_ENGINE_BACKEND=numpy``) groups numpy columns with one stable
argsort and keeps payloads as zero-copy array blocks.  Ledgers are
bit-identical across backends by construction — both derive all
accounting from the same integer run metadata.

Both budgets of the model are enforced: per-round communication volumes
and per-machine memory (``Machine.put`` datasets versus capacity, checked
at every round and at input placement).  In strict mode
(``ModelConfig(strict=True)``) the former raises
:class:`CommunicationLimitExceeded` and the latter
:class:`MemoryLimitExceeded`; otherwise both are recorded in the ledger's
``violations`` stream.

Local compute runs on the *executor seam* (:mod:`repro.mpc.executor`):
the primitives' hot per-machine loops are registered *local steps* —
pure functions over one machine's shard — dispatched through
:meth:`Cluster.run_local_steps`.  The default :class:`SerialExecutor`
runs them inline; ``ModelConfig.with_executor("process", workers=N)``
(or ``REPRO_EXECUTOR=process``) fans shippable steps out over a process
pool.  All accounting stays derived from plans on the coordinator, so
ledgers and artifacts are byte-identical across executors — and inside
``bench --jobs N`` workers the seam always degrades to serial (nested
parallelism is guarded; ``--jobs`` wins over ``--executor``).

Compatibility policy
--------------------

:meth:`Cluster.exchange` — the original per-``(src, dst, payload)`` message
API — is retained indefinitely as a pure delegate that builds a plan and
calls ``execute`` (it owns no delivery or accounting logic).  Rounds
charged, words charged, strict-mode behavior, ledger totals, and inbox
orderings are identical on both paths: the plan stores runs in send-call
order, so even message lists that interleave sources deliver in exact
per-message order (pinned by the differential property test in
``tests/integration/test_engine_differential.py``).  New code should
prefer ``RoundPlan`` + ``Cluster.execute``; ``exchange`` exists so
external callers never break.
"""

from .backend import (
    HAS_NUMPY,
    NumpyEngineBackend,
    PureEngineBackend,
    available_engine_backends,
    get_engine_backend,
)
from .cluster import Cluster, Message
from .config import ModelConfig
from .errors import (
    AlgorithmFailure,
    CapacityExceeded,
    CommunicationLimitExceeded,
    MemoryLimitExceeded,
    MPCError,
    ProtocolError,
)
from .executor import (
    LocalStep,
    ProcessExecutor,
    SerialExecutor,
    available_executors,
    forced_executor,
    get_executor,
    local_step,
    shutdown_pools,
)
from .ledger import NoteStats, RoundLedger, RoundRecord, Violation
from .machine import LARGE, SMALL, Machine
from .plan import RoundPlan
from .throttle import (
    PeakHoldLoadEstimator,
    ThrottleController,
    ThrottleEvent,
    ThrottlePolicy,
)
from .words import word_size, word_size_many

__all__ = [
    "Cluster",
    "Message",
    "ModelConfig",
    "RoundLedger",
    "RoundPlan",
    "RoundRecord",
    "NoteStats",
    "Machine",
    "SMALL",
    "LARGE",
    "word_size",
    "word_size_many",
    "HAS_NUMPY",
    "PureEngineBackend",
    "NumpyEngineBackend",
    "available_engine_backends",
    "get_engine_backend",
    "MPCError",
    "CapacityExceeded",
    "MemoryLimitExceeded",
    "CommunicationLimitExceeded",
    "ProtocolError",
    "AlgorithmFailure",
    "Violation",
    "ThrottlePolicy",
    "ThrottleController",
    "ThrottleEvent",
    "PeakHoldLoadEstimator",
    "LocalStep",
    "SerialExecutor",
    "ProcessExecutor",
    "available_executors",
    "forced_executor",
    "get_executor",
    "local_step",
    "shutdown_pools",
]
