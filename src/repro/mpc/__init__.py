"""Heterogeneous MPC simulator: machines, rounds, and accounting.

This package implements the computational model of Section 2 of the paper:
synchronous rounds, per-round communication bounded by machine memory, one
near-linear machine plus many sublinear machines (with sublinear-only and
superlinear-large variants for the baselines and for Theorems 3.1/5.5).

The RoundPlan API (batched round engine)
----------------------------------------

One synchronous round is described by a :class:`RoundPlan` and executed by
:meth:`Cluster.execute`::

    plan = RoundPlan(note="route")
    plan.send(src, dst, item)                 # one item
    plan.send_batch(src, dst, [a, b, c])      # a whole batch, sized in bulk
    inboxes = cluster.execute(plan)           # charges exactly one round

The plan groups traffic per ``(src, dst)`` pair; ``execute`` sizes every
batch with one :func:`word_size_many` pass (fast-pathing homogeneous scalar
and edge-tuple batches), charges send/receive volumes against machine
capacities, raises :class:`CommunicationLimitExceeded` in strict mode, and
fills inboxes batch by batch.  Per-round item counts and wall-clock time
are recorded in the ledger's :class:`NoteStats` so benchmarks can attribute
cost per note label.

Compatibility policy
--------------------

:meth:`Cluster.exchange` — the original per-``(src, dst, payload)`` message
API — is retained indefinitely as a thin wrapper that builds a plan and
calls ``execute``.  Rounds charged, words charged, strict-mode behavior and
ledger totals are identical on both paths.  The only divergence is inbox
ordering when a message list interleaves sources: deliveries are grouped by
``(src, dst)`` pair (pairs in first-send order, items in send order).
Source-major producers — every producer in this repo — observe byte-for-byte
identical inboxes.  New code should prefer ``RoundPlan`` +
``Cluster.execute``; ``exchange`` exists so external callers never break.
"""

from .cluster import Cluster, Message
from .config import ModelConfig
from .errors import (
    AlgorithmFailure,
    CommunicationLimitExceeded,
    MemoryLimitExceeded,
    MPCError,
    ProtocolError,
)
from .ledger import NoteStats, RoundLedger, RoundRecord
from .machine import LARGE, SMALL, Machine
from .plan import RoundPlan
from .words import word_size, word_size_many

__all__ = [
    "Cluster",
    "Message",
    "ModelConfig",
    "RoundLedger",
    "RoundPlan",
    "RoundRecord",
    "NoteStats",
    "Machine",
    "SMALL",
    "LARGE",
    "word_size",
    "word_size_many",
    "MPCError",
    "MemoryLimitExceeded",
    "CommunicationLimitExceeded",
    "ProtocolError",
    "AlgorithmFailure",
]
