"""Heterogeneous MPC simulator: machines, rounds, and accounting.

This package implements the computational model of Section 2 of the paper:
synchronous rounds, per-round communication bounded by machine memory, one
near-linear machine plus many sublinear machines (with sublinear-only and
superlinear-large variants for the baselines and for Theorems 3.1/5.5).
"""

from .cluster import Cluster, Message
from .config import ModelConfig
from .errors import (
    AlgorithmFailure,
    CommunicationLimitExceeded,
    MemoryLimitExceeded,
    MPCError,
    ProtocolError,
)
from .ledger import RoundLedger, RoundRecord
from .machine import LARGE, SMALL, Machine
from .words import word_size

__all__ = [
    "Cluster",
    "Message",
    "ModelConfig",
    "RoundLedger",
    "RoundRecord",
    "Machine",
    "SMALL",
    "LARGE",
    "word_size",
    "MPCError",
    "MemoryLimitExceeded",
    "CommunicationLimitExceeded",
    "ProtocolError",
    "AlgorithmFailure",
]
