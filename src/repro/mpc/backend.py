"""Compute backends for the columnar round engine.

The engine's one per-item hot loop — grouping a ``send_indexed`` scatter
(a destination column plus a payload column) into per-``(src, dst)``
delivery runs — goes through a small kernel seam, mirroring
:mod:`repro.sketches.backend`:

* :class:`PureEngineBackend` (the default) is dependency-free Python: a
  stable dict-bucketing pass over the destination column.
* :class:`NumpyEngineBackend` groups numpy columns with one stable
  ``argsort`` and boundary scan, so a 100k-item scatter needs no per-item
  Python bytecode at all.  Payload columns stay numpy arrays end to end
  (the run's *block*), which makes word sizing O(1) per run
  (``block.size`` — every element of a numeric dtype is one machine word,
  exactly like the equivalent tuple of scalars).

Both backends emit runs in **ascending destination order with stable
per-destination item order**, and all round accounting (words, volumes,
violations) is derived from the same integer run metadata — so the
ledgers produced under either backend are bit-identical by construction.
There is a dedicated differential test suite pinning this.

The ``REPRO_ENGINE_BACKEND`` environment variable (``pure``, ``numpy`` or
``auto``) overrides the default backend choice; numpy is the same
optional extra as the sketch substrate (``pip install .[fast]``).
"""

from __future__ import annotations

from typing import Any, Sequence
from ..env import env_name

try:  # optional accelerator — the pure backend is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on minimal installs
    _np = None

__all__ = [
    "HAS_NUMPY",
    "PureEngineBackend",
    "NumpyEngineBackend",
    "get_engine_backend",
    "available_engine_backends",
]

HAS_NUMPY = _np is not None

_ENV_VAR = "REPRO_ENGINE_BACKEND"


def _group_pure(dsts: Sequence[int], items: Sequence[Any]) -> list[tuple[int, list[Any]]]:
    """Stable dict-bucketing of *items* by destination, ascending dst."""
    buckets: dict[int, list[Any]] = {}
    for dst, item in zip(dsts, items):
        bucket = buckets.get(dst)
        if bucket is None:
            buckets[dst] = [item]
        else:
            bucket.append(item)
    return [(dst, buckets[dst]) for dst in sorted(buckets)]


class PureEngineBackend:
    """Dependency-free grouping kernels over Python lists."""

    name = "pure"

    def group_indexed(
        self, dsts: Sequence[int], items: Sequence[Any]
    ) -> list[tuple[int, Any]]:
        """Split one scatter into ``(dst, block)`` runs.

        Runs come back in ascending destination order; within a run, items
        keep their scatter order (stable).  Array inputs are accepted for
        backend interchangeability but are delivered as plain lists —
        use :class:`NumpyEngineBackend` to keep blocks columnar.
        """
        if _np is not None and isinstance(items, _np.ndarray):
            return _group_pure(_as_id_list(dsts), items.tolist())
        # _as_id_list normalizes ndarray destination columns to Python
        # ints, so run/route/inbox keys are identical across backends.
        return _group_pure(_as_id_list(dsts), list(items))


class NumpyEngineBackend:
    """Vectorized grouping over numpy columns; list inputs fall back to
    the pure kernel (identical runs, identical accounting)."""

    name = "numpy"

    def __init__(self) -> None:
        if _np is None:
            raise RuntimeError(
                "numpy engine backend requested but numpy is not installed; "
                "install the optional extra with `pip install .[fast]`"
            )
        self._np = _np

    def group_indexed(
        self, dsts: Sequence[int], items: Sequence[Any]
    ) -> list[tuple[int, Any]]:
        np = self._np
        if not isinstance(items, np.ndarray):
            # Object payloads: the pure kernel is the honest per-item path.
            return _group_pure(list(_as_id_list(dsts)), list(items))
        dst_col = np.asarray(dsts, dtype=np.int64)
        if dst_col.ndim != 1 or dst_col.shape[0] != items.shape[0]:
            raise ValueError(
                f"scatter shape mismatch: {dst_col.shape[0]} destinations "
                f"for {items.shape[0]} items"
            )
        order = np.argsort(dst_col, kind="stable")
        sorted_dsts = dst_col[order]
        sorted_items = items[order]
        boundaries = np.flatnonzero(sorted_dsts[1:] != sorted_dsts[:-1]) + 1
        starts = [0, *boundaries.tolist(), len(sorted_dsts)]
        return [
            (int(sorted_dsts[start]), sorted_items[start:stop])
            for start, stop in zip(starts[:-1], starts[1:])
        ]


def _as_id_list(dsts: Any) -> list[int]:
    """Destination column as a list of Python ints (ndarray-tolerant)."""
    if _np is not None and isinstance(dsts, _np.ndarray):
        return dsts.tolist()
    return list(dsts)


def available_engine_backends() -> tuple[str, ...]:
    """Names accepted by :func:`get_engine_backend` on this installation."""
    return ("pure", "numpy") if HAS_NUMPY else ("pure",)


def get_engine_backend(
    backend: object = None,
) -> PureEngineBackend | NumpyEngineBackend:
    """Resolve *backend* to an engine-kernel instance.

    Accepts an existing backend instance (returned as is), a name
    (``"pure"``, ``"numpy"``, ``"auto"``), or ``None`` — which reads
    ``REPRO_ENGINE_BACKEND`` and falls back to the pure-Python default.
    """
    if backend is None:
        backend = env_name(_ENV_VAR, "pure")
    if isinstance(backend, (PureEngineBackend, NumpyEngineBackend)):
        return backend
    name = str(backend).lower()
    if name == "auto":
        return NumpyEngineBackend() if HAS_NUMPY else PureEngineBackend()
    if name == "pure":
        return PureEngineBackend()
    if name == "numpy":
        return NumpyEngineBackend()  # raises if numpy is missing
    raise ValueError(
        f"unknown engine backend {backend!r} (expected 'pure', 'numpy' or 'auto')"
    )
