"""The MPC cluster: machines, synchronous rounds, communication accounting.

The cluster is deliberately *orchestrated*: algorithm code runs centrally
and moves data between machines in synchronous rounds.  The honesty of the
simulation lives in the ledger — every logical communication costs a round,
every payload is charged its word size against the sender's and receiver's
capacity, and *both* per-machine budgets of the heterogeneous MPC model
are enforced: words communicated per round **and** words of local memory.
Memory usage is checked against each machine's capacity at every round
(and at input placement); violations are recorded in the ledger next to
the communication violations, and in strict mode they raise
:class:`MemoryLimitExceeded` / :class:`CommunicationLimitExceeded`
respectively.  (Local computation between rounds is free, exactly as in
the model — but the state it leaves behind is not: scratch datasets count
against memory until they are explicitly freed with ``Machine.pop``.)

Rounds are executed by the *columnar round engine*: algorithms build a
:class:`~repro.mpc.plan.RoundPlan` (traffic stored as per-``(src, dst)``
runs in flat parallel arrays) and hand it to :meth:`Cluster.execute`,
which sizes each run once (cached on the plan), routes the whole plan in
a single grouped accounting pass, enforces capacities, and fills inboxes
run by run.  The legacy per-message :meth:`Cluster.exchange` is a pure
delegate that builds a plan from ``(src, dst, payload)`` tuples and calls
:meth:`execute` — there is no second delivery path, so the two cannot
drift.  Columnar producers use :meth:`RoundPlan.send_indexed`, whose
grouping runs on the engine backend seam (:mod:`repro.mpc.backend`,
pure-Python default with an optional numpy backend; ledgers are
bit-identical across backends by construction).
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Iterable, Sequence

from .backend import get_engine_backend
from .config import ModelConfig
from .errors import CommunicationLimitExceeded, MemoryLimitExceeded, ProtocolError
from .executor import get_executor, local_step
from .ledger import RoundLedger, Violation
from .machine import LARGE, SMALL, Machine
from .plan import Message, RoundPlan
from .throttle import ThrottleController

__all__ = ["Cluster", "Message"]


@local_step("cluster/map-small", ships=False)
def _map_small_step(payload: tuple) -> list[Any]:
    """One machine's :meth:`Cluster.map_small` shard.  ``ships=False``:
    the payload carries a user callable and the Machine itself."""
    fn, machine, items = payload
    return fn(machine, items)


class Cluster:
    """A heterogeneous MPC cluster built from a :class:`ModelConfig`."""

    def __init__(
        self,
        config: ModelConfig,
        rng: random.Random | None = None,
        backend: object = None,
    ) -> None:
        self.config = config
        self.rng = rng if rng is not None else random.Random(0)
        #: Engine backend for columnar grouping (``repro.mpc.backend``);
        #: accounting is bit-identical across backends.
        self.engine_backend = get_engine_backend(backend)
        #: Executor for per-machine local compute (``repro.mpc.executor``);
        #: ledgers and results are identical across executors.
        self.executor = get_executor(config.executor, config.executor_workers)
        # Input placement draws from a dedicated stream derived from the
        # cluster seed (the rng's initial state), so adding an unrelated
        # self.rng use later can never shift where the input lands.
        self._placement_rng = random.Random(repr(self.rng.getstate()))
        self.ledger = RoundLedger()
        # Machines report the upcoming round index so strict-mode memory
        # failures at `put`/`touch` carry *when* the breach happened.
        round_source = lambda: self.ledger.rounds + 1  # noqa: E731

        self.smalls: list[Machine] = [
            Machine(
                i, SMALL, config.small_capacity, strict=config.strict,
                round_source=round_source,
            )
            for i in range(config.num_small)
        ]
        self.larges: list[Machine] = [
            Machine(
                config.num_small + j, LARGE, config.large_capacity,
                strict=config.strict, round_source=round_source,
            )
            for j in range(config.num_large)
        ]
        self.machines: dict[int, Machine] = {
            machine.machine_id: machine for machine in self.smalls + self.larges
        }
        #: Throttle controller (``repro.mpc.throttle``); ``None`` when the
        #: config's policy is ``off`` so the hot path pays nothing.
        self.throttle: ThrottleController | None = (
            ThrottleController(
                config.throttle,
                {mid: machine.capacity for mid, machine in self.machines.items()},
            )
            if config.throttle.enabled
            else None
        )
        self._memory_frac = 0.0

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def large(self) -> Machine:
        """The single large machine of the paper's Heterogeneous MPC model."""
        if not self.larges:
            raise ProtocolError("this configuration has no large machine")
        return self.larges[0]

    @property
    def has_large(self) -> bool:
        return bool(self.larges)

    @property
    def small_ids(self) -> list[int]:
        return [machine.machine_id for machine in self.smalls]

    def machine(self, machine_id: int) -> Machine:
        try:
            return self.machines[machine_id]
        except KeyError:
            raise ProtocolError(f"no machine with id {machine_id}") from None

    # ------------------------------------------------------------------
    # The synchronous round
    # ------------------------------------------------------------------
    def plan(self, note: str = "") -> RoundPlan:
        """A fresh :class:`RoundPlan` wired to this cluster's engine
        backend (so ``send_indexed`` scatters group on the same seam)."""
        return RoundPlan(note=note, backend=self.engine_backend)

    def execute(self, plan: RoundPlan) -> dict[int, list[Any]]:
        """Run *plan* as one synchronous round (or several, throttled).

        With throttling enforced (``config.throttle.mode == "enforce"``)
        a plan whose per-machine volumes would breach the headroom
        budgets is first split at the run-column boundary
        (:meth:`~repro.mpc.throttle.ThrottleController.split_plan`) and
        executed as consecutive rounds — same payloads, same
        per-destination order, each round within budget; the extra
        rounds are the (ledger-visible) price of staying under the hard
        limits.  Otherwise the plan runs as exactly one round.  Returns
        the inbox of each machine that received at least one item.
        """
        if plan.is_empty:
            return {}
        controller = self.throttle
        if controller is not None and controller.policy.enforcing:
            chunks = controller.split_plan(plan)
            if len(chunks) > 1:
                inboxes: dict[int, list[Any]] = {}
                for chunk in chunks:
                    for dst, items in self._execute_round(chunk).items():
                        inboxes.setdefault(dst, []).extend(items)
                return inboxes
        return self._execute_round(plan)

    def _execute_round(self, plan: RoundPlan) -> dict[int, list[Any]]:
        """Run *plan* as exactly one synchronous round.

        The single grouped pass: per-run word totals come from the plan's
        :meth:`~repro.mpc.plan.RoundPlan.run_words` cache (each run sized
        exactly once), per-machine send/receive volumes are accumulated
        over the run columns, and inboxes are filled in exact send-call
        order (``plan.deliveries()``).  Memory usage is checked against
        each machine's capacity as part of the round.  In strict mode a
        violation raises :class:`CommunicationLimitExceeded` (traffic) or
        :class:`MemoryLimitExceeded` (stored state) before the round is
        recorded, otherwise it is recorded in the ledger as a typed
        :class:`~repro.mpc.ledger.Violation`.  An empty plan is a no-op:
        no data moves, so no round is charged.
        """
        if plan.is_empty:
            return {}
        start = time.perf_counter()
        run_srcs, run_dsts, run_lens, run_words = plan.run_meta()

        unknown = set(run_srcs).union(run_dsts).difference(self.machines)
        if unknown:
            raise ProtocolError(
                f"message involves unknown machine(s) {sorted(unknown)}"
            )
        sent: dict[int, int] = {}
        received: dict[int, int] = {}
        for src, dst, words in zip(run_srcs, run_dsts, run_words):
            sent[src] = sent.get(src, 0) + words
            received[dst] = received.get(dst, 0) + words
        total = sum(run_words)
        items = sum(run_lens)
        inboxes = {dst: items_ for dst, items_ in plan.deliveries()}

        note = plan.note
        next_round = self.ledger.rounds + 1
        violations: list[Violation] = []
        for mid, words in sent.items():
            capacity = self.machines[mid].capacity
            if words > capacity:
                violations.append(
                    Violation(mid, "sent", words, capacity, next_round, note)
                )
        for mid, words in received.items():
            capacity = self.machines[mid].capacity
            if words > capacity:
                violations.append(
                    Violation(mid, "received", words, capacity, next_round, note)
                )
        if violations and self.config.strict:
            raise CommunicationLimitExceeded(
                "; ".join(violations), violations=violations
            )
        memory_violations = self._record_memory(note)
        if memory_violations and self.config.strict:
            raise MemoryLimitExceeded(
                "; ".join(memory_violations), violations=memory_violations
            )
        violations.extend(memory_violations)

        controller = self.throttle
        if controller is not None:
            traffic_frac = 0.0
            for volumes in (sent, received):
                for mid, words in volumes.items():
                    capacity = self.machines[mid].capacity
                    if capacity:
                        frac = words / capacity
                        if frac > traffic_frac:
                            traffic_frac = frac
            controller.observe(traffic_frac, self._memory_frac)

        self.ledger.record_round(
            note=note,
            total_words=total,
            max_sent=max(sent.values(), default=0),
            max_received=max(received.values(), default=0),
            violations=tuple(violations),
            items=items,
            elapsed=time.perf_counter() - start,
        )
        return inboxes

    def exchange(
        self, messages: Iterable[Message], note: str = ""
    ) -> dict[int, list[Any]]:
        """Deliver per-item *messages* in one synchronous round.

        A **pure delegate** of :meth:`execute`: the messages are absorbed
        into a :class:`RoundPlan` and handed straight to the columnar
        engine — ``exchange`` owns no delivery or accounting logic of its
        own, so the two paths cannot drift (there is a differential
        property test pinning this).  Rounds, words, violations, and
        inbox orderings are identical to the historical per-message
        accounting — the plan's run ordering preserves send order even
        for interleaved (non-source-major) message lists.  An empty
        message list costs no round.
        """
        return self.execute(RoundPlan(note=note).extend(messages))

    def _record_memory(self, note: str = "") -> list[Violation]:
        """Update memory high-water marks; return capacity violations.

        Violation records render like the communication ones ("round R
        [note]: machine M ...") so they land in the same per-round
        ``violations`` tuple and ledger stream.  When a throttle
        controller is attached, the worst usage/capacity fraction of the
        pass is kept for its next load observation.
        """
        violations: list[Violation] = []
        next_round = self.ledger.rounds + 1
        track = self.throttle is not None
        memory_frac = 0.0
        for machine in self.machines.values():
            usage = machine.usage
            self.ledger.record_memory(machine.machine_id, usage)
            if usage > machine.capacity:
                violations.append(
                    Violation(
                        machine.machine_id, "memory", usage, machine.capacity,
                        next_round, note,
                    )
                )
            if track and machine.capacity:
                frac = usage / machine.capacity
                if frac > memory_frac:
                    memory_frac = frac
        if track:
            self._memory_frac = memory_frac
        return violations

    def checkpoint_memory(self, note: str = "") -> list[Violation]:
        """Check memory between rounds (input placement, cast boundaries).

        Updates high-water marks, appends any over-capacity messages to the
        ledger's ``violations`` stream, and — matching the per-round check
        of :meth:`execute` — raises :class:`MemoryLimitExceeded` in strict
        mode.  Returns the violation messages otherwise.
        """
        violations = self._record_memory(note)
        if violations and self.config.strict:
            raise MemoryLimitExceeded("; ".join(violations), violations=violations)
        self.ledger.violations.extend(violations)
        return violations

    # ------------------------------------------------------------------
    # Throttle hooks (consulted by the primitives)
    # ------------------------------------------------------------------
    def throttled_fanout(self, base: int, note: str = "") -> int:
        """The tree fanout the primitives should use this phase: *base*
        unless the throttle controller is enforcing and forecasting an
        over-headroom round (see :mod:`repro.mpc.throttle`)."""
        if self.throttle is None:
            return base
        return self.throttle.fanout(base, note=note)

    def throttled_sample_rate(self, base: float, note: str = "") -> float:
        """The sampling rate the primitives should use this phase (same
        contract as :meth:`throttled_fanout`)."""
        if self.throttle is None:
            return base
        return self.throttle.sample_rate(base, note=note)

    # ------------------------------------------------------------------
    # Common one-round patterns
    # ------------------------------------------------------------------
    def gather(
        self,
        dst: int,
        items_by_src: dict[int, Sequence[Any]],
        note: str = "gather",
    ) -> list[Any]:
        """All listed machines send their items to *dst* in one round."""
        plan = RoundPlan(note=note)
        for src, items in items_by_src.items():
            plan.send_batch(src, dst, items)
        inboxes = self.execute(plan)
        return inboxes.get(dst, [])

    def scatter(
        self,
        src: int,
        items_by_dst: dict[int, Sequence[Any]],
        note: str = "scatter",
    ) -> dict[int, list[Any]]:
        """Machine *src* sends a list of items to each destination, one round."""
        plan = RoundPlan(note=note)
        for dst, items in items_by_dst.items():
            plan.send_batch(src, dst, items)
        return self.execute(plan)

    # ------------------------------------------------------------------
    # Input placement
    # ------------------------------------------------------------------
    def distribute_edges(
        self,
        edges: Sequence[Any],
        name: str = "edges",
        shuffle: bool = True,
    ) -> None:
        """Place the input edges on the small machines (arbitrarily, as the
        model allows; costs zero rounds — this is the *initial* state).

        The shuffle draws from the dedicated placement RNG, so the
        placement of a given input under a given cluster seed is stable no
        matter what else consumed ``self.rng`` beforehand.  Oversized
        placements are memory violations: recorded in the ledger, raised
        as :class:`MemoryLimitExceeded` in strict mode (by ``Machine.put``
        itself).
        """
        if not self.smalls:
            raise ProtocolError(
                "cannot distribute input: this configuration has no small "
                "machines to hold it"
            )
        order = list(edges)
        if shuffle:
            self._placement_rng.shuffle(order)
        buckets: list[list[Any]] = [[] for _ in self.smalls]
        for index, edge in enumerate(order):
            buckets[index % len(buckets)].append(edge)
        for machine, bucket in zip(self.smalls, buckets):
            machine.put(name, bucket)
        self.checkpoint_memory(f"input/{name}")

    # ------------------------------------------------------------------
    # Simulation-side inspection (costs no rounds; used by orchestration
    # logic and by tests, never as a stand-in for communication).
    # ------------------------------------------------------------------
    def all_items(self, name: str) -> list[Any]:
        items: list[Any] = []
        for machine in self.smalls:
            items.extend(machine.get(name, []))
        return items

    def run_local_steps(self, step: str, payloads: Sequence[Any]) -> list[Any]:
        """Run a registered local step over per-machine *payloads*.

        The executor seam (:mod:`repro.mpc.executor`): the primitives'
        hot per-machine loops go through here so a process executor can
        fan them out, one task per machine shard.  Results come back in
        payload order; this costs no rounds and touches no ledger.
        """
        return self.executor.map_steps(step, payloads)

    def map_small(self, name: str, fn: Callable[[Machine, list[Any]], list[Any]]) -> None:
        """Apply a local (zero-round) transformation on each small machine.

        Memory is checkpointed after the mutation (the mapped dataset may
        have grown), so callers no longer need their own
        :meth:`checkpoint_memory` to keep high-water marks honest.
        """
        results = self.run_local_steps(
            "cluster/map-small",
            [(fn, machine, machine.get(name, [])) for machine in self.smalls],
        )
        for machine, result in zip(self.smalls, results):
            machine.put(name, result)
        self.checkpoint_memory(f"map/{name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(n={self.config.n}, m={self.config.m}, "
            f"smalls={len(self.smalls)}, larges={len(self.larges)}, "
            f"rounds={self.ledger.rounds})"
        )
