"""The MPC cluster: machines, synchronous rounds, communication accounting.

The cluster is deliberately *orchestrated*: algorithm code runs centrally
and moves data between machines with :meth:`Cluster.exchange`, which models
one synchronous round.  The honesty of the simulation lives in the ledger —
every logical communication costs a round, every payload is charged its
word size against the sender's and receiver's capacity, and memory
high-water marks are recorded after every round.  (Local computation
between rounds is free, exactly as in the model.)
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable, Sequence

from .config import ModelConfig
from .errors import CommunicationLimitExceeded, ProtocolError
from .ledger import RoundLedger
from .machine import LARGE, SMALL, Machine
from .words import word_size

__all__ = ["Cluster", "Message"]

#: (source machine id, destination machine id, payload)
Message = tuple[int, int, Any]


class Cluster:
    """A heterogeneous MPC cluster built from a :class:`ModelConfig`."""

    def __init__(self, config: ModelConfig, rng: random.Random | None = None) -> None:
        self.config = config
        self.rng = rng if rng is not None else random.Random(0)
        self.ledger = RoundLedger()

        self.smalls: list[Machine] = [
            Machine(i, SMALL, config.small_capacity) for i in range(config.num_small)
        ]
        self.larges: list[Machine] = [
            Machine(config.num_small + j, LARGE, config.large_capacity)
            for j in range(config.num_large)
        ]
        self.machines: dict[int, Machine] = {
            machine.machine_id: machine for machine in self.smalls + self.larges
        }

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def large(self) -> Machine:
        """The single large machine of the paper's Heterogeneous MPC model."""
        if not self.larges:
            raise ProtocolError("this configuration has no large machine")
        return self.larges[0]

    @property
    def has_large(self) -> bool:
        return bool(self.larges)

    @property
    def small_ids(self) -> list[int]:
        return [machine.machine_id for machine in self.smalls]

    def machine(self, machine_id: int) -> Machine:
        try:
            return self.machines[machine_id]
        except KeyError:
            raise ProtocolError(f"no machine with id {machine_id}") from None

    # ------------------------------------------------------------------
    # The synchronous round
    # ------------------------------------------------------------------
    def exchange(
        self, messages: Iterable[Message], note: str = ""
    ) -> dict[int, list[Any]]:
        """Deliver *messages* in one synchronous round.

        Returns the inbox of each machine that received at least one
        message.  Send/receive volumes are charged against each machine's
        capacity; in strict mode a violation raises
        :class:`CommunicationLimitExceeded`, otherwise it is recorded in
        the ledger.
        """
        sent: dict[int, int] = {}
        received: dict[int, int] = {}
        inboxes: dict[int, list[Any]] = {}
        total = 0

        for src, dst, payload in messages:
            if src not in self.machines or dst not in self.machines:
                raise ProtocolError(f"message between unknown machines {src}->{dst}")
            words = word_size(payload)
            total += words
            sent[src] = sent.get(src, 0) + words
            received[dst] = received.get(dst, 0) + words
            inboxes.setdefault(dst, []).append(payload)

        violations: list[str] = []
        for mid, words in sent.items():
            if words > self.machines[mid].capacity:
                violations.append(
                    f"round {self.ledger.rounds + 1} [{note}]: machine {mid} "
                    f"sent {words} > capacity {self.machines[mid].capacity}"
                )
        for mid, words in received.items():
            if words > self.machines[mid].capacity:
                violations.append(
                    f"round {self.ledger.rounds + 1} [{note}]: machine {mid} "
                    f"received {words} > capacity {self.machines[mid].capacity}"
                )
        if violations and self.config.strict:
            raise CommunicationLimitExceeded("; ".join(violations))

        self.ledger.record_round(
            note=note,
            total_words=total,
            max_sent=max(sent.values(), default=0),
            max_received=max(received.values(), default=0),
            violations=tuple(violations),
        )
        self._record_memory()
        return inboxes

    def _record_memory(self) -> None:
        for machine in self.machines.values():
            self.ledger.record_memory(machine.machine_id, machine.usage)

    # ------------------------------------------------------------------
    # Common one-round patterns
    # ------------------------------------------------------------------
    def gather(
        self,
        dst: int,
        items_by_src: dict[int, Sequence[Any]],
        note: str = "gather",
    ) -> list[Any]:
        """All listed machines send their items to *dst* in one round."""
        messages = [
            (src, dst, item)
            for src, items in items_by_src.items()
            for item in items
        ]
        inboxes = self.exchange(messages, note=note)
        return inboxes.get(dst, [])

    def scatter(
        self,
        src: int,
        items_by_dst: dict[int, Sequence[Any]],
        note: str = "scatter",
    ) -> dict[int, list[Any]]:
        """Machine *src* sends a list of items to each destination, one round."""
        messages = [
            (src, dst, item)
            for dst, items in items_by_dst.items()
            for item in items
        ]
        return self.exchange(messages, note=note)

    # ------------------------------------------------------------------
    # Input placement
    # ------------------------------------------------------------------
    def distribute_edges(
        self,
        edges: Sequence[Any],
        name: str = "edges",
        shuffle: bool = True,
    ) -> None:
        """Place the input edges on the small machines (arbitrarily, as the
        model allows; costs zero rounds — this is the *initial* state)."""
        order = list(edges)
        if shuffle:
            self.rng.shuffle(order)
        buckets: list[list[Any]] = [[] for _ in self.smalls]
        for index, edge in enumerate(order):
            buckets[index % len(buckets)].append(edge)
        for machine, bucket in zip(self.smalls, buckets):
            machine.put(name, bucket)
        self._record_memory()

    # ------------------------------------------------------------------
    # Simulation-side inspection (costs no rounds; used by orchestration
    # logic and by tests, never as a stand-in for communication).
    # ------------------------------------------------------------------
    def all_items(self, name: str) -> list[Any]:
        items: list[Any] = []
        for machine in self.smalls:
            items.extend(machine.get(name, []))
        return items

    def map_small(self, name: str, fn: Callable[[Machine, list[Any]], list[Any]]) -> None:
        """Apply a local (zero-round) transformation on each small machine."""
        for machine in self.smalls:
            machine.put(name, fn(machine, machine.get(name, [])))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(n={self.config.n}, m={self.config.m}, "
            f"smalls={len(self.smalls)}, larges={len(self.larges)}, "
            f"rounds={self.ledger.rounds})"
        )
