"""Round accounting for the MPC simulator.

The ledger is the simulator's source of truth for the quantity the paper
cares about: the number of synchronous communication rounds.  Every call to
:meth:`Cluster.exchange` records one round, together with the per-machine
send/receive volumes of that round and any capacity violations.

Two structuring tools mirror how the paper charges rounds:

* :meth:`RoundLedger.section` labels a block of rounds (e.g. ``"boruvka
  step 3"``) so benchmarks can report per-phase counts.

* :meth:`RoundLedger.parallel` models the paper's *parallel repetition*
  idiom ("repeat the entire process O(log n) times, in parallel").  The
  simulator runs repetitions sequentially, but all branches of a parallel
  section execute in the same rounds, so the section charges the *maximum*
  round count over its branches rather than the sum.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["NoteStats", "RoundLedger", "RoundRecord", "Violation"]

#: The violation kinds a :class:`Violation` can carry.
VIOLATION_KINDS = ("sent", "received", "memory")


class Violation(str):
    """A typed capacity-violation record.

    Subclasses ``str`` so every existing consumer of the ledger's
    violation stream — golden hashes, substring assertions, ``"; "``
    joins in strict-mode exceptions — keeps seeing the exact legacy
    message rendering, while new consumers (the throttle controller,
    regression tests, artifacts) read the structured fields instead of
    parsing strings.

    Attributes:
        machine_id: the machine that breached its budget.
        kind: one of :data:`VIOLATION_KINDS` — ``"sent"`` / ``"received"``
            for per-round bandwidth, ``"memory"`` for stored state.
        amount: the offending volume, in words.
        capacity: the machine's budget, in words.
        round: the 1-based round index the breach belongs to (for
            between-round checks: the upcoming round).
        note: the round's note label (or the dataset name for
            ``Machine.put`` strict failures).
    """

    machine_id: int
    kind: str
    amount: int
    capacity: int
    round: int
    note: str

    def __new__(
        cls,
        machine_id: int,
        kind: str,
        amount: int,
        capacity: int,
        round: int,
        note: str = "",
    ) -> "Violation":
        if kind not in VIOLATION_KINDS:
            raise ValueError(f"unknown violation kind {kind!r}")
        if kind == "memory":
            text = (
                f"round {round} [{note}]: machine {machine_id} holds "
                f"{amount} > memory capacity {capacity}"
            )
        else:
            text = (
                f"round {round} [{note}]: machine {machine_id} {kind} "
                f"{amount} > capacity {capacity}"
            )
        self = super().__new__(cls, text)
        self.machine_id = machine_id
        self.kind = kind
        self.amount = amount
        self.capacity = capacity
        self.round = round
        self.note = note
        return self

    def as_dict(self) -> dict:
        """JSON-serializable form (consumed by the artifact layer)."""
        return {
            "machine_id": self.machine_id,
            "kind": self.kind,
            "amount": self.amount,
            "capacity": self.capacity,
            "round": self.round,
            "note": self.note,
        }


@dataclass
class RoundRecord:
    """Statistics of one communication round.

    ``violations`` holds :class:`Violation` records (``str`` subclasses
    rendering the legacy messages).
    """

    index: int
    note: str
    total_words: int
    max_sent: int
    max_received: int
    violations: tuple[str, ...] = ()
    items: int = 0
    elapsed: float = 0.0


@dataclass
class NoteStats:
    """Aggregate statistics over every round sharing one note label.

    Benchmarks use these to attribute cost: ``rounds`` and ``total_words``
    are model-level quantities, ``items`` counts logical payloads routed,
    and ``elapsed`` is simulator wall-clock time (seconds) — the only
    non-model field, useful for finding the hot exchanges.
    """

    rounds: int = 0
    total_words: int = 0
    items: int = 0
    elapsed: float = 0.0


@dataclass
class RoundLedger:
    """Accumulates rounds, communication volume and capacity violations."""

    rounds: int = 0
    records: list[RoundRecord] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    memory_high_water: dict[int, int] = field(default_factory=dict)
    note_stats: dict[str, NoteStats] = field(default_factory=dict)
    _sections: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_round(
        self,
        note: str,
        total_words: int,
        max_sent: int,
        max_received: int,
        violations: tuple[str, ...] = (),
        items: int = 0,
        elapsed: float = 0.0,
    ) -> RoundRecord:
        self.rounds += 1
        label = " / ".join(self._sections + [note]) if note else " / ".join(self._sections)
        record = RoundRecord(
            index=self.rounds,
            note=label,
            total_words=total_words,
            max_sent=max_sent,
            max_received=max_received,
            violations=violations,
            items=items,
            elapsed=elapsed,
        )
        self.records.append(record)
        self.violations.extend(violations)
        stats = self.note_stats.get(label)
        if stats is None:
            stats = self.note_stats[label] = NoteStats()
        stats.rounds += 1
        stats.total_words += total_words
        stats.items += items
        stats.elapsed += elapsed
        return record

    def charge(self, rounds: int, note: str = "charged") -> None:
        """Charge *rounds* synchronous rounds without moving simulated data.

        Used for subroutines whose round structure is known but whose
        message-level simulation is out of scope (the Lemma 5.2 phase-1
        matching substitute); every use is documented in DESIGN.md.
        """
        for _ in range(max(0, rounds)):
            self.record_round(note=note, total_words=0, max_sent=0, max_received=0)

    def record_memory(self, machine_id: int, words: int) -> None:
        current = self.memory_high_water.get(machine_id, 0)
        if words > current:
            self.memory_high_water[machine_id] = words

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @contextmanager
    def section(self, label: str):
        """Label the rounds executed inside the ``with`` block."""
        self._sections.append(label)
        try:
            yield
        finally:
            self._sections.pop()

    @contextmanager
    def parallel(self, label: str = "parallel"):
        """A parallel-repetition section; see the module docstring."""
        section = ParallelSection(self, label)
        with self.section(label):
            yield section
        section.finalize()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def rounds_in_section(self, label: str) -> int:
        """Number of recorded rounds whose note mentions *label*.

        Note: inside parallel sections this counts executed (not charged)
        rounds; it is intended for per-phase diagnostics only.
        """
        return sum(1 for record in self.records if label in record.note)

    @property
    def total_words(self) -> int:
        return sum(record.total_words for record in self.records)

    @property
    def max_memory(self) -> int:
        """Highest memory high-water mark over all machines, in words."""
        return max(self.memory_high_water.values(), default=0)

    @property
    def wall_time(self) -> float:
        """Total simulator wall-clock seconds spent inside rounds."""
        return sum(stats.elapsed for stats in self.note_stats.values())

    def hottest_notes(self, limit: int = 10) -> list[tuple[str, NoteStats]]:
        """Note labels ranked by simulator wall-clock time, hottest first."""
        ranked = sorted(
            self.note_stats.items(), key=lambda pair: pair[1].elapsed, reverse=True
        )
        return ranked[:limit]

    def summary(self) -> dict:
        return {
            "rounds": self.rounds,
            "total_words": self.total_words,
            "violations": len(self.violations),
            "max_memory": self.max_memory,
        }


class ParallelSection:
    """Tracks branch round counts inside :meth:`RoundLedger.parallel`."""

    def __init__(self, ledger: RoundLedger, label: str) -> None:
        self._ledger = ledger
        self._label = label
        self._start = ledger.rounds
        self._branch_rounds: list[int] = []
        self._open = True

    @contextmanager
    def branch(self):
        """Run one repetition; its rounds overlap with sibling branches."""
        if not self._open:
            raise RuntimeError("parallel section already finalized")
        start = self._ledger.rounds
        try:
            yield
        finally:
            self._branch_rounds.append(self._ledger.rounds - start)
            # Rewind: sibling branches share the same physical rounds.
            self._ledger.rounds = start

    def finalize(self) -> None:
        self._open = False
        if self._branch_rounds:
            self._ledger.rounds = self._start + max(self._branch_rounds)

    @property
    def branch_rounds(self) -> list[int]:
        return list(self._branch_rounds)
