"""A single MPC machine: named datasets plus word-accurate usage tracking."""

from __future__ import annotations

from typing import Any, Callable, Iterator

from .errors import MemoryLimitExceeded
from .ledger import Violation
from .words import word_size

__all__ = ["Machine", "SMALL", "LARGE"]

SMALL = "small"
LARGE = "large"


class Machine:
    """One machine of the cluster.

    Data lives in named datasets (``machine.put("edges", [...])``).  The
    machine tracks the word size of each dataset so the cluster can enforce
    or record memory usage cheaply.  Code that mutates a stored container in
    place must call :meth:`touch` so the cached size is refreshed.

    Memory honesty: in strict mode (``strict=True``, set by the cluster
    from ``ModelConfig.strict``) any :meth:`put` or :meth:`touch` that
    would push total usage past ``capacity`` raises
    :class:`~repro.mpc.errors.MemoryLimitExceeded` at the moment of
    hoarding — scratch state must be charged within budget or explicitly
    freed (:meth:`pop`).  In recording mode the cluster checks
    :attr:`over_capacity` at every round and logs a ledger violation
    instead.

    ``round_source`` (set by the cluster) reports the upcoming 1-based
    round index so strict-mode failures carry *when* the breach happened
    in their :class:`~repro.mpc.ledger.Violation` record, not just where.
    """

    __slots__ = (
        "machine_id",
        "kind",
        "capacity",
        "strict",
        "round_source",
        "_store",
        "_sizes",
    )

    def __init__(
        self,
        machine_id: int,
        kind: str,
        capacity: int,
        strict: bool = False,
        round_source: Callable[[], int] | None = None,
    ) -> None:
        self.machine_id = machine_id
        self.kind = kind
        self.capacity = capacity
        self.strict = strict
        self.round_source = round_source
        self._store: dict[str, Any] = {}
        self._sizes: dict[str, int] = {}

    def _round(self) -> int:
        return self.round_source() if self.round_source is not None else 0

    # ------------------------------------------------------------------
    # Dataset management
    # ------------------------------------------------------------------
    def put(self, name: str, value: Any) -> None:
        size = word_size(value)
        if self.strict:
            usage = self.usage - self._sizes.get(name, 0) + size
            if usage > self.capacity:
                violation = Violation(
                    self.machine_id, "memory", usage, self.capacity,
                    self._round(), note=name,
                )
                raise MemoryLimitExceeded(
                    f"{violation} (storing {size} words in dataset {name!r} "
                    f"on the {self.kind} machine)",
                    violations=[violation],
                )
        self._store[name] = value
        self._sizes[name] = size

    def get(self, name: str, default: Any = None) -> Any:
        return self._store.get(name, default)

    def pop(self, name: str, default: Any = None) -> Any:
        self._sizes.pop(name, None)
        return self._store.pop(name, default)

    def touch(self, name: str) -> None:
        """Recompute the cached size of *name* after in-place mutation."""
        if name in self._store:
            self._sizes[name] = word_size(self._store[name])
            if self.strict and self.usage > self.capacity:
                violation = Violation(
                    self.machine_id, "memory", self.usage, self.capacity,
                    self._round(), note=name,
                )
                raise MemoryLimitExceeded(
                    f"{violation} (in-place growth of dataset {name!r} "
                    f"on the {self.kind} machine)",
                    violations=[violation],
                )

    def datasets(self) -> Iterator[str]:
        return iter(self._store)

    def __contains__(self, name: str) -> bool:
        return name in self._store

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def usage(self) -> int:
        """Current memory usage in words (cached; see :meth:`touch`)."""
        return sum(self._sizes.values())

    @property
    def over_capacity(self) -> bool:
        """Whether stored data currently exceeds the memory budget."""
        return self.usage > self.capacity

    @property
    def is_large(self) -> bool:
        return self.kind == LARGE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine(id={self.machine_id}, kind={self.kind}, "
            f"usage={self.usage}/{self.capacity})"
        )
