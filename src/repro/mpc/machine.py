"""A single MPC machine: named datasets plus word-accurate usage tracking."""

from __future__ import annotations

from typing import Any, Iterator

from .words import word_size

__all__ = ["Machine", "SMALL", "LARGE"]

SMALL = "small"
LARGE = "large"


class Machine:
    """One machine of the cluster.

    Data lives in named datasets (``machine.put("edges", [...])``).  The
    machine tracks the word size of each dataset so the cluster can enforce
    or record memory usage cheaply.  Code that mutates a stored container in
    place must call :meth:`touch` so the cached size is refreshed.
    """

    __slots__ = ("machine_id", "kind", "capacity", "_store", "_sizes")

    def __init__(self, machine_id: int, kind: str, capacity: int) -> None:
        self.machine_id = machine_id
        self.kind = kind
        self.capacity = capacity
        self._store: dict[str, Any] = {}
        self._sizes: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Dataset management
    # ------------------------------------------------------------------
    def put(self, name: str, value: Any) -> None:
        self._store[name] = value
        self._sizes[name] = word_size(value)

    def get(self, name: str, default: Any = None) -> Any:
        return self._store.get(name, default)

    def pop(self, name: str, default: Any = None) -> Any:
        self._sizes.pop(name, None)
        return self._store.pop(name, default)

    def touch(self, name: str) -> None:
        """Recompute the cached size of *name* after in-place mutation."""
        if name in self._store:
            self._sizes[name] = word_size(self._store[name])

    def datasets(self) -> Iterator[str]:
        return iter(self._store)

    def __contains__(self, name: str) -> bool:
        return name in self._store

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def usage(self) -> int:
        """Current memory usage in words (cached; see :meth:`touch`)."""
        return sum(self._sizes.values())

    @property
    def is_large(self) -> bool:
        return self.kind == LARGE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine(id={self.machine_id}, kind={self.kind}, "
            f"usage={self.usage}/{self.capacity})"
        )
