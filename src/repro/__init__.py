"""repro — a reproduction of "Massively Parallel Computation in a
Heterogeneous Regime" (Fischer, Horowitz, Oshman; PODC 2022).

The package simulates the Heterogeneous MPC model — one near-linear-memory
machine plus many sublinear-memory machines — and implements the paper's
algorithms on top of it:

* :mod:`repro.mpc` — the simulator (machines, rounds, word accounting);
* :mod:`repro.primitives` — Claims 1-4 (sort, aggregate, disseminate,
  arrange) and supporting plumbing;
* :mod:`repro.graph` — graph types, generators, validators;
* :mod:`repro.local` — sequential algorithms (the large machine's local
  toolbox and the test oracles);
* :mod:`repro.labeling` — the KKKP flow-labeling scheme;
* :mod:`repro.sketches` — l0-samplers and AGM graph sketches;
* :mod:`repro.core` — the paper's algorithms (MST, spanners, matching,
  connectivity, min-cut, MIS, coloring, 1-vs-2 cycles);
* :mod:`repro.baselines` — sublinear-regime baselines (Table 1's left
  column);
* :mod:`repro.analysis` — theory predictions and the table harness;
* :mod:`repro.experiments` — the declarative scenario registry, runner,
  JSON benchmark artifacts, and the generated reproduction guide.

Quickstart::

    import random
    from repro.core import heterogeneous_mst
    from repro.graph import generators

    rng = random.Random(0)
    graph = generators.random_connected_graph(200, 2000, rng)
    graph = graph.with_unique_weights(rng)
    result = heterogeneous_mst(graph, rng=rng)
    print(result.total_weight, result.rounds)
"""

__version__ = "1.0.0"

from . import (
    analysis,
    baselines,
    core,
    experiments,
    graph,
    labeling,
    local,
    mpc,
    primitives,
    sketches,
)

__all__ = [
    "analysis",
    "baselines",
    "core",
    "experiments",
    "graph",
    "labeling",
    "local",
    "mpc",
    "primitives",
    "sketches",
    "__version__",
]
