"""Command-line interface: run any of the paper's algorithms on generated
workloads and print what the simulator measured.

Examples::

    python -m repro mst --n 200 --m 3200 --seed 7
    python -m repro mst --n 200 --m 3200 --f 0.5       # Theorem 3.1
    python -m repro spanner --n 100 --m 1500 --k 3
    python -m repro matching --n 120 --m 2400
    python -m repro connectivity --n 100 --m 300 --components 4
    python -m repro mis --n 100 --m 800
    python -m repro coloring --n 100 --m 800
    python -m repro mincut --n 40 --cut 3
    python -m repro cycle --n 64
    python -m repro compare --n 96 --m 1500             # regime table
    python -m repro bench --list                        # scenario registry
    python -m repro bench all --quick --json            # smoke all scenarios
    python -m repro bench all --json --jobs 4           # process-pool sweep
    python -m repro serve --n 64 --seed 7               # dynamic-graph daemon
    python -m repro report --check                      # docs/REPRODUCTION.md
    python -m repro costmodel --check                   # docs/COST_MODEL.md
"""

from __future__ import annotations

import argparse
import random
import sys

from .analysis import render_table
from .env import env_flag
from .baselines import sublinear_boruvka_mst, sublinear_connectivity
from .core import (
    approximate_weighted_mincut,
    build_apsp_oracle,
    exact_unweighted_mincut,
    filtering_matching,
    heterogeneous_coloring,
    heterogeneous_connectivity,
    heterogeneous_matching,
    heterogeneous_mis,
    heterogeneous_mst,
    heterogeneous_spanner,
    solve_one_vs_two_cycles,
)
from .graph import generators
from .graph.validation import (
    is_maximal_independent_set,
    is_maximal_matching,
    is_proper_coloring,
    spanner_stretch,
    verify_mst,
)
from .local.mincut import min_cut_value
from .mpc import ModelConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Heterogeneous MPC (PODC 2022) — algorithm runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, default_m: int | None = None) -> None:
        p.add_argument("--n", type=int, default=100, help="number of vertices")
        if default_m is not None:
            p.add_argument("--m", type=int, default=default_m, help="number of edges")
        p.add_argument("--seed", type=int, default=0, help="random seed")
        p.add_argument("--gamma", type=float, default=0.5, help="small-machine exponent")

    p = sub.add_parser("mst", help="Section 3 MST")
    common(p, default_m=1600)
    p.add_argument("--f", type=float, default=None, help="superlinear memory exponent (Thm 3.1)")

    p = sub.add_parser("spanner", help="Section 4 O(k)-spanner")
    common(p, default_m=1500)
    p.add_argument("--k", type=int, default=2, help="stretch parameter")
    p.add_argument("--weighted", action="store_true")

    p = sub.add_parser("apsp", help="Corollary 4.2 approximate APSP")
    common(p, default_m=600)

    p = sub.add_parser("matching", help="Section 5 maximal matching")
    common(p, default_m=1600)
    p.add_argument("--f", type=float, default=None, help="use Thm 5.5 filtering with n^{1+f} memory")

    p = sub.add_parser("connectivity", help="Theorem C.1 connectivity")
    common(p, default_m=300)
    p.add_argument("--components", type=int, default=3)

    p = sub.add_parser("mis", help="Theorem C.6 MIS")
    common(p, default_m=800)

    p = sub.add_parser("coloring", help="Theorem C.7 (Δ+1)-coloring")
    common(p, default_m=800)

    p = sub.add_parser("mincut", help="Theorems C.3/C.4 min-cut")
    common(p)
    p.add_argument("--cut", type=int, default=3, help="planted cut size")

    p = sub.add_parser("cycle", help="the 1-vs-2 cycle problem")
    common(p)

    p = sub.add_parser("compare", help="sublinear vs heterogeneous table")
    common(p, default_m=1500)

    p = sub.add_parser(
        "bench",
        help="run registered benchmark scenarios (text + JSON artifacts)",
    )
    p.add_argument(
        "scenarios", nargs="*",
        help="scenario names from the registry, or 'all'",
    )
    p.add_argument("--list", action="store_true", dest="list_scenarios",
                   help="list registered scenarios and exit")
    p.add_argument("--quick", action="store_true",
                   help="CI smoke sizing (also via REPRO_BENCH_SMOKE=1); "
                        "artifacts go to benchmarks/results/quick/")
    p.add_argument("--json", action="store_true", dest="json_artifacts",
                   help="also write repro.bench/2 JSON artifacts")
    p.add_argument("--jobs", type=int, default=1,
                   help="run sweep points on a process pool of N workers; "
                        "artifacts are byte-identical to a serial run")
    p.add_argument("--executor", choices=["serial", "process"], default=None,
                   help="per-machine local-step executor (also via "
                        "REPRO_EXECUTOR); artifacts are byte-identical "
                        "either way.  --jobs > 1 wins: sweep workers "
                        "always run their points serially")
    p.add_argument("--executor-workers", type=int, default=0,
                   help="process-executor worker count (0 = cpu count; "
                        "also via REPRO_EXECUTOR_WORKERS)")
    p.add_argument("--out", default=None,
                   help="results directory (default benchmarks/results, "
                        "or benchmarks/results/quick with --quick)")
    p.add_argument("--seed", type=int, default=0, help="runner base seed")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero if any selected scenario run recorded "
                        "capacity violations in its artifact totals")

    p = sub.add_parser(
        "serve",
        help="dynamic-graph query daemon (JSONL over stdio or TCP)",
    )
    p.add_argument("--n", type=int, default=None,
                   help="pre-initialize the service with N vertices "
                        "(otherwise the first client sends an 'init' op)")
    p.add_argument("--seed", type=int, default=0,
                   help="sketch seed; answers replay a from-scratch "
                        "sketch_components run with the same seed")
    p.add_argument("--copies", type=int, default=3,
                   help="l0-sampler copies per phase")
    p.add_argument("--shards", type=int, default=4,
                   help="sketch bank shards (edge id mod shards)")
    p.add_argument("--backend", default=None,
                   help="sketch backend (pure/numpy/auto; default from "
                        "REPRO_SKETCH_BACKEND)")
    p.add_argument("--max-weight", type=int, default=None, dest="max_weight",
                   help="enable approximate-MST-weight queries for weights "
                        "in [1, MAX_WEIGHT]")
    p.add_argument("--epsilon", type=float, default=0.5,
                   help="MST-weight approximation parameter")
    p.add_argument("--listen", default=None, metavar="HOST:PORT",
                   help="serve over TCP instead of stdio (port 0 picks an "
                        "ephemeral port, announced on stdout)")

    p = sub.add_parser(
        "report",
        help="regenerate docs/REPRODUCTION.md from the JSON artifacts",
    )
    p.add_argument("--check", action="store_true",
                   help="verify the committed guide matches the artifacts "
                        "(exit 1 when stale)")
    p.add_argument("--results", default=None,
                   help="artifact directory (default benchmarks/results)")
    p.add_argument("--out", default=None,
                   help="output path (default docs/REPRODUCTION.md)")

    p = sub.add_parser(
        "costmodel",
        help="regenerate docs/COST_MODEL.md (asymptotic fits) from the "
             "JSON artifacts",
    )
    p.add_argument("--check", action="store_true",
                   help="verify the committed cost model matches the "
                        "artifacts (exit 1 when stale)")
    p.add_argument("--results", default=None,
                   help="artifact directory (default benchmarks/results)")
    p.add_argument("--out", default=None,
                   help="output path (default docs/COST_MODEL.md)")
    return parser


def _config(args, m: int) -> ModelConfig:
    f = getattr(args, "f", None)
    if f:
        return ModelConfig.heterogeneous_superlinear(
            n=args.n, m=m, f=f, gamma=args.gamma
        )
    return ModelConfig.heterogeneous(n=args.n, m=m, gamma=args.gamma)


def _maybe_forced_executor(args):
    """Context for ``--executor``: force the named executor for every
    cluster built during the run.  Sweep workers spawned by ``--jobs``
    ignore it (they mark themselves as worker processes and always run
    local steps serially), so ``--jobs`` takes precedence."""
    from .mpc.executor import forced_executor

    if args.executor is None:
        import contextlib

        return contextlib.nullcontext()
    return forced_executor(args.executor, workers=args.executor_workers)


def _bench_command(args) -> int:
    from . import experiments

    if args.list_scenarios:
        for scenario in experiments.all_scenarios():
            print(f"{scenario.name:28s} [{scenario.group}] {scenario.title}")
        return 0
    if not args.scenarios:
        print("bench: name scenarios to run, or 'all' (see --list)",
              file=sys.stderr)
        return 2
    quick = args.quick or env_flag("REPRO_BENCH_SMOKE")
    if args.scenarios == ["all"]:
        selected = experiments.all_scenarios()
    else:
        try:
            selected = [experiments.get_scenario(name) for name in args.scenarios]
        except KeyError as exc:
            print(f"bench: {exc.args[0]}", file=sys.stderr)
            return 2
    if args.out is not None:
        results_dir = args.out
    else:
        results_dir = experiments.report.DEFAULT_RESULTS_DIR
        if quick:
            results_dir = results_dir / "quick"
    if args.jobs > 1:
        runner = experiments.ParallelRunner(
            results_dir=results_dir, seed=args.seed, jobs=args.jobs
        )
    else:
        runner = experiments.Runner(results_dir=results_dir, seed=args.seed)
    try:
        with _maybe_forced_executor(args):
            runs = runner.run_many(
                selected,
                quick=quick,
                json_artifact=args.json_artifacts,
                echo=lambda run: print(run.render_text()),
            )
    finally:
        # Bench epilogue: reap any executor worker pools the run spun up
        # rather than leaving them to the atexit hook.
        from .mpc.executor import shutdown_pools

        shutdown_pools()
    if args.scenarios == ["all"] and args.json_artifacts:
        # The cross-scenario roll-up only makes sense (and is only safe to
        # overwrite) when the whole registry ran.
        suite = runner.persist_suite(runs)
        if suite is not None:
            print(f"wrote suite roll-up to {suite}")
    print(f"wrote {len(selected)} scenario artifact(s) to {results_dir}")
    if args.strict:
        violating = [
            (run.scenario.name, run.totals["violations"])
            for run in runs
            if run.totals["violations"] > 0
        ]
        if violating:
            for name, count in violating:
                print(
                    f"bench --strict: {name} recorded {count} capacity "
                    "violation(s)",
                    file=sys.stderr,
                )
            return 1
    return 0


def _report_command(args) -> int:
    from . import experiments

    results = args.results or experiments.report.DEFAULT_RESULTS_DIR
    doc = args.out or experiments.report.DEFAULT_DOC_PATH
    if args.check:
        problems = experiments.check_report(results_dir=results, doc_path=doc)
        for problem in problems:
            print(f"report --check: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(f"{doc} is up to date with {results}")
        return 0
    path = experiments.write_report(results_dir=results, doc_path=doc)
    print(f"wrote {path}")
    return 0


def _costmodel_command(args) -> int:
    from .analysis import costmodel

    results = args.results or costmodel.DEFAULT_RESULTS_DIR
    doc = args.out or costmodel.DEFAULT_DOC_PATH
    if args.check:
        problems = costmodel.check_cost_model(results_dir=results, doc_path=doc)
        for problem in problems:
            print(f"costmodel --check: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(f"{doc} is up to date with {results}")
        return 0
    path = costmodel.write_cost_model(results_dir=results, doc_path=doc)
    print(f"wrote {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "bench":
        return _bench_command(args)
    if args.command == "serve":
        from .serve.daemon import run_daemon

        return run_daemon(args)
    if args.command == "report":
        return _report_command(args)
    if args.command == "costmodel":
        return _costmodel_command(args)
    rng = random.Random(args.seed)
    out = sys.stdout

    if args.command == "mst":
        graph = generators.random_connected_graph(args.n, args.m, rng)
        graph = graph.with_unique_weights(rng)
        result = heterogeneous_mst(graph, config=_config(args, args.m), rng=rng)
        print(f"MST weight {result.total_weight}, "
              f"verified={verify_mst(graph, result.edges)}", file=out)
        print(f"boruvka steps {result.boruvka_steps}, rounds {result.rounds}", file=out)

    elif args.command == "spanner":
        graph = generators.random_connected_graph(args.n, args.m, rng)
        if args.weighted:
            graph = graph.with_unique_weights(rng)
        result = heterogeneous_spanner(graph, k=args.k, rng=rng)
        stretch = spanner_stretch(graph, result.edges)
        print(f"spanner size {result.size} (m={graph.m}), "
              f"stretch {stretch:.2f} <= {result.stretch_bound}, "
              f"rounds {result.rounds}", file=out)

    elif args.command == "apsp":
        graph = generators.random_connected_graph(args.n, args.m, rng)
        oracle = build_apsp_oracle(graph, rng=rng)
        print(f"APSP oracle: k={oracle.spanner.k}, "
              f"spanner size {oracle.spanner.size}, "
              f"stretch bound {oracle.stretch_bound}, "
              f"rounds {oracle.rounds}", file=out)

    elif args.command == "matching":
        graph = generators.random_connected_graph(args.n, args.m, rng)
        if getattr(args, "f", None):
            result = filtering_matching(graph, config=_config(args, args.m), rng=rng)
            print(f"filtering levels {result.levels}", file=out)
        else:
            result = heterogeneous_matching(graph, rng=rng)
            print(f"phase-1 iterations {result.phase1_iterations}", file=out)
        print(f"matching size {result.size}, "
              f"maximal={is_maximal_matching(graph, result.matching)}, "
              f"rounds {result.rounds}", file=out)

    elif args.command == "connectivity":
        graph = generators.planted_components_graph(
            args.n, args.components, args.m, rng
        )
        result = heterogeneous_connectivity(graph, rng=rng)
        print(f"components {result.num_components} "
              f"(planted {args.components}), rounds {result.rounds}", file=out)

    elif args.command == "mis":
        graph = generators.random_connected_graph(args.n, args.m, rng)
        result = heterogeneous_mis(graph, rng=rng)
        print(f"MIS size {result.size}, "
              f"maximal={is_maximal_independent_set(graph, result.vertices)}, "
              f"iterations {result.iterations}, rounds {result.rounds}", file=out)

    elif args.command == "coloring":
        graph = generators.random_connected_graph(args.n, args.m, rng)
        result = heterogeneous_coloring(graph, rng=rng)
        print(f"colors used {len(set(result.colors))} / "
              f"allowed {result.num_colors_allowed}, "
              f"proper={is_proper_coloring(graph, result.colors, result.num_colors_allowed)}, "
              f"rounds {result.rounds}", file=out)

    elif args.command == "mincut":
        graph = generators.planted_cut_graph(args.n, args.cut, 4.0, rng)
        truth = min_cut_value(graph.n, graph.edges)
        exact = exact_unweighted_mincut(graph, rng=rng)
        weighted = graph.with_unique_weights(rng)
        wtruth = min_cut_value(weighted.n, weighted.edges)
        approx = approximate_weighted_mincut(weighted, rng=rng)
        print(f"exact cut {exact.value} (true {truth}), rounds {exact.rounds}", file=out)
        print(f"weighted estimate {approx.value:.0f} (true {wtruth}), "
              f"rounds {approx.rounds}", file=out)

    elif args.command == "cycle":
        graph, truth = generators.one_or_two_cycles(args.n, rng)
        result = solve_one_vs_two_cycles(graph, rng=rng)
        print(f"cycles {result.num_cycles} (true {truth}), "
              f"rounds {result.rounds}", file=out)

    elif args.command == "compare":
        weighted = generators.random_connected_graph(args.n, args.m, rng)
        weighted = weighted.with_unique_weights(rng)
        unweighted = weighted.unweighted()
        rows = []
        sub = sublinear_connectivity(unweighted, rng=random.Random(args.seed + 1))
        het = heterogeneous_connectivity(unweighted, rng=random.Random(args.seed + 2))
        rows.append({"problem": "connectivity", "sublinear": sub.rounds,
                     "heterogeneous": het.rounds})
        sub = sublinear_boruvka_mst(weighted, rng=random.Random(args.seed + 3))
        het = heterogeneous_mst(weighted, rng=random.Random(args.seed + 4))
        rows.append({"problem": "MST", "sublinear": sub.rounds,
                     "heterogeneous": het.rounds})
        print(render_table(rows, ["problem", "sublinear", "heterogeneous"]), file=out)

    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
