"""Compute backends for the sketch substrate.

All heavy sketch arithmetic — batched Horner evaluation of the k-wise
hash polynomials, geometric-level assignment (trailing zeros), and bulk
fingerprint powers ``z^e mod p`` — goes through a small kernel seam so the
:class:`~repro.sketches.bank.SketchBank` can run on different substrates:

* :class:`PureBackend` (the default) is dependency-free Python.  Its
  ``pow_many`` amortizes modular exponentiation with a lazily built
  baby-step/giant-step table per evaluation point: one table costs
  ``2 * sqrt(max_exponent)`` multiplications and turns every later power
  into two table lookups and one multiplication.
* :class:`NumpyBackend` vectorizes the same kernels over ``uint64``
  arrays.  Products of two 61-bit residues need 122 bits, so the kernels
  split operands into 32-bit limbs and reduce with the Mersenne identity
  ``2^61 ≡ 1 (mod 2^61 - 1)`` — every intermediate fits in ``uint64`` and
  the results are *bit-identical* to the pure kernels (there is a
  dedicated equivalence test suite).  numpy is an optional extra:
  ``pip install .[fast]``.

Backends are stateful (the power-table cache lives on the instance), so
:func:`get_backend` returns a fresh instance per call; share one instance
across banks built from the same seed package to share its tables.  The
``REPRO_SKETCH_BACKEND`` environment variable (``pure``, ``numpy`` or
``auto``) overrides the default backend choice.
"""

from __future__ import annotations

from math import isqrt
from typing import Iterable, Sequence

from .field import PRIME
from ..env import env_name

try:  # optional accelerator — the pure backend is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on minimal installs
    _np = None

__all__ = [
    "HAS_NUMPY",
    "PureBackend",
    "NumpyBackend",
    "get_backend",
    "available_backends",
]

HAS_NUMPY = _np is not None

_ENV_VAR = "REPRO_SKETCH_BACKEND"

#: Largest baby-step/giant-step block worth materializing (2 * block ints
#: of table per evaluation point).
_MAX_BLOCK = 1 << 20


class PureBackend:
    """Dependency-free kernels over Python ints."""

    name = "pure"

    def __init__(self) -> None:
        # z -> (block, baby, giant) powers tables; see pow_many.
        self._pow_tables: dict[int, tuple[int, list[int], list[int]]] = {}

    def poly_eval_many(
        self,
        coefficients: Sequence[int],
        xs: Sequence[int],
        reduce_inputs: bool = True,
    ) -> list[int]:
        """Horner-evaluate the polynomial at every point of *xs*, mod PRIME.

        One list pass per coefficient over the whole vector instead of one
        Python call (with its own 8-step loop) per point.
        """
        if reduce_inputs:
            xs = [x % PRIME for x in xs]
        out = [coefficients[0]] * len(xs)
        for c in coefficients[1:]:
            out = [(a * x + c) % PRIME for a, x in zip(out, xs)]
        return out

    def trailing_zeros_many(self, values: Iterable[int]) -> list[int]:
        return [(v & -v).bit_length() - 1 if v else 61 for v in values]

    def pow_many(
        self, z: int, exponents: Sequence[int], max_exponent: int | None = None
    ) -> list[int]:
        """``z ** e mod PRIME`` for every ``e`` in *exponents* (fixed base).

        Large batches build a baby-step/giant-step table for *z* —
        ``baby[r] = z^r`` and ``giant[q] = z^(q*block)`` with
        ``block ~ sqrt(max_exponent)`` — so each power becomes
        ``giant[e // block] * baby[e % block] % PRIME``.  The table is
        cached on the backend instance and reused by every later batch
        with the same evaluation point (levels are revisited on each
        ``update_edges`` call).  Small batches fall back to ``pow``.
        """
        if not exponents:
            return []
        table = self._pow_tables.get(z)
        if table is None:
            hi = max_exponent if max_exponent is not None else max(exponents)
            block = isqrt(max(hi, 1)) + 1
            if block > _MAX_BLOCK or 4 * len(exponents) < block:
                return [pow(z, e, PRIME) for e in exponents]
            baby = [1] * block
            acc = 1
            for r in range(1, block):
                acc = acc * z % PRIME
                baby[r] = acc
            z_block = acc * z % PRIME
            giant = [1] * (block + 1)
            acc = 1
            for q in range(1, block + 1):
                acc = acc * z_block % PRIME
                giant[q] = acc
            table = self._pow_tables[z] = (block, baby, giant)
        block, baby, giant = table
        if max(exponents) < block * len(giant):
            return [giant[e // block] * baby[e % block] % PRIME for e in exponents]
        bound = block * len(giant)
        return [
            giant[e // block] * baby[e % block] % PRIME
            if e < bound
            else pow(z, e, PRIME)
            for e in exponents
        ]


class NumpyBackend:
    """Vectorized kernels over ``uint64`` arrays; bit-identical to pure."""

    name = "numpy"

    def __init__(self) -> None:
        if _np is None:
            raise RuntimeError(
                "numpy backend requested but numpy is not installed; "
                "install the optional extra with `pip install .[fast]`"
            )
        self._np = _np
        # z -> (block, baby, giant) uint64 power tables; see pow_many.
        self._pow_tables: dict[int, tuple[int, object, object]] = {}

    @staticmethod
    def _mulmod(a, b):
        """Exact ``a * b mod (2^61 - 1)`` on uint64 operands ``< 2^61``.

        32-bit limb split: ``a*b = (ah*bh)<<64 + (ah*bl + al*bh)<<32 +
        al*bl`` where every partial product fits in uint64, then Mersenne
        folding with ``2^61 ≡ 1``: ``x<<64 ≡ x<<3`` and
        ``mid<<32 ≡ (mid>>29) + ((mid & (2^29-1))<<32)``.
        """
        np = _np
        u = np.uint64
        mask32 = u(0xFFFFFFFF)
        mask29 = u((1 << 29) - 1)
        mask61 = u(PRIME)
        a_lo = a & mask32
        a_hi = a >> u(32)
        b_lo = b & mask32
        b_hi = b >> u(32)
        hi = a_hi * b_hi
        mid = a_hi * b_lo + a_lo * b_hi
        lo = a_lo * b_lo
        res = (
            (lo >> u(61))
            + (lo & mask61)
            + (mid >> u(29))
            + ((mid & mask29) << u(32))
            + (hi << u(3))
        )
        res = (res >> u(61)) + (res & mask61)
        return np.where(res >= mask61, res - mask61, res)

    def poly_eval_many(
        self,
        coefficients: Sequence[int],
        xs: Sequence[int],
        reduce_inputs: bool = True,
    ) -> list[int]:
        np = self._np
        if reduce_inputs:
            xs = [x % PRIME for x in xs]
        if not xs:
            return []
        arr = np.asarray(xs, dtype=np.uint64)
        prime = np.uint64(PRIME)
        acc = np.full(len(arr), np.uint64(coefficients[0]), dtype=np.uint64)
        for c in coefficients[1:]:
            acc = self._mulmod(acc, arr) + np.uint64(c)
            acc = np.where(acc >= prime, acc - prime, acc)
        return acc.tolist()

    def trailing_zeros_many(self, values: Iterable[int]) -> list[int]:
        np = self._np
        arr = np.asarray(list(values), dtype=np.uint64)
        if arr.size == 0:
            return []
        one = np.uint64(1)
        lowest = arr & (~arr + one)  # isolate the lowest set bit
        if hasattr(np, "bitwise_count"):
            tz = np.bitwise_count(lowest - one)
        else:  # pragma: no cover - numpy < 2.0
            # lowest is an exact power of two, so float log2 is exact.
            safe = np.where(lowest == 0, one, lowest)
            tz = np.log2(safe.astype(np.float64)).astype(np.uint64)
        return np.where(arr == 0, np.uint64(61), tz).tolist()

    def _pow_binary(self, z: int, exponents: Sequence[int]) -> list[int]:
        """Vectorized binary exponentiation: one masked multiply per
        exponent bit, with the scalar square chain ``z^(2^j)`` kept in
        Python ints."""
        np = self._np
        exps = np.asarray(exponents, dtype=np.uint64)
        out = np.ones(len(exps), dtype=np.uint64)
        z_pow = z % PRIME
        for j in range(int(exps.max()).bit_length()):
            mask = (exps >> np.uint64(j)) & np.uint64(1) == 1
            if mask.any():
                out[mask] = self._mulmod(out[mask], np.uint64(z_pow))
            z_pow = z_pow * z_pow % PRIME
        return out.tolist()

    def _power_table(self, z: int, length: int):
        """``[z^0, z^1, ..., z^(length-1)] mod PRIME`` as uint64, built by
        doubling: ``log2(length)`` vectorized multiplies total."""
        np = self._np
        arr = np.ones(1, dtype=np.uint64)
        z_shift = z % PRIME  # z^len(arr), kept as a Python int
        while len(arr) < length:
            arr = np.concatenate([arr, self._mulmod(arr, np.uint64(z_shift))])
            z_shift = z_shift * z_shift % PRIME
        return arr[:length]

    def pow_many(
        self, z: int, exponents: Sequence[int], max_exponent: int | None = None
    ) -> list[int]:
        """``z ** e mod PRIME`` for every ``e`` in *exponents*.

        Same baby-step/giant-step scheme as the pure backend (one cached
        table per evaluation point, each power = two gathers and one
        vectorized multiply), so batch after batch at the same level costs
        O(1) numpy calls instead of one masked multiply per exponent bit.
        Batches too small to justify a table take the binary path — the
        results are bit-identical either way.
        """
        np = self._np
        if not exponents:
            return []
        table = self._pow_tables.get(z)
        if table is None:
            hi = max_exponent if max_exponent is not None else max(exponents)
            block = isqrt(max(hi, 1)) + 1
            # Unlike the pure backend's 2*block scalar multiplies, the
            # doubling build costs ~2*log2(block) vectorized ones, so a
            # table pays off even for small first batches.
            if block > _MAX_BLOCK:
                return self._pow_binary(z, exponents)
            baby = self._power_table(z, block)
            giant = self._power_table(pow(z, block, PRIME), block + 1)
            table = self._pow_tables[z] = (block, baby, giant)
        block, baby, giant = table
        exps = np.asarray(exponents, dtype=np.uint64)
        bound = block * len(giant)
        blk = np.uint64(block)
        if int(exps.max()) < bound:
            return self._mulmod(giant[exps // blk], baby[exps % blk]).tolist()
        in_range = exps < np.uint64(bound)
        clipped = np.where(in_range, exps, np.uint64(0))
        vals = self._mulmod(giant[clipped // blk], baby[clipped % blk]).tolist()
        return [
            v if ok else pow(z, e, PRIME)
            for v, ok, e in zip(vals, in_range.tolist(), exponents)
        ]


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`get_backend` on this installation."""
    return ("pure", "numpy") if HAS_NUMPY else ("pure",)


def get_backend(backend: object = None) -> PureBackend | NumpyBackend:
    """Resolve *backend* to a kernel-provider instance.

    Accepts an existing backend instance (returned as is, so banks can
    share power tables), a name (``"pure"``, ``"numpy"``, ``"auto"``), or
    ``None`` — which reads ``REPRO_SKETCH_BACKEND`` and falls back to the
    pure-Python default.
    """
    if backend is None:
        backend = env_name(_ENV_VAR, "pure")
    if isinstance(backend, (PureBackend, NumpyBackend)):
        return backend
    name = str(backend).lower()
    if name == "auto":
        return NumpyBackend() if HAS_NUMPY else PureBackend()
    if name == "pure":
        return PureBackend()
    if name == "numpy":
        return NumpyBackend()  # raises if numpy is missing
    raise ValueError(
        f"unknown sketch backend {backend!r} (expected 'pure', 'numpy' or 'auto')"
    )
