"""ℓ₀-sampling sketches (Jowhari–Sağlam–Tardos style [36]).

An ℓ₀-sampler summarizes an integer vector so that a nonzero coordinate can
be recovered from the summary alone.  Construction: hash every coordinate
to a geometric level (level ``l`` keeps coordinates whose hash has ``>= l``
trailing zero bits) and keep a one-sparse sketch per level.  Some level
contains exactly one surviving nonzero coordinate with constant
probability, and its one-sparse sketch recovers it.

The sampler is linear (mergeable) as long as both copies are built from the
same seeds; :class:`L0SamplerSeeds` packages the shared randomness.  The
paper's Theorem C.1 replaces truly shared randomness with ``O(log n)``-wise
independence disseminated from one machine — ``L0SamplerSeeds`` is exactly
that ``O(polylog n)``-bit seed package.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .field import PRIME, KWiseHash, trailing_zeros
from .onesparse import OneSparseSketch

__all__ = ["L0SamplerSeeds", "L0Sampler"]

#: Independence of the level-assignment hash; O(log n)-wise independence
#: suffices for the sampler's guarantees at our simulation sizes.
_HASH_INDEPENDENCE = 8


@dataclass(frozen=True)
class L0SamplerSeeds:
    """Shared randomness for one ℓ₀-sampler (hash + per-level points)."""

    level_hash: KWiseHash
    z_points: tuple[int, ...]

    @classmethod
    def generate(cls, universe: int, rng: random.Random) -> "L0SamplerSeeds":
        levels = max(universe, 2).bit_length() + 2
        return cls(
            level_hash=KWiseHash(_HASH_INDEPENDENCE, rng),
            z_points=tuple(rng.randrange(1, PRIME) for _ in range(levels)),
        )

    @property
    def num_levels(self) -> int:
        return len(self.z_points)

    def word_size(self) -> int:
        return len(self.level_hash.coefficients) + len(self.z_points)


class L0Sampler:
    """A mergeable sketch that samples one nonzero coordinate."""

    __slots__ = ("seeds", "levels")

    def __init__(self, seeds: L0SamplerSeeds) -> None:
        self.seeds = seeds
        self.levels = [OneSparseSketch(z) for z in seeds.z_points]

    def update(self, index: int, delta: int) -> None:
        """Add *delta* to coordinate *index*."""
        if delta == 0:
            return
        depth = trailing_zeros(self.seeds.level_hash(index + 1))
        top = min(depth, len(self.levels) - 1)
        for level in range(top + 1):
            self.levels[level].update(index, delta)

    def merge(self, other: "L0Sampler") -> None:
        if other.seeds is not self.seeds and other.seeds != self.seeds:
            raise ValueError("cannot merge samplers with different seeds")
        for mine, theirs in zip(self.levels, other.levels):
            mine.merge(theirs)

    def copy(self) -> "L0Sampler":
        clone = L0Sampler.__new__(L0Sampler)
        clone.seeds = self.seeds
        clone.levels = [level.copy() for level in self.levels]
        return clone

    @property
    def is_zero(self) -> bool:
        return all(level.is_zero for level in self.levels)

    def sample(self) -> tuple[int, int] | None:
        """Recover some nonzero coordinate ``(index, value)``, or ``None``
        if every level fails (happens with constant probability; callers
        keep independent copies to boost success)."""
        for level in reversed(self.levels):
            decoded = level.decode()
            if decoded is not None:
                return decoded
        return None

    def word_size(self) -> int:
        # The seeds are shared; each machine stores them once.  We charge
        # the per-level one-sparse state (z is part of the seeds).
        return 3 * len(self.levels)
