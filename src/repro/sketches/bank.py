"""Array-backed ℓ₀ banks: the vectorized substrate behind the AGM sketches.

The seed implementation kept one :class:`~repro.sketches.l0.L0Sampler`
object per ``(vertex, phase, copy)`` and one
:class:`~repro.sketches.onesparse.OneSparseSketch` object per level inside
it — thousands of tiny Python objects per vertex, each edge update walking
them with per-object method dispatch and redoing the identical hash and
modular exponentiation for *both* endpoints.  A :class:`SketchBank` stores
the same state as three flat integer arrays:

    slot(row, phase, copy, level) = row * S + (phase * copies + copy) * L + level

with ``L`` levels per sampler and ``S = phases * copies * L`` slots per
vertex row, holding the one-sparse counters ``(s0, s1, s2)`` of the AGM
vertex vectors (``s0 = Σ δ``, ``s1 = Σ id·δ``, ``s2 = Σ δ·z^id mod p``).

Batched update math (:meth:`SketchBank.update_edges`): for each edge
``{u, v}`` the bank computes the edge id and, per ``(phase, copy)``
sampler, the geometric level depth ``trailing_zeros(h(id + 1))`` **once**
— via a single batched Horner pass over the whole edge vector — and, per
surviving level, the fingerprint power ``z^id mod p`` **once**, applying
it with ``+1`` to the smaller endpoint's row and ``-1`` to the larger's.
The seed path recomputed every hash and every power twice (once per
endpoint) and once per object layer.  All heavy arithmetic goes through
the backend seam of :mod:`repro.sketches.backend`, so the same bank runs
on pure-Python or numpy kernels with bit-identical results.

Updates are *signed*: because the sketches are linear maps of the edge
multiset, ``update_edges(batch, sign=-1)`` deletes edges by applying the
identical contributions negated — the substrate behind the dynamic-graph
query service in :mod:`repro.serve`.  Self-loops are short-circuited to
no-ops (an edge ``{u, u}`` contributes ``+1`` as the smaller endpoint and
``-1`` as the larger to the *same* row, which cancels), so the streaming
path never spends hash evaluations on them.

Merging supernode rows, copying banks, and zero tests are bulk slice
operations; :func:`bank_boruvka` runs Borůvka in sketch space directly on
a bank, mirroring the legacy object loop decision for decision so that
component labels are bit-identical to the seed implementation for fixed
seeds (pinned by ``tests/integration/test_sketch_equivalence.py``).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..graph.union_find import UnionFind
from .backend import get_backend
from .field import PRIME, fingerprint_power, trailing_zeros

__all__ = ["SketchRow", "SketchBank", "bank_boruvka", "edge_id", "edge_from_id"]


def edge_id(n: int, u: int, v: int) -> int:
    if u > v:
        u, v = v, u
    return u * n + v


def edge_from_id(n: int, identifier: int) -> tuple[int, int]:
    return divmod(identifier, n)


class SketchRow:
    """One vertex's flat counter row, detached from its bank.

    This is the unit shipped through the aggregation tree: machines
    extract rows from their partial banks, the converge-cast merges rows
    per vertex, and the destination machine reassembles a bank.  Its word
    cost matches the legacy ``VertexSketch`` charge exactly (one word of
    vertex identity plus three counters per slot), keeping every ledger
    unchanged by the migration.
    """

    __slots__ = ("s0", "s1", "s2")

    def __init__(self, s0: list[int], s1: list[int], s2: list[int]) -> None:
        self.s0 = s0
        self.s1 = s1
        self.s2 = s2

    def merge(self, other: "SketchRow") -> "SketchRow":
        """Return the sum row (sketches are linear); inputs are untouched."""
        return SketchRow(
            [a + b for a, b in zip(self.s0, other.s0)],
            [a + b for a, b in zip(self.s1, other.s1)],
            [(a + b) % PRIME for a, b in zip(self.s2, other.s2)],
        )

    def word_size(self) -> int:
        return 1 + 3 * len(self.s0)


class SketchBank:
    """All ``(phase, copy, level)`` one-sparse counters for a vertex set."""

    __slots__ = (
        "spec",
        "backend",
        "num_levels",
        "num_samplers",
        "slots_per_row",
        "row_of",
        "vertices",
        "s0",
        "s1",
        "s2",
        "_flat_seeds",
        "_z_flat",
        "_max_id",
    )

    def __init__(
        self, spec, vertices: Iterable[int] = (), backend: object = None
    ) -> None:
        self.spec = spec
        self.backend = get_backend(backend)
        flat_seeds = [seeds for phase_seeds in spec.seeds for seeds in phase_seeds]
        level_counts = {seeds.num_levels for seeds in flat_seeds}
        if len(level_counts) != 1:
            raise ValueError("bank requires a uniform level count across samplers")
        self.num_levels = level_counts.pop()
        self.num_samplers = len(flat_seeds)
        self.slots_per_row = self.num_samplers * self.num_levels
        self._flat_seeds = flat_seeds
        self._z_flat = [z for seeds in flat_seeds for z in seeds.z_points]
        self._max_id = spec.n * spec.n
        self.row_of: dict[int, int] = {}
        self.vertices: list[int] = []
        self.s0: list[int] = []
        self.s1: list[int] = []
        self.s2: list[int] = []
        for vertex in vertices:
            self.add_vertex(vertex)

    # ------------------------------------------------------------------
    # rows
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: int) -> int:
        """Ensure *vertex* has a row (zero counters); return its index."""
        row = self.row_of.get(vertex)
        if row is None:
            row = self.row_of[vertex] = len(self.vertices)
            self.vertices.append(vertex)
            zeros = [0] * self.slots_per_row
            self.s0.extend(zeros)
            self.s1.extend(zeros)
            self.s2.extend(zeros)
        return row

    def row(self, vertex: int) -> SketchRow:
        """Extract a detached copy of *vertex*'s counter row."""
        start = self.row_of[vertex] * self.slots_per_row
        end = start + self.slots_per_row
        return SketchRow(self.s0[start:end], self.s1[start:end], self.s2[start:end])

    def row_items(self) -> list[tuple[int, SketchRow]]:
        """``(vertex, row)`` pairs in insertion order — aggregation payload."""
        return [(vertex, self.row(vertex)) for vertex in self.vertices]

    def insert_row(self, vertex: int, row: SketchRow) -> None:
        """Add *row* into *vertex*'s row (creating it if missing)."""
        self.add_vertex(vertex)
        self._merge_row_data(self.row_of[vertex], row.s0, row.s1, row.s2, 0)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def update_edges(self, edges: Iterable[tuple], sign: int = 1) -> None:
        """Bulk-apply undirected edges to both endpoint rows.

        Edge ``{u, v}`` (id ``min*n + max``) contributes ``+1`` to the
        smaller endpoint's vector and ``-1`` to the larger's.  Hash
        evaluations, level depths, and fingerprint powers are computed
        once per edge and shared by both endpoints; see the module
        docstring for the batching scheme.

        *sign* applies the whole batch with ``+1`` (insert, the default)
        or ``-1`` (delete): sketches are linear, so deleting an edge is
        applying its contribution negated, and an insert followed by a
        delete of the same edge returns every counter to its prior value
        exactly.  The default path runs the identical insert-only
        arithmetic as before the signed extension.

        Self-loops are no-ops on the counters: a loop's ``+1``
        (as the smaller endpoint) and ``-1`` (as the larger) land on the
        same row and cancel, so they are short-circuited before any hash
        is evaluated — the vertex still gets a (zero) row.
        """
        if sign not in (1, -1):
            raise ValueError(f"sign must be +1 or -1, got {sign!r}")
        n = self.spec.n
        pairs: list[tuple[int, int, int]] = []
        for edge in edges:
            u, v = edge[0], edge[1]
            ru = self.add_vertex(u)
            rv = self.add_vertex(v)
            if u == v:
                continue  # loop contributions provably cancel
            elif u < v:
                pairs.append((ru, rv, u * n + v))
            else:
                pairs.append((rv, ru, v * n + u))
        if not pairs:
            return

        backend = self.backend
        levels = self.num_levels
        slots = self.slots_per_row
        max_id = self._max_id
        ids = [p[2] for p in pairs]
        urows = [p[0] * slots for p in pairs]
        vrows = [p[1] * slots for p in pairs]
        xs = [(i + 1) % PRIME for i in ids]
        s0, s1, s2 = self.s0, self.s1, self.s2
        everything = range(len(pairs))
        for j, seeds in enumerate(self._flat_seeds):
            hashed = backend.poly_eval_many(
                seeds.level_hash.coefficients, xs, reduce_inputs=False
            )
            depths = backend.trailing_zeros_many(hashed)
            z_points = seeds.z_points
            base = j * levels
            sel: Iterable[int] = everything
            for level in range(levels):
                if level:
                    sel = [k for k in sel if depths[k] >= level]
                    if not sel:
                        break
                ids_sel = ids if level == 0 else [ids[k] for k in sel]
                powers = backend.pow_many(
                    z_points[level], ids_sel, max_exponent=max_id
                )
                slot = base + level
                if sign == 1:
                    for k, i, f in zip(sel, ids_sel, powers):
                        a = urows[k] + slot
                        s0[a] += 1
                        s1[a] += i
                        s2[a] = (s2[a] + f) % PRIME
                        a = vrows[k] + slot
                        s0[a] -= 1
                        s1[a] -= i
                        s2[a] = (s2[a] - f) % PRIME
                else:
                    # The mirror image: delete = insert with every
                    # contribution negated (linearity).
                    for k, i, f in zip(sel, ids_sel, powers):
                        a = urows[k] + slot
                        s0[a] -= 1
                        s1[a] -= i
                        s2[a] = (s2[a] - f) % PRIME
                        a = vrows[k] + slot
                        s0[a] += 1
                        s1[a] += i
                        s2[a] = (s2[a] + f) % PRIME

    def add_incident(self, vertex: int, u: int, v: int, sign: int = 1) -> None:
        """Account for incident edge ``{u, v}`` in *vertex*'s row only.

        The single-edge path behind the legacy ``VertexSketch.add_edge``;
        fingerprint powers come from the shared cache, so the second
        endpoint of an edge never redoes the exponentiation.  *sign* is
        ``+1`` (insert) or ``-1`` (delete); self-loops are no-ops (their
        endpoint contributions cancel), matching :meth:`update_edges`.
        """
        if vertex not in (u, v):
            raise ValueError("edge not incident to this vertex")
        if sign not in (1, -1):
            raise ValueError(f"sign must be +1 or -1, got {sign!r}")
        row = self.add_vertex(vertex)
        if u == v:
            return
        lo, hi = (u, v) if u <= v else (v, u)
        identifier = lo * self.spec.n + hi
        sign = sign if vertex == lo else -sign
        levels = self.num_levels
        x = identifier + 1
        s0, s1, s2 = self.s0, self.s1, self.s2
        base = row * self.slots_per_row
        for j, seeds in enumerate(self._flat_seeds):
            depth = trailing_zeros(seeds.level_hash(x))
            top = min(depth, levels - 1)
            z_points = seeds.z_points
            slot = base + j * levels
            for level in range(top + 1):
                f = fingerprint_power(z_points[level], identifier)
                a = slot + level
                s0[a] += sign
                s1[a] += identifier * sign
                s2[a] = (s2[a] + sign * f) % PRIME

    # ------------------------------------------------------------------
    # merging / copying
    # ------------------------------------------------------------------
    def _merge_row_data(
        self,
        dst_row: int,
        src_s0: list[int],
        src_s1: list[int],
        src_s2: list[int],
        src_offset: int,
    ) -> None:
        slots = self.slots_per_row
        a = dst_row * slots
        b = src_offset
        self.s0[a : a + slots] = [
            x + y for x, y in zip(self.s0[a : a + slots], src_s0[b : b + slots])
        ]
        self.s1[a : a + slots] = [
            x + y for x, y in zip(self.s1[a : a + slots], src_s1[b : b + slots])
        ]
        self.s2[a : a + slots] = [
            (x + y) % PRIME
            for x, y in zip(self.s2[a : a + slots], src_s2[b : b + slots])
        ]

    def _check_compatible(self, other: "SketchBank") -> None:
        if other.spec is not self.spec and other.spec != self.spec:
            raise ValueError("cannot merge sketches with different seeds")

    def merge_vertices(self, dst: int, src: int) -> None:
        """Add *src*'s row into *dst*'s row (supernode merge)."""
        self._merge_row_by_index(self.row_of[dst], self.row_of[src])

    def _merge_row_by_index(self, dst_row: int, src_row: int) -> None:
        self._merge_row_data(
            dst_row, self.s0, self.s1, self.s2, src_row * self.slots_per_row
        )

    def merge_row_from(
        self, other: "SketchBank", src_vertex: int, dst_vertex: int | None = None
    ) -> None:
        """Add *other*'s row for *src_vertex* into our *dst_vertex* row."""
        self._check_compatible(other)
        if dst_vertex is None:
            dst_vertex = src_vertex
        dst_row = self.add_vertex(dst_vertex)
        offset = other.row_of[src_vertex] * other.slots_per_row
        self._merge_row_data(dst_row, other.s0, other.s1, other.s2, offset)

    def absorb(self, other: "SketchBank") -> None:
        """Merge every row of *other* into this bank, vertex by vertex."""
        self._check_compatible(other)
        for vertex in other.vertices:
            self.merge_row_from(other, vertex)

    def copy(self) -> "SketchBank":
        clone = SketchBank.__new__(SketchBank)
        clone.spec = self.spec
        clone.backend = self.backend
        clone.num_levels = self.num_levels
        clone.num_samplers = self.num_samplers
        clone.slots_per_row = self.slots_per_row
        clone._flat_seeds = self._flat_seeds
        clone._z_flat = self._z_flat
        clone._max_id = self._max_id
        clone.row_of = dict(self.row_of)
        clone.vertices = list(self.vertices)
        clone.s0 = self.s0[:]
        clone.s1 = self.s1[:]
        clone.s2 = self.s2[:]
        return clone

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_zero_vertex(self, vertex: int) -> bool:
        start = self.row_of[vertex] * self.slots_per_row
        end = start + self.slots_per_row
        return (
            not any(self.s0[start:end])
            and not any(self.s1[start:end])
            and not any(self.s2[start:end])
        )

    def _decode(self, index: int, z: int) -> tuple[int, int] | None:
        """One-sparse recovery at flat slot *index* (mirrors
        ``OneSparseSketch.decode`` exactly)."""
        s0 = self.s0[index]
        if s0 == 0:
            return None
        s1 = self.s1[index]
        if s1 % s0 != 0:
            return None
        coordinate = s1 // s0
        if coordinate < 0:
            return None
        if (s0 % PRIME) * fingerprint_power(z, coordinate) % PRIME != self.s2[index]:
            return None
        return coordinate, s0

    def _sample_row(self, row: int, phase: int) -> tuple[int, int] | None:
        levels = self.num_levels
        copies = self.spec.copies
        row_base = row * self.slots_per_row
        for copy_index in range(copies):
            sampler = phase * copies + copy_index
            base = sampler * levels
            for level in range(levels - 1, -1, -1):
                decoded = self._decode(
                    row_base + base + level, self._z_flat[base + level]
                )
                if decoded is not None:
                    return edge_from_id(self.spec.n, decoded[0])
        return None

    def sample_outgoing(self, vertex: int, phase: int) -> tuple[int, int] | None:
        """Sample an edge leaving *vertex*'s (super)vector using the given
        phase's samplers; tries the independent copies in order, levels
        from deepest to shallowest — the legacy scan order."""
        return self._sample_row(self.row_of[vertex], phase)

    def decode_slot(
        self, vertex: int, phase: int, copy: int, level: int
    ) -> tuple[int, int] | None:
        """One-sparse recovery of a single addressed counter."""
        sampler = phase * self.spec.copies + copy
        offset = sampler * self.num_levels + level
        index = self.row_of[vertex] * self.slots_per_row + offset
        return self._decode(index, self._z_flat[offset])

    def word_size(self) -> int:
        """Total storage charge: every row costs what the legacy
        ``VertexSketch`` charged (one identity word + three counters per
        slot; evaluation points are part of the shared seed package)."""
        return len(self.vertices) * (1 + 3 * self.slots_per_row)

    def __contains__(self, vertex: int) -> bool:
        return vertex in self.row_of

    def __iter__(self) -> Iterator[int]:
        return iter(self.vertices)

    def __len__(self) -> int:
        return len(self.vertices)


def bank_boruvka(bank: SketchBank) -> tuple[UnionFind, list[tuple[int, int]]]:
    """Borůvka over a sketch bank (the large machine's local computation).

    Returns the component structure over the bank's vertices and the
    sampled edges that realized each union.  The loop mirrors the legacy
    object implementation decision for decision — same root set, same
    proposal order, same row-aliasing after unions — so its output is
    bit-identical for equal bank contents.
    """
    uf = UnionFind(bank.vertices)
    work = bank.copy()
    row_ref = dict(work.row_of)
    forest: list[tuple[int, int]] = []

    for phase in range(bank.spec.phases):
        roots = {uf.find(v) for v in work.vertices}
        if len(roots) <= 1:
            break
        proposals: list[tuple[int, int]] = []
        for root in roots:
            sampled = work._sample_row(row_ref[root], phase)
            if sampled is not None:
                proposals.append(sampled)
        if not proposals:
            # No supernode found an outgoing edge.  Either every cut is
            # empty (components are final) or all samplers failed, which
            # happens with probability exponentially small in the number
            # of copies; later phases cannot recover, so stop either way.
            break
        for u, v in proposals:
            ru, rv = uf.find(u), uf.find(v)
            if ru != rv:
                work._merge_row_by_index(row_ref[ru], row_ref[rv])
                uf.union(u, v)
                keep = uf.find(u)
                if keep != ru:
                    row_ref[keep] = row_ref[ru]
                forest.append((u, v))
    return uf, forest
