"""Linear sketching substrate: k-wise hashing, one-sparse recovery,
ℓ₀-samplers, and AGM graph sketches."""

from .field import PRIME, KWiseHash, trailing_zeros
from .graph_sketch import (
    GraphSketchSpec,
    VertexSketch,
    components_from_sketches,
    edge_from_id,
    edge_id,
    sketch_boruvka,
)
from .l0 import L0Sampler, L0SamplerSeeds
from .onesparse import OneSparseSketch

__all__ = [
    "PRIME",
    "KWiseHash",
    "trailing_zeros",
    "OneSparseSketch",
    "L0Sampler",
    "L0SamplerSeeds",
    "GraphSketchSpec",
    "VertexSketch",
    "components_from_sketches",
    "edge_from_id",
    "edge_id",
    "sketch_boruvka",
]
