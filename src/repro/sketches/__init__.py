"""Linear sketching substrate: k-wise hashing, one-sparse recovery,
ℓ₀-samplers, and AGM graph sketches.

Two layers coexist:

* the **object API** (:class:`OneSparseSketch`, :class:`L0Sampler`,
  :class:`VertexSketch`) — one small object per counter group, convenient
  for unit-scale use; its methods behave exactly as the seed did
  (``VertexSketch.samplers`` is now a read-only snapshot);
* the **bank API** (:class:`SketchBank`, :class:`SketchRow`,
  :func:`bank_boruvka`) — the array-backed substrate: all
  ``(phase, copy, level)`` one-sparse counters of a vertex set in three
  flat arrays, bulk edge updates that compute each edge's hashes and
  fingerprint powers once for both endpoints, and slice-based
  merge/copy/zero-test.  Heavy arithmetic runs behind the backend seam of
  :mod:`repro.sketches.backend` (pure-Python default, optional numpy via
  ``pip install .[fast]``).

Equivalence policy: with fixed seeds, both layers and both backends
produce bit-identical counters, samples, and component labels; this is
pinned by golden and property tests.
"""

from .backend import HAS_NUMPY, available_backends, get_backend
from .bank import SketchBank, SketchRow, bank_boruvka
from .field import PRIME, KWiseHash, fingerprint_power, trailing_zeros
from .graph_sketch import (
    GraphSketchSpec,
    VertexSketch,
    components_from_sketches,
    edge_from_id,
    edge_id,
    sketch_boruvka,
)
from .l0 import L0Sampler, L0SamplerSeeds
from .onesparse import OneSparseSketch

__all__ = [
    "PRIME",
    "KWiseHash",
    "fingerprint_power",
    "trailing_zeros",
    "OneSparseSketch",
    "L0Sampler",
    "L0SamplerSeeds",
    "GraphSketchSpec",
    "VertexSketch",
    "SketchBank",
    "SketchRow",
    "bank_boruvka",
    "components_from_sketches",
    "edge_from_id",
    "edge_id",
    "sketch_boruvka",
    "get_backend",
    "available_backends",
    "HAS_NUMPY",
]
