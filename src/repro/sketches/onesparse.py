"""Exact one-sparse recovery, the inner loop of the ℓ₀-sampler.

A one-sparse sketch summarizes an integer vector ``x`` with three
quantities: ``S0 = sum_i x_i``, ``S1 = sum_i i * x_i`` and the fingerprint
``S2 = sum_i x_i * z^i mod p`` for a random evaluation point ``z``.  If
``x`` has exactly one nonzero coordinate ``(i, v)``, then ``S0 = v``,
``S1 = i * v`` and ``S2 = v * z^i``; the fingerprint test rejects vectors
with more than one nonzero coordinate except with probability
``max_index / p`` over the choice of ``z`` (Schwartz–Zippel).

Sketches are *linear*: merging two sketches of vectors x and y (built with
the same ``z``) yields the sketch of ``x + y`` — this is what lets a
supernode's sketch be assembled from its members' sketches.
"""

from __future__ import annotations

import random

from .field import PRIME, fingerprint_power

__all__ = ["OneSparseSketch"]


class OneSparseSketch:
    """Linear sketch supporting exact one-sparse recovery."""

    __slots__ = ("z", "s0", "s1", "s2")

    def __init__(self, z: int) -> None:
        if not 1 <= z < PRIME:
            raise ValueError("evaluation point out of range")
        self.z = z
        self.s0 = 0
        self.s1 = 0
        self.s2 = 0

    @classmethod
    def fresh(cls, rng: random.Random) -> "OneSparseSketch":
        return cls(rng.randrange(1, PRIME))

    def update(self, index: int, delta: int) -> None:
        if index < 0:
            raise ValueError("indices must be non-negative")
        self.s0 += delta
        self.s1 += index * delta
        self.s2 = (self.s2 + delta * pow(self.z, index, PRIME)) % PRIME

    def merge(self, other: "OneSparseSketch") -> None:
        if other.z != self.z:
            raise ValueError("cannot merge sketches with different seeds")
        self.s0 += other.s0
        self.s1 += other.s1
        self.s2 = (self.s2 + other.s2) % PRIME

    def copy(self) -> "OneSparseSketch":
        clone = OneSparseSketch(self.z)
        clone.s0, clone.s1, clone.s2 = self.s0, self.s1, self.s2
        return clone

    @property
    def is_zero(self) -> bool:
        return self.s0 == 0 and self.s1 == 0 and self.s2 == 0

    def decode(self) -> tuple[int, int] | None:
        """Return ``(index, value)`` if the sketched vector is plausibly
        one-sparse, else ``None``."""
        if self.is_zero or self.s0 == 0:
            return None
        if self.s1 % self.s0 != 0:
            return None
        index = self.s1 // self.s0
        if index < 0:
            return None
        expected = (self.s0 % PRIME) * fingerprint_power(self.z, index) % PRIME
        if expected != self.s2:
            return None
        return index, self.s0

    def word_size(self) -> int:
        return 4  # z, s0, s1, s2

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OneSparseSketch(s0={self.s0}, s1={self.s1})"
