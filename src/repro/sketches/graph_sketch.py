"""AGM graph sketches [1] and sketch-space Borůvka.

Encode the graph as one vector per vertex over the edge universe
``{0, ..., n^2 - 1}``: edge ``{u, v}`` (``u < v``) has id ``u * n + v`` and
appears in ``a_u`` with value ``+1`` and in ``a_v`` with value ``-1``.  For
any vertex set ``S``, the coordinates of ``sum_{v in S} a_v`` that survive
are exactly the edges crossing the cut ``(S, V \\ S)`` — internal edges
cancel.  An ℓ₀-sampler of the summed sketch therefore samples an outgoing
edge of the supernode ``S``, which is all Borůvka needs.

Because one Borůvka phase *adaptively* depends on the edges sampled in the
previous one, each phase must use fresh, independent samplers; a
:class:`GraphSketchSpec` carries ``phases x copies`` independent seed
packages (the extra copies boost the constant success probability of a
single sampler).

Since the vectorized-substrate migration the counters live in an
array-backed :class:`~repro.sketches.bank.SketchBank`;
:class:`VertexSketch` remains as a thin compatible wrapper over a
single-row bank, and :func:`sketch_boruvka` assembles the object inputs
into a bank and runs :func:`~repro.sketches.bank.bank_boruvka`.  Both
produce bit-identical results to the seed per-object implementation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..graph.union_find import UnionFind
from .bank import SketchBank, bank_boruvka, edge_from_id, edge_id
from .l0 import L0Sampler, L0SamplerSeeds

__all__ = [
    "GraphSketchSpec",
    "VertexSketch",
    "edge_id",
    "edge_from_id",
    "sketch_boruvka",
    "components_from_sketches",
]


@dataclass(frozen=True)
class GraphSketchSpec:
    """Shared seed packages: ``seeds[phase][copy]``."""

    n: int
    seeds: tuple[tuple[L0SamplerSeeds, ...], ...]

    @classmethod
    def generate(
        cls,
        n: int,
        rng: random.Random,
        phases: int | None = None,
        copies: int = 3,
    ) -> "GraphSketchSpec":
        if phases is None:
            phases = max(1, n.bit_length())
        universe = n * n
        seeds = tuple(
            tuple(L0SamplerSeeds.generate(universe, rng) for _ in range(copies))
            for _ in range(phases)
        )
        return cls(n=n, seeds=seeds)

    @property
    def phases(self) -> int:
        return len(self.seeds)

    @property
    def copies(self) -> int:
        return len(self.seeds[0])


class VertexSketch:
    """All samplers of one vertex (or one merged supernode).

    A thin compatible wrapper over a single-row :class:`SketchBank`: the
    legacy method API is preserved bit for bit, but the counters live in
    the bank's flat arrays — ``samplers`` is a read-only snapshot
    materialized on access, so mutate through the methods, not through it.
    """

    __slots__ = ("spec", "vertex", "bank")

    def __init__(self, spec: GraphSketchSpec, vertex: int, backend: object = None) -> None:
        self.spec = spec
        self.vertex = vertex
        self.bank = SketchBank(spec, (vertex,), backend=backend)

    def add_edge(self, u: int, v: int) -> None:
        """Account for incident edge ``{u, v}`` in this vertex's vector."""
        if self.vertex not in (u, v):
            raise ValueError("edge not incident to this vertex")
        self.bank.add_incident(self.vertex, u, v)

    def merge(self, other: "VertexSketch") -> None:
        self.bank.merge_row_from(
            other.bank, src_vertex=other.vertex, dst_vertex=self.vertex
        )

    def copy(self) -> "VertexSketch":
        clone = VertexSketch.__new__(VertexSketch)
        clone.spec = self.spec
        clone.vertex = self.vertex
        clone.bank = self.bank.copy()
        return clone

    @property
    def samplers(self) -> list[list[L0Sampler]]:
        """Read-only snapshot of the legacy object layout, materialized
        from the bank row (mutations do not write back)."""
        bank = self.bank
        index = bank.row_of[self.vertex] * bank.slots_per_row
        out: list[list[L0Sampler]] = []
        for phase_seeds in self.spec.seeds:
            phase_list = []
            for seeds in phase_seeds:
                sampler = L0Sampler(seeds)
                for level_sketch in sampler.levels:
                    level_sketch.s0 = bank.s0[index]
                    level_sketch.s1 = bank.s1[index]
                    level_sketch.s2 = bank.s2[index]
                    index += 1
                phase_list.append(sampler)
            out.append(phase_list)
        return out

    def sample_outgoing(self, phase: int) -> tuple[int, int] | None:
        """Sample an edge leaving this (super)vertex using the given phase's
        fresh samplers; tries the independent copies in order."""
        return self.bank.sample_outgoing(self.vertex, phase)

    def word_size(self) -> int:
        return self.bank.word_size()


def sketch_boruvka(
    spec: GraphSketchSpec, sketches: dict[int, VertexSketch]
) -> tuple[UnionFind, list[tuple[int, int]]]:
    """Borůvka over sketches (the large machine's local computation in
    Theorem C.1).  Returns the component structure and the sampled edges
    that realized each union (a spanning forest of the component graph)."""
    bank = SketchBank(spec)
    for vertex, sketch in sketches.items():
        bank.add_vertex(vertex)
        bank.merge_row_from(sketch.bank, src_vertex=sketch.vertex, dst_vertex=vertex)
    return bank_boruvka(bank)


def components_from_sketches(
    spec: GraphSketchSpec, sketches: dict[int, VertexSketch]
) -> list[int]:
    """Canonical component labels (smallest vertex per component)."""
    uf, _ = sketch_boruvka(spec, sketches)
    ordered = sorted(sketches)
    smallest: dict[int, int] = {}
    for v in ordered:
        smallest.setdefault(uf.find(v), v)
    return [smallest[uf.find(v)] for v in ordered]
