"""AGM graph sketches [1] and sketch-space Borůvka.

Encode the graph as one vector per vertex over the edge universe
``{0, ..., n^2 - 1}``: edge ``{u, v}`` (``u < v``) has id ``u * n + v`` and
appears in ``a_u`` with value ``+1`` and in ``a_v`` with value ``-1``.  For
any vertex set ``S``, the coordinates of ``sum_{v in S} a_v`` that survive
are exactly the edges crossing the cut ``(S, V \\ S)`` — internal edges
cancel.  An ℓ₀-sampler of the summed sketch therefore samples an outgoing
edge of the supernode ``S``, which is all Borůvka needs.

Because one Borůvka phase *adaptively* depends on the edges sampled in the
previous one, each phase must use fresh, independent samplers; a
:class:`GraphSketchSpec` carries ``phases x copies`` independent seed
packages (the extra copies boost the constant success probability of a
single sampler).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..graph.union_find import UnionFind
from .l0 import L0Sampler, L0SamplerSeeds

__all__ = [
    "GraphSketchSpec",
    "VertexSketch",
    "edge_id",
    "edge_from_id",
    "sketch_boruvka",
    "components_from_sketches",
]


def edge_id(n: int, u: int, v: int) -> int:
    if u > v:
        u, v = v, u
    return u * n + v


def edge_from_id(n: int, identifier: int) -> tuple[int, int]:
    return divmod(identifier, n)


@dataclass(frozen=True)
class GraphSketchSpec:
    """Shared seed packages: ``seeds[phase][copy]``."""

    n: int
    seeds: tuple[tuple[L0SamplerSeeds, ...], ...]

    @classmethod
    def generate(
        cls,
        n: int,
        rng: random.Random,
        phases: int | None = None,
        copies: int = 3,
    ) -> "GraphSketchSpec":
        if phases is None:
            phases = max(1, n.bit_length())
        universe = n * n
        seeds = tuple(
            tuple(L0SamplerSeeds.generate(universe, rng) for _ in range(copies))
            for _ in range(phases)
        )
        return cls(n=n, seeds=seeds)

    @property
    def phases(self) -> int:
        return len(self.seeds)

    @property
    def copies(self) -> int:
        return len(self.seeds[0])


class VertexSketch:
    """All samplers of one vertex (or one merged supernode)."""

    __slots__ = ("spec", "vertex", "samplers")

    def __init__(self, spec: GraphSketchSpec, vertex: int) -> None:
        self.spec = spec
        self.vertex = vertex
        self.samplers = [
            [L0Sampler(seed) for seed in phase_seeds] for phase_seeds in spec.seeds
        ]

    def add_edge(self, u: int, v: int) -> None:
        """Account for incident edge ``{u, v}`` in this vertex's vector."""
        if self.vertex not in (u, v):
            raise ValueError("edge not incident to this vertex")
        identifier = edge_id(self.spec.n, u, v)
        sign = 1 if self.vertex == min(u, v) else -1
        for phase in self.samplers:
            for sampler in phase:
                sampler.update(identifier, sign)

    def merge(self, other: "VertexSketch") -> None:
        for mine, theirs in zip(self.samplers, other.samplers):
            for sampler_a, sampler_b in zip(mine, theirs):
                sampler_a.merge(sampler_b)

    def copy(self) -> "VertexSketch":
        clone = VertexSketch.__new__(VertexSketch)
        clone.spec = self.spec
        clone.vertex = self.vertex
        clone.samplers = [
            [sampler.copy() for sampler in phase] for phase in self.samplers
        ]
        return clone

    def sample_outgoing(self, phase: int) -> tuple[int, int] | None:
        """Sample an edge leaving this (super)vertex using the given phase's
        fresh samplers; tries the independent copies in order."""
        for sampler in self.samplers[phase]:
            result = sampler.sample()
            if result is not None:
                identifier, _ = result
                return edge_from_id(self.spec.n, identifier)
        return None

    def word_size(self) -> int:
        return 1 + sum(
            sampler.word_size() for phase in self.samplers for sampler in phase
        )


def sketch_boruvka(
    spec: GraphSketchSpec, sketches: dict[int, VertexSketch]
) -> tuple[UnionFind, list[tuple[int, int]]]:
    """Borůvka over sketches (the large machine's local computation in
    Theorem C.1).  Returns the component structure and the sampled edges
    that realized each union (a spanning forest of the component graph)."""
    uf = UnionFind(sketches.keys())
    merged: dict[int, VertexSketch] = {v: s.copy() for v, s in sketches.items()}
    forest: list[tuple[int, int]] = []

    for phase in range(spec.phases):
        roots = {uf.find(v) for v in sketches}
        if len(roots) <= 1:
            break
        proposals: list[tuple[int, int]] = []
        for root in roots:
            sampled = merged[root].sample_outgoing(phase)
            if sampled is not None:
                proposals.append(sampled)
        if not proposals:
            # No supernode found an outgoing edge.  Either every cut is
            # empty (components are final) or all samplers failed, which
            # happens with probability exponentially small in the number
            # of copies; later phases cannot recover, so stop either way.
            break
        for u, v in proposals:
            ru, rv = uf.find(u), uf.find(v)
            if ru != rv:
                merged[ru].merge(merged[rv])
                uf.union(u, v)
                keep = uf.find(u)
                if keep != ru:
                    merged[keep] = merged[ru]
                forest.append((u, v))
    return uf, forest


def components_from_sketches(
    spec: GraphSketchSpec, sketches: dict[int, VertexSketch]
) -> list[int]:
    """Canonical component labels (smallest vertex per component)."""
    uf, _ = sketch_boruvka(spec, sketches)
    smallest: dict[int, int] = {}
    for v in sorted(sketches):
        root = uf.find(v)
        smallest.setdefault(root, v)
    return [smallest[uf.find(v)] for v in sorted(sketches)]
