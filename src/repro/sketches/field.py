"""Hashing over a prime field for the sketching substrate.

The ℓ₀-samplers need k-wise independent hash functions; we use the
classical construction — a random degree-(k-1) polynomial over the field
``GF(p)`` with the Mersenne prime ``p = 2^61 - 1`` — which is k-wise
independent and cheap to evaluate.
"""

from __future__ import annotations

import random
from functools import lru_cache

__all__ = ["PRIME", "KWiseHash", "fingerprint_power", "trailing_zeros"]

PRIME = (1 << 61) - 1


class KWiseHash:
    """A k-wise independent hash function ``h: Z -> [0, PRIME)``."""

    __slots__ = ("coefficients",)

    def __init__(self, k: int, rng: random.Random) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        coefficients = [rng.randrange(1, PRIME)]
        coefficients.extend(rng.randrange(PRIME) for _ in range(k - 1))
        self.coefficients = tuple(coefficients)

    def __call__(self, x: int) -> int:
        # Horner evaluation of the random polynomial at x, mod PRIME.
        # Reduce x once up front so every Horner step multiplies two
        # sub-61-bit residues instead of dragging a large x through.
        x %= PRIME
        acc = 0
        for coefficient in self.coefficients:
            acc = (acc * x + coefficient) % PRIME
        return acc

    def eval_many(self, xs, backend: object = None) -> list[int]:
        """Evaluate the hash at every point of *xs* in one batched pass.

        Delegates to a sketch backend (see :mod:`repro.sketches.backend`):
        the pure backend runs one list pass per coefficient, the numpy
        backend one vectorized multiply-add per coefficient.  Results are
        bit-identical to calling the hash point by point.
        """
        from .backend import get_backend  # local import: avoids a cycle

        return get_backend(backend).poly_eval_many(self.coefficients, xs)


@lru_cache(maxsize=1 << 16)
def fingerprint_power(z: int, index: int) -> int:
    """Cached ``z ** index mod PRIME``.

    Decoding retries the same candidate index across every copy, phase and
    Borůvka round (and both endpoints of an edge contribute the same
    fingerprint power during updates), so the modular exponentiation is
    recomputed many times for identical arguments; a small shared cache
    removes the repeats.
    """
    return pow(z, index, PRIME)


def trailing_zeros(value: int) -> int:
    """Number of trailing zero bits (the geometric level of an item)."""
    if value == 0:
        return 61
    return (value & -value).bit_length() - 1
