"""Hashing over a prime field for the sketching substrate.

The ℓ₀-samplers need k-wise independent hash functions; we use the
classical construction — a random degree-(k-1) polynomial over the field
``GF(p)`` with the Mersenne prime ``p = 2^61 - 1`` — which is k-wise
independent and cheap to evaluate.
"""

from __future__ import annotations

import random

__all__ = ["PRIME", "KWiseHash", "trailing_zeros"]

PRIME = (1 << 61) - 1


class KWiseHash:
    """A k-wise independent hash function ``h: Z -> [0, PRIME)``."""

    __slots__ = ("coefficients",)

    def __init__(self, k: int, rng: random.Random) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        coefficients = [rng.randrange(1, PRIME)]
        coefficients.extend(rng.randrange(PRIME) for _ in range(k - 1))
        self.coefficients = tuple(coefficients)

    def __call__(self, x: int) -> int:
        # Horner evaluation of the random polynomial at x, mod PRIME.
        acc = 0
        for coefficient in self.coefficients:
            acc = (acc * x + coefficient) % PRIME
        return acc


def trailing_zeros(value: int) -> int:
    """Number of trailing zero bits (the geometric level of an item)."""
    if value == 0:
        return 61
    return (value & -value).bit_length() - 1
