"""Appendix C.1 — connected components in O(1) rounds (Theorem C.1).

The AGM linear-sketch algorithm: one machine generates the shared seed
package (``O(polylog n)`` bits — the paper replaces shared randomness with
``O(log n)``-wise independence) and tree-broadcasts it; every small machine
builds *partial* vertex sketches from the edges it stores (Property 1:
linear sketches add); the partial sketches are summed per vertex up the
aggregation tree of Claim 2 onto the large machine, which runs Borůvka in
sketch space locally.  Constant rounds end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..graph.graph import Graph
from ..mpc import Cluster, ModelConfig
from ..mpc.words import word_size
from ..primitives.aggregate import aggregate
from ..primitives.broadcast import broadcast
from ..primitives.edgestore import EdgeStore
from ..sketches import GraphSketchSpec, SketchBank, SketchRow, bank_boruvka, get_backend

__all__ = ["ConnectivityResult", "heterogeneous_connectivity", "sketch_components"]


@dataclass
class ConnectivityResult:
    """Outcome of a sketch-based connectivity run."""

    labels: list[int]
    num_components: int
    rounds: int
    cluster: Cluster | None = field(default=None, repr=False)


def _merge_rows(a: SketchRow, b: SketchRow) -> SketchRow:
    return a.merge(b)


def sketch_components(
    cluster: Cluster,
    store: EdgeStore,
    n: int,
    rng: random.Random,
    copies: int = 3,
    note: str = "connectivity",
    backend: object = None,
) -> list[int]:
    """Run Theorem C.1 on the edges in *store*; returns canonical component
    labels (smallest vertex of each component) for vertices ``0..n-1``.

    *backend* selects the sketch compute backend (``"pure"`` default,
    ``"numpy"`` when the ``[fast]`` extra is installed); the labels are
    bit-identical either way.
    """
    spec = GraphSketchSpec.generate(n, rng, copies=copies)
    # One backend instance for every bank of this run, so the fingerprint
    # power tables built for the shared evaluation points are shared too.
    backend = get_backend(backend)

    # One machine generated the seed package; broadcast it (Claim 3 spirit).
    source = cluster.large.machine_id if cluster.has_large else cluster.small_ids[0]
    seed_words = sum(
        seeds.word_size() for phase in spec.seeds for seeds in phase
    )
    broadcast(cluster, source, ("sketch-seeds", seed_words), cluster.small_ids, note=f"{note}/seeds")

    # Each small machine bulk-builds a partial sketch bank from the edges
    # it stores (zero rounds: local computation) and ships one counter row
    # per touched vertex.
    partials_by_machine: dict[int, list] = {}
    for machine in cluster.smalls:
        local = SketchBank(spec, backend=backend)
        local.update_edges(
            (edge[0], edge[1]) for edge in machine.get(store.name, [])
        )
        partials_by_machine[machine.machine_id] = local.row_items()

    # Sum the partial rows per vertex up the aggregation tree (Claim 2);
    # rows charge exactly what the legacy per-vertex sketches charged.
    dst = cluster.large.machine_id if cluster.has_large else cluster.small_ids[0]
    rows = aggregate(
        cluster, partials_by_machine, _merge_rows, dst=dst, note=f"{note}/sum"
    )
    bank = SketchBank(spec, backend=backend)
    for vertex, row in rows.items():
        bank.insert_row(vertex, row)
    for v in range(n):
        bank.add_vertex(v)  # isolated vertices get zero rows

    # Local Borůvka in sketch space on the (large) destination machine.
    # The assembled bank is that machine's working state — charge it for
    # the duration of the computation so the memory ledger (and strict
    # mode) sees the n * polylog(n) sketch footprint Theorem C.1 budgets.
    dst_machine = cluster.machine(dst)
    # Throttle hook (advisory): the assembled bank is resident working
    # state — re-scheduling traffic cannot shrink it, so a bank past the
    # headroom line is surfaced to the controller's advise channel (and
    # the artifact's throttle block) rather than "fixed" silently.
    if cluster.throttle is not None:
        cluster.throttle.note_bank(
            word_size(bank), dst_machine.capacity, note=f"{note}#bank"
        )
    dst_machine.put(f"{note}#bank", bank)
    try:
        uf, _ = bank_boruvka(bank)
        cluster.checkpoint_memory(f"{note}/boruvka")
    finally:
        dst_machine.pop(f"{note}#bank", None)
    smallest: dict[int, int] = {}
    for v in range(n):
        root = uf.find(v)
        if root not in smallest or v < smallest[root]:
            smallest[root] = v
    return [smallest[uf.find(v)] for v in range(n)]


def heterogeneous_connectivity(
    graph: Graph,
    config: ModelConfig | None = None,
    rng: random.Random | None = None,
    copies: int = 3,
    instances: int = 3,
    backend: object = None,
) -> ConnectivityResult:
    """Identify the connected components of *graph* in O(1) rounds.

    A single sketch instance fails with small constant probability (some
    supernode's samplers all miss in some phase), and failure is one-sided:
    the instance reports *too many* components, never too few (sampled
    edges are always real cut edges).  Running ``instances`` independent
    instances in parallel and keeping the one with fewest components
    therefore amplifies to w.h.p. — the paper's standard repetition.
    """
    rng = rng if rng is not None else random.Random(0)
    config = (
        config
        if config is not None
        else ModelConfig.heterogeneous(n=graph.n, m=max(graph.m, 1))
    )
    cluster = Cluster(config, rng=random.Random(rng.random()))
    store = EdgeStore.create(
        cluster, [(e[0], e[1]) for e in graph.edges], name="conn-edges"
    )
    best: list[int] | None = None
    with cluster.ledger.parallel("instances") as par:
        for _ in range(max(1, instances)):
            with par.branch():
                labels = sketch_components(
                    cluster, store, graph.n, rng, copies=copies, backend=backend
                )
            if best is None or len(set(labels)) < len(set(best)):
                best = labels
    assert best is not None
    return ConnectivityResult(
        labels=best,
        num_components=len(set(best)),
        rounds=cluster.ledger.rounds,
        cluster=cluster,
    )
