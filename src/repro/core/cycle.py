"""The 1-vs-2 cycle problem — the conjectured-hard core of sublinear MPC.

The paper's motivating observation (Section 1): distinguishing one cycle of
length ``n`` from two cycles of length ``n/2`` is conjectured to need
``Ω(log n)`` rounds in sublinear MPC, but becomes *trivial* with a single
machine of memory ``Ω(n log n)`` — a cycle graph has exactly ``n`` edges,
so the large machine can just collect the whole input and count components
locally, in one round.

For the baseline column we also provide the classic sublinear-MPC pointer
strategy via Borůvka-style component merging (``repro.baselines``), whose
measured round count grows with ``log n``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..graph.graph import Graph
from ..graph.union_find import UnionFind
from ..mpc import Cluster, ModelConfig
from ..primitives.edgestore import EdgeStore

__all__ = ["CycleResult", "solve_one_vs_two_cycles"]


@dataclass
class CycleResult:
    """Outcome of the 1-vs-2 cycle decision."""

    num_cycles: int
    rounds: int
    cluster: Cluster = field(default=None, repr=False)


def solve_one_vs_two_cycles(
    graph: Graph,
    config: ModelConfig | None = None,
    rng: random.Random | None = None,
) -> CycleResult:
    """Decide whether the input (promised to be a disjoint union of cycles)
    is one cycle or two.  One round: the input has ``m = n`` edges, which
    fits the large machine."""
    rng = rng if rng is not None else random.Random(0)
    config = (
        config
        if config is not None
        else ModelConfig.heterogeneous(n=graph.n, m=max(graph.m, 1))
    )
    cluster = Cluster(config, rng=random.Random(rng.random()))
    store = EdgeStore.create(
        cluster, [(e[0], e[1]) for e in graph.edges], name="cycle-edges"
    )
    edges = store.gather_to_large(note="cycle/gather")
    uf = UnionFind(range(graph.n))
    for u, v in edges:
        uf.union(u, v)
    return CycleResult(
        num_cycles=uf.num_components, rounds=cluster.ledger.rounds, cluster=cluster
    )
