"""Appendix C.4 — maximal independent set in O(log log Δ) rounds.

The GGKMR algorithm [26]: the large machine fixes a uniformly random
permutation of the vertices and processes geometrically growing *rank
prefixes*.  In iteration ``i`` the subgraph induced by the still-undecided
vertices of rank at most ``n / Δ^{α^{i+1}}`` (α = 3/4) has ``O~(n)`` edges
w.h.p., so it fits on the large machine, which extends the MIS greedily in
rank order.  Undecided vertices adjacent to new MIS vertices are discovered
by the small machines and reported back (Claims 2/3).  After
``O(log log Δ)`` iterations the residual graph has ``O~(n)`` edges and one
final shipment finishes the job.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..graph.graph import Graph
from ..mpc import Cluster, ModelConfig
from ..primitives.edgestore import EdgeStore

__all__ = ["MISResult", "heterogeneous_mis", "prefix_thresholds"]

ALPHA = 0.75


@dataclass
class MISResult:
    """Outcome of a distributed MIS run."""

    vertices: set[int]
    rounds: int
    iterations: int
    cluster: Cluster = field(default=None, repr=False)

    @property
    def size(self) -> int:
        return len(self.vertices)


def prefix_thresholds(n: int, max_degree: int) -> list[float]:
    """Rank thresholds ``n / Δ^{α^i}`` for i = 1, 2, ... until the prefix
    covers everything; their count is O(log log Δ)."""
    if max_degree <= 2:
        return [float(n)]
    thresholds = []
    exponent = ALPHA
    while True:
        thresholds.append(n / max_degree**exponent)
        if max_degree**exponent <= 2.0:
            break
        exponent *= ALPHA
    thresholds.append(float(n))
    return thresholds


def heterogeneous_mis(
    graph: Graph,
    config: ModelConfig | None = None,
    rng: random.Random | None = None,
) -> MISResult:
    """Compute a maximal independent set of *graph* w.h.p."""
    rng = rng if rng is not None else random.Random(0)
    config = (
        config
        if config is not None
        else ModelConfig.heterogeneous(n=graph.n, m=max(graph.m, 1))
    )
    cluster = Cluster(config, rng=random.Random(rng.random()))
    n = graph.n
    store = EdgeStore.create(
        cluster, [(e[0], e[1]) for e in graph.edges], name="mis-edges"
    )

    # The large machine draws the permutation; rank(v) in 1..n.
    order = list(range(n))
    rng.shuffle(order)
    rank = {v: position + 1 for position, v in enumerate(order)}

    degrees = store.aggregate(lambda e: (e[0], 1), "sum", note="deg")
    for v, extra in store.aggregate(lambda e: (e[1], 1), "sum", note="deg2").items():
        degrees[v] = degrees.get(v, 0) + extra
    max_degree = max(degrees.values(), default=1)

    in_mis: set[int] = set()
    blocked: set[int] = set()
    iterations = 0

    for threshold in prefix_thresholds(n, max_degree):
        iterations += 1
        with cluster.ledger.section(f"iter{iterations}"):
            # Ship the induced prefix subgraph of undecided vertices.
            status = {
                v: (rank[v], v in in_mis, v in blocked) for v in range(n)
            }
            annotated = store.annotate(status, note="prefix")
            prefix_name = f"{store.name}.prefix"
            for machine in cluster.smalls:
                kept = []
                for record, (ru, mis_u, blk_u), (rv, mis_v, blk_v) in machine.pop(
                    annotated.name, []
                ):
                    if mis_u or blk_u or mis_v or blk_v:
                        continue
                    if ru <= threshold and rv <= threshold:
                        kept.append(record)
                machine.put(prefix_name, kept)
            prefix_store = EdgeStore(cluster, prefix_name)
            induced = prefix_store.gather_to_large(note="gather")
            prefix_store.drop()

            # Greedy in rank order over the undecided prefix vertices.
            adjacency: dict[int, set[int]] = {}
            for u, v in induced:
                adjacency.setdefault(u, set()).add(v)
                adjacency.setdefault(v, set()).add(u)
            undecided_prefix = [
                v
                for v in order
                if rank[v] <= threshold and v not in in_mis and v not in blocked
            ]
            newly_chosen = []
            for v in undecided_prefix:
                if v in blocked:
                    continue
                if not (adjacency.get(v, set()) & in_mis):
                    in_mis.add(v)
                    newly_chosen.append(v)
                    blocked.update(adjacency.get(v, set()))

            # Small machines discover neighbors of the new MIS vertices
            # (including those outside the prefix) and report them blocked.
            mis_flags = {v: (v in in_mis) for v in range(n)}
            annotated = store.annotate(mis_flags, default=False, note="notify")
            pairs_name = f"{store.name}.blocked"
            for machine in cluster.smalls:
                pairs = []
                survivors = []
                for record, flag_u, flag_v in machine.pop(annotated.name, []):
                    if flag_u and flag_v:
                        continue  # cannot happen for a valid MIS
                    if flag_u:
                        pairs.append((record[1], True))
                    elif flag_v:
                        pairs.append((record[0], True))
                    else:
                        survivors.append(record)
                machine.put(pairs_name, pairs)
                machine.put(store.name, survivors)
            blocked_report = EdgeStore(cluster, pairs_name).aggregate(
                lambda pair: (pair[0], pair[1]), "or", note="blocked"
            )
            cluster.map_small(pairs_name, lambda m, items: [])
            blocked.update(v for v, flag in blocked_report.items() if flag)

    # Any vertex never decided (isolated or untouched) is independent.
    for v in range(n):
        if v not in in_mis and v not in blocked:
            in_mis.add(v)

    return MISResult(
        vertices=in_mis,
        rounds=cluster.ledger.rounds,
        iterations=iterations,
        cluster=cluster,
    )
