"""Appendix C.1.1 — (1+ε)-approximate MST weight in O(1) rounds.

The Chazelle–Rubinfeld–Trevisan / AGM reduction: for integer weights in
``[1, W]``,

    MST(G) = sum_{t=0}^{W-1} (cc(t) - 1)

where ``cc(t)`` is the number of connected components of the subgraph with
edges of weight <= t.  Evaluating ``cc`` only at geometric thresholds
``t_{j+1} ~ (1+eps) t_j`` and charging each block at its left endpoint
over-estimates by at most a ``(1+eps)`` factor, and needs only
``O(log_{1+eps} W)`` sketch-connectivity runs — all executed in parallel in
the same constant number of rounds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..graph.graph import Graph
from ..mpc import Cluster, ModelConfig
from ..primitives.edgestore import EdgeStore
from .connectivity import sketch_components

__all__ = ["MSTApproxResult", "approximate_mst_weight", "geometric_thresholds"]


@dataclass
class MSTApproxResult:
    """Outcome of the (1+ε)-approximate MST-weight computation."""

    estimate: float
    thresholds: list[int]
    component_counts: dict[int, int]
    rounds: int
    cluster: Cluster | None = field(default=None, repr=False)


def geometric_thresholds(max_weight: int, epsilon: float) -> list[int]:
    """Strictly increasing integer thresholds ``1 = t_0 < t_1 < ... >= W``
    with ``t_{j+1} <= (1 + eps) t_j + 1``."""
    thresholds = [1]
    while thresholds[-1] < max_weight:
        nxt = max(thresholds[-1] + 1, int(thresholds[-1] * (1.0 + epsilon)))
        thresholds.append(min(nxt, max_weight))
    return thresholds


def approximate_mst_weight(
    graph: Graph,
    epsilon: float = 0.5,
    config: ModelConfig | None = None,
    rng: random.Random | None = None,
    copies: int = 3,
    backend: object = None,
) -> MSTApproxResult:
    """Estimate the MST weight of a connected weighted graph within a
    ``(1+eps)`` factor, in O(1) rounds.

    (For a disconnected graph the same quantity estimates the minimum
    spanning *forest* weight plus nothing extra — cc(t) counts all
    components.)
    """
    if not graph.weighted:
        raise ValueError("approximate MST needs a weighted graph")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    rng = rng if rng is not None else random.Random(0)
    config = (
        config
        if config is not None
        else ModelConfig.heterogeneous(n=graph.n, m=max(graph.m, 1))
    )
    cluster = Cluster(config, rng=random.Random(rng.random()))
    store = EdgeStore.create(cluster, list(graph.edges), name="amst-edges")

    max_weight = max((e[2] for e in graph.edges), default=1)
    thresholds = geometric_thresholds(max_weight, epsilon)

    # All thresholds run their sketch-connectivity instance in parallel: the
    # round charge is the max over instances (they are identical protocols).
    counts: dict[int, int] = {}
    with cluster.ledger.parallel("thresholds") as par:
        for t in thresholds:
            with par.branch():
                level_name = f"{store.name}.le{t}"
                for machine in cluster.smalls:
                    machine.put(
                        level_name,
                        [e for e in machine.get(store.name, []) if e[2] <= t],
                    )
                level_store = EdgeStore(cluster, level_name)
                labels = sketch_components(
                    cluster,
                    level_store,
                    graph.n,
                    rng,
                    copies=copies,
                    note=f"cc{t}",
                    backend=backend,
                )
                counts[t] = len(set(labels))
                level_store.drop()

    # Blockwise sum: block j covers integer thresholds [t_j, t_{j+1}).
    # cc(0) = n covers the [0, 1) block.
    estimate = float(graph.n - 1)  # the (cc(0) - 1) term for t = 0
    for j, t in enumerate(thresholds):
        upper = thresholds[j + 1] if j + 1 < len(thresholds) else max_weight
        width = max(0, upper - t)
        estimate += width * (counts[t] - 1)

    return MSTApproxResult(
        estimate=estimate,
        thresholds=thresholds,
        component_counts=counts,
        rounds=cluster.ledger.rounds,
        cluster=cluster,
    )
