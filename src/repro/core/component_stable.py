"""Component-stable execution (footnote 1 of the paper).

The conditional lower bounds of [17, 29] apply only to *component-stable*
algorithms — ones whose output on each connected component is independent
of the other components.  The paper notes its algorithms "can trivially be
made component-stable, because we can first solve connectivity on the
large machine, and then work on each connected component separately but in
parallel".  This module implements exactly that wrapper:

1. run the O(1)-round sketch connectivity (Theorem C.1);
2. split the input into per-component subgraphs (vertices relabeled to
   ``0..size-1`` so a component run never sees the rest of the graph —
   that is the stability guarantee);
3. run the wrapped algorithm on every component inside a parallel ledger
   section — components share rounds, so the total round cost is
   ``connectivity + max over components``;
4. remap outputs back to original vertex ids when combining.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

from ..graph.graph import Graph
from ..mpc import ModelConfig
from ..mpc.ledger import RoundLedger
from .connectivity import heterogeneous_connectivity

__all__ = ["ComponentStableResult", "run_component_stable"]

#: An algorithm entry point: (graph, rng=...) -> result with a ``rounds``
#: attribute (all of ``repro.core``'s entry points qualify).
Algorithm = Callable[..., Any]


@dataclass
class ComponentStableResult:
    """Per-component results plus the combined round accounting.

    Component results are expressed in *component-local* vertex ids;
    ``to_original[label]`` maps local id -> original id, and the
    ``combined_*`` helpers do the remapping.
    """

    component_results: dict[int, Any]
    to_original: dict[int, list[int]]
    labels: list[int]
    connectivity_rounds: int
    component_rounds: int

    @property
    def rounds(self) -> int:
        """Total: connectivity plus the slowest component (they run in
        parallel)."""
        return self.connectivity_rounds + self.component_rounds

    @property
    def num_components(self) -> int:
        return len(self.component_results)

    def combined_vertices(self, extract: Callable[[Any], Any]) -> set[int]:
        """Union per-component vertex outputs, remapped to original ids."""
        out: set[int] = set()
        for label, result in self.component_results.items():
            mapping = self.to_original[label]
            out.update(mapping[v] for v in extract(result))
        return out

    def combined_edges(self, extract: Callable[[Any], Any]) -> list[tuple]:
        """Union per-component edge outputs (``(u, v, ...)`` tuples; the
        first two coordinates are vertex ids), remapped to original ids."""
        out: list[tuple] = []
        for label, result in self.component_results.items():
            mapping = self.to_original[label]
            for edge in extract(result):
                u, v = mapping[edge[0]], mapping[edge[1]]
                out.append((min(u, v), max(u, v), *edge[2:]))
        return out


def run_component_stable(
    graph: Graph,
    algorithm: Algorithm,
    rng: random.Random | None = None,
    config: ModelConfig | None = None,
    sketch_backend: object = None,
    **algorithm_kwargs: Any,
) -> ComponentStableResult:
    """Run *algorithm* component-stably on *graph*.

    Each component gets its own deployment sized to the component (the
    model allots machines per input size); all components execute in
    parallel, so the charged component cost is the max round count.

    The connectivity stage runs on the vectorized sketch bank;
    *sketch_backend* picks its compute backend (``"pure"`` default,
    ``"numpy"`` with the ``[fast]`` extra) without changing any output.
    """
    rng = rng if rng is not None else random.Random(0)

    connectivity = heterogeneous_connectivity(
        graph, config=config, rng=rng, backend=sketch_backend
    )
    members: dict[int, list[int]] = {}
    for vertex, label in enumerate(connectivity.labels):
        members.setdefault(label, []).append(vertex)

    ledger = RoundLedger()
    results: dict[int, Any] = {}
    to_original: dict[int, list[int]] = {}
    with ledger.parallel("components") as par:
        for label, vertices in sorted(members.items()):
            with par.branch():
                local_of = {v: i for i, v in enumerate(vertices)}
                local_edges = [
                    (local_of[e[0]], local_of[e[1]], *e[2:])
                    for e in graph.edges
                    if e[0] in local_of and e[1] in local_of
                ]
                subgraph = Graph(
                    len(vertices), local_edges, weighted=graph.weighted
                )
                result = algorithm(
                    subgraph, rng=random.Random(rng.random()), **algorithm_kwargs
                )
                ledger.charge(getattr(result, "rounds", 0), note=f"component{label}")
                results[label] = result
                to_original[label] = list(vertices)

    return ComponentStableResult(
        component_results=results,
        to_original=to_original,
        labels=connectivity.labels,
        connectivity_rounds=connectivity.rounds,
        component_rounds=ledger.rounds,
    )
