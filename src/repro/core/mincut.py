"""Appendix C.2 / C.3 — minimum cuts in O(1) rounds.

**Exact unweighted min-cut (Theorem C.3)** follows Ghaffari–Nowicki–Thorup
[32]: a *2-out contraction* (every vertex marks two random incident edges;
the connected components of the marked graph are contracted) followed by a
*random-sampling contraction* at rate ``1/(2 delta)`` shrinks the graph to
``O(n)`` inter-component edges while preserving any non-singleton
near-minimum cut with constant probability.  The surviving multigraph is
shipped to the large machine, which computes its exact min cut
(Stoer–Wagner) and compares against the best singleton cut; O(log n)
repetitions run in parallel to amplify to w.h.p.

**(1±ε)-approximate weighted min-cut (Theorem C.4)** follows
Ghaffari–Nowicki [31] in its sampling essence: treat weight as edge
multiplicity, subsample units at rate ``q ~ log n / (eps^2 lambda)`` for
geometric guesses of ``lambda``, and accept the guess whose sampled graph
still has a sufficiently large min cut — by Karger's cut-counting bound all
cuts are preserved within ``(1±eps)`` at that rate, so rescaling the
sampled min cut by ``1/q`` estimates the true one.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..graph.graph import Graph
from ..graph.union_find import UnionFind
from ..local.mincut import stoer_wagner
from ..mpc import AlgorithmFailure, Cluster, ModelConfig
from ..primitives.edgestore import EdgeStore

__all__ = [
    "MinCutResult",
    "exact_unweighted_mincut",
    "approximate_weighted_mincut",
]


@dataclass
class MinCutResult:
    """Outcome of a distributed min-cut computation."""

    value: float
    rounds: int
    attempts: int = 1
    cluster: Cluster = field(default=None, repr=False)


# ----------------------------------------------------------------------
# Theorem C.3: exact unweighted min-cut
# ----------------------------------------------------------------------
def exact_unweighted_mincut(
    graph: Graph,
    config: ModelConfig | None = None,
    rng: random.Random | None = None,
    attempts: int | None = None,
) -> MinCutResult:
    """Exact min cut of a connected unweighted graph, w.h.p."""
    rng = rng if rng is not None else random.Random(0)
    config = (
        config
        if config is not None
        else ModelConfig.heterogeneous(n=graph.n, m=max(graph.m, 1))
    )
    cluster = Cluster(config, rng=random.Random(rng.random()))
    n = graph.n
    store = EdgeStore.create(
        cluster, [(e[0], e[1]) for e in graph.edges], name="cut-edges"
    )
    if attempts is None:
        attempts = max(8, 2 * int(math.log2(max(n, 4))) ** 2)

    # Degrees once (Claim 2): gives delta and the best singleton cut.
    degrees = store.aggregate(lambda e: (e[0], 1), "sum", note="degrees")
    for v, extra in store.aggregate(
        lambda e: (e[1], 1), "sum", note="degrees2"
    ).items():
        degrees[v] = degrees.get(v, 0) + extra
    delta = min((degrees.get(v, 0) for v in range(n)), default=0)
    best = float(delta)

    with cluster.ledger.parallel("contraction") as par:
        for _ in range(attempts):
            with par.branch():
                candidate = _contraction_attempt(cluster, store, n, delta, rng)
            if candidate is not None:
                best = min(best, candidate)

    return MinCutResult(
        value=best, rounds=cluster.ledger.rounds, attempts=attempts, cluster=cluster
    )


def _contraction_attempt(
    cluster: Cluster, store: EdgeStore, n: int, delta: int, rng: random.Random
) -> float | None:
    """One 2-out + sampling contraction; returns the contracted min cut or
    None when the attempt overflowed the large machine's budget."""
    # 2-out: every vertex keeps its two lowest-ranked incident edges.  The
    # per-vertex "two smallest" is an aggregation function (Claim 2).
    def two_smallest(a: tuple, b: tuple) -> tuple:
        return tuple(sorted(a + b)[:2])

    ranked_pairs: dict[int, list] = {
        machine.machine_id: [
            pair
            for edge in machine.get(store.name, [])
            for pair in (
                (edge[0], ((cluster.rng.random(), edge),)),
                (edge[1], ((cluster.rng.random(), edge),)),
            )
        ]
        for machine in cluster.smalls
    }
    from ..primitives.aggregate import aggregate

    chosen = aggregate(cluster, ranked_pairs, two_smallest, note="2out")
    uf = UnionFind(range(n))
    for picks in chosen.values():
        for _, edge in picks:
            uf.union(edge[0], edge[1])

    # Random-sampling contraction at rate 1/(2 delta) over the surviving
    # inter-component edges (sampled locally, merged on the large machine).
    p = min(1.0, 1.0 / max(2.0 * delta, 2.0))
    sampled = store.sample(p, rng)
    sampled_edges = sampled.gather_to_large(note="2out/sample")
    sampled.drop()
    for u, v in sampled_edges:
        uf.union(u, v)
    component = {v: uf.find(v) for v in range(n)}

    # Collect the contracted multigraph if it is small enough.
    survivors_name = f"{store.name}.survivors"
    annotated = store.annotate(component, note="2out/labels")
    for machine in cluster.smalls:
        machine.put(
            survivors_name,
            [
                (label_u, label_v)
                for record, label_u, label_v in machine.pop(annotated.name, [])
                if label_u != label_v
            ],
        )
    survivors = EdgeStore(cluster, survivors_name)
    count = survivors.count(note="2out/count")
    budget = max(16 * n, 256)
    if count > budget:
        survivors.drop()
        return None
    multigraph = survivors.gather_to_large(note="2out/gather")
    survivors.drop()
    vertices = {x for e in multigraph for x in e}
    if len(vertices) < 2:
        return None
    value, _ = stoer_wagner(vertices, multigraph)
    return float(value)


# ----------------------------------------------------------------------
# Theorem C.4: (1 ± eps)-approximate weighted min-cut
# ----------------------------------------------------------------------
def approximate_weighted_mincut(
    graph: Graph,
    epsilon: float = 0.4,
    config: ModelConfig | None = None,
    rng: random.Random | None = None,
) -> MinCutResult:
    """Approximate the weighted min cut within ``(1 ± eps)`` w.h.p."""
    if not graph.weighted:
        raise ValueError("needs a weighted graph")
    rng = rng if rng is not None else random.Random(0)
    config = (
        config
        if config is not None
        else ModelConfig.heterogeneous(n=graph.n, m=max(graph.m, 1))
    )
    cluster = Cluster(config, rng=random.Random(rng.random()))
    n = graph.n
    store = EdgeStore.create(cluster, list(graph.edges), name="wcut-edges")

    total_weight = sum(e[2] for e in graph.edges)
    threshold = max(8.0, 6.0 * math.log(max(n, 4)) / (epsilon * epsilon))
    attempts = 0
    estimate: float | None = None

    # Geometric guesses for lambda, largest first: the first guess whose
    # sampled graph retains a min cut above the concentration threshold is
    # trustworthy.  q = 1 (small lambda) degenerates to the exact cut.
    guesses = []
    guess = 1.0
    while guess < 2 * total_weight:
        guesses.append(guess)
        guess *= 2.0
    with cluster.ledger.parallel("guesses") as par:
        for lam in sorted(guesses, reverse=True):
            attempts += 1
            q = min(1.0, threshold / max(lam, 1.0))
            with par.branch():
                value, units = _sampled_cut(cluster, store, q, rng)
            if value is None:
                continue
            if q >= 1.0:
                estimate = value
                break
            if value >= 0.5 * threshold:
                estimate = value / q
                break
    if estimate is None:
        raise AlgorithmFailure("no sampling guess produced a usable cut")

    return MinCutResult(
        value=estimate,
        rounds=cluster.ledger.rounds,
        attempts=attempts,
        cluster=cluster,
    )


def _sampled_cut(
    cluster: Cluster, store: EdgeStore, q: float, rng: random.Random
) -> tuple[float | None, int]:
    """Sample each unit of weight with probability *q*, ship the unit
    multigraph to the large machine, return its min cut value."""
    sampled_name = f"{store.name}.units"
    total_units = 0
    for machine in cluster.smalls:
        units = []
        for u, v, w in machine.get(store.name, []):
            if q >= 1.0:
                kept = w
            elif w <= 64:
                kept = sum(1 for _ in range(w) if rng.random() < q)
            else:
                # Normal approximation to Binomial(w, q) for heavy edges.
                mean = w * q
                sigma = math.sqrt(max(w * q * (1.0 - q), 1e-9))
                kept = min(w, max(0, round(rng.gauss(mean, sigma))))
            if kept:
                units.append((u, v, kept))
                total_units += kept
        machine.put(sampled_name, units)
    unit_store = EdgeStore(cluster, sampled_name)
    count = unit_store.count(note="wcut/count")
    budget = max(64 * cluster.config.n, 1024)
    if count > budget:
        unit_store.drop()
        return None, total_units
    edges = unit_store.gather_to_large(note="wcut/gather")
    unit_store.drop()
    vertices = {x for e in edges for x in (e[0], e[1])}
    if len(vertices) < cluster.config.n:
        return None, total_units  # sampling disconnected the graph
    value, _ = stoer_wagner(vertices, edges)
    return float(value), total_units
