"""Section 4: clustering graphs, modified Baswana–Sen, spanners, APSP."""

from .apsp import ApproximateAPSP, build_apsp_oracle
from .clustering import ClusteringGraphs, build_clustering_graphs, degree_scale
from .modified_bs import (
    ClusterPhaseResult,
    VertexLabel,
    cluster_phase,
    modified_baswana_sen_local,
    modified_baswana_sen_mpc,
)
from .spanner import SpannerResult, heterogeneous_spanner, level_sampling_probability

__all__ = [
    "ApproximateAPSP",
    "build_apsp_oracle",
    "ClusteringGraphs",
    "build_clustering_graphs",
    "degree_scale",
    "ClusterPhaseResult",
    "VertexLabel",
    "cluster_phase",
    "modified_baswana_sen_local",
    "modified_baswana_sen_mpc",
    "SpannerResult",
    "heterogeneous_spanner",
    "level_sampling_probability",
]
