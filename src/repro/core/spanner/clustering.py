"""Algorithm 5 / Lemma A.1 — the clustering graphs of [22] in O(1) rounds.

Star decomposition: every vertex ``u`` gets a *star center* ``sigma(u)``
(itself, or an adjacent vertex from the densest hitting set that dominates
it), and each original edge ``{u, v}`` at degree scale
``i = floor(log2 min(deg u, deg v))`` induces the clustering-graph edge
``(sigma(u), sigma(v))`` in ``A_i``, tagged with the lightest original edge
realizing it (``E_G``).

The hitting sets ``D_i`` are built exactly as in Algorithm 5: ``log n``
independent samples at rate ``i / 2^i``, each patched with the un-dominated
high-degree vertices, keeping the smallest patched sample.  ``B_i`` is the
union of the chosen ``D_j`` for ``j >= i`` (with ``B_0 = V``), and
``i_u = max{i : u in B_i or N(u) cap B_i != empty}``.

Communication pattern (all O(1) rounds): degree aggregation (Claim 2),
three edge annotations (Claim 3 + sort-join) interleaved with neighborhood
OR-aggregations, a candidate aggregation to pick random star centers, and a
distributed dedup of the clustering-graph edges (Claim 1).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ...mpc.cluster import Cluster
from ...primitives.dedup import dedup_lightest
from ...primitives.edgestore import EdgeStore

__all__ = ["ClusteringGraphs", "build_clustering_graphs", "degree_scale"]


def degree_scale(deg_u: int, deg_v: int) -> int:
    """The level of an edge: ``floor(log2(min of the endpoint degrees))``."""
    return int(math.log2(max(min(deg_u, deg_v), 1)))


def _highbit(mask: int) -> int:
    """Index of the highest set bit, or -1 for zero."""
    return mask.bit_length() - 1


@dataclass
class ClusteringGraphs:
    """The star decomposition plus the distributed clustering graphs.

    ``store`` holds records ``(c1, c2, (scale, original_edge))`` — one per
    clustering-graph edge, deduplicated to the lightest original edge —
    living on the small machines, ready for Algorithm 6.
    """

    levels: int
    sigma: dict[int, int]
    star_edges: set[tuple[int, int]]
    store: EdgeStore = field(repr=False)
    level_vertex_counts: dict[int, int] = field(default_factory=dict)
    level_edge_counts: dict[int, int] = field(default_factory=dict)


def build_clustering_graphs(
    cluster: Cluster,
    store: EdgeStore,
    n: int,
    rng: random.Random,
    trials: int | None = None,
    note: str = "clustering",
) -> ClusteringGraphs:
    """Build the clustering graphs from the edges in *store* (records are
    plain ``(u, v)`` pairs of the unweighted input graph)."""
    # --- degrees (Claim 2) -------------------------------------------------
    degrees = _aggregate_degrees(cluster, store, note=f"{note}/degrees")
    max_degree = max(degrees.values(), default=1)
    levels = int(math.log2(max(max_degree, 1))) + 1
    trials = trials if trials is not None else max(2, int(math.log2(max(n, 4))))

    # --- trial hitting sets D^j_i (sampled locally on the large machine) ---
    # Mask representation: bit i of trial_masks[j][v] <=> v in D^j_i,
    # for i = 1 .. levels-1 (level 0 is all of V and never stored).
    trial_masks: list[dict[int, int]] = []
    for _ in range(trials):
        mask: dict[int, int] = {}
        for i in range(1, levels):
            probability = min(1.0, i / float(2**i))
            for v in range(n):
                if rng.random() < probability:
                    mask[v] = mask.get(v, 0) | (1 << i)
        trial_masks.append(mask)

    # --- which vertices are dominated by each trial set (annotate + OR) ----
    packed = {
        v: tuple(trial_masks[j].get(v, 0) for j in range(trials)) for v in range(n)
    }
    annotated = store.annotate(packed, note=f"{note}/trial-masks")
    pairs_name = f"{store.name}.neighbor-or"
    for machine in cluster.smalls:
        pairs = []
        for record, masks_u, masks_v in machine.pop(annotated.name, []):
            pairs.append((record[0], masks_v))
            pairs.append((record[1], masks_u))
        machine.put(pairs_name, pairs)
    neighbor_or = EdgeStore(cluster, pairs_name).aggregate(
        lambda pair: (pair[0], pair[1]),
        lambda a, b: tuple(x | y for x, y in zip(a, b)),
        note=f"{note}/dominate",
    )
    cluster.map_small(pairs_name, lambda m, items: [])

    # --- patch each trial set and keep the smallest per level --------------
    chosen_mask: dict[int, int] = {v: 0 for v in range(n)}
    for i in range(1, levels):
        best_members: set[int] | None = None
        for j in range(trials):
            members = {v for v in range(n) if trial_masks[j].get(v, 0) & (1 << i)}
            for v, degree in degrees.items():
                if degree >= 2**i and not (
                    v in members
                    or (neighbor_or.get(v, ()) and neighbor_or[v][j] & (1 << i))
                ):
                    members.add(v)  # un-dominated high-degree vertex: patch in
            if best_members is None or len(members) < len(best_members):
                best_members = members
        for v in best_members or ():
            chosen_mask[v] |= 1 << i

    # --- i_u and star centers ----------------------------------------------
    annotated = store.annotate(chosen_mask, default=0, note=f"{note}/final-masks")
    pairs2 = f"{store.name}.final-or"
    for machine in cluster.smalls:
        pairs = []
        for record, mask_u, mask_v in machine.get(annotated.name, []):
            pairs.append((record[0], mask_v))
            pairs.append((record[1], mask_u))
        machine.put(pairs2, pairs)
    final_or = EdgeStore(cluster, pairs2).aggregate(
        lambda pair: (pair[0], pair[1]), "or", note=f"{note}/i_u"
    )
    cluster.map_small(pairs2, lambda m, items: [])

    i_u: dict[int, int] = {}
    needs_neighbor_center: dict[int, int] = {}
    sigma: dict[int, int] = {}
    for v in range(n):
        self_top = _highbit(chosen_mask.get(v, 0))
        neighbor_top = _highbit(final_or.get(v, 0))
        level = max(self_top, neighbor_top, 0)
        i_u[v] = level
        if level == 0 or self_top >= level:
            sigma[v] = v  # B_0 = V, or v itself is in B_{i_u}
        else:
            needs_neighbor_center[v] = level

    # --- random adjacent center for the remaining vertices (Claim 2) -------
    candidate_name = f"{store.name}.center-candidates"
    i_u_values = {v: (i_u[v], chosen_mask.get(v, 0)) for v in range(n)}
    annotated2 = store.annotate(i_u_values, note=f"{note}/center-pick")
    for machine in cluster.smalls:
        candidates = []
        for record, val_u, val_v in machine.pop(annotated2.name, []):
            u, v = record[0], record[1]
            (lu, mask_u), (lv, mask_v) = val_u, val_v
            if u in needs_neighbor_center and _highbit(mask_v) >= lu:
                candidates.append((u, (cluster.rng.random(), v, (record[0], record[1]))))
            if v in needs_neighbor_center and _highbit(mask_u) >= lv:
                candidates.append((v, (cluster.rng.random(), u, (record[0], record[1]))))
        machine.put(candidate_name, candidates)
    chosen_center = EdgeStore(cluster, candidate_name).aggregate(
        lambda pair: (pair[0], pair[1]), min, note=f"{note}/sigma"
    )
    cluster.map_small(candidate_name, lambda m, items: [])

    star_edges: set[tuple[int, int]] = set()
    for v, (_, center, edge) in chosen_center.items():
        sigma[v] = center
        star_edges.add((min(edge), max(edge)))
    for v, level in needs_neighbor_center.items():
        if v not in sigma:
            # No incident edge reached the aggregation (isolated after all
            # filtering) — degenerate; the vertex centers itself.
            sigma[v] = v

    # --- clustering-graph edges ---------------------------------------------
    sigma_deg = {v: (sigma[v], degrees.get(v, 0)) for v in range(n)}
    annotated3 = store.annotate(sigma_deg, note=f"{note}/edges")
    ai_name = f"{store.name}.ai-edges"
    for machine in cluster.smalls:
        records = []
        for record, val_u, val_v in machine.pop(annotated3.name, []):
            (su, du), (sv, dv) = val_u, val_v
            if su == sv:
                continue
            scale = degree_scale(du, dv)
            c1, c2 = min(su, sv), max(su, sv)
            records.append((c1, c2, (scale, (record[0], record[1]))))
        machine.put(ai_name, records)
    ai_store = EdgeStore(cluster, ai_name)
    dedup_lightest(
        cluster,
        ai_name,
        key=lambda r: (r[2][0], r[0], r[1]),
        weight=lambda r: r[2][1],
        note=f"{note}/dedup",
    )

    # --- per-level statistics (Claim 2) -------------------------------------
    level_edge_counts = ai_store.aggregate(
        lambda r: (r[2][0], 1), "sum", note=f"{note}/edge-counts"
    )
    vertex_marks = ai_store.aggregate(
        lambda r: ((r[2][0], r[0]), 1), lambda a, b: 1, note=f"{note}/vertex-counts"
    )
    vertex_marks2 = ai_store.aggregate(
        lambda r: ((r[2][0], r[1]), 1), lambda a, b: 1, note=f"{note}/vertex-counts2"
    )
    level_vertices: dict[int, set[int]] = {}
    for (scale, c), _ in list(vertex_marks.items()) + list(vertex_marks2.items()):
        level_vertices.setdefault(scale, set()).add(c)

    return ClusteringGraphs(
        levels=levels,
        sigma=sigma,
        star_edges=star_edges,
        store=ai_store,
        level_vertex_counts={i: len(vs) for i, vs in level_vertices.items()},
        level_edge_counts=dict(level_edge_counts),
    )


def _aggregate_degrees(
    cluster: Cluster, store: EdgeStore, note: str
) -> dict[int, int]:
    """Vertex degrees via Claim 2 (both endpoints of every edge count)."""
    pairs_by_machine = {
        machine.machine_id: [
            pair
            for edge in machine.get(store.name, [])
            for pair in ((edge[0], 1), (edge[1], 1))
        ]
        for machine in cluster.smalls
    }
    from ...primitives.aggregate import aggregate

    return aggregate(cluster, pairs_by_machine, "sum", note=note)
