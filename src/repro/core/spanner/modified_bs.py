"""Modified Baswana–Sen (Algorithm 2, Lemma 4.3).

The modification: in step ``i``, re-clustering may only use the edges of a
*sampled* subgraph ``G_i`` (each edge kept with probability ``p``), so the
large machine can run the clustering phase (lines 1–15) seeing only
``O~(p m)`` edges.  The price is over-approximation: fewer vertices get
re-clustered, so the removal step (lines 16–18, run by the small machines
on the full edge set) adds more edges — a factor ``1/p`` in expectation.

The module provides the clustering phase as a pure function (it is the
large machine's local computation), a fully local variant used by the
Figure 1 experiment, and the distributed implementation for Heterogeneous
MPC.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

from ...mpc.cluster import Cluster
from ...mpc.plan import RoundPlan
from ...primitives.edgestore import EdgeStore

__all__ = [
    "ClusterPhaseResult",
    "cluster_phase",
    "VertexLabel",
    "modified_baswana_sen_local",
    "modified_baswana_sen_mpc",
]

#: An edge record: (endpoint a, endpoint b, payload carried to the output).
Record = tuple


@dataclass
class ClusterPhaseResult:
    """Everything lines 1–15 of Algorithm 2 produce.

    ``centers[i][v]`` is ``c_i(v)`` (missing key = unclustered);
    ``removal_level[v]`` is the step at which ``v`` became unclustered
    (every vertex has one, since ``C_k`` is empty);
    ``recluster_records`` are the spanner edges added on line 15.
    """

    centers: list[dict[Hashable, Hashable]]
    removal_level: dict[Hashable, int]
    recluster_records: list[Record] = field(default_factory=list)


def cluster_phase(
    vertices: Sequence[Hashable],
    k: int,
    center_probability: float,
    sampled_adjacency: Sequence[dict[Hashable, list[tuple[Hashable, Record]]]],
    rng: random.Random,
) -> ClusterPhaseResult:
    """Run lines 1–15 of Algorithm 2.

    Args:
        vertices: vertex set of the (clustering) graph.
        k: stretch parameter; produces a (2k-1)-spanner skeleton.
        center_probability: per-step survival probability of a center
            (``r^{-1/k}`` for a graph on ``r`` vertices).
        sampled_adjacency: ``sampled_adjacency[i-1]`` is the adjacency of
            the sampled subgraph ``G_i`` used in step ``i``; entries are
            ``(neighbor, edge record)``.  Step ``k`` never consults its
            subgraph (``C_k`` is empty), so ``k-1`` subgraphs suffice.
        rng: center-sampling randomness.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    centers: list[dict[Hashable, Hashable]] = [{v: v for v in vertices}]
    removal_level: dict[Hashable, int] = {}
    recluster: list[Record] = []
    alive: set[Hashable] = set(vertices)

    for i in range(1, k + 1):
        previous = centers[-1]
        if i == k:
            new_centers: set[Hashable] = set()
        else:
            new_centers = {c for c in alive if rng.random() < center_probability}
        level: dict[Hashable, Hashable] = {}
        adjacency = (
            sampled_adjacency[i - 1] if i - 1 < len(sampled_adjacency) else {}
        )
        for v in vertices:
            if v not in previous:
                continue
            if previous[v] in new_centers:
                level[v] = previous[v]
                continue
            re_clustered = False
            for u, record in adjacency.get(v, ()):
                u_center = previous.get(u)
                if u_center is not None and u_center in new_centers:
                    level[v] = u_center
                    recluster.append(record)
                    re_clustered = True
                    break
            if not re_clustered:
                removal_level[v] = i
        centers.append(level)
        alive = new_centers

    return ClusterPhaseResult(
        centers=centers, removal_level=removal_level, recluster_records=recluster
    )


@dataclass(frozen=True)
class VertexLabel:
    """The per-vertex label the large machine disseminates: the removal
    level ``t`` and the center history ``(c_0(v), ..., c_{t-1}(v))``."""

    removal_level: int
    history: tuple[Hashable, ...]

    def center_before(self, step: int) -> Hashable | None:
        """``c_{step-1}(v)``, or None if v was unclustered by then."""
        if 0 <= step - 1 < len(self.history):
            return self.history[step - 1]
        return None

    def word_size(self) -> int:
        return 1 + len(self.history)


def _labels_from_phase(
    vertices: Iterable[Hashable], phase: ClusterPhaseResult
) -> dict[Hashable, VertexLabel]:
    labels = {}
    for v in vertices:
        t = phase.removal_level[v]
        history = tuple(phase.centers[i][v] for i in range(t))
        labels[v] = VertexLabel(removal_level=t, history=history)
    return labels


def _removal_candidates(
    a: Hashable, b: Hashable, label_a: VertexLabel, label_b: VertexLabel, record: Record
) -> list[tuple[tuple, tuple]]:
    """Candidates ``((removed vertex, adjacent cluster center), (tie-break
    neighbor, record))`` contributed by one edge (lines 16–18): when ``a``
    is removed at step ``t`` and ``b`` is still clustered at level ``t-1``,
    the edge is a candidate for connecting ``a`` to ``b``'s cluster."""
    out = []
    ta, tb = label_a.removal_level, label_b.removal_level
    if tb >= ta:
        center = label_b.center_before(ta)
        if center is not None:
            out.append(((a, center), (b, record)))
    if ta >= tb:
        center = label_a.center_before(tb)
        if center is not None:
            out.append(((b, center), (a, record)))
    return out


def modified_baswana_sen_local(
    n: int,
    edges: Sequence[tuple[int, int]],
    k: int,
    p: float,
    rng: random.Random,
) -> dict:
    """Sequential reference run of the full modified algorithm (used by the
    Figure 1 experiment and the Lemma 4.3 tests).

    Returns a dict with the spanner edge set and the breakdown into
    re-cluster and removal edges.
    """
    vertices = list(range(n))
    records = [(u, v, (min(u, v), max(u, v))) for u, v in edges]
    sampled: list[dict[int, list[tuple[int, tuple]]]] = []
    for _ in range(max(0, k - 1)):
        adjacency: dict[int, list[tuple[int, tuple]]] = {}
        for a, b, payload in records:
            if rng.random() < p:
                adjacency.setdefault(a, []).append((b, payload))
                adjacency.setdefault(b, []).append((a, payload))
        sampled.append(adjacency)

    probability = max(n, 2) ** (-1.0 / k)
    phase = cluster_phase(vertices, k, probability, sampled, rng)
    labels = _labels_from_phase(vertices, phase)

    best: dict[tuple, tuple] = {}
    for a, b, payload in records:
        for key, value in _removal_candidates(a, b, labels[a], labels[b], payload):
            if key not in best or value < best[key]:
                best[key] = value
    removal_edges = {value[1] for value in best.values()}
    recluster_edges = set(phase.recluster_records)
    return {
        "spanner": recluster_edges | removal_edges,
        "recluster_edges": recluster_edges,
        "removal_edges": removal_edges,
        "labels": labels,
    }


def modified_baswana_sen_mpc(
    cluster: Cluster,
    store: EdgeStore,
    vertices: Sequence[Hashable],
    k: int,
    p: float,
    rng: random.Random,
    note: str = "mbs",
) -> dict:
    """Algorithm 2 in the Heterogeneous MPC model.

    *store* holds records ``(a, b, payload)``; the returned spanner is a
    set of payloads (for clustering graphs these are original-graph edges).

    Protocol: small machines sample ``k-1`` subgraphs locally and ship them
    to the large machine (one round); the large machine runs the clustering
    phase and disseminates per-vertex labels (Claim 3 + sort-join); small
    machines form removal candidates and one edge per (vertex, adjacent
    cluster) is selected by aggregation (Claim 2).
    """
    large_id = cluster.large.machine_id

    # One round: every machine sends its sampled copies, tagged by level,
    # as a single batch per machine.
    plan = RoundPlan(note=f"{note}/sample")
    for machine in cluster.smalls:
        batch = []
        for record in machine.get(store.name, []):
            for level in range(max(0, k - 1)):
                if rng.random() < p:
                    batch.append((level, record))
        plan.send_batch(machine.machine_id, large_id, batch)
    inbox = cluster.execute(plan).get(large_id, [])

    sampled: list[dict[Hashable, list]] = [dict() for _ in range(max(0, k - 1))]
    for level, record in inbox:
        a, b, payload = record[0], record[1], record[2]
        sampled[level].setdefault(a, []).append((b, payload))
        sampled[level].setdefault(b, []).append((a, payload))

    probability = max(len(vertices), 2) ** (-1.0 / k)
    phase = cluster_phase(list(vertices), k, probability, sampled, rng)
    labels = _labels_from_phase(vertices, phase)

    annotated = store.annotate(labels, note=f"{note}/labels")
    candidate_name = f"{store.name}.candidates"
    for machine in cluster.smalls:
        candidates = []
        for record, label_a, label_b in machine.pop(annotated.name, []):
            if label_a is None or label_b is None:
                continue
            candidates.extend(
                _removal_candidates(record[0], record[1], label_a, label_b, record[2])
            )
        machine.put(candidate_name, candidates)
    candidate_store = EdgeStore(cluster, candidate_name)
    best = candidate_store.aggregate(
        lambda pair: (pair[0], pair[1]), min, note=f"{note}/select"
    )
    candidate_store.drop()

    removal_edges = {value[1] for value in best.values()}
    recluster_edges = set(phase.recluster_records)
    return {
        "spanner": recluster_edges | removal_edges,
        "recluster_edges": recluster_edges,
        "removal_edges": removal_edges,
    }
