"""Theorem 4.1 — an O(k)-spanner of size O(n^{1+1/k}) in O(1) rounds.

Algorithm 6 assembled from its ingredients:

* build the clustering graphs ``A_0 .. A_{L-1}`` (Algorithm 5);
* for each level, either ship ``A_i`` to the large machine and run classic
  Baswana–Sen there (levels where the sampled probability ``p_i`` would be
  1), or run modified Baswana–Sen with
  ``p_i = min(1, k^2 * i^{1+1/k} / 2^i)`` so the sampled edge set fits the
  large machine (Lemma 4.3 bounds the over-approximation);
* map every clustering-graph spanner edge back to its attached original
  edge (``E_G``), union with the star edges (Lemma A.2): a (6k-1)-spanner
  of expected size ``O(n^{1+1/k})``.

For weighted graphs we apply the standard reduction cited by the paper
([22]): split edges into geometric weight classes, compute an unweighted
(6k-1)-spanner per class in parallel, and take the union — a
(12k-2)-spanner of size ``O(n^{1+1/k} log n)``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ...graph.graph import Graph
from ...local.baswana_sen import baswana_sen
from ...mpc import Cluster, ModelConfig
from ...primitives.edgestore import EdgeStore
from .clustering import build_clustering_graphs
from .modified_bs import modified_baswana_sen_mpc

__all__ = ["SpannerResult", "heterogeneous_spanner", "level_sampling_probability"]


@dataclass
class SpannerResult:
    """Outcome of a heterogeneous spanner construction."""

    edges: set[tuple]
    k: int
    stretch_bound: int
    rounds: int
    level_sizes: dict[int, int] = field(default_factory=dict)
    levels_on_large: list[int] = field(default_factory=list)
    levels_sampled: list[int] = field(default_factory=list)
    cluster: Cluster | None = field(default=None, repr=False)

    @property
    def size(self) -> int:
        return len(self.edges)


def level_sampling_probability(k: int, i: int) -> float:
    """``p_i = min(1, k^2 * i^{1+1/k} / 2^i)`` from "putting everything
    together" in Section 4."""
    if i == 0:
        return 1.0
    return min(1.0, (k * k * i ** (1.0 + 1.0 / k)) / float(2**i))


def heterogeneous_spanner(
    graph: Graph,
    k: int,
    config: ModelConfig | None = None,
    rng: random.Random | None = None,
) -> SpannerResult:
    """Compute an O(k)-spanner of *graph* in the Heterogeneous MPC model.

    Unweighted graphs get a (6k-1)-spanner of expected size
    ``O(n^{1+1/k})``; weighted graphs a (12k-2)-spanner of expected size
    ``O(n^{1+1/k} log n)`` via the weight-class reduction.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    rng = rng if rng is not None else random.Random(0)
    config = (
        config
        if config is not None
        else ModelConfig.heterogeneous(n=graph.n, m=max(graph.m, 1))
    )
    if graph.weighted:
        return _weighted_spanner(graph, k, config, rng)

    cluster = Cluster(config, rng=random.Random(rng.random()))
    store = EdgeStore.create(
        cluster, [(e[0], e[1]) for e in graph.edges], name="spanner-edges"
    )
    edges, level_sizes, on_large, sampled_levels = _unweighted_spanner(
        cluster, store, graph.n, k, rng
    )
    return SpannerResult(
        edges=edges,
        k=k,
        stretch_bound=6 * k - 1,
        rounds=cluster.ledger.rounds,
        level_sizes=level_sizes,
        levels_on_large=on_large,
        levels_sampled=sampled_levels,
        cluster=cluster,
    )


def _unweighted_spanner(
    cluster: Cluster,
    store: EdgeStore,
    n: int,
    k: int,
    rng: random.Random,
) -> tuple[set[tuple[int, int]], dict[int, int], list[int], list[int]]:
    """The unweighted pipeline on an existing cluster/store; returns the
    spanner edges plus per-level bookkeeping."""
    with cluster.ledger.section("clustering-graphs"):
        clustering = build_clustering_graphs(cluster, store, n, rng)

    spanner: set[tuple[int, int]] = set(clustering.star_edges)
    level_sizes: dict[int, int] = {}
    on_large: list[int] = []
    sampled_levels: list[int] = []

    with cluster.ledger.section("level-spanners"):
        for level in sorted(clustering.level_edge_counts):
            p = level_sampling_probability(k, level)
            level_name = f"{clustering.store.name}.level{level}"
            for machine in cluster.smalls:
                machine.put(
                    level_name,
                    [
                        record
                        for record in machine.get(clustering.store.name, [])
                        if record[2][0] == level
                    ],
                )
            level_store = EdgeStore(cluster, level_name)

            if p >= 1.0:
                # The whole A_i fits on the large machine: optimal spanner.
                records = level_store.gather_to_large(note=f"level{level}/gather")
                chosen = _classic_spanner_on_large(records, k, rng)
                on_large.append(level)
            else:
                vertices = sorted(
                    {r[0] for r in level_store.items()}
                    | {r[1] for r in level_store.items()}
                )
                result = modified_baswana_sen_mpc(
                    cluster,
                    level_store,
                    vertices,
                    k,
                    p,
                    rng,
                    note=f"level{level}/mbs",
                )
                chosen = {payload[1] for payload in result["spanner"]}
                sampled_levels.append(level)
            level_store.drop()
            level_sizes[level] = len(chosen)
            spanner.update(chosen)

    return spanner, level_sizes, on_large, sampled_levels


def _classic_spanner_on_large(
    records: list[tuple], k: int, rng: random.Random
) -> set[tuple[int, int]]:
    """Classic Baswana–Sen on a clustering graph held by the large machine;
    returns the attached original edges of the chosen spanner edges."""
    if not records:
        return set()
    vertices = sorted({r[0] for r in records} | {r[1] for r in records})
    index = {v: position for position, v in enumerate(vertices)}
    by_pair: dict[tuple[int, int], tuple] = {}
    for c1, c2, (scale, original) in records:
        key = (index[c1], index[c2])
        if key not in by_pair or original < by_pair[key]:
            by_pair[key] = original
    relabeled = Graph(len(vertices), list(by_pair.keys()), weighted=False)
    run = baswana_sen(relabeled, k, rng)
    return {by_pair[edge] for edge in run.spanner}


def _weighted_spanner(
    graph: Graph, k: int, config: ModelConfig, rng: random.Random
) -> SpannerResult:
    """Weight-class reduction: one unweighted spanner per geometric weight
    class, all classes running in parallel (the round charge is the max)."""
    classes: dict[int, list[tuple]] = {}
    for u, v, w in graph.edges:
        classes.setdefault(int(math.log2(max(w, 1))), []).append((u, v, w))

    cluster = Cluster(config, rng=random.Random(rng.random()))
    spanner: set[tuple] = set()
    level_sizes: dict[int, int] = {}
    with cluster.ledger.parallel("weight-classes") as par:
        for class_index in sorted(classes):
            with par.branch():
                weight_of = {
                    (min(u, v), max(u, v)): w for u, v, w in classes[class_index]
                }
                store = EdgeStore.create(
                    cluster,
                    sorted(weight_of),
                    name=f"class{class_index}-edges",
                )
                edges, _, _, _ = _unweighted_spanner(cluster, store, graph.n, k, rng)
                store.drop()
                chosen = {(u, v, weight_of[(u, v)]) for u, v in edges}
                spanner.update(chosen)
                level_sizes[class_index] = len(chosen)

    return SpannerResult(
        edges=spanner,
        k=k,
        stretch_bound=12 * k - 2,
        rounds=cluster.ledger.rounds,
        level_sizes=level_sizes,
        cluster=cluster,
    )
