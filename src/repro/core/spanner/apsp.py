"""Corollary 4.2 — O(log n)-approximate APSP in O(1) rounds.

Take ``k = ceil(log2 n)``: the (6k-1)-spanner has size ``O~(n)`` and fits
on the large machine, which can then answer any distance query locally by
running Dijkstra/BFS on the spanner.  Every reported distance ``d~``
satisfies ``d <= d~ <= stretch * d``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ...graph.graph import Graph
from ...graph.traversal import single_source_distances
from ...mpc import ModelConfig
from .spanner import SpannerResult, heterogeneous_spanner

__all__ = ["ApproximateAPSP", "build_apsp_oracle"]


@dataclass
class ApproximateAPSP:
    """A distance oracle stored on the large machine."""

    spanner: SpannerResult
    subgraph: Graph = field(repr=False)
    stretch_bound: int = 0

    def __post_init__(self) -> None:
        if not self.stretch_bound:
            self.stretch_bound = self.spanner.stretch_bound

    def distances_from(self, source: int) -> list[float]:
        """Approximate distances from *source* to every vertex (local
        computation on the large machine)."""
        return single_source_distances(self.subgraph, source)

    def distance(self, u: int, v: int) -> float:
        return self.distances_from(u)[v]

    @property
    def rounds(self) -> int:
        return self.spanner.rounds


def build_apsp_oracle(
    graph: Graph,
    config: ModelConfig | None = None,
    rng: random.Random | None = None,
    k: int | None = None,
) -> ApproximateAPSP:
    """Build the O(log n)-approximate APSP oracle of Corollary 4.2."""
    if k is None:
        k = max(2, math.ceil(math.log2(max(graph.n, 4))))
    result = heterogeneous_spanner(graph, k=k, config=config, rng=rng)
    if graph.weighted:
        subgraph = Graph(graph.n, sorted(result.edges), weighted=True)
    else:
        subgraph = Graph(graph.n, sorted(result.edges), weighted=False)
    return ApproximateAPSP(spanner=result, subgraph=subgraph)
