"""Appendix C.5 — (Δ+1) vertex coloring in O(1) rounds.

The Assadi–Chen–Khanna palette-sparsification theorem (Lemma C.8): if every
vertex samples ``Θ(log n)`` colors from ``{0, ..., Δ}``, then w.h.p. a
proper coloring exists in which every vertex uses one of its sampled
colors.  Only *conflicting* edges (endpoints with intersecting palettes)
matter, and w.h.p. there are ``O~(n)`` of them, so the large machine can
collect the conflict graph and list-color it locally; vertices with no
conflicting edge take any palette color.  We retry with fresh palettes in
the (w.h.p.-rare) event the local list coloring gets stuck.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..graph.graph import Graph
from ..local.coloring import list_coloring
from ..mpc import AlgorithmFailure, Cluster, ModelConfig
from ..primitives.edgestore import EdgeStore

__all__ = ["ColoringResult", "heterogeneous_coloring", "palette_size"]


@dataclass
class ColoringResult:
    """Outcome of a distributed (Δ+1)-coloring run."""

    colors: list[int]
    num_colors_allowed: int
    rounds: int
    attempts: int
    conflict_edges: int
    cluster: Cluster = field(default=None, repr=False)


def palette_size(n: int, max_degree: int) -> int:
    """``Θ(log n)`` sampled colors per vertex (capped at the palette
    universe Δ+1)."""
    return min(max_degree + 1, max(4, 4 * int(math.log2(max(n, 4)))))


def heterogeneous_coloring(
    graph: Graph,
    config: ModelConfig | None = None,
    rng: random.Random | None = None,
    max_attempts: int = 12,
) -> ColoringResult:
    """Proper (Δ+1)-coloring of *graph* w.h.p. in O(1) rounds."""
    rng = rng if rng is not None else random.Random(0)
    config = (
        config
        if config is not None
        else ModelConfig.heterogeneous(n=graph.n, m=max(graph.m, 1))
    )
    cluster = Cluster(config, rng=random.Random(rng.random()))
    n = graph.n
    store = EdgeStore.create(
        cluster, [(e[0], e[1]) for e in graph.edges], name="color-edges"
    )

    degrees = store.aggregate(lambda e: (e[0], 1), "sum", note="deg")
    for v, extra in store.aggregate(lambda e: (e[1], 1), "sum", note="deg2").items():
        degrees[v] = degrees.get(v, 0) + extra
    max_degree = max(degrees.values(), default=0)
    universe = max_degree + 1
    size = palette_size(n, max_degree)

    attempts = 0
    final: list[int] | None = None
    conflict_count = 0
    with cluster.ledger.parallel("palette") as par:
        for _ in range(max_attempts):
            attempts += 1
            with par.branch():
                palettes = {
                    v: tuple(rng.sample(range(universe), size)) for v in range(n)
                }
                annotated = store.annotate(palettes, note="palettes")
                conflict_name = f"{store.name}.conflicts"
                for machine in cluster.smalls:
                    conflicts = []
                    for record, pal_u, pal_v in machine.pop(annotated.name, []):
                        if set(pal_u) & set(pal_v):
                            conflicts.append(record)
                    machine.put(conflict_name, conflicts)
                conflict_store = EdgeStore(cluster, conflict_name)
                conflict_edges = conflict_store.gather_to_large(note="conflicts")
                conflict_store.drop()

                conflict_vertices = {x for e in conflict_edges for x in e}
                assignment = list_coloring(
                    sorted(conflict_vertices), conflict_edges, palettes
                )
                if assignment is not None:
                    colors = [0] * n
                    for v in range(n):
                        colors[v] = (
                            assignment[v] if v in assignment else palettes[v][0]
                        )
                    final = colors
                    conflict_count = len(conflict_edges)
            if final is not None:
                break
    if final is None:
        raise AlgorithmFailure("palette sparsification failed every attempt")

    return ColoringResult(
        colors=final,
        num_colors_allowed=universe,
        rounds=cluster.ledger.rounds,
        attempts=attempts,
        conflict_edges=conflict_count,
        cluster=cluster,
    )
