"""The paper's algorithms for the Heterogeneous MPC model.

Sections 3–5 (the new algorithms) and Appendix C (near-linear algorithms
that transfer to the heterogeneous model).
"""

from .coloring import ColoringResult, heterogeneous_coloring, palette_size
from .component_stable import ComponentStableResult, run_component_stable
from .connectivity import (
    ConnectivityResult,
    heterogeneous_connectivity,
    sketch_components,
)
from .cycle import CycleResult, solve_one_vs_two_cycles
from .matching import (
    MatchingResult,
    filtering_matching,
    heterogeneous_matching,
    low_degree_phase_rounds,
)
from .mincut import (
    MinCutResult,
    approximate_weighted_mincut,
    exact_unweighted_mincut,
)
from .mis import MISResult, heterogeneous_mis, prefix_thresholds
from .mst import (
    MSTResult,
    boruvka_step_budget,
    heterogeneous_mst,
    planned_boruvka_steps,
)
from .mst_approx import MSTApproxResult, approximate_mst_weight, geometric_thresholds
from .spanner import (
    ApproximateAPSP,
    SpannerResult,
    build_apsp_oracle,
    heterogeneous_spanner,
    modified_baswana_sen_local,
)

__all__ = [
    "ColoringResult",
    "heterogeneous_coloring",
    "palette_size",
    "ComponentStableResult",
    "run_component_stable",
    "ConnectivityResult",
    "heterogeneous_connectivity",
    "sketch_components",
    "CycleResult",
    "solve_one_vs_two_cycles",
    "MatchingResult",
    "filtering_matching",
    "heterogeneous_matching",
    "low_degree_phase_rounds",
    "MinCutResult",
    "approximate_weighted_mincut",
    "exact_unweighted_mincut",
    "MISResult",
    "heterogeneous_mis",
    "prefix_thresholds",
    "MSTResult",
    "boruvka_step_budget",
    "heterogeneous_mst",
    "planned_boruvka_steps",
    "MSTApproxResult",
    "approximate_mst_weight",
    "geometric_thresholds",
    "ApproximateAPSP",
    "SpannerResult",
    "build_apsp_oracle",
    "heterogeneous_spanner",
    "modified_baswana_sen_local",
]
