"""Section 3 — MST in ``O(log log(m/n))`` rounds in Heterogeneous MPC.

The algorithm (Theorem 3.1) has two parts:

1. **Doubly-exponential Borůvka** (Lotker et al. [45]).  In step ``i`` every
   remaining vertex selects its ``q_i`` lightest outgoing edges and the
   large machine contracts along them, where ``q_i = n^{2^i * f}`` —
   ``2^{2^i}`` for a near-linear large machine (``f = 1/log n``).  After
   ``t = ceil(log2(log_n(m/n) / f))`` steps (``log log(m/n)`` in the
   near-linear case) at most ``~n^2/m`` contracted vertices remain.

2. **KKT sampling** (Karger–Klein–Tarjan [40]).  Sample each remaining edge
   with probability ``p``; the large machine computes a minimum spanning
   forest ``F`` of the sample and broadcasts KKKP flow labels of ``F``
   (Claim 3 + sort-join), letting every small machine discard its F-heavy
   edges locally.  By Lemma 3.2 only ``O(n'/p)`` F-light edges survive in
   expectation; they are counted (Claim 2) and shipped to the large
   machine, which finishes the MST locally.  The whole process is repeated
   in parallel until the count check passes.

The implementation works on *contracted edge records*
``(cu, cv, w, ou, ov)`` — current endpoints, unique weight, and the
original edge the record represents — so the final output is expressed in
original-graph edges, as the paper requires.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..graph.graph import Graph
from ..graph.union_find import UnionFind
from ..labeling import build_flow_labels, decode_heaviest
from ..local.mst import kruskal_edges
from ..mpc import AlgorithmFailure, Cluster, ModelConfig
from ..primitives.arrange import arrange_directed
from ..primitives.dedup import dedup_lightest
from ..primitives.edgestore import EdgeStore

__all__ = ["MSTResult", "heterogeneous_mst", "boruvka_step_budget", "planned_boruvka_steps"]


@dataclass
class MSTResult:
    """Outcome of a heterogeneous MST run."""

    edges: list[tuple[int, int, int]]
    rounds: int
    boruvka_steps: int
    sampling_attempts: int
    cluster: Cluster = field(repr=False)

    @property
    def total_weight(self) -> int:
        return sum(e[2] for e in self.edges)


def planned_boruvka_steps(n: int, m: int, f: float) -> int:
    """``t = ceil(log2(log_n(m/n) / f))`` steps of doubly-exponential
    Borůvka (Theorem 3.1); ``ceil(log2 log2 (m/n))`` when ``f = 1/log n``."""
    ratio = m / max(n, 2)
    if ratio <= 2.0:
        return 0
    exponent = math.log(ratio, max(n, 2)) / f
    if exponent <= 1.0:
        return 0
    return math.ceil(math.log2(exponent))


def boruvka_step_budget(n: int, f: float, step: int) -> int:
    """Per-vertex edge quota ``q_i = n^{2^i * f}`` (= ``2^{2^i}`` when the
    large machine is near-linear)."""
    return max(2, int(round(n ** (min(2**step * f, 1.0)))))


def heterogeneous_mst(
    graph: Graph,
    config: ModelConfig | None = None,
    rng: random.Random | None = None,
    max_attempts: int = 24,
) -> MSTResult:
    """Compute the exact minimum spanning forest of *graph* in the
    Heterogeneous MPC model.

    Args:
        graph: weighted input graph (unique positive integer weights).
        config: deployment; defaults to the paper's model (one near-linear
            machine, ``m / sqrt(n)`` small machines).
        rng: randomness for edge sampling (reproducible runs).
        max_attempts: retry budget for the KKT sampling phase; the paper
            runs ``O(log n)`` instances in parallel.
    """
    if not graph.weighted:
        raise ValueError("MST needs a weighted graph")
    rng = rng if rng is not None else random.Random(0)
    config = (
        config
        if config is not None
        else ModelConfig.heterogeneous(n=graph.n, m=max(graph.m, 1))
    )
    cluster = Cluster(config, rng=random.Random(rng.random()))

    n, m = graph.n, max(graph.m, 1)
    f = config.f
    records = [(e[0], e[1], e[2], e[0], e[1]) for e in graph.edges]
    store = EdgeStore.create(cluster, records, name="mst-edges")

    mst_edges: list[tuple[int, int, int]] = []
    contraction = UnionFind(range(n))
    current_vertices = n
    steps = planned_boruvka_steps(n, m, f)

    with cluster.ledger.section("boruvka"):
        for step in range(steps):
            quota = boruvka_step_budget(n, f, step)
            merged = _boruvka_step(cluster, store, quota, contraction, mst_edges)
            current_vertices -= merged
            if len(store) == 0:
                break

    with cluster.ledger.section("kkt-sampling"):
        attempts = _kkt_sampling_phase(
            cluster, store, rng, n, f, steps, mst_edges, max_attempts
        )

    return MSTResult(
        edges=sorted(mst_edges),
        rounds=cluster.ledger.rounds,
        boruvka_steps=steps,
        sampling_attempts=attempts,
        cluster=cluster,
    )


# ----------------------------------------------------------------------
# Part 1: doubly-exponential Borůvka
# ----------------------------------------------------------------------
def _boruvka_step(
    cluster: Cluster,
    store: EdgeStore,
    quota: int,
    contraction: UnionFind,
    mst_edges: list[tuple[int, int, int]],
) -> int:
    """One contraction step; returns the number of vertices eliminated."""
    # Arrange directed copies sorted by (source, weight) — Claims 1 and 4.
    arrangement = arrange_directed(
        cluster,
        store.name,
        directed_name=f"{store.name}.directed",
        secondary_key=2,
        note="arrange",
    )

    # The large machine computes, per vertex and machine, how many of the
    # vertex's lightest min(quota, deg) edges that machine holds, and sends
    # the queries (v, k(v, M)) — it can do this because the sorted layout
    # and all out-degrees are known to it (Claim 4).
    queries: dict[int, list[tuple[int, int]]] = {}
    remaining: dict[int, int] = {
        v: min(quota, degree) for v, degree in arrangement.out_degrees.items()
    }
    for machine in cluster.smalls:
        per_vertex: dict[int, int] = {}
        for record in machine.get(arrangement.name, []):
            src = record[0]
            if remaining.get(src, 0) > 0:
                remaining[src] -= 1
                per_vertex[src] = per_vertex.get(src, 0) + 1
        if per_vertex:
            queries[machine.machine_id] = list(per_vertex.items())
    cluster.scatter(cluster.large.machine_id, queries, note="boruvka/queries")

    # Small machines answer with the requested lightest edges, tagged with
    # the submitting vertex (needed for the saturation rule below).
    responses: dict[int, list] = {}
    for machine in cluster.smalls:
        wanted = dict(queries.get(machine.machine_id, []))
        taken: dict[int, int] = {}
        answer = []
        for record in machine.get(arrangement.name, []):
            src = record[0]
            if taken.get(src, 0) < wanted.get(src, 0):
                taken[src] = taken.get(src, 0) + 1
                answer.append((src, record[2]))
        responses[machine.machine_id] = answer
        machine.pop(arrangement.name, None)
    collected = cluster.gather(
        cluster.large.machine_id, responses, note="boruvka/lightest"
    )

    # Large machine contracts along the collected edges, lightest first,
    # using the saturation rule of Lotker et al. [45]: each vertex submitted
    # only its quota lightest edges, so once every submitted edge of some
    # vertex in a component has become internal, that component may "hide"
    # lighter unsubmitted outgoing edges and is marked dirty; an external
    # edge is added only if at least one side is clean, which certifies it
    # as the true minimum outgoing edge of that side (cut property).  Edges
    # skipped because both sides are dirty simply remain in the contracted
    # graph for later steps.  (The paper's Algorithm 3 pseudocode elides
    # this check; correctness is inherited from [45] — see DESIGN.md.)
    submitters: dict[tuple, set[int]] = {}
    for src, edge in collected:
        submitters.setdefault(tuple(edge), set()).add(src)
    submitted_quota = {
        v: min(quota, degree) for v, degree in arrangement.out_degrees.items()
    }
    credit: dict[int, int] = {}
    dirty: dict[int, bool] = {}
    local_union = UnionFind()

    def mark_internal(vertex: int) -> None:
        credit[vertex] = credit.get(vertex, 0) + 1
        if credit[vertex] >= submitted_quota.get(vertex, 0):
            dirty[local_union.find(vertex)] = True

    merged = 0
    for edge in sorted(submitters, key=lambda e: e[2]):
        cu, cv, w, ou, ov = edge
        ru, rv = local_union.find(cu), local_union.find(cv)
        if ru == rv:
            for vertex in submitters[edge]:
                mark_internal(vertex)
            continue
        if dirty.get(ru, False) and dirty.get(rv, False):
            continue  # unsafe: both sides may hide lighter outgoing edges
        was_dirty = dirty.get(ru, False) or dirty.get(rv, False)
        local_union.union(cu, cv)
        root = local_union.find(cu)
        if was_dirty:
            dirty[root] = True
        mst_edges.append((min(ou, ov), max(ou, ov), w))
        contraction.union(cu, cv)
        merged += 1
        for vertex in submitters[edge]:
            mark_internal(vertex)

    rename: dict[int, int] = {}
    for root, members in local_union.groups().items():
        target = min(members)
        for member in members:
            rename[member] = target

    # Disseminate the rename map; small machines relabel and drop internal
    # edges (Claim 3 + sort-join), then parallel edges are deduplicated
    # keeping the lightest (Claim 1 + one boundary round).
    annotated = store.annotate(rename, note="boruvka/rename")
    renamed: list = []
    for machine in cluster.smalls:
        kept = []
        for record, new_u, new_v in machine.pop(annotated.name, []):
            cu = new_u if new_u is not None else record[0]
            cv = new_v if new_v is not None else record[1]
            if cu == cv:
                continue
            kept.append((min(cu, cv), max(cu, cv), record[2], record[3], record[4]))
        machine.put(store.name, kept)
    dedup_lightest(
        cluster,
        store.name,
        key=lambda record: (record[0], record[1]),
        weight=lambda record: record[2],
        note="boruvka/dedup",
    )
    return merged


# ----------------------------------------------------------------------
# Part 2: KKT sampling + F-light filtering
# ----------------------------------------------------------------------
def _kkt_sampling_phase(
    cluster: Cluster,
    store: EdgeStore,
    rng: random.Random,
    n: int,
    f: float,
    steps: int,
    mst_edges: list[tuple[int, int, int]],
    max_attempts: int,
) -> int:
    remaining_vertices = {record[0] for record in store.items()} | {
        record[1] for record in store.items()
    }
    n_prime = max(len(remaining_vertices), 1)
    p = min(1.0, float(n) ** -(min(2.0**steps * f, 1.0) + f))
    expected_light = n_prime / p
    threshold = 4.0 * expected_light + 100.0

    attempts = 0
    final_edges: list | None = None
    sampled_graph_edges: list | None = None
    with cluster.ledger.parallel("kkt") as par:
        for attempt in range(max_attempts):
            attempts += 1
            with par.branch():
                sampled = store.sample(p, rng)
                sample_edges = sampled.gather_to_large(note="kkt/sample")
                sampled.drop()
                forest = kruskal_edges(n, [(r[0], r[1], r[2]) for r in sample_edges])
                labels = build_flow_labels(remaining_vertices, forest)

                annotated = store.annotate(labels, note="kkt/labels")
                light_name = f"{store.name}.light"
                for machine in cluster.smalls:
                    light = [
                        record
                        for record, label_u, label_v in machine.pop(annotated.name, [])
                        if label_u is None
                        or label_v is None
                        or record[2] <= decode_heaviest(label_u, label_v)
                    ]
                    machine.put(light_name, light)
                light_store = EdgeStore(cluster, light_name)
                count = light_store.count(note="kkt/count")
                if count <= threshold:
                    final_edges = light_store.gather_to_large(note="kkt/light")
                    sampled_graph_edges = sample_edges
                light_store.drop()
            if final_edges is not None:
                break
    if final_edges is None:
        raise AlgorithmFailure(
            f"KKT sampling failed {max_attempts} times (threshold {threshold:.0f})"
        )

    # The large machine finishes locally: MST over F-light + sampled edges,
    # then map the chosen contracted edges back to original edges.
    candidates = {tuple(record) for record in final_edges}
    candidates.update(tuple(record) for record in sampled_graph_edges)
    chosen = kruskal_edges(n, [(r[0], r[1], r[2]) for r in candidates])
    weight_to_original = {record[2]: (record[3], record[4]) for record in candidates}
    for cu, cv, w in chosen:
        ou, ov = weight_to_original[w]
        mst_edges.append((min(ou, ov), max(ou, ov), w))
    return attempts
