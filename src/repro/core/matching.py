"""Section 5 — maximal matching in Heterogeneous MPC.

Theorem 5.1 (three phases, average degree ``d``):

1. **Low-degree phase.**  Split vertices into ``V_low = {deg <= d^2}`` and
   ``V_high`` (at most ``n/d`` of them, by Markov).  A sublinear-MPC
   subroutine computes a maximal matching ``M1`` of the subgraph induced by
   ``V_low`` using only the small machines.  The paper plugs in
   Ghaffari–Uitto [33] as a black box (``O(sqrt(log D) log log D)`` rounds,
   ``D = d^2``); we substitute a random local-minimum peeling procedure with
   the same interface and charge its measured ``O(log D)`` round structure
   (see DESIGN.md, substitution 1).

2. **High-degree phase.**  The large machine collects ``2 d log n``
   random incident edges per high-degree vertex (via random edge ranks, the
   same collection mechanics as the MST's lightest-edge queries) and greedily
   extends the matching to ``M2``.  Lemma 5.4: afterwards, w.h.p. at most
   ``2n`` edges have both endpoints unmatched.

3. **Leftover phase.**  The ``<= 2n`` leftover edges are counted (Claim 2)
   and shipped to the large machine, which completes the matching greedily.

Theorem 5.5 (superlinear large machine, memory ``n^{1+f}``): the filtering
algorithm of Lattanzi et al. [44] — repeatedly subsample at rate
``1/n^f`` until the graph fits the large machine, match there, then walk
back up filtering the edges whose endpoints are still unmatched
(``O(n^{1+f})`` of them w.h.p. per level).  ``O(1/f)`` rounds.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..graph.graph import Graph
from ..local.matching import greedy_maximal_matching
from ..mpc import AlgorithmFailure, Cluster, ModelConfig
from ..primitives.arrange import arrange_directed
from ..primitives.edgestore import EdgeStore

__all__ = [
    "MatchingResult",
    "heterogeneous_matching",
    "filtering_matching",
    "low_degree_phase_rounds",
]


@dataclass
class MatchingResult:
    """Outcome of a distributed maximal-matching run."""

    matching: list[tuple[int, int]]
    rounds: int
    phase1_iterations: int = 0
    attempts: int = 1
    levels: int = 0
    cluster: Cluster = field(default=None, repr=False)

    @property
    def size(self) -> int:
        return len(self.matching)


def low_degree_phase_rounds(max_degree: int) -> float:
    """The theoretical phase-1 charge from [33]:
    ``O(sqrt(log D) * log log D)`` for maximum degree ``D``."""
    log_d = max(math.log2(max(max_degree, 2)), 1.0)
    return math.sqrt(log_d) * max(math.log2(log_d), 1.0)


# ----------------------------------------------------------------------
# Phase 1 substitute: local-minimum peeling on the small machines
# ----------------------------------------------------------------------
def _peeling_matching(
    edges: list[tuple[int, int]], rng: random.Random
) -> tuple[list[tuple[int, int]], int]:
    """Randomized greedy peeling: every iteration, each surviving edge
    draws a random rank and locally minimal edges (rank below every
    adjacent survivor) join the matching.  A constant fraction of edges is
    eliminated per iteration in expectation, so the iteration count is
    ``O(log m)``; each iteration is O(1) rounds of vertex-local
    aggregation in sublinear MPC.  Returns (matching, iterations)."""
    matching: list[tuple[int, int]] = []
    matched: set[int] = set()
    alive = [e for e in edges]
    iterations = 0
    while alive:
        iterations += 1
        ranks = {edge: rng.random() for edge in alive}
        best: dict[int, float] = {}
        for edge, rank in ranks.items():
            for endpoint in edge:
                if endpoint not in best or rank < best[endpoint]:
                    best[endpoint] = rank
        for edge, rank in ranks.items():
            u, v = edge
            if best[u] == rank and best[v] == rank and u not in matched and v not in matched:
                matching.append(edge)
                matched.update(edge)
        alive = [e for e in alive if e[0] not in matched and e[1] not in matched]
    return matching, iterations


# ----------------------------------------------------------------------
# Theorem 5.1
# ----------------------------------------------------------------------
def heterogeneous_matching(
    graph: Graph,
    config: ModelConfig | None = None,
    rng: random.Random | None = None,
    max_attempts: int = 16,
) -> MatchingResult:
    """Maximal matching in ``O(sqrt(log d log log d))`` rounds (Theorem 5.1)."""
    rng = rng if rng is not None else random.Random(0)
    config = (
        config
        if config is not None
        else ModelConfig.heterogeneous(n=graph.n, m=max(graph.m, 1))
    )
    cluster = Cluster(config, rng=random.Random(rng.random()))
    n = graph.n
    edges = [(e[0], e[1]) for e in graph.edges]
    store = EdgeStore.create(cluster, edges, name="matching-edges")
    average_degree = max(2.0, graph.average_degree)
    degree_cap = average_degree * average_degree

    # --- Phase 1: maximal matching on the low-degree induced subgraph ------
    degrees = store.aggregate(lambda e: (e[0], 1), "sum", note="phase1/deg-u")
    degrees_v = store.aggregate(lambda e: (e[1], 1), "sum", note="phase1/deg-v")
    for vertex, count in degrees_v.items():
        degrees[vertex] = degrees.get(vertex, 0) + count
    low = {v for v in range(n) if degrees.get(v, 0) <= degree_cap}

    low_edges = [e for e in edges if e[0] in low and e[1] in low]
    with cluster.ledger.section("phase1"):
        m1, iterations = _peeling_matching(low_edges, rng)
        # Each peeling iteration is a constant number of sublinear-MPC
        # rounds (rank exchange + per-vertex min aggregation); see DESIGN.md.
        cluster.ledger.charge(2 * iterations, note="phase1/peeling")
    matched: set[int] = {x for e in m1 for x in e}

    sample_quota = max(1, int(2 * average_degree * math.log2(max(n, 4))))
    attempts = 0
    final: list[tuple[int, int]] | None = None
    with cluster.ledger.parallel("phase2-3") as par:
        for _ in range(max_attempts):
            attempts += 1
            with par.branch():
                result = _high_degree_phases(
                    cluster, store, n, low, matched, m1, sample_quota, rng
                )
            if result is not None:
                final = result
                break
    if final is None:
        raise AlgorithmFailure("phase 3 edge count exceeded 2n in every attempt")

    return MatchingResult(
        matching=sorted(final),
        rounds=cluster.ledger.rounds,
        phase1_iterations=iterations,
        attempts=attempts,
        cluster=cluster,
    )


def _high_degree_phases(
    cluster: Cluster,
    store: EdgeStore,
    n: int,
    low: set[int],
    matched_after_m1: set[int],
    m1: list[tuple[int, int]],
    sample_quota: int,
    rng: random.Random,
) -> list[tuple[int, int]] | None:
    """Phases 2 and 3 (one attempt); None signals the w.h.p. failure event."""
    matched = set(matched_after_m1)

    # --- Phase 2: random incident edges of high-degree vertices ------------
    with cluster.ledger.section("phase2"):
        ranked_name = f"{store.name}.ranked"
        for machine in cluster.smalls:
            machine.put(
                ranked_name,
                [
                    (edge[0], edge[1], cluster.rng.randrange(n**5))
                    for edge in machine.get(store.name, [])
                ],
            )
        arrangement = arrange_directed(
            cluster,
            ranked_name,
            directed_name=f"{ranked_name}.directed",
            secondary_key=2,
            note="phase2/arrange",
        )
        high = {v for v in arrangement.out_degrees if v not in low}

        # The large machine asks each machine for the lowest-ranked edges of
        # each high-degree vertex (k(v, M) queries, as in Section 3).
        remaining = {v: sample_quota for v in high}
        queries: dict[int, list[tuple[int, int]]] = {}
        for machine in cluster.smalls:
            per_vertex: dict[int, int] = {}
            for record in machine.get(arrangement.name, []):
                src = record[0]
                if src in remaining and remaining[src] > 0:
                    remaining[src] -= 1
                    per_vertex[src] = per_vertex.get(src, 0) + 1
            if per_vertex:
                queries[machine.machine_id] = list(per_vertex.items())
        cluster.scatter(cluster.large.machine_id, queries, note="phase2/queries")

        responses: dict[int, list] = {}
        for machine in cluster.smalls:
            wanted = dict(queries.get(machine.machine_id, []))
            taken: dict[int, int] = {}
            answer = []
            for record in machine.get(arrangement.name, []):
                src = record[0]
                if taken.get(src, 0) < wanted.get(src, 0):
                    taken[src] = taken.get(src, 0) + 1
                    answer.append((src, record[1]))
            responses[machine.machine_id] = answer
            machine.pop(arrangement.name, None)
        collected = cluster.gather(
            cluster.large.machine_id, responses, note="phase2/sampled"
        )
        cluster.map_small(ranked_name, lambda m, items: [])

        sampled_neighbors: dict[int, list[int]] = {}
        for src, other in collected:
            sampled_neighbors.setdefault(src, []).append(other)
        m2: list[tuple[int, int]] = []
        for u in sorted(high):
            if u in matched:
                continue
            partner = next(
                (v for v in sampled_neighbors.get(u, ()) if v not in matched), None
            )
            if partner is not None:
                matched.update((u, partner))
                m2.append((min(u, partner), max(u, partner)))

    # --- Phase 3: count and collect the leftover edges ---------------------
    with cluster.ledger.section("phase3"):
        flags = {v: (v in matched) for v in range(n)}
        annotated = store.annotate(flags, default=False, note="phase3/flags")
        leftover_name = f"{store.name}.leftover"
        for machine in cluster.smalls:
            machine.put(
                leftover_name,
                [
                    record
                    for record, flag_u, flag_v in machine.pop(annotated.name, [])
                    if not flag_u and not flag_v
                ],
            )
        leftover = EdgeStore(cluster, leftover_name)
        count = leftover.count(note="phase3/count")
        if count > 2 * n:
            leftover.drop()
            return None
        edges = leftover.gather_to_large(note="phase3/gather")
        leftover.drop()
        m3 = greedy_maximal_matching(sorted(edges), matched=matched)

    return list(m1) + m2 + m3


# ----------------------------------------------------------------------
# Theorem 5.5: filtering with a superlinear large machine
# ----------------------------------------------------------------------
def filtering_matching(
    graph: Graph,
    config: ModelConfig | None = None,
    rng: random.Random | None = None,
) -> MatchingResult:
    """Maximal matching in ``O(1/f)`` rounds given a large machine with
    ``n^{1+f}`` memory (Theorem 5.5, following Lattanzi et al. [44])."""
    rng = rng if rng is not None else random.Random(0)
    config = (
        config
        if config is not None
        else ModelConfig.heterogeneous_superlinear(
            n=graph.n, m=max(graph.m, 1), f=0.5
        )
    )
    cluster = Cluster(config, rng=random.Random(rng.random()))
    n = graph.n
    f = config.f
    capacity_budget = max(int(n ** (1.0 + f)), 64)
    sample_rate = min(1.0, n ** (-f))

    base = EdgeStore.create(
        cluster, [(e[0], e[1]) for e in graph.edges], name="filter-edges"
    )

    # Build the sampling chain G_0 ⊇ G_1 ⊇ ... until the bottom level fits.
    chain = [base]
    counts = [base.count(note="filter/count")]
    while counts[-1] > capacity_budget:
        nxt = chain[-1].sample(sample_rate, rng)
        chain.append(nxt)
        counts.append(nxt.count(note="filter/count"))

    # Bottom level: match on the large machine.
    edges = chain[-1].gather_to_large(note="filter/bottom")
    matched: set[int] = set()
    matching = greedy_maximal_matching(sorted(edges), matched=matched)

    # Walk back up, filtering the still-unmatched edges of each level.
    for level in range(len(chain) - 2, -1, -1):
        flags = {v: (v in matched) for v in range(n)}
        annotated = chain[level].annotate(flags, default=False, note="filter/flags")
        open_name = f"{chain[level].name}.open"
        for machine in cluster.smalls:
            machine.put(
                open_name,
                [
                    record
                    for record, flag_u, flag_v in machine.pop(annotated.name, [])
                    if not flag_u and not flag_v
                ],
            )
        open_store = EdgeStore(cluster, open_name)
        extra = open_store.gather_to_large(note="filter/open")
        open_store.drop()
        matching.extend(greedy_maximal_matching(sorted(extra), matched=matched))

    for level_store in chain[1:]:
        level_store.drop()

    return MatchingResult(
        matching=sorted(matching),
        rounds=cluster.ledger.rounds,
        levels=len(chain),
        cluster=cluster,
    )
