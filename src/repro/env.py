"""Shared parsing for ``REPRO_*`` environment knobs.

Every knob used to be read ad hoc — boolean switches with a strict
``== "1"`` comparison (so ``REPRO_BENCH_SMOKE=true`` was silently
ignored), name-valued switches with bare ``os.environ.get`` (so a
trailing space or ``NumPy`` capitalization produced an "unknown backend"
error), and integer knobs with a raw ``int(...)`` that raised an opaque
``ValueError`` on junk.  These three helpers are the single place knob
strings become Python values:

* :func:`env_flag` — boolean switches (``REPRO_BENCH_SMOKE``).  Accepts
  ``1/true/yes/on`` and ``0/false/no/off`` case-insensitively; anything
  else raises so a typo fails loudly instead of silently disabling the
  knob.
* :func:`env_name` — name-valued switches (``REPRO_EXECUTOR``,
  ``REPRO_ENGINE_BACKEND``, ``REPRO_SKETCH_BACKEND``,
  ``REPRO_PRIMITIVE_PATH``).  Strips and lowercases; empty values fall
  back to the default so ``REPRO_EXECUTOR= python ...`` behaves like
  unset.  Validation against the accepted names stays with the caller,
  whose error messages name the knob's actual vocabulary.
* :func:`env_int` — integer knobs (``REPRO_EXECUTOR_WORKERS``).  Empty
  values fall back to the default; junk raises with the variable name in
  the message.
"""

from __future__ import annotations

import os

__all__ = ["env_flag", "env_name", "env_int"]

_TRUTHY = frozenset({"1", "true", "yes", "on"})
_FALSY = frozenset({"0", "false", "no", "off", ""})


def env_flag(name: str, default: bool = False) -> bool:
    """Parse boolean knob *name*: ``1/true/yes/on`` vs ``0/false/no/off``
    (case-insensitive, whitespace-tolerant).  Unset or empty returns
    *default*; any other value raises ``ValueError``."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    if value == "":
        return default
    if value in _TRUTHY:
        return True
    if value in _FALSY:
        return False
    raise ValueError(
        f"{name}={raw!r} is not a boolean "
        "(expected one of 1/true/yes/on or 0/false/no/off)"
    )


def env_name(name: str, default: str) -> str:
    """Read name-valued knob *name*, normalized with strip + lowercase.
    Unset or empty returns *default* (already assumed normalized)."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    return value if value else default


def env_int(name: str, default: int = 0) -> int:
    """Read integer knob *name*.  Unset or empty returns *default*;
    non-integer values raise ``ValueError`` naming the variable."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = raw.strip()
    if value == "":
        return default
    try:
        return int(value)
    except ValueError:
        raise ValueError(f"{name}={raw!r} is not an integer") from None
