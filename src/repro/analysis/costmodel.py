"""Predicted-vs-measured cost model over the benchmark artifacts.

Loads every ``repro.bench/2`` artifact, fits each measured rounds/words
column against the candidate asymptotic forms of
:mod:`repro.analysis.fits`, compares the selected growth class with the
paper's Table-1 bound where one applies, and renders the deterministic
``docs/COST_MODEL.md``.  Like ``docs/REPRODUCTION.md`` the document is
derived, never hand-edited: ``python -m repro costmodel`` regenerates it
and ``python -m repro costmodel --check`` fails CI when it is stale.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Any, Sequence

from .fits import (
    CONSTANT,
    FOLD_THRESHOLD,
    R2_MIN,
    TIE_MARGIN,
    UNDERDETERMINED,
    FitReport,
    select_model,
    transform_label,
    verdict,
)
from .tables import render_table
from .theory import TABLE1

__all__ = [
    "DEFAULT_DOC_PATH",
    "DEFAULT_RESULTS_DIR",
    "EXPECTED",
    "INFLATION_BOUND",
    "FitRow",
    "build_fit_rows",
    "build_pooled_rows",
    "check_cost_model",
    "render_cost_model",
    "write_cost_model",
]

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
DEFAULT_RESULTS_DIR = _REPO_ROOT / "benchmarks" / "results"
DEFAULT_DOC_PATH = _REPO_ROOT / "docs" / "COST_MODEL.md"

#: Paper-predicted growth class of a measured column in its artifact's
#: sweep axis, keyed by (problem, column).  Only columns listed here get
#: a verdict; everything else is fitted observationally (the bound either
#: is not a function of the swept axis, or the scenario measures
#: something other than a Table-1 quantity).
EXPECTED: dict[tuple[str, str], str] = {
    ("connectivity", "het_rounds"): CONSTANT,          # Thm C.1: O(1)
    ("connectivity", "sub_rounds"): "log",             # O(log D + loglog n)
    ("cycle", "het_rounds"): CONSTANT,                 # Section 1: O(1)
    ("cycle", "sub_rounds"): "log",                    # Ω(log n) lower bound
    ("mst", "het_rounds"): "loglog",                   # Thm 3.1: O(loglog(m/n))
    ("mst", "sub_rounds"): "log",                      # Borůvka: O(log n)
    ("matching", "het_rounds"): "sqrt_log_loglog",     # Thm 5.1
    ("matching", "sub_rounds"): "sqrt_log_loglog",     # Table 1 sublinear bound
    ("spanner", "rounds"): CONSTANT,                   # Thm 1.3: O(1)
    ("mis", "iterations"): "loglog",                   # Thm C.6: O(loglog Δ)
    ("mis", "rounds"): "loglog",
    ("coloring", "rounds"): CONSTANT,                  # Thm C.7: O(1)
    ("mincut", "exact_rounds"): CONSTANT,              # Thm C.3: O(1)
    ("mincut", "w_rounds"): CONSTANT,                  # Thm C.4: O(1)
    ("mst_approx", "rounds"): CONSTANT,                # Table 1: O(1)
}

#: Groups whose scenarios realize Table-1 sweeps (the huge/large tiers
#: rerun the classic scenarios at 10-100x scale).
_TABLE1_GROUPS = ("table1", "large", "huge")

#: Heterogeneous-claim columns pooled across the classic/large/huge
#: scales: the paper's heterogeneous bounds are functions of the swept
#: axis alone (not of n), so points from different scales are one curve.
#: Sublinear bounds depend on n and must not be pooled this way.
_POOLED_COLUMNS = ("het_rounds",)

#: The robustness scenarios pin enforce-mode round inflation at <= 2x
#: (see docs/THEOREM_MAP.md, "Throttled rounds vs the paper's bounds").
INFLATION_BOUND = 2.0

#: Table-1 display rows (theory.TABLE1) for each artifact problem key.
_PROBLEM_TO_TABLE1 = {
    "connectivity": ["Connectivity"],
    "mst": ["MST"],
    "mst_approx": ["(1+eps)-approx MST"],
    "spanner": ["O(k)-spanner of size O(n^{1+1/k})"],
    "mincut": ["Exact unweighted min-cut", "Approx weighted min-cut"],
    "coloring": ["(Δ+1) vertex coloring"],
    "mis": ["Maximal independent set"],
    "matching": ["Maximal matching"],
}


@dataclass(frozen=True)
class FitRow:
    """One fitted (scenario, column) series plus its verdict."""

    scenario: str
    group: str
    problem: str
    column: str
    axis: str
    report: FitReport
    expected: str | None
    verdict: str


def _is_measure_column(name: str) -> bool:
    if "~" in name:  # theory columns carry the bound in their name
        return False
    return (
        name == "rounds"
        or name.endswith("_rounds")
        or name == "words"
        or name.endswith("_words")
        or name == "iterations"
    )


def _axis_values(artifact: dict[str, Any]) -> list[Any] | None:
    """The sweep-axis value of each row.  Scenarios whose axis is not a
    row column (the matching family, MIS) recover it from the registry's
    sweep definition."""
    rows = artifact["rows"]
    axis = artifact["axis"]
    if rows and axis in rows[0]:
        return [row.get(axis) for row in rows]
    try:
        from ..experiments.registry import get_scenario

        scenario = get_scenario(artifact["scenario"])
    except Exception:
        return None
    points = list(scenario.sweep(bool(artifact.get("quick", False))))
    if len(points) != len(rows):
        return None
    return points


def _numeric_count(values: Sequence[Any]) -> int:
    return sum(
        1 for v in values
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    )


def _expected_for(artifact: dict[str, Any], column: str) -> str | None:
    return EXPECTED.get((artifact["problem"], column))


def build_fit_rows(
    artifacts: Sequence[dict[str, Any]],
) -> tuple[list[FitRow], list[tuple[str, str]]]:
    """Fit every measured column of every artifact.

    Returns ``(fit_rows, not_fitted)`` where *not_fitted* lists
    ``(scenario, reason)`` for scenarios that cannot be fitted at all
    (categorical axis, too few points, no measured columns).
    """
    fit_rows: list[FitRow] = []
    not_fitted: list[tuple[str, str]] = []
    for artifact in artifacts:
        name = artifact["scenario"]
        columns = [c for c in artifact["columns"] if _is_measure_column(c)]
        if not columns:
            not_fitted.append((name, "no measured rounds/words columns"))
            continue
        axis_values = _axis_values(artifact)
        if axis_values is None:
            not_fitted.append(
                (name, f"axis `{artifact['axis']}` not recoverable from rows")
            )
            continue
        numeric = _numeric_count(axis_values)
        if numeric == 0:
            not_fitted.append(
                (name, f"categorical axis `{artifact['axis']}`")
            )
            continue
        if numeric < 3:
            not_fitted.append(
                (name, f"{numeric} numeric sweep point(s), need 3")
            )
            continue
        for column in columns:
            ys = [row.get(column) for row in artifact["rows"]]
            report = select_model(axis_values, ys)
            expected = _expected_for(artifact, column)
            if expected is None:
                verdict_ = "—"
            else:
                verdict_ = verdict(report, expected)
            fit_rows.append(FitRow(
                scenario=name, group=artifact["group"],
                problem=artifact["problem"], column=column,
                axis=artifact["axis"], report=report,
                expected=expected, verdict=verdict_,
            ))
    return fit_rows, not_fitted


@dataclass(frozen=True)
class PooledRow:
    """One heterogeneous column pooled across classic/large/huge scales."""

    problem: str
    column: str
    axis: str
    scenarios: tuple[str, ...]
    report: FitReport
    expected: str | None
    verdict: str


def build_pooled_rows(
    artifacts: Sequence[dict[str, Any]],
) -> list[PooledRow]:
    grouped: dict[tuple[str, str, str], list[dict[str, Any]]] = {}
    for artifact in artifacts:
        if artifact["group"] not in _TABLE1_GROUPS:
            continue
        for column in _POOLED_COLUMNS:
            if column in artifact["columns"]:
                key = (artifact["problem"], artifact["axis"], column)
                grouped.setdefault(key, []).append(artifact)
    pooled: list[PooledRow] = []
    for (problem, axis, column) in sorted(grouped):
        members = grouped[(problem, axis, column)]
        if len(members) < 2:
            continue
        xs: list[Any] = []
        ys: list[Any] = []
        names: list[str] = []
        for artifact in members:
            axis_values = _axis_values(artifact)
            if axis_values is None:
                continue
            xs.extend(axis_values)
            ys.extend(row.get(column) for row in artifact["rows"])
            names.append(artifact["scenario"])
        if len(names) < 2:
            continue
        report = select_model(xs, ys)
        expected = EXPECTED.get((problem, column))
        verdict_ = "—" if expected is None else verdict(report, expected)
        pooled.append(PooledRow(
            problem=problem, column=column, axis=axis,
            scenarios=tuple(names), report=report,
            expected=expected, verdict=verdict_,
        ))
    return pooled


def _fmt(value: float | None, digits: int = 3) -> str:
    if value is None:
        return "—"
    if value == float("inf"):
        return "inf"
    return f"{value:.{digits}f}"


def _model_cell(report: FitReport) -> str:
    if report.model in (CONSTANT, UNDERDETERMINED):
        return report.model
    return f"{report.model} ({transform_label(report.model)})"


def _best_cell(report: FitReport) -> str:
    if report.best_growing is None or report.model == report.best_growing:
        return "—"
    return f"{report.best_growing} (R²={_fmt(report.best_r2)})"


def _fit_table(rows: Sequence[FitRow], with_verdict: bool) -> str:
    columns = ["problem", "scenario", "measure", "axis", "pts", "model",
               "slope", "R²", "fold", "best alt"]
    if with_verdict:
        columns += ["expected", "verdict"]
    rendered = []
    for row in rows:
        cells = {
            "problem": row.problem,
            "scenario": row.scenario,
            "measure": row.column,
            "axis": row.axis,
            "pts": row.report.points,
            "model": _model_cell(row.report),
            "slope": _fmt(row.report.slope),
            "R²": _fmt(row.report.r2),
            "fold": _fmt(row.report.fold, 2),
            "best alt": _best_cell(row.report),
        }
        if with_verdict:
            cells["expected"] = row.expected or "—"
            cells["verdict"] = row.verdict
        rendered.append(cells)
    return render_table(rendered, columns)


def _separation_rows(
    artifacts: Sequence[dict[str, Any]],
) -> list[dict[str, Any]]:
    out: list[dict[str, Any]] = []
    for artifact in artifacts:
        if not {"het_rounds", "sub_rounds"} <= set(artifact["columns"]):
            continue
        rows = artifact["rows"]
        if not rows:
            continue
        ratios = [
            row["sub_rounds"] / row["het_rounds"]
            for row in rows if row.get("het_rounds")
        ]
        if not ratios:
            continue
        axis_values = _axis_values(artifact) or ["?"] * len(rows)
        last = rows[-1]
        out.append({
            "scenario": artifact["scenario"],
            "axis": artifact["axis"],
            "last point": axis_values[-1],
            "het rounds": last["het_rounds"],
            "sub rounds": last["sub_rounds"],
            "ratio": f"{last['sub_rounds'] / last['het_rounds']:.2f}"
            if last["het_rounds"] else "—",
            "mean ratio": f"{sum(ratios) / len(ratios):.2f}",
        })
    return out


def _throttle_rows(
    artifacts: Sequence[dict[str, Any]],
) -> list[dict[str, Any]]:
    out: list[dict[str, Any]] = []
    for artifact in artifacts:
        throttle = artifact.get("throttle")
        if not throttle:
            continue
        inflations = [
            row["inflation"] for row in artifact["rows"]
            if isinstance(row.get("inflation"), (int, float))
        ]
        max_inflation = max(inflations) if inflations else 0.0
        out.append({
            "scenario": artifact["scenario"],
            "mode": throttle.get("mode", "—"),
            "headroom": throttle.get("headroom", "—"),
            "splits": throttle.get("splits", 0),
            "extra rounds": throttle.get("extra_rounds", 0),
            "max inflation": f"{max_inflation:.3f}",
            "bound": f"{INFLATION_BOUND:.1f}x",
            "within": "yes" if max_inflation <= INFLATION_BOUND else "NO",
        })
    return out


def _table1_bounds_rows() -> list[dict[str, Any]]:
    rows = []
    for problem in sorted(_PROBLEM_TO_TABLE1):
        for display in _PROBLEM_TO_TABLE1[problem]:
            match = [r for r in TABLE1 if r.problem == display]
            if not match:
                continue
            row = match[0]
            rows.append({
                "problem": problem,
                "Table 1 row": display,
                "sublinear": row.sublinear,
                "heterogeneous": row.heterogeneous,
                "new": "yes" if row.new_in_paper else "",
            })
    return rows


def render_cost_model(artifacts: Sequence[dict[str, Any]]) -> str:
    """Render the cost-model document for *artifacts* (already validated)."""
    fit_rows, not_fitted = build_fit_rows(artifacts)
    pooled = build_pooled_rows(artifacts)
    table1_rows = sorted(
        (r for r in fit_rows if r.group in _TABLE1_GROUPS),
        key=lambda r: (r.problem, r.scenario, r.column),
    )
    other_rows = sorted(
        (r for r in fit_rows if r.group not in _TABLE1_GROUPS),
        key=lambda r: (r.group, r.scenario, r.column),
    )
    verdicts = [r.verdict for r in fit_rows] + [p.verdict for p in pooled]
    n_consistent = sum(1 for v in verdicts if v == "consistent")
    n_inconsistent = sum(1 for v in verdicts if v == "inconsistent")
    n_under = sum(1 for v in verdicts if v == UNDERDETERMINED)

    lines: list[str] = [
        "# Cost model: predicted vs measured",
        "",
        "<!-- GENERATED FILE — do not edit.  Regenerate with",
        "     `python -m repro costmodel` after `python -m repro bench all"
        " --json`. -->",
        "",
        "Least-squares fits of every measured rounds/words column in the",
        "committed `repro.bench/2` artifacts against the candidate",
        "asymptotic forms of Table 1, with a verdict against the paper's",
        "bound where one is a function of the swept axis",
        "(Fischer–Horowitz–Oshman, PODC 2022).  See",
        "`src/repro/analysis/fits.py` for the fitting machinery and",
        "`src/repro/analysis/costmodel.py` for the verdict map.",
        "",
        "## Method",
        "",
        "Each series `y` (a measured column) is fit as `y ~ a·g(x) + b`",
        "over its sweep axis `x` for every candidate transform `g`:",
        "`log log x`, `sqrt(log x)·log log x`, `log x`, `x^0.5`, `x`",
        "(base-2 logs, unfloored `log log` via",
        "`repro.analysis.theory.loglog_raw`).  The candidate with the",
        "highest R² is selected — R² is invariant under rescaling of `y`,",
        "so selection between growing forms never depends on units.  A",
        "series is classified `constant` when it is flat, when the best",
        "slope is non-positive, or when the fitted end-to-end growth",
        f"(`fold`) stays below {FOLD_THRESHOLD}x across the sweep;",
        f"it is `underdetermined` below 3 numeric points or R² {R2_MIN}.",
        "A verdict is `consistent` when the selected class grows no",
        "faster than the predicted one, or when the predicted form's own",
        f"R² is within {TIE_MARGIN} of the best (a 3-4 point sweep cannot",
        "separate neighbouring classes); `inconsistent` otherwise.",
        "",
        f"**Verdicts:** {n_consistent} consistent, "
        f"{n_inconsistent} inconsistent, {n_under} underdetermined.",
        "",
        "## Table 1 bounds",
        "",
        "```",
        render_table(
            _table1_bounds_rows(),
            ["problem", "Table 1 row", "sublinear", "heterogeneous", "new"],
        ),
        "```",
        "",
        "## Fit summary — Table 1 scenarios",
        "",
        "Classic, large and huge tiers of the Table-1 sweeps.  `het_*`",
        "columns measure the heterogeneous regime, `sub_*` the sublinear",
        "baselines; words columns are fitted observationally (the paper",
        "bounds rounds, not traffic volume).",
        "",
        "```",
        _fit_table(table1_rows, with_verdict=True),
        "```",
        "",
        "## Pooled heterogeneous fits (classic + large + huge)",
        "",
        "The heterogeneous bounds are functions of the swept axis alone,",
        "so points from all scales of one problem form a single curve.",
        "This is the headline check: heterogeneous MST rounds across the",
        "full m/n range against `O(log log(m/n))`.",
        "",
        "```",
        _fit_table(
            [FitRow(
                scenario=", ".join(p.scenarios), group="pooled",
                problem=p.problem, column=p.column, axis=p.axis,
                report=p.report, expected=p.expected, verdict=p.verdict,
            ) for p in pooled],
            with_verdict=True,
        ),
        "```",
        "",
        "## Heterogeneous vs sublinear separation",
        "",
        "Measured round-count ratios (sublinear / heterogeneous) at the",
        "largest sweep point and averaged over the sweep.",
        "",
        "```",
        render_table(
            _separation_rows(artifacts),
            ["scenario", "axis", "last point", "het rounds", "sub rounds",
             "ratio", "mean ratio"],
        ),
        "```",
        "",
        "## Throttle round inflation",
        "",
        "Enforce-mode splitting trades capacity violations for extra",
        "rounds; the robustness scenarios bound that inflation at",
        f"{INFLATION_BOUND:.0f}x (see docs/THEOREM_MAP.md).",
        "",
        "```",
        render_table(
            _throttle_rows(artifacts),
            ["scenario", "mode", "headroom", "splits", "extra rounds",
             "max inflation", "bound", "within"],
        ),
        "```",
        "",
        "## Other scenarios (observational)",
        "",
        "Theorem, figure, ablation and robustness sweeps; fits are",
        "reported for completeness, with verdicts only where a Table-1",
        "bound applies to the swept axis.",
        "",
        "```",
        _fit_table(other_rows, with_verdict=True),
        "```",
        "",
        "## Not fitted",
        "",
    ]
    for scenario, reason in sorted(not_fitted):
        lines.append(f"- `{scenario}`: {reason}")
    if not not_fitted:
        lines.append("- (every scenario was fitted)")
    lines.append("")
    return "\n".join(lines)


def write_cost_model(
    results_dir: pathlib.Path | str = DEFAULT_RESULTS_DIR,
    doc_path: pathlib.Path | str = DEFAULT_DOC_PATH,
) -> pathlib.Path:
    """Regenerate the cost-model doc from *results_dir*."""
    from ..experiments.artifacts import load_results_dir

    artifacts = load_results_dir(results_dir)
    doc_path = pathlib.Path(doc_path)
    doc_path.parent.mkdir(parents=True, exist_ok=True)
    doc_path.write_text(render_cost_model(artifacts))
    return doc_path


def check_cost_model(
    results_dir: pathlib.Path | str = DEFAULT_RESULTS_DIR,
    doc_path: pathlib.Path | str = DEFAULT_DOC_PATH,
) -> list[str]:
    """Return a list of problems (empty = the committed doc is current)."""
    from ..experiments.artifacts import load_results_dir

    problems: list[str] = []
    doc_path = pathlib.Path(doc_path)
    try:
        artifacts = load_results_dir(results_dir)
    except Exception as exc:
        return [f"artifact validation failed: {exc}"]
    if not artifacts:
        problems.append(f"no JSON artifacts found in {results_dir}")
        return problems
    expected = render_cost_model(artifacts)
    if not doc_path.exists():
        problems.append(
            f"{doc_path} is missing; run `python -m repro costmodel`"
        )
    elif doc_path.read_text() != expected:
        problems.append(
            f"{doc_path} is stale; run `python -m repro costmodel` and commit"
        )
    return problems
