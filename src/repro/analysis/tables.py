"""Harness that regenerates Table 1 and the parameter-sweep experiments.

Every function returns a list of row dicts and also knows how to render
itself as an aligned text table — the format the benchmark scenarios
print and the generated ``docs/REPRODUCTION.md`` quotes (see
``repro.experiments``).  Measured quantities are *round counts from the
simulator's ledger*; theory columns come from ``repro.analysis.theory``.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Sequence

from ..graph import generators
from ..graph.graph import Graph
from .theory import predicted_rounds

__all__ = ["render_table", "density_sweep", "Sweep"]


def render_table(rows: Sequence[dict[str, Any]], columns: Sequence[str]) -> str:
    """Align *rows* (dicts) into a printable text table."""
    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    table = [columns] + [[fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [max(len(line[i]) for line in table) for i in range(len(columns))]
    lines = []
    for index, line in enumerate(table):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


class Sweep:
    """A parameter sweep: generate a graph per point, run one or more
    algorithms, collect round counts and theory predictions."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rows: list[dict[str, Any]] = []

    def rng(self, salt: int) -> random.Random:
        return random.Random(self.seed * 7919 + salt)

    def add_row(self, **fields: Any) -> None:
        self.rows.append(fields)

    def render(self, columns: Sequence[str]) -> str:
        return render_table(self.rows, columns)


def density_sweep(
    n: int,
    ratios: Sequence[int],
    runner: Callable[[Graph, random.Random], dict[str, Any]],
    problem: str,
    seed: int = 0,
    weighted: bool = False,
) -> Sweep:
    """Run *runner* over G(n, ratio*n) graphs of increasing density; attach
    the heterogeneous and sublinear theory predictions per point."""
    sweep = Sweep(seed=seed)
    for index, ratio in enumerate(ratios):
        rng = sweep.rng(index)
        m = min(n * (n - 1) // 2, n * ratio)
        graph = generators.random_connected_graph(n, m, rng)
        if weighted:
            graph = graph.with_unique_weights(rng)
        measured = runner(graph, sweep.rng(1000 + index))
        row = {
            "n": n,
            "m": m,
            "m/n": ratio,
            **measured,
            "theory_het": predicted_rounds(
                problem, "heterogeneous", n=n, m=m, max_degree=graph.max_degree
            ),
        }
        try:
            row["theory_sub"] = predicted_rounds(
                problem, "sublinear", n=n, m=m, max_degree=graph.max_degree
            )
        except ValueError:
            pass
        sweep.add_row(**row)
    return sweep
