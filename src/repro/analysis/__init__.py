"""Analysis helpers: Table 1 theory predictions, sweep harnesses, and
least-squares asymptotic fits (``repro.analysis.fits`` /
``repro.analysis.costmodel`` — the latter is imported lazily by the CLI
because it reads benchmark artifacts through ``repro.experiments``)."""

from .fits import (
    CONSTANT,
    GROWTH_ORDER,
    UNDERDETERMINED,
    FitReport,
    LeastSquares,
    growth_rank,
    least_squares,
    select_model,
    verdict,
)
from .tables import Sweep, density_sweep, render_table
from .theory import TABLE1, Table1Row, loglog, loglog_raw, predicted_rounds

__all__ = [
    "Sweep",
    "density_sweep",
    "render_table",
    "TABLE1",
    "Table1Row",
    "predicted_rounds",
    "loglog",
    "loglog_raw",
    "CONSTANT",
    "GROWTH_ORDER",
    "UNDERDETERMINED",
    "FitReport",
    "LeastSquares",
    "growth_rank",
    "least_squares",
    "select_model",
    "verdict",
]
