"""Analysis helpers: Table 1 theory predictions and sweep harnesses."""

from .tables import Sweep, density_sweep, render_table
from .theory import TABLE1, Table1Row, predicted_rounds

__all__ = [
    "Sweep",
    "density_sweep",
    "render_table",
    "TABLE1",
    "Table1Row",
    "predicted_rounds",
]
