"""Least-squares fits of measured costs against Table-1 asymptotic forms.

Given a sweep ``(x_i, y_i)`` — an artifact axis (n, m/n, k, ...) against a
measured column (rounds, words) — each candidate form ``g`` is fit as
``y ~ a·g(x) + b`` by ordinary least squares over the *transformed* axis,
and the candidate with the highest R² is selected.  Selection therefore
never depends on the scale of ``y``: R² is invariant under ``y -> α·y + β``,
so rescaling a measured column cannot flip the choice between two growing
forms.

Two extra rules classify a series as ``constant``:

* a non-positive best slope (flat or decreasing series grow like O(1) in
  the swept axis), and
* a bounded *fold*: the fitted line's end-to-end growth factor across the
  sweep, ``(a·g_max + b) / (a·g_min + b)``.  A series that only moves a
  few tens of percent over a 32x axis range is consistent with a constant
  bound plus implementation noise, whatever transform tracks its wiggle
  best.  The fold is a ratio of fitted values, so it is scale-invariant
  but deliberately *not* shift-invariant: round counts are ratio-scale
  quantities with a true zero, and "grew 30% over the sweep" is only
  meaningful relative to that zero.

Series with fewer than three distinct numeric points, or where no
candidate reaches ``r2_min``, are ``underdetermined``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from .theory import loglog_raw

__all__ = [
    "CONSTANT",
    "FOLD_THRESHOLD",
    "FitReport",
    "GROWTH_ORDER",
    "LeastSquares",
    "R2_MIN",
    "TIE_MARGIN",
    "TRANSFORMS",
    "UNDERDETERMINED",
    "growth_rank",
    "least_squares",
    "select_model",
    "verdict",
]

CONSTANT = "constant"
UNDERDETERMINED = "underdetermined"

#: Fitted end-to-end growth <= this factor across the whole sweep is
#: classified as constant (bounded variation, not asymptotic growth).
FOLD_THRESHOLD = 1.6
#: Best-candidate R² below this leaves the series underdetermined.
R2_MIN = 0.6
#: A paper-predicted form within this much R² of the best-fitting one is
#: judged an adequate model (sweeps have 3-4 points; close calls between
#: e.g. log and log log are noise, not refutation).
TIE_MARGIN = 0.25
#: Relative spread below which a series is flat outright.
FLAT_RTOL = 0.1


def _log2(x: float) -> float:
    return math.log2(max(x, 2.0))


#: Candidate growing forms, slowest-growing first (ties in R² resolve to
#: the slowest form).  Keys double as model names in fit reports.
TRANSFORMS: tuple[tuple[str, str, Callable[[float], float]], ...] = (
    ("loglog", "log log x", loglog_raw),
    ("sqrt_log_loglog", "sqrt(log x)·log log x",
     lambda x: math.sqrt(_log2(x)) * loglog_raw(x)),
    ("log", "log x", _log2),
    ("sqrt", "x^0.5", lambda x: math.sqrt(max(x, 0.0))),
    ("linear", "x", float),
)

#: Growth classes from slowest to fastest; rank comparisons implement
#: "measured growth is within the predicted bound".
GROWTH_ORDER: tuple[str, ...] = (
    CONSTANT, "loglog", "sqrt_log_loglog", "log", "sqrt", "linear"
)


def growth_rank(model: str) -> int:
    return GROWTH_ORDER.index(model)


def transform_label(model: str) -> str:
    for key, label, _ in TRANSFORMS:
        if key == model:
            return label
    return model


@dataclass(frozen=True)
class LeastSquares:
    """One candidate's fit: ``y ~ slope·g(x) + intercept``."""

    slope: float
    intercept: float
    r2: float


def least_squares(gs: Sequence[float], ys: Sequence[float]) -> LeastSquares | None:
    """OLS of *ys* on *gs*; ``None`` when the transform is degenerate
    (zero variance in ``g``, e.g. every sweep point below the transform's
    floor)."""
    n = len(gs)
    mean_g = sum(gs) / n
    mean_y = sum(ys) / n
    var_g = sum((g - mean_g) ** 2 for g in gs)
    if var_g <= 1e-12:
        return None
    cov = sum((g - mean_g) * (y - mean_y) for g, y in zip(gs, ys))
    slope = cov / var_g
    intercept = mean_y - slope * mean_g
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    if ss_tot <= 1e-12:
        r2 = 1.0
    else:
        ss_res = sum(
            (y - (slope * g + intercept)) ** 2 for g, y in zip(gs, ys)
        )
        r2 = 1.0 - ss_res / ss_tot
    return LeastSquares(slope=slope, intercept=intercept, r2=r2)


@dataclass(frozen=True)
class FitReport:
    """Model selection for one measured series.

    ``model`` is a transform key, ``constant``, or ``underdetermined``.
    ``best_growing``/``best_r2`` always name the best-fitting growing
    candidate (when any transform was non-degenerate), so constant and
    underdetermined classifications stay auditable.
    """

    model: str
    points: int
    slope: float | None = None
    intercept: float | None = None
    r2: float | None = None
    fold: float | None = None
    best_growing: str | None = None
    best_r2: float | None = None
    candidates: Mapping[str, LeastSquares] = field(default_factory=dict)


def _numeric_pairs(
    xs: Sequence[object], ys: Sequence[object]
) -> list[tuple[float, float]]:
    pairs: list[tuple[float, float]] = []
    for x, y in zip(xs, ys):
        if isinstance(x, bool) or isinstance(y, bool):
            continue
        if not isinstance(x, (int, float)) or not isinstance(y, (int, float)):
            continue
        if not (math.isfinite(x) and math.isfinite(y)):
            continue
        pairs.append((float(x), float(y)))
    return pairs


def select_model(
    xs: Sequence[object],
    ys: Sequence[object],
    *,
    fold_threshold: float = FOLD_THRESHOLD,
    r2_min: float = R2_MIN,
    flat_rtol: float = FLAT_RTOL,
) -> FitReport:
    """Fit every candidate form to the numeric points of ``(xs, ys)`` and
    classify the series.  Non-numeric sweep points (regime labels, the
    ``"1/log n"`` axis tag) are skipped."""
    pairs = _numeric_pairs(xs, ys)
    points = len(pairs)
    if points < 3 or len({x for x, _ in pairs}) < 3:
        return FitReport(model=UNDERDETERMINED, points=points)

    xvals = [x for x, _ in pairs]
    yvals = [y for _, y in pairs]
    candidates: dict[str, LeastSquares] = {}
    for key, _, fn in TRANSFORMS:
        fit = least_squares([fn(x) for x in xvals], yvals)
        if fit is not None:
            candidates[key] = fit

    spread = max(yvals) - min(yvals)
    mean_abs = sum(abs(y) for y in yvals) / points
    if spread <= 1e-12 or (mean_abs > 0 and spread <= flat_rtol * mean_abs):
        return FitReport(
            model=CONSTANT, points=points, fold=1.0, candidates=candidates
        )
    if not candidates:
        return FitReport(model=UNDERDETERMINED, points=points)

    best_key = max(
        candidates,
        key=lambda k: (candidates[k].r2,
                       -[t[0] for t in TRANSFORMS].index(k)),
    )
    best = candidates[best_key]
    if best.slope <= 0:
        return FitReport(
            model=CONSTANT, points=points, best_growing=best_key,
            best_r2=best.r2, candidates=candidates,
        )
    if best.r2 < r2_min:
        return FitReport(
            model=UNDERDETERMINED, points=points, best_growing=best_key,
            best_r2=best.r2, candidates=candidates,
        )
    fn = dict((k, f) for k, _, f in TRANSFORMS)[best_key]
    gs = [fn(x) for x in xvals]
    lo = best.slope * min(gs) + best.intercept
    hi = best.slope * max(gs) + best.intercept
    fold = hi / lo if lo > 0 else math.inf
    if fold <= fold_threshold:
        return FitReport(
            model=CONSTANT, points=points, fold=fold, best_growing=best_key,
            best_r2=best.r2, candidates=candidates,
        )
    return FitReport(
        model=best_key, points=points, slope=best.slope,
        intercept=best.intercept, r2=best.r2, fold=fold,
        best_growing=best_key, best_r2=best.r2, candidates=candidates,
    )


def verdict(
    report: FitReport, expected: str, *, tie_margin: float = TIE_MARGIN
) -> str:
    """Compare a fit against the paper-predicted growth class.

    ``consistent`` when the selected model grows no faster than the
    predicted one, or when the predicted form explains the series nearly
    as well as the best candidate (within *tie_margin* of its R²) — a
    3-4 point sweep cannot separate e.g. log from sqrt(log)·loglog.
    """
    if expected not in GROWTH_ORDER:
        raise ValueError(f"unknown growth class {expected!r}")
    if report.model == UNDERDETERMINED:
        return UNDERDETERMINED
    if growth_rank(report.model) <= growth_rank(expected):
        return "consistent"
    expected_fit = report.candidates.get(expected)
    if (
        expected_fit is not None
        and report.best_r2 is not None
        and expected_fit.r2 >= report.best_r2 - tie_margin
    ):
        return "consistent"
    return "inconsistent"
