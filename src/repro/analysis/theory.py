"""Closed-form round-complexity predictions — the contents of Table 1.

These functions return the paper's *stated bounds* (up to constants) for
each problem and regime, so benchmarks can print theory next to measured
round counts and check growth shapes (ratios across a parameter sweep)
rather than absolute constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["TABLE1", "Table1Row", "predicted_rounds", "log2", "loglog", "loglog_raw"]


def log2(x: float) -> float:
    return math.log2(max(x, 2.0))


def loglog(x: float) -> float:
    """Display-floored log log: never below 1.0, so theory columns in the
    benchmark tables stay readable next to measured round counts."""
    return max(1.0, loglog_raw(x))


def loglog_raw(x: float) -> float:
    """Unfloored log log, 0 at x <= 4.  The fitting code needs the true
    small-x shape: flooring at 1.0 flattens every sweep point below n=16
    onto the same value, which biases least-squares slopes toward zero."""
    return math.log2(max(math.log2(max(x, 2.0)), 1.0))


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1: a problem and its three bounds (as printable
    strings) plus which regime-bound is a *new* result of the paper."""

    problem: str
    sublinear: str
    heterogeneous: str
    near_linear: str
    new_in_paper: bool = False


TABLE1: list[Table1Row] = [
    Table1Row("Connectivity", "O(log D + log log n)", "O(1)", "O(1)"),
    Table1Row("MST", "O(log n)", "O(log log(m/n))", "O(1)", new_in_paper=True),
    Table1Row("(1+eps)-approx MST", "—", "O(1)", "O(1)"),
    Table1Row(
        "O(k)-spanner of size O(n^{1+1/k})", "O(log k)", "O(1)", "O(1)",
        new_in_paper=True,
    ),
    Table1Row("Exact unweighted min-cut", "O(polylog n)", "O(1)", "O(1)"),
    Table1Row("Approx weighted min-cut", "O(log n log log n)", "O(1)", "O(1)"),
    Table1Row("(Δ+1) vertex coloring", "O(log log log n)", "O(1)", "O(1)"),
    Table1Row(
        "Maximal independent set",
        "O(sqrt(log Δ) log log Δ)",
        "O(log log Δ)",
        "O(log log Δ)",
    ),
    Table1Row(
        "Maximal matching",
        "O(sqrt(log Δ) log log Δ)",
        "O(sqrt(log(m/n) log log(m/n)))",
        "O(log log Δ)",
        new_in_paper=True,
    ),
]


def predicted_rounds(problem: str, regime: str, **params) -> float:
    """The growth function (no constants) of the stated bound.

    Args:
        problem: one of ``mst``, ``matching``, ``connectivity``,
            ``spanner``, ``mis``, ``coloring``, ``mincut``, ``mst_approx``,
            ``cycle``.
        regime: ``sublinear`` or ``heterogeneous``.
        params: ``n``, ``m``, ``max_degree``, ``f`` as relevant.
    """
    n = params.get("n", 2)
    m = params.get("m", n)
    delta = params.get("max_degree", max(2, 2 * m // max(n, 1)))
    ratio = max(m / max(n, 1), 2.0)

    key = (problem, regime)
    if key == ("mst", "sublinear"):
        return log2(n)
    if key == ("mst", "heterogeneous"):
        f = params.get("f")
        if f:
            return max(1.0, math.log2(max(math.log(ratio, n) / f, 2.0)))
        return loglog(ratio)
    if key == ("matching", "sublinear"):
        return math.sqrt(log2(delta)) * max(1.0, math.log2(log2(delta)))
    if key == ("matching", "heterogeneous"):
        f = params.get("f")
        if f:
            return 1.0 / f
        return math.sqrt(log2(ratio) * max(1.0, math.log2(log2(ratio))))
    if key == ("connectivity", "sublinear") or key == ("cycle", "sublinear"):
        return log2(n)
    if key == ("mis", "heterogeneous"):
        return loglog(delta)
    if regime == "heterogeneous":
        return 1.0  # connectivity, spanner, coloring, min-cut, approx MST
    raise ValueError(f"no prediction for {key}")
