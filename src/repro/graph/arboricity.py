"""Degeneracy and arboricity estimates.

The paper's related-work section compares against arboricity-parameterized
algorithms [10] through the chain ``m/n <= α <= Δ``.  We provide the
standard linear-time degeneracy computation (min-degree peeling), which
brackets arboricity within a factor 2 (``α <= degeneracy <= 2α - 1``), and
the density lower bound ``ceil(max_subgraph_density)`` via the peeling
prefix densities — enough for the analysis harness to report where a given
workload sits between ``m/n`` and ``Δ``.
"""

from __future__ import annotations

from .graph import Graph

__all__ = ["degeneracy", "degeneracy_ordering", "arboricity_bounds"]


def degeneracy_ordering(graph: Graph) -> tuple[int, list[int]]:
    """Return ``(degeneracy, elimination order)`` by repeatedly removing a
    minimum-degree vertex (bucket queue, O(n + m))."""
    n = graph.n
    adjacency = [set() for _ in range(n)]
    for u, v in ((e[0], e[1]) for e in graph.edges):
        adjacency[u].add(v)
        adjacency[v].add(u)
    degree = [len(neighbors) for neighbors in adjacency]
    max_degree = max(degree, default=0)
    buckets: list[set[int]] = [set() for _ in range(max_degree + 1)]
    for v in range(n):
        buckets[degree[v]].add(v)
    removed = [False] * n
    order: list[int] = []
    result = 0
    cursor = 0
    for _ in range(n):
        while cursor <= max_degree and not buckets[cursor]:
            cursor += 1
        v = buckets[cursor].pop()
        result = max(result, cursor)
        removed[v] = True
        order.append(v)
        for u in adjacency[v]:
            if not removed[u]:
                buckets[degree[u]].discard(u)
                degree[u] -= 1
                buckets[degree[u]].add(u)
        cursor = max(0, cursor - 1)
    return result, order


def degeneracy(graph: Graph) -> int:
    """The degeneracy (max over subgraphs of the minimum degree)."""
    return degeneracy_ordering(graph)[0]


def arboricity_bounds(graph: Graph) -> tuple[float, int]:
    """Lower and upper bounds on the arboricity α.

    Returns ``(max(m/n over peeled suffixes), degeneracy)``; by
    Nash-Williams the true α satisfies ``lower <= α <= upper``, and the
    paper's inequality ``m/n <= α <= Δ`` follows.
    """
    d, order = degeneracy_ordering(graph)
    position = {v: i for i, v in enumerate(order)}
    # Suffix subgraph densities: edges whose both endpoints survive when
    # the first i vertices are peeled.
    n = graph.n
    suffix_edges = [0] * (n + 1)
    for e in graph.edges:
        first = min(position[e[0]], position[e[1]])
        suffix_edges[first + 1] += 1
    remaining = graph.m
    best = 0.0
    for i in range(n):
        size = n - i
        if size >= 2:
            best = max(best, remaining / size)
        remaining -= suffix_edges[i + 1]
    return best, max(d, 1)
