"""Graph types shared by the whole library.

Vertices are integers ``0..n-1``.  Undirected edges are canonical tuples
``(u, v)`` with ``u < v``; weighted edges are ``(u, v, w)``.  Following the
paper's conventions (Section 2), weights are positive integers bounded by a
polynomial in ``n`` and are assumed unique — which makes the minimum
spanning tree unique and lets validators compare edge sets exactly.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

__all__ = ["Graph", "canonical_edge"]


def canonical_edge(u: int, v: int, w: int | None = None):
    """Return the canonical (sorted-endpoint) form of an edge."""
    if u == v:
        raise ValueError(f"self-loop at vertex {u}")
    if u > v:
        u, v = v, u
    return (u, v) if w is None else (u, v, w)


class Graph:
    """A simple undirected graph, optionally weighted.

    Args:
        n: number of vertices.
        edges: iterable of ``(u, v)`` or ``(u, v, w)`` tuples; endpoints are
            canonicalized, duplicates are rejected.
        weighted: force the weighted flag; inferred from the first edge when
            omitted.  A weighted graph with no edges needs ``weighted=True``.
    """

    def __init__(
        self,
        n: int,
        edges: Iterable[tuple] = (),
        weighted: bool | None = None,
    ) -> None:
        if n < 1:
            raise ValueError("graph needs at least one vertex")
        self.n = n
        edge_list = []
        seen: set[tuple[int, int]] = set()
        inferred: bool | None = weighted
        for edge in edges:
            if inferred is None:
                inferred = len(edge) == 3
            if len(edge) != (3 if inferred else 2):
                raise ValueError(f"mixed weighted/unweighted edges: {edge}")
            canon = canonical_edge(*edge)
            u, v = canon[0], canon[1]
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge {edge} out of range for n={n}")
            if (u, v) in seen:
                raise ValueError(f"duplicate edge {(u, v)}")
            seen.add((u, v))
            edge_list.append(canon)
        self.edges: list[tuple] = edge_list
        self.weighted = bool(inferred)
        self._adj: list[list[tuple[int, int]]] | None = None

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        return len(self.edges)

    def vertices(self) -> range:
        return range(self.n)

    def adjacency(self) -> list[list[tuple[int, int]]]:
        """Adjacency lists of ``(neighbor, weight)`` pairs (weight 1 when
        unweighted).  Built lazily and cached."""
        if self._adj is None:
            adj: list[list[tuple[int, int]]] = [[] for _ in range(self.n)]
            for edge in self.edges:
                u, v = edge[0], edge[1]
                w = edge[2] if self.weighted else 1
                adj[u].append((v, w))
                adj[v].append((u, w))
            self._adj = adj
        return self._adj

    def degrees(self) -> list[int]:
        degree = [0] * self.n
        for edge in self.edges:
            degree[edge[0]] += 1
            degree[edge[1]] += 1
        return degree

    @property
    def max_degree(self) -> int:
        return max(self.degrees(), default=0)

    @property
    def average_degree(self) -> float:
        return 2.0 * self.m / self.n if self.n else 0.0

    def has_edge(self, u: int, v: int) -> bool:
        if u > v:
            u, v = v, u
        return any(e[0] == u and e[1] == v for e in self.edges)

    def edge_set(self) -> set[tuple[int, int]]:
        """The set of (unweighted) endpoint pairs."""
        return {(e[0], e[1]) for e in self.edges}

    def weight_map(self) -> dict[tuple[int, int], int]:
        if not self.weighted:
            raise ValueError("graph is unweighted")
        return {(e[0], e[1]): e[2] for e in self.edges}

    def total_weight(self) -> int:
        if not self.weighted:
            return self.m
        return sum(e[2] for e in self.edges)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def unweighted(self) -> "Graph":
        """Strip weights (used by the spanner's weighted->unweighted
        reduction)."""
        return Graph(self.n, [(e[0], e[1]) for e in self.edges], weighted=False)

    def with_unique_weights(self, rng: random.Random) -> "Graph":
        """Attach a random permutation of ``1..m`` as edge weights."""
        weights = list(range(1, self.m + 1))
        rng.shuffle(weights)
        return Graph(
            self.n,
            [(e[0], e[1], w) for e, w in zip(self.edges, weights)],
            weighted=True,
        )

    def induced_subgraph(self, vertices: Sequence[int]) -> "Graph":
        """Subgraph induced on *vertices*, keeping original vertex ids."""
        keep = set(vertices)
        edges = [e for e in self.edges if e[0] in keep and e[1] in keep]
        return Graph(self.n, edges, weighted=self.weighted)

    def edge_subgraph(self, edges: Iterable[tuple]) -> "Graph":
        return Graph(self.n, edges, weighted=self.weighted)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "weighted" if self.weighted else "unweighted"
        return f"Graph(n={self.n}, m={self.m}, {kind})"
