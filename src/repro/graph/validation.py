"""Validators: check distributed outputs against sequential ground truth.

Every core algorithm's tests go through these; they are deliberately
independent of the MPC code paths (plain sequential graph algorithms), so a
bug cannot hide in shared logic.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from .graph import Graph
from .traversal import single_source_distances
from .union_find import UnionFind

__all__ = [
    "is_spanning_forest",
    "is_spanning_tree",
    "verify_mst",
    "spanner_stretch",
    "verify_spanner",
    "is_matching",
    "is_maximal_matching",
    "is_independent_set",
    "is_maximal_independent_set",
    "is_proper_coloring",
    "cut_value",
    "verify_components",
]


def _endpoints(edges: Iterable[tuple]) -> list[tuple[int, int]]:
    return [(e[0], e[1]) for e in edges]


def is_spanning_forest(graph: Graph, edges: Iterable[tuple]) -> bool:
    """True iff *edges* are acyclic in *graph* and span every component."""
    edge_pairs = _endpoints(edges)
    graph_edges = graph.edge_set()
    uf = UnionFind(range(graph.n))
    for u, v in edge_pairs:
        if (min(u, v), max(u, v)) not in graph_edges:
            return False
        if not uf.union(u, v):
            return False  # cycle
    truth = UnionFind(range(graph.n))
    for e in graph.edges:
        truth.union(e[0], e[1])
    return uf.num_components == truth.num_components


def is_spanning_tree(graph: Graph, edges: Iterable[tuple]) -> bool:
    edge_pairs = _endpoints(edges)
    return len(edge_pairs) == graph.n - 1 and is_spanning_forest(graph, edge_pairs)


def verify_mst(graph: Graph, edges: Iterable[tuple]) -> bool:
    """Exact MST check.  Weights are unique, so the minimum spanning forest
    is unique and we can compare edge sets against Kruskal."""
    from ..local.mst import kruskal  # local import to avoid a cycle

    expected = {(e[0], e[1]) for e in kruskal(graph)}
    actual = {(min(e[0], e[1]), max(e[0], e[1])) for e in edges}
    return expected == actual


def spanner_stretch(graph: Graph, spanner_edges: Iterable[tuple]) -> float:
    """The worst multiplicative stretch of the subgraph over all vertex
    pairs (1.0 for an empty graph).  Exact; use at validation sizes only."""
    weight = graph.weight_map() if graph.weighted else None
    spanner_list = []
    for e in spanner_edges:
        u, v = min(e[0], e[1]), max(e[0], e[1])
        if weight is None:
            spanner_list.append((u, v))
        else:
            spanner_list.append((u, v, weight[(u, v)]))
    subgraph = Graph(graph.n, set(spanner_list), weighted=graph.weighted)
    worst = 1.0
    for source in range(graph.n):
        dist_g = single_source_distances(graph, source)
        dist_h = single_source_distances(subgraph, source)
        for target in range(graph.n):
            if dist_g[target] == 0:
                continue
            if math.isinf(dist_g[target]):
                if not math.isinf(dist_h[target]):
                    return math.inf
                continue
            if math.isinf(dist_h[target]):
                return math.inf
            worst = max(worst, dist_h[target] / dist_g[target])
    return worst


def verify_spanner(
    graph: Graph, spanner_edges: Iterable[tuple], stretch: float
) -> bool:
    """True iff the edges form a subgraph of stretch at most *stretch* and
    are all real graph edges."""
    graph_edges = graph.edge_set()
    pairs = {(min(e[0], e[1]), max(e[0], e[1])) for e in spanner_edges}
    if not pairs <= graph_edges:
        return False
    return spanner_stretch(graph, pairs) <= stretch + 1e-9


def is_matching(graph: Graph, matching: Iterable[tuple]) -> bool:
    graph_edges = graph.edge_set()
    used: set[int] = set()
    for e in matching:
        u, v = min(e[0], e[1]), max(e[0], e[1])
        if (u, v) not in graph_edges:
            return False
        if u in used or v in used:
            return False
        used.update((u, v))
    return True


def is_maximal_matching(graph: Graph, matching: Iterable[tuple]) -> bool:
    matching = list(matching)
    if not is_matching(graph, matching):
        return False
    matched = {x for e in matching for x in (e[0], e[1])}
    return all(e[0] in matched or e[1] in matched for e in graph.edges)


def is_independent_set(graph: Graph, vertices: Iterable[int]) -> bool:
    chosen = set(vertices)
    if not all(0 <= v < graph.n for v in chosen):
        return False
    return all(not (e[0] in chosen and e[1] in chosen) for e in graph.edges)


def is_maximal_independent_set(graph: Graph, vertices: Iterable[int]) -> bool:
    chosen = set(vertices)
    if not is_independent_set(graph, chosen):
        return False
    adjacency = graph.adjacency()
    for v in range(graph.n):
        if v not in chosen and not any(u in chosen for u, _ in adjacency[v]):
            return False
    return True


def is_proper_coloring(
    graph: Graph, colors: Sequence[int], max_colors: int | None = None
) -> bool:
    if len(colors) != graph.n:
        return False
    if max_colors is not None and any(
        not (0 <= c < max_colors) for c in colors
    ):
        return False
    return all(colors[e[0]] != colors[e[1]] for e in graph.edges)


def cut_value(graph: Graph, side: Iterable[int]) -> int:
    """Total weight (count, if unweighted) of edges crossing the cut."""
    side_set = set(side)
    total = 0
    for e in graph.edges:
        if (e[0] in side_set) != (e[1] in side_set):
            total += e[2] if graph.weighted else 1
    return total


def verify_components(graph: Graph, labels: Sequence[int]) -> bool:
    """True iff *labels* is exactly the canonical component labeling."""
    from .traversal import component_labels

    return list(labels) == component_labels(graph)
