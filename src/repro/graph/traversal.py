"""Sequential graph traversal: BFS, Dijkstra, connected components.

These are reference implementations used (a) by the large machine for its
free local computation, and (b) by the validators to check distributed
outputs against ground truth.
"""

from __future__ import annotations

import heapq
import math
from collections import deque

from .graph import Graph
from .union_find import UnionFind

__all__ = [
    "bfs_distances",
    "dijkstra",
    "single_source_distances",
    "all_pairs_distances",
    "connected_components",
    "component_labels",
    "is_connected",
    "graph_diameter",
]

INF = math.inf


def bfs_distances(graph: Graph, source: int) -> list[float]:
    """Unweighted distances from *source* (``inf`` for unreachable)."""
    dist: list[float] = [INF] * graph.n
    dist[source] = 0
    queue = deque([source])
    adjacency = graph.adjacency()
    while queue:
        u = queue.popleft()
        for v, _ in adjacency[u]:
            if dist[v] is INF:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def dijkstra(graph: Graph, source: int) -> list[float]:
    """Weighted distances from *source* (``inf`` for unreachable)."""
    dist: list[float] = [INF] * graph.n
    dist[source] = 0
    heap: list[tuple[float, int]] = [(0, source)]
    adjacency = graph.adjacency()
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in adjacency[u]:
            candidate = d + w
            if candidate < dist[v]:
                dist[v] = candidate
                heapq.heappush(heap, (candidate, v))
    return dist


def single_source_distances(graph: Graph, source: int) -> list[float]:
    """BFS for unweighted graphs, Dijkstra for weighted ones."""
    return dijkstra(graph, source) if graph.weighted else bfs_distances(graph, source)


def all_pairs_distances(graph: Graph) -> list[list[float]]:
    """Exact APSP by repeated single-source search (for validation only)."""
    return [single_source_distances(graph, s) for s in range(graph.n)]


def connected_components(graph: Graph) -> UnionFind:
    uf = UnionFind(range(graph.n))
    for edge in graph.edges:
        uf.union(edge[0], edge[1])
    return uf


def component_labels(graph: Graph) -> list[int]:
    """A canonical component label (smallest member) for each vertex."""
    uf = connected_components(graph)
    smallest: dict = {}
    for v in range(graph.n):
        root = uf.find(v)
        if root not in smallest or v < smallest[root]:
            smallest[root] = v
    return [smallest[uf.find(v)] for v in range(graph.n)]


def is_connected(graph: Graph) -> bool:
    return connected_components(graph).num_components == 1


def graph_diameter(graph: Graph) -> float:
    """Unweighted diameter (``inf`` if disconnected); validation helper."""
    best = 0.0
    for source in range(graph.n):
        dist = bfs_distances(graph, source)
        extreme = max(dist)
        if extreme is INF:
            return INF
        best = max(best, extreme)
    return best
