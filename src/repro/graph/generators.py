"""Workload generators for tests, examples and the benchmark harness.

Each generator takes an explicit ``random.Random`` so every experiment is
reproducible.  Weighted variants attach a random permutation of ``1..m`` as
weights — unique positive integers, the paper's standing assumption.
"""

from __future__ import annotations

import random

from .graph import Graph

__all__ = [
    "gnm_random_graph",
    "random_connected_graph",
    "random_tree",
    "cycle_graph",
    "two_cycles",
    "one_or_two_cycles",
    "complete_graph",
    "grid_graph",
    "torus_graph",
    "preferential_attachment_graph",
    "power_law_graph",
    "planted_components_graph",
    "planted_community_graph",
    "multi_component_graph",
    "planted_cut_graph",
    "near_clique_graph",
    "random_bipartite_graph",
    "weighted",
]


def weighted(graph: Graph, rng: random.Random) -> Graph:
    """Attach unique random integer weights ``1..m`` to *graph*."""
    return graph.with_unique_weights(rng)


def _sample_edges(n: int, m: int, rng: random.Random, forbidden=frozenset()):
    max_edges = n * (n - 1) // 2
    if m > max_edges - len(forbidden):
        raise ValueError(f"cannot place {m} edges in a simple graph on {n} vertices")
    edges: set[tuple[int, int]] = set()
    # Dense case: sample from the explicit complement to avoid rejection
    # stalls; sparse case: rejection sampling.
    if m > max_edges // 2:
        population = [
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if (u, v) not in forbidden
        ]
        edges.update(rng.sample(population, m))
    else:
        while len(edges) < m:
            u = rng.randrange(n)
            v = rng.randrange(n)
            if u == v:
                continue
            if u > v:
                u, v = v, u
            if (u, v) in forbidden or (u, v) in edges:
                continue
            edges.add((u, v))
    return edges


def gnm_random_graph(n: int, m: int, rng: random.Random) -> Graph:
    """Uniform simple graph with exactly *m* edges (the G(n, m) model)."""
    return Graph(n, sorted(_sample_edges(n, m, rng)))


def random_tree(n: int, rng: random.Random) -> Graph:
    """Uniform random recursive tree (each vertex attaches to a random
    earlier vertex)."""
    edges = [(rng.randrange(v), v) for v in range(1, n)]
    return Graph(n, edges)


def random_connected_graph(n: int, m: int, rng: random.Random) -> Graph:
    """Connected graph: a random spanning tree plus ``m - (n-1)`` extra
    random edges."""
    if m < n - 1:
        raise ValueError("a connected graph needs at least n-1 edges")
    tree = {(min(u, v), max(u, v)) for u, v in random_tree(n, rng).edges}
    extra = _sample_edges(n, m - len(tree), rng, forbidden=frozenset(tree))
    return Graph(n, sorted(tree | extra))


def cycle_graph(n: int, rng: random.Random | None = None) -> Graph:
    """A single cycle on *n* vertices (with randomly permuted vertex labels
    when *rng* is given, so the structure is not visible in the ids)."""
    labels = list(range(n))
    if rng is not None:
        rng.shuffle(labels)
    edges = [
        (labels[i], labels[(i + 1) % n]) for i in range(n)
    ]
    return Graph(n, [(min(u, v), max(u, v)) for u, v in edges])


def two_cycles(n: int, rng: random.Random | None = None) -> Graph:
    """Two disjoint cycles covering *n* vertices (n >= 6)."""
    if n < 6:
        raise ValueError("need n >= 6 for two cycles of length >= 3")
    labels = list(range(n))
    if rng is not None:
        rng.shuffle(labels)
    half = n // 2
    edges = []
    for block in (labels[:half], labels[half:]):
        k = len(block)
        edges.extend((block[i], block[(i + 1) % k]) for i in range(k))
    return Graph(n, [(min(u, v), max(u, v)) for u, v in edges])


def one_or_two_cycles(n: int, rng: random.Random) -> tuple[Graph, int]:
    """A random instance of the 1-vs-2 cycle problem; returns the graph and
    the true number of cycles."""
    cycles = rng.choice((1, 2))
    graph = cycle_graph(n, rng) if cycles == 1 else two_cycles(n, rng)
    return graph, cycles


def complete_graph(n: int) -> Graph:
    return Graph(n, [(u, v) for u in range(n) for v in range(u + 1, n)])


def grid_graph(rows: int, cols: int) -> Graph:
    """The rows x cols grid; vertex ``(r, c)`` has id ``r * cols + c``."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return Graph(rows * cols, edges)


def preferential_attachment_graph(n: int, k: int, rng: random.Random) -> Graph:
    """Barabási–Albert-style graph: each new vertex attaches to *k* distinct
    existing vertices chosen proportionally to degree.  Produces the skewed
    degree distributions that exercise the degree-split matching phases."""
    if k < 1 or n <= k:
        raise ValueError("need 1 <= k < n")
    edges: set[tuple[int, int]] = set()
    endpoint_pool: list[int] = list(range(k + 1))
    for u in range(k + 1):
        for v in range(u + 1, k + 1):
            edges.add((u, v))
            endpoint_pool.extend((u, v))
    for v in range(k + 1, n):
        targets: set[int] = set()
        while len(targets) < k:
            targets.add(rng.choice(endpoint_pool))
        for t in targets:
            edges.add((min(t, v), max(t, v)))
            endpoint_pool.extend((t, v))
    return Graph(n, sorted(edges))


def torus_graph(rows: int, cols: int) -> Graph:
    """The periodic 2D grid (torus): :func:`grid_graph` plus wraparound
    edges.  Both dimensions must be >= 3 so the wraparound edges are
    distinct from the grid edges."""
    if rows < 3 or cols < 3:
        raise ValueError("torus needs rows >= 3 and cols >= 3")
    edges = set(grid_graph(rows, cols).edge_set())
    for r in range(rows):
        edges.add((r * cols, r * cols + cols - 1))
    for c in range(cols):
        edges.add((c, (rows - 1) * cols + c))
    return Graph(rows * cols, sorted(edges))


def power_law_graph(
    n: int, rng: random.Random, exponent: float = 2.5, avg_degree: float = 4.0
) -> Graph:
    """Chung–Lu power-law graph: vertex *i* has expected degree
    ``w_i ~ (i+1)^(-1/(exponent-1))`` (scaled so the mean degree is
    ``avg_degree``) and edge ``(u, v)`` appears independently with
    probability ``min(1, w_u w_v / sum(w))``.

    Unlike :func:`preferential_attachment_graph` (which grows a graph with
    minimum degree *k*), this produces genuine power-law tails *and* many
    degree-1 vertices — the skew that stresses degree-split phases from
    both ends.  Connectivity is not guaranteed.
    """
    if exponent <= 2.0:
        raise ValueError("need exponent > 2 for a finite-mean degree sequence")
    if n < 2:
        raise ValueError("need n >= 2")
    raw = [(i + 1.0) ** (-1.0 / (exponent - 1.0)) for i in range(n)]
    scale = avg_degree * n / sum(raw)
    w = [x * scale for x in raw]
    total = sum(w)
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < min(1.0, w[u] * w[v] / total):
                edges.append((u, v))
    return Graph(n, edges)


def planted_community_graph(
    n: int, communities: int, p_in: float, inter_edges: int, rng: random.Random
) -> Graph:
    """Connected planted-partition graph: *communities* equal-size blocks
    of contiguous vertex ids, dense inside (each intra-pair present with
    probability *p_in*, on top of a random spanning tree per block), and
    sparse between (a ring of bridges joining consecutive blocks — this is
    what keeps the graph connected — plus *inter_edges* extra random cross
    edges).  Vertex ``v`` belongs to community ``v * communities // n``."""
    if communities < 2 or communities * 2 > n:
        raise ValueError("need 2 <= communities <= n/2")
    bounds = [n * c // communities for c in range(communities + 1)]
    blocks = [list(range(bounds[c], bounds[c + 1])) for c in range(communities)]
    edges: set[tuple[int, int]] = set()
    for block in blocks:
        for index in range(1, len(block)):
            parent = block[rng.randrange(index)]
            edges.add((parent, block[index]))
        for i, u in enumerate(block):
            for v in block[i + 1:]:
                if rng.random() < p_in:
                    edges.add((u, v))
    for c in range(communities):
        u = rng.choice(blocks[c])
        v = rng.choice(blocks[(c + 1) % communities])
        edges.add((min(u, v), max(u, v)))
    placed = 0
    attempts = 0
    while placed < inter_edges and attempts < 50 * inter_edges + 100:
        attempts += 1
        a, b = rng.sample(range(communities), 2)
        u = rng.choice(blocks[a])
        v = rng.choice(blocks[b])
        edge = (min(u, v), max(u, v))
        if edge not in edges:
            edges.add(edge)
            placed += 1
    return Graph(n, sorted(edges))


def multi_component_graph(
    n: int, components: int, avg_degree: float, rng: random.Random
) -> Graph:
    """Disconnected graph with exactly *components* connected components of
    uneven sizes, each one a :func:`random_connected_graph` of average
    degree ~*avg_degree*.  Unlike :func:`planted_components_graph` (trees
    plus a few extra edges) the components here are genuinely dense, so
    sketch- and Borůvka-style algorithms do real merging work inside each
    component before discovering that the pieces never join."""
    if components < 2 or components * 3 > n:
        raise ValueError("need 2 <= components <= n/3")
    sizes = [3] * components
    for _ in range(n - 3 * components):
        sizes[rng.randrange(components)] += 1
    edges: list[tuple[int, int]] = []
    offset = 0
    for size in sizes:
        m = min(size * (size - 1) // 2, max(size - 1, int(avg_degree * size / 2)))
        block = random_connected_graph(size, m, rng)
        edges.extend((u + offset, v + offset) for u, v in block.edges)
        offset += size
    return Graph(n, sorted(edges))


def near_clique_graph(n: int, missing: int, rng: random.Random) -> Graph:
    """Dense near-clique: the complete graph on *n* vertices minus
    *missing* random edges.  Since ``K_n`` is (n-1)-edge-connected, the
    result is guaranteed connected whenever ``missing < n - 1``."""
    max_edges = n * (n - 1) // 2
    if not 0 <= missing <= max_edges:
        raise ValueError(f"missing must lie in [0, {max_edges}]")
    removed = _sample_edges(n, missing, rng)
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if (u, v) not in removed
    ]
    return Graph(n, edges)


def planted_components_graph(
    n: int, components: int, extra_edges: int, rng: random.Random
) -> Graph:
    """A graph with exactly *components* connected components: disjoint
    random trees plus intra-component extra edges."""
    if components > n:
        raise ValueError("more components than vertices")
    boundaries = sorted(rng.sample(range(1, n), components - 1)) if components > 1 else []
    blocks = []
    start = 0
    for end in boundaries + [n]:
        blocks.append(list(range(start, end)))
        start = end
    edges: set[tuple[int, int]] = set()
    for block in blocks:
        for index in range(1, len(block)):
            parent = block[rng.randrange(index)]
            edges.add((min(parent, block[index]), max(parent, block[index])))
    attempts = 0
    while extra_edges > 0 and attempts < 50 * extra_edges + 100:
        attempts += 1
        block = rng.choice(blocks)
        if len(block) < 3:
            continue
        u, v = rng.sample(block, 2)
        edge = (min(u, v), max(u, v))
        if edge not in edges:
            edges.add(edge)
            extra_edges -= 1
    return Graph(n, sorted(edges))


def planted_cut_graph(
    n: int, cut_size: int, intra_density: float, rng: random.Random
) -> Graph:
    """Two dense halves joined by exactly *cut_size* edges.

    With ``intra_density`` comfortably above ``2 * cut_size / n``, the
    planted cut is the (unique) minimum cut — the min-cut benchmarks verify
    this with the sequential Stoer–Wagner oracle rather than assuming it.
    """
    half = n // 2
    left = list(range(half))
    right = list(range(half, n))
    edges: set[tuple[int, int]] = set()
    for block in (left, right):
        for index in range(1, len(block)):
            parent = block[rng.randrange(index)]
            edges.add((min(parent, block[index]), max(parent, block[index])))
        target = int(intra_density * len(block))
        added = 0
        attempts = 0
        while added < target and attempts < 50 * target + 100:
            attempts += 1
            u, v = rng.sample(block, 2)
            edge = (min(u, v), max(u, v))
            if edge not in edges:
                edges.add(edge)
                added += 1
    crossing = set()
    while len(crossing) < cut_size:
        u = rng.choice(left)
        v = rng.choice(right)
        crossing.add((u, v))
    return Graph(n, sorted(edges | crossing))


def random_bipartite_graph(
    left: int, right: int, m: int, rng: random.Random
) -> Graph:
    """Random bipartite graph on ``left + right`` vertices with *m* edges."""
    if m > left * right:
        raise ValueError("too many edges for the bipartition")
    edges: set[tuple[int, int]] = set()
    while len(edges) < m:
        u = rng.randrange(left)
        v = left + rng.randrange(right)
        edges.add((u, v))
    return Graph(left + right, sorted(edges))
