"""Workload generators for tests, examples and the benchmark harness.

Each generator takes an explicit ``random.Random`` so every experiment is
reproducible.  Weighted variants attach a random permutation of ``1..m`` as
weights — unique positive integers, the paper's standing assumption.
"""

from __future__ import annotations

import random

from .graph import Graph

__all__ = [
    "gnm_random_graph",
    "random_connected_graph",
    "random_tree",
    "cycle_graph",
    "two_cycles",
    "one_or_two_cycles",
    "complete_graph",
    "grid_graph",
    "preferential_attachment_graph",
    "planted_components_graph",
    "planted_cut_graph",
    "random_bipartite_graph",
    "weighted",
]


def weighted(graph: Graph, rng: random.Random) -> Graph:
    """Attach unique random integer weights ``1..m`` to *graph*."""
    return graph.with_unique_weights(rng)


def _sample_edges(n: int, m: int, rng: random.Random, forbidden=frozenset()):
    max_edges = n * (n - 1) // 2
    if m > max_edges - len(forbidden):
        raise ValueError(f"cannot place {m} edges in a simple graph on {n} vertices")
    edges: set[tuple[int, int]] = set()
    # Dense case: sample from the explicit complement to avoid rejection
    # stalls; sparse case: rejection sampling.
    if m > max_edges // 2:
        population = [
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if (u, v) not in forbidden
        ]
        edges.update(rng.sample(population, m))
    else:
        while len(edges) < m:
            u = rng.randrange(n)
            v = rng.randrange(n)
            if u == v:
                continue
            if u > v:
                u, v = v, u
            if (u, v) in forbidden or (u, v) in edges:
                continue
            edges.add((u, v))
    return edges


def gnm_random_graph(n: int, m: int, rng: random.Random) -> Graph:
    """Uniform simple graph with exactly *m* edges (the G(n, m) model)."""
    return Graph(n, sorted(_sample_edges(n, m, rng)))


def random_tree(n: int, rng: random.Random) -> Graph:
    """Uniform random recursive tree (each vertex attaches to a random
    earlier vertex)."""
    edges = [(rng.randrange(v), v) for v in range(1, n)]
    return Graph(n, edges)


def random_connected_graph(n: int, m: int, rng: random.Random) -> Graph:
    """Connected graph: a random spanning tree plus ``m - (n-1)`` extra
    random edges."""
    if m < n - 1:
        raise ValueError("a connected graph needs at least n-1 edges")
    tree = {(min(u, v), max(u, v)) for u, v in random_tree(n, rng).edges}
    extra = _sample_edges(n, m - len(tree), rng, forbidden=frozenset(tree))
    return Graph(n, sorted(tree | extra))


def cycle_graph(n: int, rng: random.Random | None = None) -> Graph:
    """A single cycle on *n* vertices (with randomly permuted vertex labels
    when *rng* is given, so the structure is not visible in the ids)."""
    labels = list(range(n))
    if rng is not None:
        rng.shuffle(labels)
    edges = [
        (labels[i], labels[(i + 1) % n]) for i in range(n)
    ]
    return Graph(n, [(min(u, v), max(u, v)) for u, v in edges])


def two_cycles(n: int, rng: random.Random | None = None) -> Graph:
    """Two disjoint cycles covering *n* vertices (n >= 6)."""
    if n < 6:
        raise ValueError("need n >= 6 for two cycles of length >= 3")
    labels = list(range(n))
    if rng is not None:
        rng.shuffle(labels)
    half = n // 2
    edges = []
    for block in (labels[:half], labels[half:]):
        k = len(block)
        edges.extend((block[i], block[(i + 1) % k]) for i in range(k))
    return Graph(n, [(min(u, v), max(u, v)) for u, v in edges])


def one_or_two_cycles(n: int, rng: random.Random) -> tuple[Graph, int]:
    """A random instance of the 1-vs-2 cycle problem; returns the graph and
    the true number of cycles."""
    cycles = rng.choice((1, 2))
    graph = cycle_graph(n, rng) if cycles == 1 else two_cycles(n, rng)
    return graph, cycles


def complete_graph(n: int) -> Graph:
    return Graph(n, [(u, v) for u in range(n) for v in range(u + 1, n)])


def grid_graph(rows: int, cols: int) -> Graph:
    """The rows x cols grid; vertex ``(r, c)`` has id ``r * cols + c``."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return Graph(rows * cols, edges)


def preferential_attachment_graph(n: int, k: int, rng: random.Random) -> Graph:
    """Barabási–Albert-style graph: each new vertex attaches to *k* distinct
    existing vertices chosen proportionally to degree.  Produces the skewed
    degree distributions that exercise the degree-split matching phases."""
    if k < 1 or n <= k:
        raise ValueError("need 1 <= k < n")
    edges: set[tuple[int, int]] = set()
    endpoint_pool: list[int] = list(range(k + 1))
    for u in range(k + 1):
        for v in range(u + 1, k + 1):
            edges.add((u, v))
            endpoint_pool.extend((u, v))
    for v in range(k + 1, n):
        targets: set[int] = set()
        while len(targets) < k:
            targets.add(rng.choice(endpoint_pool))
        for t in targets:
            edges.add((min(t, v), max(t, v)))
            endpoint_pool.extend((t, v))
    return Graph(n, sorted(edges))


def planted_components_graph(
    n: int, components: int, extra_edges: int, rng: random.Random
) -> Graph:
    """A graph with exactly *components* connected components: disjoint
    random trees plus intra-component extra edges."""
    if components > n:
        raise ValueError("more components than vertices")
    boundaries = sorted(rng.sample(range(1, n), components - 1)) if components > 1 else []
    blocks = []
    start = 0
    for end in boundaries + [n]:
        blocks.append(list(range(start, end)))
        start = end
    edges: set[tuple[int, int]] = set()
    for block in blocks:
        for index in range(1, len(block)):
            parent = block[rng.randrange(index)]
            edges.add((min(parent, block[index]), max(parent, block[index])))
    attempts = 0
    while extra_edges > 0 and attempts < 50 * extra_edges + 100:
        attempts += 1
        block = rng.choice(blocks)
        if len(block) < 3:
            continue
        u, v = rng.sample(block, 2)
        edge = (min(u, v), max(u, v))
        if edge not in edges:
            edges.add(edge)
            extra_edges -= 1
    return Graph(n, sorted(edges))


def planted_cut_graph(
    n: int, cut_size: int, intra_density: float, rng: random.Random
) -> Graph:
    """Two dense halves joined by exactly *cut_size* edges.

    With ``intra_density`` comfortably above ``2 * cut_size / n``, the
    planted cut is the (unique) minimum cut — the min-cut benchmarks verify
    this with the sequential Stoer–Wagner oracle rather than assuming it.
    """
    half = n // 2
    left = list(range(half))
    right = list(range(half, n))
    edges: set[tuple[int, int]] = set()
    for block in (left, right):
        for index in range(1, len(block)):
            parent = block[rng.randrange(index)]
            edges.add((min(parent, block[index]), max(parent, block[index])))
        target = int(intra_density * len(block))
        added = 0
        attempts = 0
        while added < target and attempts < 50 * target + 100:
            attempts += 1
            u, v = rng.sample(block, 2)
            edge = (min(u, v), max(u, v))
            if edge not in edges:
                edges.add(edge)
                added += 1
    crossing = set()
    while len(crossing) < cut_size:
        u = rng.choice(left)
        v = rng.choice(right)
        crossing.add((u, v))
    return Graph(n, sorted(edges | crossing))


def random_bipartite_graph(
    left: int, right: int, m: int, rng: random.Random
) -> Graph:
    """Random bipartite graph on ``left + right`` vertices with *m* edges."""
    if m > left * right:
        raise ValueError("too many edges for the bipartition")
    edges: set[tuple[int, int]] = set()
    while len(edges) < m:
        u = rng.randrange(left)
        v = left + rng.randrange(right)
        edges.add((u, v))
    return Graph(left + right, sorted(edges))
