"""Disjoint-set union with path compression and union by size.

Used everywhere contraction happens: Kruskal, Borůvka steps on the large
machine, 2-out contraction for min-cut, and the connectivity validators.
"""

from __future__ import annotations

from typing import Hashable, Iterable

__all__ = ["UnionFind"]


class UnionFind:
    """Disjoint-set union over arbitrary hashable elements.

    Elements are created lazily on first use; ``UnionFind(range(n))``
    pre-creates integer singletons.
    """

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}
        self._components = 0
        for element in elements:
            self.add(element)

    def add(self, element: Hashable) -> None:
        if element not in self._parent:
            self._parent[element] = element
            self._size[element] = 1
            self._components += 1

    def find(self, element: Hashable) -> Hashable:
        self.add(element)
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the components of *a* and *b*; return True if they were
        previously distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._components -= 1
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        return self.find(a) == self.find(b)

    @property
    def num_components(self) -> int:
        return self._components

    def component_size(self, element: Hashable) -> int:
        return self._size[self.find(element)]

    def groups(self) -> dict[Hashable, list[Hashable]]:
        """Map each root to the list of elements in its component."""
        result: dict[Hashable, list[Hashable]] = {}
        for element in list(self._parent):
            result.setdefault(self.find(element), []).append(element)
        return result

    def __len__(self) -> int:
        return len(self._parent)
