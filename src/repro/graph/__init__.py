"""Graph substrate: types, generators, traversal, validation."""

from .graph import Graph, canonical_edge
from .union_find import UnionFind
from . import arboricity, generators, traversal, validation

__all__ = [
    "Graph",
    "canonical_edge",
    "UnionFind",
    "arboricity",
    "generators",
    "traversal",
    "validation",
]
